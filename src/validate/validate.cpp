#include "validate/validate.hpp"

#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "machine/machine.hpp"
#include "minic/interp.hpp"
#include "rtl/exec.hpp"
#include "support/rng.hpp"

namespace vc::validate {

using minic::Value;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

// ---------------------------------------------------------------------------
// 1. Symbolic structure-preserving checker
// ---------------------------------------------------------------------------

namespace {

/// Hash-consing table shared between the two sides being compared, so that
/// structurally equal expressions receive equal ids on both sides.
class Interner {
 public:
  using Id = std::uint32_t;
  Id intern(const std::string& key) {
    auto [it, inserted] = interned_.emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }

 private:
  std::map<std::string, Id> interned_;
  Id next_ = 0;
};

/// Symbolic register environment over a shared interner; leaves are
/// block-entry register values.
class SymbolicEnv {
 public:
  using Id = Interner::Id;

  explicit SymbolicEnv(Interner& interner) : interner_(interner) {}

  Id entry_value(VReg v) { return intern("entry#" + std::to_string(v)); }

  /// A fresh value both sides agree on (used for paired memory loads).
  Id paired_load_value(rtl::BlockId b, std::size_t i) {
    return intern("load#" + std::to_string(b) + "#" + std::to_string(i));
  }

  Id value_of(VReg v) {
    auto it = regs_.find(v);
    if (it != regs_.end()) return it->second;
    const Id id = entry_value(v);
    regs_[v] = id;
    return id;
  }

  void define(VReg v, Id id) { regs_[v] = id; }

  Id compute(const Instr& ins) {
    switch (ins.op) {
      case Opcode::LdI:
        return intern("ldi#" + std::to_string(ins.int_imm));
      case Opcode::LdF: {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &ins.f64_imm, sizeof bits);
        return intern("ldf#" + std::to_string(bits));
      }
      case Opcode::Mov:
        return value_of(ins.src1);
      case Opcode::Un:
        return intern("un#" + std::to_string(static_cast<int>(ins.un_op)) +
                      "#" + std::to_string(value_of(ins.src1)));
      case Opcode::Bin: {
        Id a = value_of(ins.src1);
        Id b = value_of(ins.src2);
        if (is_commutative(ins.bin_op) && b < a) std::swap(a, b);
        return intern("bin#" + std::to_string(static_cast<int>(ins.bin_op)) +
                      "#" + std::to_string(a) + "#" + std::to_string(b));
      }
      case Opcode::GetParam:
        return intern("param#" + std::to_string(ins.param_index));
      default:
        throw InternalError("compute on impure instruction");
    }
  }

 private:
  static bool is_commutative(minic::BinOp op) {
    switch (op) {
      case minic::BinOp::IAdd: case minic::BinOp::IMul:
      case minic::BinOp::IAnd: case minic::BinOp::IOr:
      case minic::BinOp::IXor: case minic::BinOp::ICmpEq:
      case minic::BinOp::ICmpNe: case minic::BinOp::FAdd:
      case minic::BinOp::FMul: case minic::BinOp::FCmpEq:
      case minic::BinOp::FCmpNe:
        return true;
      default:
        return false;
    }
  }

  Id intern(const std::string& key) { return interner_.intern(key); }

  Interner& interner_;
  std::map<VReg, Id> regs_;
};

}  // namespace

CheckResult check_structure_preserving(const rtl::Function& before,
                                       const rtl::Function& after) {
  if (before.blocks.size() != after.blocks.size())
    return CheckResult::fail("block count changed");

  for (rtl::BlockId b = 0; b < before.blocks.size(); ++b) {
    const auto& ib = before.blocks[b].instrs;
    const auto& ia = after.blocks[b].instrs;
    if (ib.size() != ia.size())
      return CheckResult::fail("instruction count changed in bb" +
                               std::to_string(b));

    // One shared interner so equal keys get equal ids on both sides; two
    // register environments.
    Interner interner;
    SymbolicEnv env_b(interner);
    SymbolicEnv env_a(interner);
    auto fail_at = [&](std::size_t i, const std::string& what) {
      return CheckResult::fail("bb" + std::to_string(b) + " instr " +
                               std::to_string(i) + ": " + what);
    };

    for (std::size_t i = 0; i < ib.size(); ++i) {
      const Instr& x = ib[i];
      const Instr& y = ia[i];
      if (x.is_pure() != y.is_pure())
        return fail_at(i, "purity mismatch");
      if (x.is_pure()) {
        const auto dx = x.def();
        const auto dy = y.def();
        if (!dx || !dy || *dx != *dy)
          return fail_at(i, "destination mismatch");
        const auto vx = env_b.compute(x);
        const auto vy = env_a.compute(y);
        if (vx != vy) return fail_at(i, "value mismatch");
        env_b.define(*dx, vx);
        env_a.define(*dy, vy);
        continue;
      }
      // Impure / control instructions must match exactly modulo operand
      // value equivalence.
      if (x.op != y.op) return fail_at(i, "opcode mismatch");
      switch (x.op) {
        case Opcode::StoreGlobal:
          if (x.sym != y.sym || x.elem != y.elem)
            return fail_at(i, "store target mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "stored value mismatch");
          break;
        case Opcode::StoreGlobalIdx:
          if (x.sym != y.sym) return fail_at(i, "store target mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1) ||
              env_b.value_of(x.src2) != env_a.value_of(y.src2))
            return fail_at(i, "store operand mismatch");
          break;
        case Opcode::LoadGlobal:
        case Opcode::LoadGlobalIdx:
        case Opcode::LoadStack: {
          if (x.sym != y.sym || x.elem != y.elem || x.slot != y.slot)
            return fail_at(i, "load source mismatch");
          if (x.op == Opcode::LoadGlobalIdx &&
              env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "load index mismatch");
          if (x.dst != y.dst) return fail_at(i, "load destination mismatch");
          // Both sides loaded an arbitrary-but-equal value. The two
          // environments share one interner, so the ids coincide.
          env_b.define(x.dst, env_b.paired_load_value(b, i));
          env_a.define(y.dst, env_a.paired_load_value(b, i));
          break;
        }
        case Opcode::StoreStack:
          if (x.slot != y.slot) return fail_at(i, "slot mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "stored value mismatch");
          break;
        case Opcode::Jump:
          if (x.target != y.target) return fail_at(i, "jump target mismatch");
          break;
        case Opcode::Branch:
          if (x.target != y.target || x.target2 != y.target2)
            return fail_at(i, "branch target mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "branch condition mismatch");
          break;
        case Opcode::BranchCmp:
          if (x.target != y.target || x.target2 != y.target2 ||
              x.bin_op != y.bin_op)
            return fail_at(i, "branch mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1) ||
              env_b.value_of(x.src2) != env_a.value_of(y.src2))
            return fail_at(i, "branch operand mismatch");
          break;
        case Opcode::Ret:
          if ((x.src1 == rtl::kNoVReg) != (y.src1 == rtl::kNoVReg))
            return fail_at(i, "return arity mismatch");
          if (x.src1 != rtl::kNoVReg &&
              env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "return value mismatch");
          break;
        case Opcode::Annot: {
          if (x.annot_format != y.annot_format)
            return fail_at(i, "annotation format mismatch");
          if (x.annot_args.size() != y.annot_args.size())
            return fail_at(i, "annotation arity mismatch");
          for (std::size_t k = 0; k < x.annot_args.size(); ++k) {
            const auto& ax = x.annot_args[k];
            const auto& ay = y.annot_args[k];
            if (ax.is_slot != ay.is_slot) return fail_at(i, "annot loc kind");
            if (ax.is_slot) {
              if (ax.slot != ay.slot) return fail_at(i, "annot slot mismatch");
            } else if (env_b.value_of(ax.vreg) != env_a.value_of(ay.vreg)) {
              return fail_at(i, "annot value mismatch");
            }
          }
          break;
        }
        default:
          return fail_at(i, "unexpected impure opcode");
      }
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// 2. Randomized differential checking
// ---------------------------------------------------------------------------

namespace {

Value random_value(Rng& rng, rtl::RegClass cls) {
  if (cls == rtl::RegClass::I32) {
    switch (rng.next_below(8)) {
      case 0: return Value::of_i32(0);
      case 1: return Value::of_i32(1);
      case 2: return Value::of_i32(-1);
      case 3: return Value::of_i32(std::numeric_limits<std::int32_t>::min());
      case 4: return Value::of_i32(std::numeric_limits<std::int32_t>::max());
      default:
        return Value::of_i32(
            static_cast<std::int32_t>(rng.next_range(-100000, 100000)));
    }
  }
  switch (rng.next_below(10)) {
    case 0: return Value::of_f64(0.0);
    case 1: return Value::of_f64(-0.0);
    case 2: return Value::of_f64(1.0);
    case 3: return Value::of_f64(std::numeric_limits<double>::infinity());
    case 4: return Value::of_f64(std::numeric_limits<double>::quiet_NaN());
    case 5: return Value::of_f64(1e-12);
    default: return Value::of_f64(rng.next_double(-1e4, 1e4));
  }
}

void randomize_globals(Rng& rng, const minic::Program& program,
                       rtl::Executor* a, rtl::Executor* b) {
  for (const auto& g : program.globals) {
    for (std::size_t i = 0; i < g.count; ++i) {
      // Keep array globals (ring buffers, tables) at moderate magnitudes and
      // indices-like globals small and non-negative, so that generated code
      // with index arithmetic stays in bounds.
      Value v;
      if (g.type == minic::Type::I32) {
        v = Value::of_i32(static_cast<std::int32_t>(rng.next_below(2)));
      } else {
        v = Value::of_f64(rng.next_double(-50.0, 50.0));
      }
      a->write_global(g.name, i, v);
      b->write_global(g.name, i, v);
    }
  }
}

std::string describe(const Value& v) { return v.to_string(); }

}  // namespace

CheckResult differential_check(const minic::Program& program,
                               const rtl::Function& before,
                               const rtl::Function& after, int n_tests,
                               std::uint64_t seed) {
  if (before.params.size() != after.params.size())
    return CheckResult::fail("parameter list changed");

  Rng rng(seed);
  for (int t = 0; t < n_tests; ++t) {
    rtl::Executor exec_b(program);
    rtl::Executor exec_a(program);
    randomize_globals(rng, program, &exec_b, &exec_a);

    std::vector<Value> args;
    for (const auto& p : before.params) args.push_back(random_value(rng, p.cls));

    bool threw_b = false;
    bool threw_a = false;
    Value rb = Value::of_i32(0);
    Value ra = Value::of_i32(0);
    try {
      rb = exec_b.call(before, args);
    } catch (const minic::EvalError&) {
      threw_b = true;
    }
    try {
      ra = exec_a.call(after, args);
    } catch (const minic::EvalError&) {
      threw_a = true;
    }
    if (threw_b != threw_a)
      return CheckResult::fail("trap behaviour diverged on test " +
                               std::to_string(t));
    if (threw_b) continue;

    if (!(rb == ra))
      return CheckResult::fail("result diverged on test " + std::to_string(t) +
                               ": " + describe(rb) + " vs " + describe(ra));
    for (const auto& g : program.globals) {
      for (std::size_t i = 0; i < g.count; ++i) {
        const Value vb = exec_b.read_global(g.name, i);
        const Value va = exec_a.read_global(g.name, i);
        if (!(vb == va))
          return CheckResult::fail("global " + g.name + "[" +
                                   std::to_string(i) + "] diverged on test " +
                                   std::to_string(t) + ": " + describe(vb) +
                                   " vs " + describe(va));
      }
    }
    // Annotation traces (pro-forma effects) must also be preserved.
    const auto& ann_b = exec_b.annotations();
    const auto& ann_a = exec_a.annotations();
    if (ann_b.size() != ann_a.size())
      return CheckResult::fail("annotation trace length diverged");
    for (std::size_t i = 0; i < ann_b.size(); ++i) {
      if (ann_b[i].format != ann_a[i].format ||
          ann_b[i].values.size() != ann_a[i].values.size())
        return CheckResult::fail("annotation trace diverged");
      for (std::size_t k = 0; k < ann_b[i].values.size(); ++k)
        if (!(ann_b[i].values[k] == ann_a[i].values[k]))
          return CheckResult::fail("annotation operand diverged");
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// 3. End-to-end machine cross-check
// ---------------------------------------------------------------------------

CheckResult cross_check_machine(const minic::Program& program,
                                const driver::Compiled& compiled,
                                const std::string& fn_name, int n_tests,
                                std::uint64_t seed) {
  const minic::Function* fn = program.find_function(fn_name);
  if (fn == nullptr) return CheckResult::fail("unknown function " + fn_name);
  const minic::Type ret_type =
      fn->has_return ? fn->return_type : minic::Type::I32;

  Rng rng(seed);
  minic::Interpreter interp(program);
  machine::Machine m(compiled.image);

  for (int t = 0; t < n_tests; ++t) {
    std::vector<Value> args;
    for (const auto& p : fn->params) {
      args.push_back(random_value(
          rng, p.type == minic::Type::I32 ? rtl::RegClass::I32
                                          : rtl::RegClass::F64));
    }
    bool threw_i = false;
    bool threw_m = false;
    Value ri = Value::of_i32(0);
    Value rm = Value::of_i32(0);
    try {
      ri = interp.call(fn_name, args);
    } catch (const minic::EvalError&) {
      threw_i = true;
    }
    try {
      rm = m.call(fn_name, args, ret_type);
    } catch (const machine::MachineError&) {
      threw_m = true;
    }
    if (threw_i != threw_m)
      return CheckResult::fail(fn_name + ": trap behaviour diverged");
    if (threw_i) {
      // State after a trap is unspecified; restart both sides.
      interp.reset_globals();
      m.reset();
      continue;
    }
    if (fn->has_return && !(ri == rm))
      return CheckResult::fail(fn_name + ": result diverged on call " +
                               std::to_string(t) + ": " + describe(ri) +
                               " vs " + describe(rm));
    for (const auto& g : program.globals) {
      for (std::size_t i = 0; i < g.count; ++i) {
        const Value vi = interp.read_global(g.name, i);
        const Value vm = m.read_global(g.name, i, g.type);
        if (!(vi == vm))
          return CheckResult::fail(fn_name + ": global " + g.name +
                                   " diverged on call " + std::to_string(t));
      }
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// Validated compilation
// ---------------------------------------------------------------------------

driver::Compiled validated_compile(const minic::Program& program,
                                   driver::Config config, int n_tests,
                                   std::uint64_t seed) {
  opt::PassHook hook = [&](const std::string& pass,
                           const rtl::Function& before,
                           const rtl::Function& after) {
    if (pass == "lower") return;  // snapshot only; nothing to compare yet
    if (pass == "cse") {
      const CheckResult structural = check_structure_preserving(before, after);
      if (!structural.ok)
        throw ValidationError(pass, after.name + ": " + structural.message);
    }
    const CheckResult diff =
        differential_check(program, before, after, n_tests, seed);
    if (!diff.ok) throw ValidationError(pass, after.name + ": " + diff.message);
  };

  driver::Compiled compiled = driver::compile_program(program, config, hook);

  for (const auto& fn : program.functions) {
    const CheckResult end_to_end =
        cross_check_machine(program, compiled, fn.name, n_tests, seed ^ 0x9E37);
    if (!end_to_end.ok) throw ValidationError("emission", end_to_end.message);
  }
  return compiled;
}

}  // namespace vc::validate
