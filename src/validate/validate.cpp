#include "validate/validate.hpp"

#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "machine/machine.hpp"
#include "minic/interp.hpp"
#include "rtl/analysis.hpp"
#include "rtl/exec.hpp"
#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"
#include "support/bitset.hpp"
#include "support/rng.hpp"

namespace vc::validate {

using minic::Value;
using rtl::BlockId;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

// ---------------------------------------------------------------------------
// 1. Symbolic structure-preserving checker
// ---------------------------------------------------------------------------
//
// The checker symbolically executes both versions in dominator-tree preorder
// (scoped environments with an undo log), so equivalences established in a
// block are visible in the blocks it dominates — matching the reach of the
// scoped CSE. RTL is not SSA, so an inherited binding about vreg v is only
// trusted when it cannot be stale: v is never defined (it always holds its
// initial value), or it has exactly one definition site and the binding was
// made there. Everything else falls back to an opaque per-block entry value.
//
// Memory rewrites (store-to-load forwarding) are justified by an independent
// two-phase argument:
//   phase 1: a register-free must-availability dataflow over the *before*
//     function computes, for every static memory location, the write/read
//     site ("token") whose value the location holds on every incoming path;
//   phase 2: during the symbolic walk, each store/first-load site records the
//     symbolic value of its token. Availability at a use implies the token's
//     site dominates it (a must-fact survives only if every path runs
//     through its creation site), so the recording walk has already visited
//     it. A load rewritten to a Mov is accepted iff the Mov's source has
//     exactly the token's recorded symbolic value.

namespace {

/// Hash-consing table shared between the two sides being compared, so that
/// structurally equal expressions receive equal ids on both sides.
class Interner {
 public:
  using Id = std::uint32_t;
  Id intern(const std::string& key) {
    auto [it, inserted] = interned_.emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }

 private:
  std::map<std::string, Id> interned_;
  Id next_ = 0;
};

constexpr Interner::Id kNoId = 0xFFFFFFFF;

/// Dominator-scoped symbolic register environment over a shared interner.
/// Bindings are pushed while walking a block's subtree and rolled back when
/// leaving it; validity of inherited bindings follows the single-def rule
/// described above.
class SymbolicEnv {
 public:
  using Id = Interner::Id;

  SymbolicEnv(Interner& interner, const rtl::Function& fn)
      : interner_(interner) {
    def_count_.assign(fn.vregs.size(), 0);
    for (const auto& bb : fn.blocks)
      for (const Instr& ins : bb.instrs)
        if (auto d = ins.def()) ++def_count_[*d];
    bindings_.assign(fn.vregs.size(), Binding{});
  }

  void enter_block(BlockId b) { cur_block_ = b; }
  [[nodiscard]] std::size_t mark() const { return log_.size(); }
  void rollback(std::size_t m) {
    while (log_.size() > m) {
      bindings_[log_.back().first] = log_.back().second;
      log_.pop_back();
    }
  }

  Id value_of(VReg v) {
    const Binding& b = bindings_[v];
    if (b.live && (b.block == cur_block_ || def_count_[v] == 0 ||
                   (def_count_[v] == 1 && b.from_def)))
      return b.id;
    // Opaque entry value. Never-defined vregs hold their initial value
    // everywhere (one global leaf); anything else is pinned to this block.
    const Id id = def_count_[v] == 0
                      ? intern("entry#" + std::to_string(v))
                      : intern("entry#" + std::to_string(cur_block_) + "#" +
                               std::to_string(v));
    set(v, {id, cur_block_, true, false});
    return id;
  }

  /// Binds v at its definition site.
  void define(VReg v, Id id) { set(v, {id, cur_block_, true, true}); }

  Id compute(const Instr& ins) {
    switch (ins.op) {
      case Opcode::LdI:
        return intern("ldi#" + std::to_string(ins.int_imm));
      case Opcode::LdF: {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &ins.f64_imm, sizeof bits);
        return intern("ldf#" + std::to_string(bits));
      }
      case Opcode::Mov:
        return value_of(ins.src1);
      case Opcode::Un:
        return intern("un#" + std::to_string(static_cast<int>(ins.un_op)) +
                      "#" + std::to_string(value_of(ins.src1)));
      case Opcode::Bin: {
        Id a = value_of(ins.src1);
        Id b = value_of(ins.src2);
        if (is_commutative(ins.bin_op) && b < a) std::swap(a, b);
        return intern("bin#" + std::to_string(static_cast<int>(ins.bin_op)) +
                      "#" + std::to_string(a) + "#" + std::to_string(b));
      }
      case Opcode::GetParam:
        return intern("param#" + std::to_string(ins.param_index));
      default:
        throw InternalError("compute on impure instruction");
    }
  }

 private:
  struct Binding {
    Id id = kNoId;
    BlockId block = 0;
    bool live = false;
    bool from_def = false;
  };

  static bool is_commutative(minic::BinOp op) {
    switch (op) {
      case minic::BinOp::IAdd: case minic::BinOp::IMul:
      case minic::BinOp::IAnd: case minic::BinOp::IOr:
      case minic::BinOp::IXor: case minic::BinOp::ICmpEq:
      case minic::BinOp::ICmpNe: case minic::BinOp::FAdd:
      case minic::BinOp::FMul: case minic::BinOp::FCmpEq:
      case minic::BinOp::FCmpNe:
        return true;
      default:
        return false;
    }
  }

  void set(VReg v, Binding b) {
    log_.emplace_back(v, bindings_[v]);
    bindings_[v] = b;
  }

  Id intern(const std::string& key) { return interner_.intern(key); }

  Interner& interner_;
  BlockId cur_block_ = 0;
  std::vector<int> def_count_;
  std::vector<Binding> bindings_;
  std::vector<std::pair<VReg, Binding>> log_;
};

/// Field-by-field instruction equality (f64 immediates by bit pattern).
bool instr_equal(const Instr& x, const Instr& y) {
  std::uint64_t fx = 0, fy = 0;
  std::memcpy(&fx, &x.f64_imm, sizeof fx);
  std::memcpy(&fy, &y.f64_imm, sizeof fy);
  if (x.op != y.op || x.dst != y.dst || x.src1 != y.src1 ||
      x.src2 != y.src2 || x.int_imm != y.int_imm || fx != fy ||
      x.un_op != y.un_op || x.bin_op != y.bin_op || x.sym != y.sym ||
      x.elem != y.elem || x.slot != y.slot ||
      x.param_index != y.param_index || x.target != y.target ||
      x.target2 != y.target2 || x.annot_format != y.annot_format ||
      x.annot_args.size() != y.annot_args.size())
    return false;
  for (std::size_t k = 0; k < x.annot_args.size(); ++k) {
    const auto& ax = x.annot_args[k];
    const auto& ay = y.annot_args[k];
    if (ax.is_slot != ay.is_slot || ax.vreg != ay.vreg || ax.slot != ay.slot)
      return false;
  }
  return true;
}

/// Static memory locations of a function: stack slots first, then one index
/// per distinct (symbol, element) constant address. Shared by the
/// availability (phase 1) and dead-store checkers.
struct LocIndex {
  std::size_t nslots = 0;
  std::map<std::pair<std::string, std::int32_t>, std::size_t> global_index;
  std::map<std::string, std::vector<std::size_t>> by_sym;
  std::size_t nlocs = 0;

  explicit LocIndex(const rtl::Function& fn) : nslots(fn.slots.size()) {
    nlocs = nslots;
    for (const auto& bb : fn.blocks)
      for (const Instr& ins : bb.instrs)
        if (ins.op == Opcode::LoadGlobal || ins.op == Opcode::StoreGlobal) {
          const auto key = std::make_pair(ins.sym, ins.elem);
          if (global_index.emplace(key, nlocs).second) {
            by_sym[ins.sym].push_back(nlocs);
            ++nlocs;
          }
        }
  }

  [[nodiscard]] std::size_t loc_of(const Instr& ins) const {
    if (ins.op == Opcode::LoadStack || ins.op == Opcode::StoreStack)
      return ins.slot;
    return global_index.at({ins.sym, ins.elem});
  }
};

constexpr std::int32_t kNoToken = -1;

/// Phase 1: register-free must-availability of memory values over the
/// *before* function. A token names the site whose write (or first read)
/// produced a location's current value; facts meet by intersection, so an
/// available token's site lies on every path (it dominates the use).
struct MemAvailability {
  LocIndex locs;
  std::vector<std::vector<std::int32_t>> token_of;  // site -> its token
  std::vector<std::vector<std::int32_t>> avail_at;  // load site -> token
  std::int32_t ntokens = 0;

  explicit MemAvailability(const rtl::Function& fn) : locs(fn) {
    token_of.resize(fn.blocks.size());
    avail_at.resize(fn.blocks.size());
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
      token_of[b].assign(fn.blocks[b].instrs.size(), kNoToken);
      avail_at[b].assign(fn.blocks[b].instrs.size(), kNoToken);
      for (std::size_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
        const Opcode op = fn.blocks[b].instrs[i].op;
        if (op == Opcode::LoadStack || op == Opcode::LoadGlobal ||
            op == Opcode::StoreStack || op == Opcode::StoreGlobal)
          token_of[b][i] = ntokens++;
      }
    }

    // Fixpoint over reachable blocks; out-facts start at TOP (optimistic)
    // and only shrink toward the must-intersection.
    const std::vector<BlockId> rpo = rtl::reverse_postorder(fn);
    const auto preds = rtl::predecessors(fn);
    struct State {
      bool top = true;
      std::vector<std::int32_t> fact;
    };
    std::vector<State> out(fn.blocks.size());

    auto entry_state = [&](BlockId b) {
      State in;
      if (b == rpo.front()) {
        in.top = false;
        in.fact.assign(locs.nlocs, kNoToken);
        return in;
      }
      for (BlockId p : preds[b]) {
        if (out[p].top) continue;
        if (in.top) {
          in = out[p];
        } else {
          for (std::size_t l = 0; l < in.fact.size(); ++l)
            if (in.fact[l] != out[p].fact[l]) in.fact[l] = kNoToken;
        }
      }
      return in;
    };

    auto apply = [&](BlockId b, std::size_t i, const Instr& ins, State& s) {
      switch (ins.op) {
        case Opcode::StoreStack:
        case Opcode::StoreGlobal:
          s.fact[locs.loc_of(ins)] = token_of[b][i];
          break;
        case Opcode::StoreGlobalIdx: {
          auto it = locs.by_sym.find(ins.sym);
          if (it != locs.by_sym.end())
            for (std::size_t l : it->second) s.fact[l] = kNoToken;
          break;
        }
        case Opcode::LoadStack:
        case Opcode::LoadGlobal: {
          const std::size_t l = locs.loc_of(ins);
          if (s.fact[l] == kNoToken) s.fact[l] = token_of[b][i];
          break;
        }
        default:
          break;  // register effects don't touch memory facts
      }
    };

    bool changed = true;
    while (changed) {
      changed = false;
      for (BlockId b : rpo) {
        State in = entry_state(b);
        if (in.top) continue;
        for (std::size_t i = 0; i < fn.blocks[b].instrs.size(); ++i)
          apply(b, i, fn.blocks[b].instrs[i], in);
        if (out[b].top || out[b].fact != in.fact) {
          out[b] = std::move(in);
          changed = true;
        }
      }
    }

    // Final replay: record, at every static load site, the token available
    // just before it.
    for (BlockId b : rpo) {
      State s = entry_state(b);
      if (s.top) continue;
      for (std::size_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
        const Instr& ins = fn.blocks[b].instrs[i];
        if (ins.op == Opcode::LoadStack || ins.op == Opcode::LoadGlobal)
          avail_at[b][i] = s.fact[locs.loc_of(ins)];
        apply(b, i, ins, s);
      }
    }
  }
};

}  // namespace

CheckResult check_structure_preserving(const rtl::Function& before,
                                       const rtl::Function& after) {
  if (before.blocks.size() != after.blocks.size())
    return CheckResult::fail("block count changed");
  for (BlockId b = 0; b < before.blocks.size(); ++b)
    if (before.blocks[b].instrs.size() != after.blocks[b].instrs.size())
      return CheckResult::fail("instruction count changed in bb" +
                               std::to_string(b));

  const MemAvailability mem(before);
  std::vector<Interner::Id> token_value(
      static_cast<std::size_t>(mem.ntokens), kNoId);

  // One shared interner for the whole function so equal keys get equal ids
  // on both sides and across blocks.
  Interner interner;
  SymbolicEnv env_b(interner, before);
  SymbolicEnv env_a(interner, after);

  const std::vector<BlockId> idom = rtl::immediate_dominators(before);
  const auto children = rtl::dominator_children(idom);

  CheckResult result = CheckResult::pass();

  // Walks one block's instruction pairs; returns false (with `result` set)
  // on the first mismatch.
  auto walk_block = [&](BlockId b) {
    const auto& ib = before.blocks[b].instrs;
    const auto& ia = after.blocks[b].instrs;
    env_b.enter_block(b);
    env_a.enter_block(b);
    auto fail_at = [&](std::size_t i, const std::string& what) {
      result = CheckResult::fail("bb" + std::to_string(b) + " instr " +
                                 std::to_string(i) + ": " + what);
      return false;
    };

    for (std::size_t i = 0; i < ib.size(); ++i) {
      const Instr& x = ib[i];
      const Instr& y = ia[i];

      // A forwarded load: the before side reads memory, the after side
      // copies from a register that must hold the location's current value.
      if ((x.op == Opcode::LoadStack || x.op == Opcode::LoadGlobal) &&
          y.op == Opcode::Mov) {
        if (x.dst != y.dst) return fail_at(i, "forwarded load destination");
        const std::int32_t tok = mem.avail_at[b][i];
        if (tok == kNoToken)
          return fail_at(i, "forwarded load without available value");
        const Interner::Id tv = token_value[static_cast<std::size_t>(tok)];
        if (tv == kNoId)
          return fail_at(i, "forwarded load from unrecorded site");
        if (env_a.value_of(y.src1) != tv)
          return fail_at(i, "forwarded value mismatch");
        env_b.define(x.dst, tv);
        env_a.define(y.dst, tv);
        continue;
      }

      if (x.is_pure() != y.is_pure()) return fail_at(i, "purity mismatch");
      if (x.is_pure()) {
        const auto dx = x.def();
        const auto dy = y.def();
        if (!dx || !dy || *dx != *dy)
          return fail_at(i, "destination mismatch");
        const auto vx = env_b.compute(x);
        const auto vy = env_a.compute(y);
        if (vx != vy) return fail_at(i, "value mismatch");
        env_b.define(*dx, vx);
        env_a.define(*dy, vy);
        continue;
      }
      // Impure / control instructions must match exactly modulo operand
      // value equivalence.
      if (x.op != y.op) return fail_at(i, "opcode mismatch");
      switch (x.op) {
        case Opcode::StoreGlobal:
        case Opcode::StoreStack: {
          if (x.sym != y.sym || x.elem != y.elem || x.slot != y.slot)
            return fail_at(i, "store target mismatch");
          const auto sv_b = env_b.value_of(x.src1);
          if (sv_b != env_a.value_of(y.src1))
            return fail_at(i, "stored value mismatch");
          // Record the stored symbolic value for forwarding justification.
          token_value[static_cast<std::size_t>(mem.token_of[b][i])] = sv_b;
          break;
        }
        case Opcode::StoreGlobalIdx:
          if (x.sym != y.sym) return fail_at(i, "store target mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1) ||
              env_b.value_of(x.src2) != env_a.value_of(y.src2))
            return fail_at(i, "store operand mismatch");
          break;
        case Opcode::LoadGlobal:
        case Opcode::LoadStack: {
          if (x.sym != y.sym || x.elem != y.elem || x.slot != y.slot)
            return fail_at(i, "load source mismatch");
          if (x.dst != y.dst) return fail_at(i, "load destination mismatch");
          // If the location's value is known (a dominating store or earlier
          // load), both sides observe exactly that value; otherwise this
          // load is itself the location's token.
          const std::int32_t tok = mem.avail_at[b][i];
          Interner::Id v = tok == kNoToken
                               ? kNoId
                               : token_value[static_cast<std::size_t>(tok)];
          if (v == kNoId) {
            v = interner.intern("load#" + std::to_string(b) + "#" +
                                std::to_string(i));
            token_value[static_cast<std::size_t>(mem.token_of[b][i])] = v;
          }
          env_b.define(x.dst, v);
          env_a.define(y.dst, v);
          break;
        }
        case Opcode::LoadGlobalIdx: {
          if (x.sym != y.sym) return fail_at(i, "load source mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "load index mismatch");
          if (x.dst != y.dst) return fail_at(i, "load destination mismatch");
          // Both sides loaded an arbitrary-but-equal value.
          const auto v = interner.intern("loadx#" + std::to_string(b) + "#" +
                                         std::to_string(i));
          env_b.define(x.dst, v);
          env_a.define(y.dst, v);
          break;
        }
        case Opcode::Jump:
          if (x.target != y.target) return fail_at(i, "jump target mismatch");
          break;
        case Opcode::Branch:
          if (x.target != y.target || x.target2 != y.target2)
            return fail_at(i, "branch target mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "branch condition mismatch");
          break;
        case Opcode::BranchCmp:
          if (x.target != y.target || x.target2 != y.target2 ||
              x.bin_op != y.bin_op)
            return fail_at(i, "branch mismatch");
          if (env_b.value_of(x.src1) != env_a.value_of(y.src1) ||
              env_b.value_of(x.src2) != env_a.value_of(y.src2))
            return fail_at(i, "branch operand mismatch");
          break;
        case Opcode::Ret:
          if ((x.src1 == rtl::kNoVReg) != (y.src1 == rtl::kNoVReg))
            return fail_at(i, "return arity mismatch");
          if (x.src1 != rtl::kNoVReg &&
              env_b.value_of(x.src1) != env_a.value_of(y.src1))
            return fail_at(i, "return value mismatch");
          break;
        case Opcode::Annot: {
          if (x.annot_format != y.annot_format)
            return fail_at(i, "annotation format mismatch");
          if (x.annot_args.size() != y.annot_args.size())
            return fail_at(i, "annotation arity mismatch");
          for (std::size_t k = 0; k < x.annot_args.size(); ++k) {
            const auto& ax = x.annot_args[k];
            const auto& ay = y.annot_args[k];
            if (ax.is_slot != ay.is_slot) return fail_at(i, "annot loc kind");
            if (ax.is_slot) {
              if (ax.slot != ay.slot) return fail_at(i, "annot slot mismatch");
            } else if (env_b.value_of(ax.vreg) != env_a.value_of(ay.vreg)) {
              return fail_at(i, "annot value mismatch");
            }
          }
          break;
        }
        default:
          return fail_at(i, "unexpected impure opcode");
      }
    }
    return true;
  };

  // Preorder walk of before's dominator tree (after's CFG is checked equal
  // edge by edge as terminators are compared).
  struct Frame {
    BlockId block;
    std::size_t next_child = 0;
    std::size_t mark_b, mark_a;
  };
  std::vector<Frame> stack;
  std::vector<bool> walked(before.blocks.size(), false);
  stack.push_back({0, 0, env_b.mark(), env_a.mark()});
  walked[0] = true;
  if (!walk_block(0)) return result;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < children[f.block].size()) {
      const BlockId c = children[f.block][f.next_child++];
      const std::size_t mb = env_b.mark();
      const std::size_t ma = env_a.mark();
      stack.push_back({c, 0, mb, ma});
      walked[c] = true;
      if (!walk_block(c)) return result;
    } else {
      env_b.rollback(f.mark_b);
      env_a.rollback(f.mark_a);
      stack.pop_back();
    }
  }

  // Unreachable blocks carry no proof obligations but must not be rewritten.
  for (BlockId b = 0; b < before.blocks.size(); ++b) {
    if (walked[b]) continue;
    for (std::size_t i = 0; i < before.blocks[b].instrs.size(); ++i)
      if (!instr_equal(before.blocks[b].instrs[i], after.blocks[b].instrs[i]))
        return CheckResult::fail("unreachable bb" + std::to_string(b) +
                                 " was rewritten");
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// 1b. Dead-store-elimination checker
// ---------------------------------------------------------------------------

namespace {

/// Backward transfer of one before-instruction over the live-location set;
/// mirrors the independent liveness the checker computes (NOT the pass's).
void location_transfer(const Instr& ins, const LocIndex& locs,
                       DenseBitset& live) {
  switch (ins.op) {
    case Opcode::Ret:
      live.clear();
      for (const auto& [sym, indices] : locs.by_sym)
        for (std::size_t l : indices) live.set(l);
      break;
    case Opcode::LoadStack:
    case Opcode::LoadGlobal:
      live.set(locs.loc_of(ins));
      break;
    case Opcode::LoadGlobalIdx: {
      auto it = locs.by_sym.find(ins.sym);
      if (it != locs.by_sym.end())
        for (std::size_t l : it->second) live.set(l);
      break;
    }
    case Opcode::Annot:
      for (const auto& a : ins.annot_args)
        if (a.is_slot) live.set(a.slot);
      break;
    case Opcode::StoreStack:
    case Opcode::StoreGlobal:
      live.reset(locs.loc_of(ins));
      break;
    default:
      break;  // StoreGlobalIdx: a may-write kills nothing
  }
}

}  // namespace

CheckResult check_dead_store_elimination(const rtl::Function& before,
                                         const rtl::Function& after) {
  if (before.blocks.size() != after.blocks.size())
    return CheckResult::fail("block count changed");

  const LocIndex locs(before);
  const std::size_t nlocs = locs.nlocs == 0 ? 1 : locs.nlocs;

  // Location liveness on `before` (independent of the pass).
  std::vector<DenseBitset> live_in(before.blocks.size(), DenseBitset(nlocs));
  std::vector<DenseBitset> live_out(before.blocks.size(), DenseBitset(nlocs));
  const std::vector<BlockId> rpo = rtl::reverse_postorder(before);
  bool changed = true;
  DenseBitset live(nlocs);
  while (changed) {
    changed = false;
    for (std::size_t i = rpo.size(); i-- > 0;) {
      const BlockId b = rpo[i];
      for (BlockId s : before.blocks[b].successors())
        live_out[b].union_with(live_in[s]);
      live = live_out[b];
      const auto& instrs = before.blocks[b].instrs;
      for (std::size_t j = instrs.size(); j-- > 0;)
        location_transfer(instrs[j], locs, live);
      if (live != live_in[b]) {
        live_in[b] = live;
        changed = true;
      }
    }
  }

  std::vector<bool> reachable(before.blocks.size(), false);
  for (BlockId b : rpo) reachable[b] = true;

  for (BlockId b = 0; b < before.blocks.size(); ++b) {
    const auto& ib = before.blocks[b].instrs;
    const auto& ia = after.blocks[b].instrs;
    auto fail_at = [&](std::size_t i, const std::string& what) {
      return CheckResult::fail("bb" + std::to_string(b) + " instr " +
                               std::to_string(i) + ": " + what);
    };

    if (!reachable[b]) {
      // No liveness facts here; require verbatim preservation.
      if (ib.size() != ia.size())
        return CheckResult::fail("unreachable bb" + std::to_string(b) +
                                 " was rewritten");
      for (std::size_t i = 0; i < ib.size(); ++i)
        if (!instr_equal(ib[i], ia[i]))
          return CheckResult::fail("unreachable bb" + std::to_string(b) +
                                   " was rewritten");
      continue;
    }

    // Backward alignment: matched instructions must be identical; anything
    // the after side dropped must be a store whose location is dead below
    // the removal point.
    live = live_out[b];
    std::size_t j = ia.size();
    for (std::size_t i = ib.size(); i-- > 0;) {
      const Instr& x = ib[i];
      if (j > 0 && instr_equal(x, ia[j - 1])) {
        --j;
        location_transfer(x, locs, live);
        continue;
      }
      if (x.op != Opcode::StoreStack && x.op != Opcode::StoreGlobal)
        return fail_at(i, "removed instruction is not a store");
      if (live.test(locs.loc_of(x)))
        return fail_at(i, "removed store to a live location");
      location_transfer(x, locs, live);
    }
    if (j != 0)
      return CheckResult::fail("bb" + std::to_string(b) +
                               ": unmatched added instructions");
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// 2. Randomized differential checking
// ---------------------------------------------------------------------------

namespace {

Value random_value(Rng& rng, rtl::RegClass cls) {
  if (cls == rtl::RegClass::I32) {
    switch (rng.next_below(8)) {
      case 0: return Value::of_i32(0);
      case 1: return Value::of_i32(1);
      case 2: return Value::of_i32(-1);
      case 3: return Value::of_i32(std::numeric_limits<std::int32_t>::min());
      case 4: return Value::of_i32(std::numeric_limits<std::int32_t>::max());
      default:
        return Value::of_i32(
            static_cast<std::int32_t>(rng.next_range(-100000, 100000)));
    }
  }
  switch (rng.next_below(10)) {
    case 0: return Value::of_f64(0.0);
    case 1: return Value::of_f64(-0.0);
    case 2: return Value::of_f64(1.0);
    case 3: return Value::of_f64(std::numeric_limits<double>::infinity());
    case 4: return Value::of_f64(std::numeric_limits<double>::quiet_NaN());
    case 5: return Value::of_f64(1e-12);
    default: return Value::of_f64(rng.next_double(-1e4, 1e4));
  }
}

void randomize_globals(Rng& rng, const minic::Program& program,
                       rtl::Executor* a, rtl::Executor* b) {
  for (const auto& g : program.globals) {
    for (std::size_t i = 0; i < g.count; ++i) {
      // Keep array globals (ring buffers, tables) at moderate magnitudes and
      // indices-like globals small and non-negative, so that generated code
      // with index arithmetic stays in bounds.
      Value v;
      if (g.type == minic::Type::I32) {
        v = Value::of_i32(static_cast<std::int32_t>(rng.next_below(2)));
      } else {
        v = Value::of_f64(rng.next_double(-50.0, 50.0));
      }
      a->write_global(g.name, i, v);
      b->write_global(g.name, i, v);
    }
  }
}

std::string describe(const Value& v) { return v.to_string(); }

}  // namespace

CheckResult differential_check(const minic::Program& program,
                               const rtl::Function& before,
                               const rtl::Function& after, int n_tests,
                               std::uint64_t seed,
                               bool normalize_loop_bounds) {
  if (before.params.size() != after.params.size())
    return CheckResult::fail("parameter list changed");
  const auto norm = [normalize_loop_bounds](const std::string& format) {
    if (normalize_loop_bounds && ssa::detail::parse_loop_bound(format) >= 0)
      return std::string("loop");
    return format;
  };

  Rng rng(seed);
  for (int t = 0; t < n_tests; ++t) {
    rtl::Executor exec_b(program);
    rtl::Executor exec_a(program);
    randomize_globals(rng, program, &exec_b, &exec_a);

    std::vector<Value> args;
    for (const auto& p : before.params) args.push_back(random_value(rng, p.cls));

    bool threw_b = false;
    bool threw_a = false;
    Value rb = Value::of_i32(0);
    Value ra = Value::of_i32(0);
    try {
      rb = exec_b.call(before, args);
    } catch (const minic::EvalError&) {
      threw_b = true;
    }
    try {
      ra = exec_a.call(after, args);
    } catch (const minic::EvalError&) {
      threw_a = true;
    }
    if (threw_b != threw_a)
      return CheckResult::fail("trap behaviour diverged on test " +
                               std::to_string(t));
    if (threw_b) continue;

    if (!(rb == ra))
      return CheckResult::fail("result diverged on test " + std::to_string(t) +
                               ": " + describe(rb) + " vs " + describe(ra));
    for (const auto& g : program.globals) {
      for (std::size_t i = 0; i < g.count; ++i) {
        const Value vb = exec_b.read_global(g.name, i);
        const Value va = exec_a.read_global(g.name, i);
        if (!(vb == va))
          return CheckResult::fail("global " + g.name + "[" +
                                   std::to_string(i) + "] diverged on test " +
                                   std::to_string(t) + ": " + describe(vb) +
                                   " vs " + describe(va));
      }
    }
    // Annotation traces (pro-forma effects) must also be preserved.
    const auto& ann_b = exec_b.annotations();
    const auto& ann_a = exec_a.annotations();
    if (ann_b.size() != ann_a.size())
      return CheckResult::fail("annotation trace length diverged");
    for (std::size_t i = 0; i < ann_b.size(); ++i) {
      if (norm(ann_b[i].format) != norm(ann_a[i].format) ||
          ann_b[i].values.size() != ann_a[i].values.size())
        return CheckResult::fail("annotation trace diverged");
      for (std::size_t k = 0; k < ann_b[i].values.size(); ++k)
        if (!(ann_b[i].values[k] == ann_a[i].values[k]))
          return CheckResult::fail("annotation operand diverged");
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// 3. End-to-end machine cross-check
// ---------------------------------------------------------------------------

CheckResult cross_check_machine(const minic::Program& program,
                                const driver::Compiled& compiled,
                                const std::string& fn_name, int n_tests,
                                std::uint64_t seed) {
  const minic::Function* fn = program.find_function(fn_name);
  if (fn == nullptr) return CheckResult::fail("unknown function " + fn_name);
  const minic::Type ret_type =
      fn->has_return ? fn->return_type : minic::Type::I32;

  Rng rng(seed);
  minic::Interpreter interp(program);
  machine::Machine m(compiled.image);

  for (int t = 0; t < n_tests; ++t) {
    std::vector<Value> args;
    for (const auto& p : fn->params) {
      args.push_back(random_value(
          rng, p.type == minic::Type::I32 ? rtl::RegClass::I32
                                          : rtl::RegClass::F64));
    }
    bool threw_i = false;
    bool threw_m = false;
    Value ri = Value::of_i32(0);
    Value rm = Value::of_i32(0);
    try {
      ri = interp.call(fn_name, args);
    } catch (const minic::EvalError&) {
      threw_i = true;
    }
    try {
      rm = m.call(fn_name, args, ret_type);
    } catch (const machine::MachineError&) {
      threw_m = true;
    }
    if (threw_i != threw_m)
      return CheckResult::fail(fn_name + ": trap behaviour diverged");
    if (threw_i) {
      // State after a trap is unspecified; restart both sides.
      interp.reset_globals();
      m.reset();
      continue;
    }
    if (fn->has_return && !(ri == rm))
      return CheckResult::fail(fn_name + ": result diverged on call " +
                               std::to_string(t) + ": " + describe(ri) +
                               " vs " + describe(rm));
    for (const auto& g : program.globals) {
      for (std::size_t i = 0; i < g.count; ++i) {
        const Value vi = interp.read_global(g.name, i);
        const Value vm = m.read_global(g.name, i, g.type);
        if (!(vi == vm))
          return CheckResult::fail(fn_name + ": global " + g.name +
                                   " diverged on call " + std::to_string(t));
      }
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// Validated compilation
// ---------------------------------------------------------------------------

driver::Compiled validated_compile(const minic::Program& program,
                                   driver::Config config, int n_tests,
                                   std::uint64_t seed,
                                   driver::ValidateLevel level,
                                   driver::CompileOptions base) {
  if (level == driver::ValidateLevel::Off)
    return driver::compile_program(program, config, std::move(base));

  const bool full = level == driver::ValidateLevel::Full;
  const pass::StepHook user_hook = std::move(base.hook);
  base.hook = [&program, n_tests, seed, full,
               user_hook](const pass::StepTrace& t) -> int {
    int checks = user_hook ? user_hook(t) : 0;
    const std::string& fn_name = t.state->name();
    auto require = [&](const CheckResult& r) {
      if (!r.ok) throw ValidationError(t.pass, fn_name + ": " + r.message);
      ++checks;
    };

    if (t.level == pass::Level::Rtl) {
      if (t.pass == "lower") return checks;  // nothing to compare yet
      check(t.rtl_before != nullptr, "validator hook without RTL snapshot");
      const rtl::Function& before = *t.rtl_before;
      const rtl::Function& after = t.state->rtl;
      if (t.pass == "cse" || t.pass == "forward")
        require(check_structure_preserving(before, after));
      if (t.pass == "deadstore")
        require(check_dead_store_elimination(before, after));
      if (t.pass == "regalloc" && full)
        require(check_register_allocation(before, after, t.state->alloc,
                                          t.state->k_int, t.state->k_float));
      // SSA bracket (validate.hpp checkers 8-10). Every step inside the
      // bracket must leave well-formed SSA; the CFG-preserving rewrites are
      // accepted symbolically; unrolling must present a verified
      // annotation-rewrite certificate; out-of-SSA must eliminate all phis.
      const bool ssa_step = t.pass.rfind("ssa-", 0) == 0;
      if (ssa_step && t.pass != "ssa-out")
        require(check_ssa_wellformed(after));
      if (t.pass == "ssa-gvn" || t.pass == "ssa-licm")
        require(check_ssa_equivalence(before, after));
      if (t.pass == "ssa-unroll")
        require(check_unroll_certificate(before, after,
                                         t.state->unroll_cert));
      if (t.pass == "ssa-out")
        require(ssa::has_phis(after)
                    ? CheckResult::fail("phis survived out-of-SSA lowering")
                    : CheckResult::pass());
      // Every RTL-level rewrite — spill code included — is additionally
      // checked by bounded randomized execution. For ssa-unroll the
      // "loop <= N" formats are normalized (the bound rewrite itself is what
      // the certificate checker just verified); positions, counts and
      // operand values stay bit-exact.
      require(differential_check(program, before, after, n_tests, seed,
                                 /*normalize_loop_bounds=*/
                                 t.pass == "ssa-unroll"));
      return checks;
    }

    // Machine level. Emission itself is covered by the end-to-end machine
    // cross-check below; the per-step machine checkers run at Full only.
    if (!full || t.pass == "emit") return checks;
    check(t.machine_before != nullptr,
          "validator hook without machine snapshot");
    if (t.pass == "selfmove" || t.pass == "peephole")
      require(check_machine_equivalence(*t.machine_before, *t.state->target,
                                        t.state->machine));
    if (t.pass == "schedule")
      require(check_schedule(*t.machine_before, t.state->machine));
    return checks;
  };

  driver::Compiled compiled =
      driver::compile_program(program, config, std::move(base));

  for (const auto& fn : program.functions) {
    const CheckResult end_to_end =
        cross_check_machine(program, compiled, fn.name, n_tests, seed ^ 0x9E37);
    if (!end_to_end.ok) throw ValidationError("emission", end_to_end.message);
  }
  return compiled;
}

}  // namespace vc::validate
