// Machine-level translation validators: register allocation, machine-code
// equivalence (self-move removal / peephole fusion), and list scheduling.
// Each checker re-derives the safety argument independently of the pass it
// checks (its own liveness, its own symbolic execution, its own dependence
// edges from the shared resource model).
#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mach/liveness.hpp"
#include "mach/timing.hpp"
#include "rtl/analysis.hpp"
#include "support/bitset.hpp"
#include "validate/validate.hpp"

namespace vc::validate {

using mach::AsmFunction;
using mach::AsmOp;
using mach::IssueModel;
using mach::MInstr;
using mach::MOp;
using rtl::BlockId;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

// ---------------------------------------------------------------------------
// Register-allocation checker
// ---------------------------------------------------------------------------
//
// Two obligations (Rideau & Leroy's decomposition):
//   B. spill round-trip — `after` is `before` under the spill-everywhere
//      discipline: every use of a spilled value reloads from its slot into a
//      fresh temporary immediately before the use, every definition stores
//      back immediately after, and nothing else touches a spill slot;
//   A. coloring — on `after`, an independent liveness analysis proves that
//      no two simultaneously live same-class registers share a color (so at
//      every program point, each use reads the value last written to its
//      assigned register).

namespace {

/// Field-by-field RTL instruction equality (f64 immediates by bit pattern).
bool rtl_instr_equal(const Instr& x, const Instr& y) {
  std::uint64_t fx = 0, fy = 0;
  std::memcpy(&fx, &x.f64_imm, sizeof fx);
  std::memcpy(&fy, &y.f64_imm, sizeof fy);
  if (x.op != y.op || x.dst != y.dst || x.src1 != y.src1 ||
      x.src2 != y.src2 || x.int_imm != y.int_imm || fx != fy ||
      x.un_op != y.un_op || x.bin_op != y.bin_op || x.sym != y.sym ||
      x.elem != y.elem || x.slot != y.slot ||
      x.param_index != y.param_index || x.target != y.target ||
      x.target2 != y.target2 || x.annot_format != y.annot_format ||
      x.annot_args.size() != y.annot_args.size())
    return false;
  for (std::size_t k = 0; k < x.annot_args.size(); ++k) {
    const auto& ax = x.annot_args[k];
    const auto& ay = y.annot_args[k];
    if (ax.is_slot != ay.is_slot || ax.vreg != ay.vreg || ax.slot != ay.slot)
      return false;
  }
  return true;
}

std::string at(BlockId b, std::size_t i) {
  return "bb" + std::to_string(b) + " instr " + std::to_string(i);
}

}  // namespace

CheckResult check_register_allocation(const rtl::Function& before,
                                      const rtl::Function& after,
                                      const regalloc::Allocation& alloc,
                                      int k_int, int k_float) {
  if (before.blocks.size() != after.blocks.size())
    return CheckResult::fail("block count changed");
  if (alloc.locs.size() != after.vregs.size())
    return CheckResult::fail("allocation does not cover every vreg");
  if (after.slots.size() < before.slots.size())
    return CheckResult::fail("stack slots disappeared");

  // Which original vregs occur in `before` (a vreg can exist but be unused).
  std::vector<bool> occurs(before.vregs.size(), false);
  for (const auto& bb : before.blocks)
    for (const Instr& ins : bb.instrs) {
      if (auto d = ins.def()) occurs[*d] = true;
      for (VReg u : ins.uses()) occurs[u] = true;
    }

  // Spilled vregs: occur in `before` but were not given a register. Each must
  // own a distinct fresh slot of its class.
  std::map<rtl::Slot, VReg> slot_owner;
  int spilled = 0;
  for (VReg v = 0; v < before.vregs.size(); ++v) {
    if (!occurs[v] || alloc.locs[v].in_reg) continue;
    const rtl::Slot slot = alloc.locs[v].slot;
    if (slot < before.slots.size() || slot >= after.slots.size())
      return CheckResult::fail("spilled vreg " + std::to_string(v) +
                               " mapped to a non-fresh slot");
    if (after.slots[slot] != before.vregs[v])
      return CheckResult::fail("spill slot class mismatch for vreg " +
                               std::to_string(v));
    if (!slot_owner.emplace(slot, v).second)
      return CheckResult::fail("two spilled vregs share slot " +
                               std::to_string(slot));
    ++spilled;
  }
  if (spilled != alloc.spill_count)
    return CheckResult::fail("spill count disagrees with allocation");
  if (after.slots.size() != before.slots.size() + slot_owner.size())
    return CheckResult::fail("unaccounted fresh stack slots");

  // Obligation B: per-block cursor walk reconstructing `before` from `after`
  // by undoing the reload/store discipline. Temporaries (vreg ids beyond the
  // original universe) are bound by the reload immediately preceding their
  // single use and forgotten right after it.
  const VReg first_tmp = static_cast<VReg>(before.vregs.size());
  for (BlockId b = 0; b < before.blocks.size(); ++b) {
    const auto& ib = before.blocks[b].instrs;
    const auto& ia = after.blocks[b].instrs;
    std::size_t j = 0;
    std::map<VReg, VReg> bound;  // temporary -> spilled vreg it reloads

    for (std::size_t i = 0; i < ib.size(); ++i) {
      const Instr& x = ib[i];

      // Reloads directly preceding the use they feed.
      while (j < ia.size() && ia[j].op == Opcode::LoadStack &&
             ia[j].slot >= before.slots.size()) {
        auto owner = slot_owner.find(ia[j].slot);
        if (owner == slot_owner.end())
          return CheckResult::fail(at(b, i) + ": reload from unknown slot " +
                                   std::to_string(ia[j].slot));
        if (ia[j].dst < first_tmp)
          return CheckResult::fail(at(b, i) +
                                   ": reload into a non-temporary register");
        bound[ia[j].dst] = owner->second;
        ++j;
      }
      if (j >= ia.size())
        return CheckResult::fail(at(b, i) + ": instruction missing");

      Instr y = ia[j++];
      auto translate_use = [&](VReg& r) {
        if (r == rtl::kNoVReg || r < first_tmp) return true;
        auto it = bound.find(r);
        if (it == bound.end()) return false;
        r = it->second;
        return true;
      };
      if (!translate_use(y.src1) || !translate_use(y.src2))
        return CheckResult::fail(at(b, i) + ": use of an unbound temporary");
      for (auto& a : y.annot_args) {
        if (a.is_slot && a.slot >= before.slots.size()) {
          auto owner = slot_owner.find(a.slot);
          if (owner == slot_owner.end())
            return CheckResult::fail(at(b, i) + ": annot names unknown slot");
          // A spilled annotation operand references the value's home slot.
          a = rtl::AnnotOperand::of_vreg(owner->second);
        } else if (!a.is_slot && a.vreg >= first_tmp) {
          return CheckResult::fail(at(b, i) + ": annot names a temporary");
        }
      }

      // A definition into a temporary must store back to its owner's slot
      // immediately.
      if (auto d = y.def(); d && *d >= first_tmp) {
        if (j >= ia.size() || ia[j].op != Opcode::StoreStack ||
            ia[j].src1 != *d || ia[j].slot < before.slots.size())
          return CheckResult::fail(at(b, i) +
                                   ": temporary definition without store-back");
        auto owner = slot_owner.find(ia[j].slot);
        if (owner == slot_owner.end())
          return CheckResult::fail(at(b, i) + ": store-back to unknown slot");
        y.dst = owner->second;
        ++j;
      }

      if (!rtl_instr_equal(x, y))
        return CheckResult::fail(at(b, i) +
                                 ": instruction altered beyond spilling");
      bound.clear();  // reload temporaries are single-use
    }
    if (j != ia.size())
      return CheckResult::fail("bb" + std::to_string(b) +
                               ": trailing added instructions");
  }

  // Obligation A: coloring validity on `after` under independent liveness.
  std::vector<bool> present(after.vregs.size(), false);
  for (const auto& bb : after.blocks)
    for (const Instr& ins : bb.instrs) {
      if (auto d = ins.def()) present[*d] = true;
      for (VReg u : ins.uses()) present[u] = true;
    }
  for (VReg v = 0; v < after.vregs.size(); ++v) {
    if (!present[v]) continue;
    const regalloc::Loc& loc = alloc.locs[v];
    if (!loc.in_reg)
      return CheckResult::fail("vreg " + std::to_string(v) +
                               " still present but not in a register");
    const int k = after.vregs[v] == rtl::RegClass::I32 ? k_int : k_float;
    if (loc.color < 0 || loc.color >= k)
      return CheckResult::fail("vreg " + std::to_string(v) +
                               " colored out of range");
  }

  thread_local rtl::Liveness lv;
  rtl::compute_liveness(after, this_thread_workspace(), &lv);
  DenseBitset live(after.vregs.size());
  for (BlockId b = 0; b < after.blocks.size(); ++b) {
    live = lv.live_out[b];
    const auto& instrs = after.blocks[b].instrs;
    for (std::size_t i = instrs.size(); i-- > 0;) {
      const Instr& ins = instrs[i];
      if (auto d = ins.def()) {
        CheckResult conflict = CheckResult::pass();
        live.for_each([&](std::size_t l) {
          const VReg w = static_cast<VReg>(l);
          if (w == *d || after.vregs[w] != after.vregs[*d]) return;
          // A move's destination may share its source's color: at this
          // definition both hold the same value.
          if (ins.op == Opcode::Mov && w == ins.src1) return;
          if (conflict.ok && alloc.locs[w].color == alloc.locs[*d].color)
            conflict = CheckResult::fail(
                at(b, i) + ": vregs " + std::to_string(*d) + " and " +
                std::to_string(w) + " live together share color " +
                std::to_string(alloc.locs[*d].color));
        });
        if (!conflict.ok) return conflict;
        live.reset(*d);
      }
      for (VReg u : ins.uses()) live.set(u);
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// Machine-equivalence checker (self-move removal, peephole fusion)
// ---------------------------------------------------------------------------
//
// Both functions are cut at their markers (labels and annotation anchors,
// which these rewrites preserve in content and order); corresponding
// segments are then symbolically executed over the 73 machine resources.
// Fused forms normalize to the expressions of their unfused equivalents
// (fmadd = fadd(fmul(a,b),c); cmpwi/addi fold their immediate exactly like a
// preceding li would). Memory accesses and control transfers become ordered
// event lists that must match; register state is compared at every branch
// and at segment exit, restricted to the registers an independent machine
// liveness analysis (on the before function) proves may still be read.

namespace {

struct SymEnv {
  std::array<std::string, IssueModel::kNumResources> val;

  explicit SymEnv(std::size_t segment) {
    for (std::size_t r = 0; r < val.size(); ++r)
      val[r] = "init" + std::to_string(segment) + ":" + std::to_string(r);
  }
  std::string& gpr(int r) { return val[static_cast<std::size_t>(r)]; }
  std::string& fpr(int r) { return val[static_cast<std::size_t>(32 + r)]; }
  std::string& crf(int f) {
    return val[static_cast<std::size_t>(IssueModel::kCrBase + f)];
  }
};

/// A memory access or control transfer, in program order within a segment.
/// Branch events snapshot the full environment; the comparison restricts it
/// to the live-after set of the *before* side's branch.
struct MEvent {
  std::string tag;          // kind + operand expressions
  bool is_branch = false;
  std::size_t pos = 0;      // op index (before side: liveness anchor)
  std::array<std::string, IssueModel::kNumResources> env;
};

std::string sort2(const char* op, std::string a, std::string b) {
  if (b < a) std::swap(a, b);
  return std::string(op) + "(" + a + "," + b + ")";
}

std::string bin2(const char* op, const std::string& a, const std::string& b) {
  return std::string(op) + "(" + a + "," + b + ")";
}

/// The symbolic value of an instruction's immediate, folding in any pending
/// relocation so that `li rT,sym@x; op ..,rT` and a relocated immediate form
/// denote the same constant.
std::string imm_token(const AsmOp& op) {
  if (!op.reloc_sym.empty())
    return "rel" + std::to_string(static_cast<int>(op.reloc_kind)) + ":" +
           op.reloc_sym + "+" + std::to_string(op.reloc_addend);
  return "c" + std::to_string(op.ins.imm);
}

/// Executes one op over `env`, appending memory/branch events. `n_loads`
/// numbers loads within the segment: the j-th load of either side binds the
/// same fresh symbol (their addresses are forced equal by event comparison).
void sym_step(const AsmOp& op, std::size_t pos, std::size_t segment,
              SymEnv& env, std::vector<MEvent>& events, int& n_loads) {
  const MInstr& m = op.ins;
  auto mem_addr_d = [&] { return sort2("add", env.gpr(m.ra), imm_token(op)); };
  auto mem_addr_x = [&] {
    return sort2("add", env.gpr(m.ra), env.gpr(m.rb));
  };
  auto load = [&](const std::string& width, const std::string& addr) {
    events.push_back({width + "[" + addr + "]", false, pos, {}});
    return "mem" + std::to_string(segment) + ":" + std::to_string(n_loads++);
  };
  auto store = [&](const std::string& width, const std::string& addr,
                   const std::string& value) {
    events.push_back({width + "[" + addr + "]=" + value, false, pos, {}});
  };
  auto branch = [&](const std::string& tag) {
    MEvent e;
    e.tag = tag;
    e.is_branch = true;
    e.pos = pos;
    e.env = env.val;
    events.push_back(std::move(e));
  };

  switch (m.op) {
    case MOp::Li:
      env.gpr(m.rd) = imm_token(op);
      break;
    case MOp::Lis:
      env.gpr(m.rd) = "lis(" + imm_token(op) + ")";
      break;
    case MOp::Ori:
      env.gpr(m.rd) = sort2("or", env.gpr(m.ra), imm_token(op));
      break;
    case MOp::Xori:
      env.gpr(m.rd) = sort2("xor", env.gpr(m.ra), imm_token(op));
      break;
    case MOp::Addi:
      env.gpr(m.rd) = sort2("add", env.gpr(m.ra), imm_token(op));
      break;
    case MOp::Mr:
      env.gpr(m.rd) = env.gpr(m.ra);
      break;
    case MOp::Add:
      env.gpr(m.rd) = sort2("add", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Subf:  // rd <- rb - ra
      env.gpr(m.rd) = bin2("sub", env.gpr(m.rb), env.gpr(m.ra));
      break;
    case MOp::Mullw:
      env.gpr(m.rd) = sort2("mul", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Divw:
      env.gpr(m.rd) = bin2("div", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::And:
      env.gpr(m.rd) = sort2("and", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Or:
      env.gpr(m.rd) = sort2("or", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Xor:
      env.gpr(m.rd) = sort2("xor", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Nor:
      env.gpr(m.rd) = sort2("nor", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Neg:
      env.gpr(m.rd) = "neg(" + env.gpr(m.ra) + ")";
      break;
    case MOp::Slw:
      env.gpr(m.rd) = bin2("slw", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Sraw:
      env.gpr(m.rd) = bin2("sraw", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Srw:
      env.gpr(m.rd) = bin2("srw", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Rlwinm:
      env.gpr(m.rd) = "rlwinm(" + env.gpr(m.ra) + "," +
                      std::to_string(m.sh) + "," + std::to_string(m.mb) +
                      "," + std::to_string(m.me) + ")";
      break;
    case MOp::Cmpw:
      env.crf(m.crf) = bin2("cmp", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Cmpwi:  // the folded form of li rT,imm; cmpw crf,ra,rT
      env.crf(m.crf) = bin2("cmp", env.gpr(m.ra), imm_token(op));
      break;
    case MOp::Fcmpu:
      env.crf(m.crf) = bin2("fcmp", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Cror: {
      // Writes one bit of the destination field; the rest carries over.
      const std::string orval =
          "bit(" + env.crf(m.crba / 4) + "," + std::to_string(m.crba % 4) +
          ")|bit(" + env.crf(m.crbb / 4) + "," + std::to_string(m.crbb % 4) +
          ")";
      env.crf(m.crbd / 4) = "crins(" + env.crf(m.crbd / 4) + "," +
                            std::to_string(m.crbd % 4) + "," + orval + ")";
      break;
    }
    case MOp::Mfcr: {
      std::string v = "mfcr(";
      for (int f = 0; f < 8; ++f) v += env.crf(f) + (f == 7 ? ")" : ",");
      env.gpr(m.rd) = v;
      break;
    }
    case MOp::Fadd:
      env.fpr(m.rd) = sort2("fadd", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Fsub:
      env.fpr(m.rd) = bin2("fsub", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Fmul:
      env.fpr(m.rd) = sort2("fmul", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Fdiv:
      env.fpr(m.rd) = bin2("fdiv", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Fmadd:  // fd <- fa*fb + fc: the fused fmul;fadd pair
      env.fpr(m.rd) = sort2(
          "fadd", sort2("fmul", env.fpr(m.ra), env.fpr(m.rb)), env.fpr(m.rc));
      break;
    case MOp::Fmsub:  // fd <- fa*fb - fc
      env.fpr(m.rd) = bin2(
          "fsub", sort2("fmul", env.fpr(m.ra), env.fpr(m.rb)), env.fpr(m.rc));
      break;
    case MOp::Fneg:
      env.fpr(m.rd) = "fneg(" + env.fpr(m.ra) + ")";
      break;
    case MOp::Fabs:
      env.fpr(m.rd) = "fabs(" + env.fpr(m.ra) + ")";
      break;
    case MOp::Fmr:
      env.fpr(m.rd) = env.fpr(m.ra);
      break;
    case MOp::Fcti:
      env.gpr(m.rd) = "fcti(" + env.fpr(m.ra) + ")";
      break;
    case MOp::Icvf:
      env.fpr(m.rd) = "icvf(" + env.gpr(m.ra) + ")";
      break;
    case MOp::Lwz:
      env.gpr(m.rd) = load("l4", mem_addr_d());
      break;
    case MOp::Lwzx:
      env.gpr(m.rd) = load("l4", mem_addr_x());
      break;
    case MOp::Lfd:
      env.fpr(m.rd) = load("l8", mem_addr_d());
      break;
    case MOp::Lfdx:
      env.fpr(m.rd) = load("l8", mem_addr_x());
      break;
    case MOp::Stw:
      store("s4", mem_addr_d(), env.gpr(m.rd));
      break;
    case MOp::Stwx:
      store("s4", mem_addr_x(), env.gpr(m.rd));
      break;
    case MOp::Stfd:
      store("s8", mem_addr_d(), env.fpr(m.rd));
      break;
    case MOp::Stfdx:
      store("s8", mem_addr_x(), env.fpr(m.rd));
      break;
    case MOp::B:
      branch("b->" + std::to_string(op.target_label));
      break;
    case MOp::Bc:
      branch("bc->" + std::to_string(op.target_label) + ":" +
             std::to_string(m.crbit) + "=" + (m.expect ? "1" : "0") + ":" +
             env.crf(m.crbit / 4));
      break;
    case MOp::Blr:
      branch("blr");
      break;
    case MOp::Nop:
      break;
    case MOp::Lui:
      env.gpr(m.rd) = "lui(" + imm_token(op) + ")";
      break;
    case MOp::Sll:
      env.gpr(m.rd) = bin2("sll", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Srl:
      env.gpr(m.rd) = bin2("srl", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Sra:
      env.gpr(m.rd) = bin2("sra", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Slli:
      env.gpr(m.rd) = bin2("sll", env.gpr(m.ra), imm_token(op));
      break;
    case MOp::Slt:
      env.gpr(m.rd) = bin2("slt", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Sltu:
      env.gpr(m.rd) = bin2("sltu", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Sltiu:
      env.gpr(m.rd) = bin2("sltu", env.gpr(m.ra), imm_token(op));
      break;
    case MOp::Rem:
      env.gpr(m.rd) = bin2("rem", env.gpr(m.ra), env.gpr(m.rb));
      break;
    case MOp::Feq:
      env.gpr(m.rd) = sort2("feq", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Flt:
      env.gpr(m.rd) = bin2("flt", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Fle:
      env.gpr(m.rd) = bin2("fle", env.fpr(m.ra), env.fpr(m.rb));
      break;
    case MOp::Beq:
    case MOp::Bne:
    case MOp::Blt:
    case MOp::Bge:
      // Compare-and-branch: the tag carries the tested operand expressions,
      // so both the condition and the target must agree.
      branch(std::string(mach::mnemonic(m.op)) + "->" +
             std::to_string(op.target_label) + ":" + env.gpr(m.ra) + "," +
             env.gpr(m.rb));
      break;
  }
}

/// Marker: a label or an annotation anchor. Identity ignores the op index
/// (the rewrite moves anchors); same-position markers sort by identity so
/// both sides enumerate them in the same order.
struct Marker {
  std::size_t pos = 0;
  std::string id;
};

std::vector<Marker> markers_of(const AsmFunction& fn) {
  std::vector<Marker> ms;
  for (const auto& [label, lpos] : fn.labels)
    ms.push_back({lpos, "L" + std::to_string(label)});
  for (const auto& a : fn.annots) {
    std::string id = "A" + a.format;
    for (const auto& operand : a.operands) id += "|" + operand.to_string();
    ms.push_back({a.addr, id});
  }
  std::sort(ms.begin(), ms.end(), [](const Marker& x, const Marker& y) {
    return x.pos != y.pos ? x.pos < y.pos : x.id < y.id;
  });
  return ms;
}

}  // namespace

CheckResult check_machine_equivalence(const AsmFunction& before,
                                      const mach::TargetDesc& desc,
                                      const AsmFunction& after) {
  if (before.name != after.name) return CheckResult::fail("name changed");
  if (before.frame_bytes != after.frame_bytes)
    return CheckResult::fail("frame size changed");

  const std::vector<Marker> mb = markers_of(before);
  const std::vector<Marker> ma = markers_of(after);
  if (mb.size() != ma.size())
    return CheckResult::fail("label/annotation markers changed");
  // The rewrites this checker admits only delete or replace instructions,
  // so marker addresses shift monotonically: distinct addresses can merge
  // but never reorder. A merged run sorts by id, which need not match the
  // original distinct-address order, so compare ids as a multiset over
  // each equal-address run of the after list (its members occupy the same
  // index range in both sorted lists).
  for (std::size_t s = 0; s < ma.size();) {
    std::size_t e = s + 1;
    while (e < ma.size() && ma[e].pos == ma[s].pos) ++e;
    std::vector<std::string> ids_b, ids_a;
    for (std::size_t k = s; k < e; ++k) {
      ids_b.push_back(mb[k].id);
      ids_a.push_back(ma[k].id);
    }
    std::sort(ids_b.begin(), ids_b.end());
    std::sort(ids_a.begin(), ids_a.end());
    if (ids_b != ids_a)
      return CheckResult::fail("marker run at op " +
                               std::to_string(ma[s].pos) +
                               " changed identity");
    s = e;
  }

  const mach::MachineLiveness live_before(before, desc);

  // Segment boundaries: start, each marker position, end.
  auto bounds = [](const std::vector<Marker>& ms, std::size_t n) {
    std::vector<std::size_t> b{0};
    for (const Marker& m : ms) b.push_back(m.pos);
    b.push_back(n);
    return b;
  };
  const std::vector<std::size_t> bb = bounds(mb, before.ops.size());
  const std::vector<std::size_t> ba = bounds(ma, after.ops.size());

  for (std::size_t seg = 0; seg + 1 < bb.size(); ++seg) {
    const std::size_t b0 = bb[seg], b1 = bb[seg + 1];
    const std::size_t a0 = ba[seg], a1 = ba[seg + 1];
    if (b0 > b1 || a0 > a1)
      return CheckResult::fail("markers out of order");
    if (b0 == b1 && a0 == a1) continue;
    const std::string where = "segment " + std::to_string(seg);
    if (b0 == b1)
      return CheckResult::fail(where + ": instructions added from nothing");

    SymEnv env_b(seg);
    SymEnv env_a(seg);
    std::vector<MEvent> ev_b, ev_a;
    int loads_b = 0, loads_a = 0;
    for (std::size_t i = b0; i < b1; ++i)
      sym_step(before.ops[i], i, seg, env_b, ev_b, loads_b);
    for (std::size_t i = a0; i < a1; ++i)
      sym_step(after.ops[i], i, seg, env_a, ev_a, loads_a);

    if (ev_b.size() != ev_a.size())
      return CheckResult::fail(where + ": memory/branch event count differs");
    for (std::size_t k = 0; k < ev_b.size(); ++k) {
      if (ev_b[k].tag != ev_a[k].tag)
        return CheckResult::fail(where + ": event " + std::to_string(k) +
                                 " differs: " + ev_b[k].tag + " vs " +
                                 ev_a[k].tag);
      if (!ev_b[k].is_branch) continue;
      // Every register that may still be read after the branch must agree.
      const auto& live = live_before.live_after_set(ev_b[k].pos);
      for (std::size_t r = 0; r < IssueModel::kNumResources; ++r)
        if (live.test(r) && ev_b[k].env[r] != ev_a[k].env[r])
          return CheckResult::fail(where + ": resource " + std::to_string(r) +
                                   " differs at branch event " +
                                   std::to_string(k));
    }

    // Fallthrough exit: registers live after the segment's last before-op.
    const auto& live = live_before.live_after_set(b1 - 1);
    for (std::size_t r = 0; r < IssueModel::kNumResources; ++r)
      if (live.test(r) && env_b.val[r] != env_a.val[r])
        return CheckResult::fail(where + ": live-out resource " +
                                 std::to_string(r) + " differs at exit");
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// Schedule checker
// ---------------------------------------------------------------------------

namespace {

bool asm_op_equal(const AsmOp& a, const AsmOp& b) {
  return a.ins == b.ins && a.target_label == b.target_label &&
         a.reloc_sym == b.reloc_sym && a.reloc_addend == b.reloc_addend &&
         a.reloc_kind == b.reloc_kind;
}

/// Validates one region: `after[begin..end)` must be a permutation of
/// `before[begin..end)` in which every dependence edge of the before region
/// (register/CR RAW/WAR/WAW via the shared resource model; memory ordered
/// except load-load) keeps its direction.
CheckResult check_region(const AsmFunction& before, const AsmFunction& after,
                         std::size_t begin, std::size_t end) {
  const std::size_t n = end - begin;
  const std::string where = "region [" + std::to_string(begin) + "," +
                            std::to_string(end) + ")";

  // Match after-ops to before-ops greedily (earliest unmatched equal op;
  // identical ops are interchangeable, so the choice cannot invalidate a
  // genuinely dependence-respecting schedule).
  std::vector<std::size_t> pos_after(n, n);  // before index -> after position
  std::vector<bool> taken(n, false);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t found = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      if (asm_op_equal(after.ops[begin + k], before.ops[begin + i])) {
        found = i;
        break;
      }
    }
    if (found == n)
      return CheckResult::fail(where + ": op at " + std::to_string(begin + k) +
                               " is not a permutation of the original");
    taken[found] = true;
    pos_after[found] = k;
  }

  int reads[IssueModel::kMaxResourcesPerInstr];
  int writes[IssueModel::kMaxResourcesPerInstr];
  int n_reads = 0, n_writes = 0;
  std::vector<std::vector<int>> rd(n), wr(n);
  std::vector<bool> is_mem(n), is_load(n);
  for (std::size_t i = 0; i < n; ++i) {
    const MInstr& m = before.ops[begin + i].ins;
    IssueModel::resources(m, reads, &n_reads, writes, &n_writes);
    rd[i].assign(reads, reads + n_reads);
    wr[i].assign(writes, writes + n_writes);
    is_mem[i] = mach::is_memory_op(m.op);
    is_load[i] = m.op == MOp::Lwz || m.op == MOp::Lwzx || m.op == MOp::Lfd ||
                 m.op == MOp::Lfdx;
  }
  auto intersects = [](const std::vector<int>& a, const std::vector<int>& b) {
    for (int x : a)
      for (int y : b)
        if (x == y) return true;
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool raw = intersects(wr[i], rd[j]);
      const bool war = intersects(rd[i], wr[j]);
      const bool waw = intersects(wr[i], wr[j]);
      const bool mem = is_mem[i] && is_mem[j] && !(is_load[i] && is_load[j]);
      if ((raw || war || waw || mem) && pos_after[i] >= pos_after[j])
        return CheckResult::fail(
            where + ": dependence " + std::to_string(begin + i) + " -> " +
            std::to_string(begin + j) + " inverted by the schedule");
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_schedule(const AsmFunction& before,
                           const AsmFunction& after) {
  if (before.name != after.name) return CheckResult::fail("name changed");
  if (before.frame_bytes != after.frame_bytes)
    return CheckResult::fail("frame size changed");
  if (before.ops.size() != after.ops.size())
    return CheckResult::fail("op count changed");
  if (before.labels != after.labels)
    return CheckResult::fail("labels changed");
  if (before.annots.size() != after.annots.size())
    return CheckResult::fail("annotations changed");
  for (std::size_t k = 0; k < before.annots.size(); ++k) {
    const auto& x = before.annots[k];
    const auto& y = after.annots[k];
    bool same = x.addr == y.addr && x.format == y.format &&
                x.operands.size() == y.operands.size();
    for (std::size_t o = 0; same && o < x.operands.size(); ++o) {
      const auto& ox = x.operands[o];
      const auto& oy = y.operands[o];
      same = ox.kind == oy.kind && ox.index == oy.index &&
             ox.offset == oy.offset && ox.is_f64 == oy.is_f64;
    }
    if (!same) return CheckResult::fail("annotations changed");
  }

  // Region boundaries, exactly the scheduler's rule: function start/end,
  // labels, annotation anchors, and both sides of every branch.
  std::vector<bool> boundary(before.ops.size() + 1, false);
  boundary[0] = true;
  boundary[before.ops.size()] = true;
  for (const auto& [label, lpos] : before.labels) boundary[lpos] = true;
  for (const auto& a : before.annots) boundary[a.addr] = true;
  for (std::size_t i = 0; i < before.ops.size(); ++i) {
    if (mach::is_branch(before.ops[i].ins.op) ||
        before.ops[i].target_label >= 0) {
      boundary[i] = true;
      boundary[i + 1] = true;
    }
  }

  std::size_t begin = 0;
  for (std::size_t i = 1; i <= before.ops.size(); ++i) {
    if (!boundary[i]) continue;
    const CheckResult region = check_region(before, after, begin, i);
    if (!region.ok) return region;
    begin = i;
  }
  return CheckResult::pass();
}

}  // namespace vc::validate
