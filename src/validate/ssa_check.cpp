// Validators for the SSA mid-end (src/ssa). Three checkers in the same
// a-posteriori style as the rest of src/validate (paper §3.2: the passes are
// untrusted; a small checker accepts or rejects each step):
//
//  * `check_ssa_wellformed` — structural SSA sanity after every in-bracket
//    step: at most one definition per vreg, every use dominated by its
//    definition (phi args dominated at their predecessor), phis only in the
//    leading run of a non-entry block, phi predecessor sets exactly matching
//    the CFG, classes consistent, all blocks reachable.
//
//  * `check_ssa_equivalence` — a phi-aware symbolic value-graph comparison
//    for CFG- and name-preserving SSA rewrites (GVN, LICM). Anchored events
//    (memory accesses, annotations, terminators, trapping divisions) must
//    appear in identical per-block order with symbolically equivalent
//    operands; phis are compared as a bisimulation (each phi is an opaque
//    node, corresponding phis must merge equivalent arguments edge-wise).
//    Together with well-formedness of the after function this accepts
//    exactly the sound subset: pure computations may move or collapse to
//    copies, but nothing observable may change.
//
//  * `check_unroll_certificate` — verifies the annotation-rewrite
//    certificate of ssa-unroll before the IPET engine or the runtime monitor
//    ever see the rewritten bounds: residual = ceil(n/k) with k | n, every
//    anchor resolves to an Annot with the claimed format, k after-anchors
//    per before-anchor, and per-format annotation counts are conserved
//    (nothing outside the certificate changed).
#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rtl/analysis.hpp"
#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"
#include "validate/validate.hpp"

namespace vc::validate {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::kNoBlock;
using rtl::kNoVReg;
using rtl::Opcode;
using rtl::VReg;

namespace {

std::vector<BlockId> sorted_unique_preds(
    const std::vector<std::vector<BlockId>>& preds, BlockId b) {
  std::vector<BlockId> p = preds[b];
  std::sort(p.begin(), p.end());
  p.erase(std::unique(p.begin(), p.end()), p.end());
  return p;
}

std::string at(BlockId b, std::size_t i) {
  return "bb" + std::to_string(b) + "[" + std::to_string(i) + "]";
}

}  // namespace

CheckResult check_ssa_wellformed(const Function& fn) {
  if (fn.blocks.empty()) return CheckResult::fail("function has no blocks");

  // Reachability: the SSA bracket never produces dead blocks, and dominance
  // queries below are only meaningful on reachable code.
  const auto rpo = rtl::reverse_postorder(fn);
  std::vector<char> reachable(fn.blocks.size(), 0);
  for (BlockId b : rpo) reachable[b] = 1;
  for (BlockId b = 0; b < fn.blocks.size(); ++b)
    if (!reachable[b])
      return CheckResult::fail("unreachable block bb" + std::to_string(b));

  // Single definition per vreg.
  std::vector<ssa::detail::DefSite> sites(fn.vregs.size());
  for (BlockId b = 0; b < fn.blocks.size(); ++b)
    for (std::uint32_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
      const auto d = fn.blocks[b].instrs[i].def();
      if (!d) continue;
      if (*d >= fn.vregs.size())
        return CheckResult::fail("definition of out-of-range vreg at " +
                                 at(b, i));
      if (sites[*d].block != kNoBlock)
        return CheckResult::fail("vreg v" + std::to_string(*d) +
                                 " defined more than once (" +
                                 at(sites[*d].block, sites[*d].index) +
                                 " and " + at(b, i) + ")");
      sites[*d] = {b, i};
    }

  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);

  // A use at (b, i) of vreg u is dominated by its definition. For phi args
  // the use point is the *end of the predecessor* edge instead.
  const auto dominated_use = [&](VReg u, BlockId b, std::size_t i,
                                 bool phi_arg, BlockId pred) -> std::string {
    if (u >= fn.vregs.size()) return "out-of-range vreg";
    const auto& d = sites[u];
    if (d.block == kNoBlock)
      return "use of undefined vreg v" + std::to_string(u);
    if (phi_arg) {
      if (!rtl::dominates(idom, d.block, pred))
        return "phi argument v" + std::to_string(u) +
               " not dominated by its definition at predecessor bb" +
               std::to_string(pred);
      return {};
    }
    if (d.block == b) {
      if (d.index >= i)
        return "use of v" + std::to_string(u) + " before its definition";
      return {};
    }
    if (!rtl::dominates(idom, d.block, b))
      return "use of v" + std::to_string(u) +
             " not dominated by its definition";
    return {};
  };

  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    const auto& instrs = fn.blocks[b].instrs;
    bool seen_nonphi = false;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& ins = instrs[i];
      if (ins.op == Opcode::Phi) {
        if (b == 0)
          return CheckResult::fail("phi in the entry block at " + at(b, i));
        if (seen_nonphi)
          return CheckResult::fail("phi after non-phi at " + at(b, i));
        if (ins.phi_args.empty())
          return CheckResult::fail("empty phi at " + at(b, i));
        // Predecessor set of the args == CFG predecessors, exactly.
        std::vector<BlockId> arg_preds;
        for (const rtl::PhiArg& a : ins.phi_args) arg_preds.push_back(a.pred);
        for (std::size_t k = 1; k < arg_preds.size(); ++k)
          if (arg_preds[k - 1] >= arg_preds[k])
            return CheckResult::fail("phi args not strictly sorted at " +
                                     at(b, i));
        if (arg_preds != sorted_unique_preds(preds, b))
          return CheckResult::fail(
              "phi predecessor set does not match the CFG at " + at(b, i));
        for (const rtl::PhiArg& a : ins.phi_args) {
          if (a.src >= fn.vregs.size() ||
              fn.vregs[a.src] != fn.vregs[ins.dst])
            return CheckResult::fail("phi argument class mismatch at " +
                                     at(b, i));
          const std::string err = dominated_use(a.src, b, i, true, a.pred);
          if (!err.empty()) return CheckResult::fail(err + " at " + at(b, i));
        }
      } else {
        seen_nonphi = true;
        for (VReg u : ins.uses()) {
          const std::string err = dominated_use(u, b, i, false, 0);
          if (!err.empty()) return CheckResult::fail(err + " at " + at(b, i));
        }
      }
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// Phi-aware value-graph equivalence (ssa-gvn, ssa-licm)
// ---------------------------------------------------------------------------

namespace {

/// Anchored instructions are the observable / ordering-sensitive events: the
/// rewrites this checker accepts may move or collapse pure computations but
/// must keep these in identical per-block positions.
bool is_anchored(const Instr& ins) {
  switch (ins.op) {
    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal:
    case Opcode::LoadGlobalIdx:
    case Opcode::StoreGlobalIdx:
    case Opcode::LoadStack:
    case Opcode::StoreStack:
    case Opcode::Annot:
    case Opcode::Jump:
    case Opcode::Branch:
    case Opcode::BranchCmp:
    case Opcode::Ret:
      return true;
    case Opcode::Bin:
      // Division traps on zero: an event, not a value.
      return ins.bin_op == minic::BinOp::IDiv ||
             ins.bin_op == minic::BinOp::IRem;
    default:
      return false;
  }
}

bool commutative_int(minic::BinOp op) {
  switch (op) {
    case minic::BinOp::IAdd:
    case minic::BinOp::IMul:
    case minic::BinOp::IAnd:
    case minic::BinOp::IOr:
    case minic::BinOp::IXor:
    case minic::BinOp::ICmpEq:
    case minic::BinOp::ICmpNe:
      return true;
    default:
      return false;
  }
}

/// Symbolic expression strings per vreg. Phis and anchored definitions
/// (loads, divisions) are opaque atoms assigned by structural position, so
/// two functions produce comparable strings.
struct ExprCtx {
  const Function* fn = nullptr;
  std::vector<ssa::detail::DefSite> sites;
  std::vector<std::string> atom;  // non-empty: treat as leaf
  std::vector<std::string> memo;
  std::vector<char> state;  // 0 = new, 1 = in progress, 2 = done

  explicit ExprCtx(const Function& f)
      : fn(&f),
        sites(ssa::detail::def_sites(f)),
        atom(f.vregs.size()),
        memo(f.vregs.size()),
        state(f.vregs.size(), 0) {}
};

std::string expr_of(ExprCtx& cx, VReg v) {
  if (v >= cx.fn->vregs.size()) return "bad:" + std::to_string(v);
  if (!cx.atom[v].empty()) return cx.atom[v];
  if (cx.state[v] == 2) return cx.memo[v];
  if (cx.state[v] == 1) return "cycle:" + std::to_string(v);  // ill-formed
  cx.state[v] = 1;
  const Instr* d = ssa::detail::def_instr(*cx.fn, cx.sites, v);
  std::string e;
  if (d == nullptr) {
    // Undefined vregs read the zero of their class (executor semantics).
    e = "undef:" + rtl::to_string(cx.fn->vregs[v]);
  } else {
    switch (d->op) {
      case Opcode::LdI:
        e = "ldi:" + std::to_string(d->int_imm);
        break;
      case Opcode::LdF: {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &d->f64_imm, sizeof(bits));
        e = "ldf:" + std::to_string(bits);
        break;
      }
      case Opcode::Mov:
        e = expr_of(cx, d->src1);
        break;
      case Opcode::Un:
        e = "un:" + std::to_string(static_cast<int>(d->un_op)) + ":(" +
            expr_of(cx, d->src1) + ")";
        break;
      case Opcode::Bin: {
        std::string a = expr_of(cx, d->src1);
        std::string b = expr_of(cx, d->src2);
        if (commutative_int(d->bin_op) && a > b) std::swap(a, b);
        e = "bin:" + std::to_string(static_cast<int>(d->bin_op)) + ":(" + a +
            "):(" + b + ")";
        break;
      }
      case Opcode::GetParam:
        e = "par:" + std::to_string(d->param_index);
        break;
      default:
        // Anchored defs carry atoms; anything else here is unexpected and
        // compares unequal by construction.
        e = "opaque:" + std::to_string(v);
        break;
    }
  }
  cx.state[v] = 2;
  cx.memo[v] = e;
  return e;
}

}  // namespace

CheckResult check_ssa_equivalence(const Function& before,
                                  const Function& after) {
  if (before.blocks.size() != after.blocks.size())
    return CheckResult::fail("block count changed");
  if (before.vregs.size() != after.vregs.size())
    return CheckResult::fail("vreg count changed");
  for (VReg v = 0; v < before.vregs.size(); ++v)
    if (before.vregs[v] != after.vregs[v])
      return CheckResult::fail("vreg class changed for v" + std::to_string(v));
  if (before.params.size() != after.params.size())
    return CheckResult::fail("parameter list changed");

  ExprCtx cb(before);
  ExprCtx ca(after);

  // Pass 1: CFG identity, anchored-sequence shape, atom assignment.
  struct AnchorPair {
    const Instr* b = nullptr;
    const Instr* a = nullptr;
    BlockId block = 0;
  };
  std::vector<AnchorPair> anchors;
  for (BlockId b = 0; b < before.blocks.size(); ++b) {
    if (before.blocks[b].successors() != after.blocks[b].successors())
      return CheckResult::fail("successors of bb" + std::to_string(b) +
                               " changed");
    std::vector<const Instr*> ab, aa;
    std::size_t bphis = 0, aphis = 0;
    for (const Instr& ins : before.blocks[b].instrs) {
      if (is_anchored(ins)) ab.push_back(&ins);
      if (ins.op == Opcode::Phi) ++bphis;
    }
    for (const Instr& ins : after.blocks[b].instrs) {
      if (is_anchored(ins)) aa.push_back(&ins);
      if (ins.op == Opcode::Phi) ++aphis;
    }
    if (ab.size() != aa.size())
      return CheckResult::fail("anchored event count changed in bb" +
                               std::to_string(b));
    if (bphis != aphis)
      return CheckResult::fail("phi count changed in bb" + std::to_string(b));
    for (std::size_t k = 0; k < ab.size(); ++k) {
      if (ab[k]->op != aa[k]->op)
        return CheckResult::fail("anchored event kind changed in bb" +
                                 std::to_string(b));
      // Anchored defs (loads, divisions) become one shared atom per
      // structural position.
      const auto db = ab[k]->def();
      const auto da = aa[k]->def();
      if (db.has_value() != da.has_value())
        return CheckResult::fail("anchored definition changed in bb" +
                                 std::to_string(b));
      if (db) {
        const std::string tag =
            "anc:" + std::to_string(b) + ":" + std::to_string(k);
        cb.atom[*db] = tag;
        ca.atom[*da] = tag;
        if (before.vregs[*db] != after.vregs[*da])
          return CheckResult::fail("anchored definition class changed in bb" +
                                   std::to_string(b));
      }
      anchors.push_back({ab[k], aa[k], b});
    }
    // Phis correspond by (block, dst): GVN and LICM preserve names. The
    // atoms make each phi an opaque node; pass 2 checks the edges.
    std::size_t ai = 0;
    for (const Instr& bp : before.blocks[b].instrs) {
      if (bp.op != Opcode::Phi) break;
      const Instr& ap = after.blocks[b].instrs[ai++];
      if (ap.op != Opcode::Phi || ap.dst != bp.dst)
        return CheckResult::fail("phi set changed in bb" + std::to_string(b));
      const std::string tag =
          "phi:" + std::to_string(b) + ":" + std::to_string(bp.dst);
      cb.atom[bp.dst] = tag;
      ca.atom[ap.dst] = tag;
    }
  }

  // Pass 2: operand equivalence at every anchored event...
  const auto equiv = [&](VReg vb, VReg va) {
    return expr_of(cb, vb) == expr_of(ca, va);
  };
  for (const AnchorPair& p : anchors) {
    const Instr& b = *p.b;
    const Instr& a = *p.a;
    const std::string where = "bb" + std::to_string(p.block);
    switch (b.op) {
      case Opcode::LoadGlobal:
      case Opcode::StoreGlobal:
      case Opcode::LoadGlobalIdx:
      case Opcode::StoreGlobalIdx:
        if (b.sym != a.sym || b.elem != a.elem)
          return CheckResult::fail("memory event location changed in " +
                                   where);
        break;
      case Opcode::LoadStack:
      case Opcode::StoreStack:
        if (b.slot != a.slot)
          return CheckResult::fail("stack event slot changed in " + where);
        break;
      case Opcode::Annot: {
        if (b.annot_format != a.annot_format ||
            b.annot_args.size() != a.annot_args.size())
          return CheckResult::fail("annotation changed in " + where);
        for (std::size_t k = 0; k < b.annot_args.size(); ++k) {
          const auto& xb = b.annot_args[k];
          const auto& xa = a.annot_args[k];
          if (xb.is_slot != xa.is_slot)
            return CheckResult::fail("annotation operand kind changed in " +
                                     where);
          if (xb.is_slot && xb.slot != xa.slot)
            return CheckResult::fail("annotation slot changed in " + where);
          if (!xb.is_slot && !equiv(xb.vreg, xa.vreg))
            return CheckResult::fail("annotation value diverged in " + where);
        }
        break;
      }
      case Opcode::Bin:
        if (b.bin_op != a.bin_op)
          return CheckResult::fail("division operator changed in " + where);
        break;
      case Opcode::Branch:
      case Opcode::BranchCmp:
      case Opcode::Jump:
        if (b.target != a.target || b.target2 != a.target2 ||
            b.bin_op != a.bin_op)
          return CheckResult::fail("terminator changed in " + where);
        break;
      case Opcode::Ret:
        if ((b.src1 == kNoVReg) != (a.src1 == kNoVReg))
          return CheckResult::fail("return arity changed in " + where);
        break;
      default:
        break;
    }
    // Value operands (order-sensitive: division and float compares are
    // never commuted).
    const auto ub = b.uses();
    const auto ua = a.uses();
    if (b.op != Opcode::Annot) {  // annot args compared above
      if (ub.size() != ua.size())
        return CheckResult::fail("operand count diverged in " + where);
      for (std::size_t k = 0; k < ub.size(); ++k)
        if (!equiv(ub[k], ua[k]))
          return CheckResult::fail("operand value diverged at a " +
                                   rtl::to_string(b.op) + " in " + where);
    }
  }

  // ... and edge-wise at every phi (the bisimulation step: assuming all phi
  // atoms equal, each pair must merge equivalent values per predecessor).
  for (BlockId b = 0; b < before.blocks.size(); ++b) {
    std::size_t ai = 0;
    for (const Instr& bp : before.blocks[b].instrs) {
      if (bp.op != Opcode::Phi) break;
      const Instr& ap = after.blocks[b].instrs[ai++];
      if (bp.phi_args.size() != ap.phi_args.size())
        return CheckResult::fail("phi arity changed in bb" +
                                 std::to_string(b));
      for (std::size_t k = 0; k < bp.phi_args.size(); ++k) {
        if (bp.phi_args[k].pred != ap.phi_args[k].pred)
          return CheckResult::fail("phi predecessor changed in bb" +
                                   std::to_string(b));
        if (!equiv(bp.phi_args[k].src, ap.phi_args[k].src))
          return CheckResult::fail("phi argument diverged in bb" +
                                   std::to_string(b) + " for v" +
                                   std::to_string(bp.dst));
      }
    }
  }
  return CheckResult::pass();
}

// ---------------------------------------------------------------------------
// Unroll annotation-rewrite certificate (ssa-unroll)
// ---------------------------------------------------------------------------

CheckResult check_unroll_certificate(const Function& before,
                                     const Function& after,
                                     const ssa::UnrollCertificate& cert) {
  const auto annot_at = [](const Function& fn, const ssa::AnnotAnchor& a)
      -> const Instr* {
    if (a.block >= fn.blocks.size()) return nullptr;
    if (a.index >= fn.blocks[a.block].instrs.size()) return nullptr;
    const Instr& ins = fn.blocks[a.block].instrs[a.index];
    return ins.op == Opcode::Annot ? &ins : nullptr;
  };

  // Per-format annotation counts; the certificate must account for every
  // change between them.
  std::map<std::string, long long> expected;
  for (const auto& blk : before.blocks)
    for (const Instr& ins : blk.instrs)
      if (ins.op == Opcode::Annot) ++expected[ins.annot_format];

  std::set<std::pair<BlockId, std::uint32_t>> seen_before, seen_after;
  for (const ssa::UnrollLoopCert& row : cert.loops) {
    const std::string who = "unroll certificate for loop at bb" +
                            std::to_string(row.header) + ": ";
    if (row.function != before.name)
      return CheckResult::fail(who + "names function '" + row.function + "'");
    if (row.factor < 2)
      return CheckResult::fail(who + "factor " + std::to_string(row.factor) +
                               " < 2");
    if (row.original_bound < 1)
      return CheckResult::fail(who + "non-positive original bound");
    // Eliding the interior tests is only sound when the factor divides the
    // trip count; the residual bound is then exactly ceil(n/k) = n/k.
    if (row.original_bound % row.factor != 0)
      return CheckResult::fail(who + "factor does not divide the bound");
    const long long ceil_nk =
        (row.original_bound + row.factor - 1) / row.factor;
    if (row.residual_bound != ceil_nk)
      return CheckResult::fail(who + "residual bound " +
                               std::to_string(row.residual_bound) +
                               " != ceil(n/k) = " + std::to_string(ceil_nk));
    if (row.old_format != "loop <= " + std::to_string(row.original_bound))
      return CheckResult::fail(who + "old format does not spell the bound");
    if (row.new_format != "loop <= " + std::to_string(row.residual_bound))
      return CheckResult::fail(who + "new format does not spell the residual");
    if (row.before_anchors.empty())
      return CheckResult::fail(who + "no before-anchors");
    if (row.after_anchors.size() !=
        row.before_anchors.size() * static_cast<std::size_t>(row.factor))
      return CheckResult::fail(who + "expected k after-anchors per " +
                               "before-anchor");
    for (const ssa::AnnotAnchor& a : row.before_anchors) {
      const Instr* ins = annot_at(before, a);
      if (ins == nullptr || ins->annot_format != row.old_format)
        return CheckResult::fail(who + "before-anchor " + at(a.block, a.index) +
                                 " is not an annotation with the old format");
      if (!seen_before.insert({a.block, a.index}).second)
        return CheckResult::fail(who + "duplicate before-anchor " +
                                 at(a.block, a.index));
    }
    for (const ssa::AnnotAnchor& a : row.after_anchors) {
      const Instr* ins = annot_at(after, a);
      if (ins == nullptr || ins->annot_format != row.new_format)
        return CheckResult::fail(who + "after-anchor " + at(a.block, a.index) +
                                 " is not an annotation with the new format");
      if (!seen_after.insert({a.block, a.index}).second)
        return CheckResult::fail(who + "duplicate after-anchor " +
                                 at(a.block, a.index));
    }
    expected[row.old_format] -=
        static_cast<long long>(row.before_anchors.size());
    expected[row.new_format] +=
        static_cast<long long>(row.after_anchors.size());
  }

  std::map<std::string, long long> actual;
  for (const auto& blk : after.blocks)
    for (const Instr& ins : blk.instrs)
      if (ins.op == Opcode::Annot) ++actual[ins.annot_format];
  for (auto it = expected.begin(); it != expected.end();) {
    if (it->second == 0)
      it = expected.erase(it);
    else
      ++it;
  }
  if (expected != actual)
    return CheckResult::fail(
        "annotation counts not conserved by the unroll certificate");
  return CheckResult::pass();
}

}  // namespace vc::validate
