// Translation validation (the stand-in for CompCert's Coq proof; §3.2/§4 of
// the paper discuss verified translation validation as the equivalent
// guarantee obtainable at lower cost).
//
// Validation boundary
// -------------------
// At ValidateLevel::Full the boundary is the FULL pipeline: every step the
// PassManager executes — RTL optimizations, register allocation, self-move
// removal, peephole fusion, and list scheduling — carries its own
// a-posteriori checker, and the result is cross-checked end to end against
// the reference interpreter. At ValidateLevel::Rtl (the historical
// behaviour) only the RTL passes are checked per step; the machine level
// (regalloc placement, selfmove/peephole/schedule) is covered solely by the
// end-to-end cross-check.
//
// Seven checkers, composed by `validated_compile`:
//
//  1. `check_structure_preserving` — a symbolic validator for rewrites that
//     keep the CFG and instruction count intact (CSE/copy-propagation and
//     store-to-load forwarding): both versions are symbolically executed in
//     dominator-tree preorder under hash-consed value numbering; every
//     instruction pair must define the same destination with an equivalent
//     value and perform identical side effects. Memory rewrites are checked
//     against an independent must-availability analysis. A pass accepted by
//     this checker is semantics-preserving.
//
//  2. `check_dead_store_elimination` — accepts removal of StoreStack /
//     StoreGlobal instructions that an independent backward location-
//     liveness analysis on the *before* function proves dead; everything
//     else must be preserved verbatim.
//
//  3. `differential_check` — bounded randomized equivalence of two RTL
//     versions of a function: both run on the RTL executor with identical
//     random inputs and global states; results, all globals, and annotation
//     traces must agree bit-exactly (runtime traps must coincide).
//
//  4. `check_register_allocation` — validates the allocator's spill
//     rewriting and coloring (Rideau & Leroy's "Validating register
//     allocation and spilling" shape): the spilled function must be the
//     original under a reload/store discipline that round-trips every
//     spilled value through its slot, and an independent liveness analysis
//     must prove that no two simultaneously live same-class registers share
//     a color — i.e. every use reads the value last assigned to its color.
//
//  5. `check_machine_equivalence` — validates self-move removal and the
//     peephole fixpoint: both machine functions are segmented at their
//     (identical) label/annotation markers and each segment is symbolically
//     executed; memory-access event lists, branch events, and every
//     live-out register (per machine liveness on the before function) must
//     agree. Fused operations (fmadd/fmsub, cmpwi, addi) normalize to the
//     expressions of their unfused forms.
//
//  6. `check_schedule` — validates the list scheduler: labels, annotations
//     and region boundaries must be untouched, each region of the scheduled
//     function must be a permutation of the original region, and the
//     permutation must respect every dependence edge (register/CR
//     RAW/WAR/WAW and memory order, the scheduler's own edge rule derived
//     independently from IssueModel::resources).
//
//  7. `cross_check_machine` — end-to-end: the linked binary on the machine
//     simulator against the mini-C interpreter over stateful call sequences
//     (covers code emission, encoding, linking — and whatever a per-pass
//     checker might have missed).
//
// The SSA mid-end (src/ssa, enabled by CompileOptions::ssa) adds three more
// (src/validate/ssa_check.cpp):
//
//  8. `check_ssa_wellformed` — structural SSA sanity after every in-bracket
//     step: single definitions, dominance of uses (phi args at their
//     predecessor), phi runs and predecessor sets, reachability.
//
//  9. `check_ssa_equivalence` — phi-aware symbolic value-graph equivalence
//     for the CFG- and name-preserving SSA rewrites (ssa-gvn, ssa-licm):
//     anchored events (memory, annotations, terminators, trapping divisions)
//     must appear in identical per-block order with equivalent operands;
//     phis are compared edge-wise as a bisimulation.
//
// 10. `check_unroll_certificate` — verifies the annotation-rewrite
//     certificate of ssa-unroll (factor k, bound n, residual ceil(n/k) with
//     k | n, anchor resolution, per-format annotation-count conservation)
//     before the IPET engine or the runtime monitor consume the rewritten
//     "loop <= N" rows.
//
// These checkers are themselves *tested* (seeded miscompilations must be
// caught — tests/machine_validate_test.cpp, tests/validate_test.cpp), not
// proved — the documented substitution for the Coq development.
#pragma once

#include <cstdint>
#include <string>

#include "driver/compiler.hpp"
#include "minic/ast.hpp"
#include "mach/codegen.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/rtl.hpp"
#include "ssa/ssa.hpp"

namespace vc::validate {

struct CheckResult {
  bool ok = true;
  std::string message;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string m) { return {false, std::move(m)}; }
};

/// Symbolic equivalence for CFG- and count-preserving rewrites (CSE and
/// memory forwarding).
CheckResult check_structure_preserving(const rtl::Function& before,
                                       const rtl::Function& after);

/// Validates a dead-store-elimination step: `after` must be `before` minus
/// only StoreStack/StoreGlobal instructions whose location is provably dead
/// (never read again on any path) in `before`.
CheckResult check_dead_store_elimination(const rtl::Function& before,
                                         const rtl::Function& after);

/// Randomized differential equivalence of two RTL versions of one function
/// of `program` (globals/types are taken from the program). With
/// `normalize_loop_bounds` set, annotation formats parsing as "loop <= N"
/// compare as the bare event "loop" in both traces — positions, counts and
/// operand values are still bit-exact. Used for ssa-unroll, whose bound
/// rewrite is verified statically by `check_unroll_certificate` instead.
CheckResult differential_check(const minic::Program& program,
                               const rtl::Function& before,
                               const rtl::Function& after, int n_tests,
                               std::uint64_t seed,
                               bool normalize_loop_bounds = false);

/// Validates one register-allocation step: `after` must be `before` under
/// the spill-everywhere discipline (uses reload from the value's slot, defs
/// store back immediately; nothing else may touch spill slots), and
/// `alloc`'s coloring must be interference-free on `after` under an
/// independent liveness analysis: at every definition, no other
/// simultaneously live register of the same class holds the same color
/// (move sources holding the same value exempted, mirroring the allocator's
/// coalescing rule).
CheckResult check_register_allocation(const rtl::Function& before,
                                      const rtl::Function& after,
                                      const regalloc::Allocation& alloc,
                                      int k_int, int k_float);

/// Validates a machine-level rewrite that may fuse, fold, or delete
/// instructions but not reorder across labels/annotations or change control
/// flow (self-move removal, the peephole pass): per-segment symbolic
/// execution as described in the header comment.
CheckResult check_machine_equivalence(const mach::AsmFunction& before,
                                      const mach::TargetDesc& desc,
                                      const mach::AsmFunction& after);

/// Validates a scheduling step: a per-region permutation that respects the
/// dependence DAG and preserves the per-region instruction multiset.
CheckResult check_schedule(const mach::AsmFunction& before,
                           const mach::AsmFunction& after);

/// SSA structural sanity (see header comment, checker 8). Run after every
/// SSA-bracket step except ssa-out.
CheckResult check_ssa_wellformed(const rtl::Function& fn);

/// Phi-aware symbolic value-graph equivalence for CFG- and name-preserving
/// SSA rewrites (checker 9; accepts ssa-gvn and ssa-licm).
CheckResult check_ssa_equivalence(const rtl::Function& before,
                                  const rtl::Function& after);

/// Verifies the annotation-rewrite certificate emitted by ssa-unroll
/// (checker 10). `before`/`after` are the function around the unroll step.
CheckResult check_unroll_certificate(const rtl::Function& before,
                                     const rtl::Function& after,
                                     const ssa::UnrollCertificate& cert);

/// End-to-end: compiled image vs. reference interpreter on `fn_name`,
/// over `n_tests` stateful call sequences.
CheckResult cross_check_machine(const minic::Program& program,
                                const driver::Compiled& compiled,
                                const std::string& fn_name, int n_tests,
                                std::uint64_t seed);

/// Compiles `program` under `config` with every pass validated at `level`
/// (see the header comment for the boundary at each level; Off simply
/// compiles). Checker hooks are chained onto `base` — its own hook, stats,
/// pass selection and dump attachments all still apply — and every check
/// performed is counted into the per-pass telemetry. Throws ValidationError
/// on the first rejected step.
driver::Compiled validated_compile(
    const minic::Program& program, driver::Config config, int n_tests = 12,
    std::uint64_t seed = 1,
    driver::ValidateLevel level = driver::ValidateLevel::Rtl,
    driver::CompileOptions base = {});

}  // namespace vc::validate
