// Translation validation (the stand-in for CompCert's Coq proof; §3.2/§4 of
// the paper discuss verified translation validation as the equivalent
// guarantee obtainable at lower cost).
//
// Four checkers, composed by `validated_compile`:
//
//  1. `check_structure_preserving` — a symbolic validator for rewrites that
//     keep the CFG and instruction count intact (CSE/copy-propagation and
//     store-to-load forwarding): both versions are symbolically executed in
//     dominator-tree preorder under hash-consed value numbering; every
//     instruction pair must define the same destination with an equivalent
//     value and perform identical side effects. Memory rewrites are checked
//     against an independent must-availability analysis: a load replaced by
//     a Mov is accepted only when the moved value provably equals the
//     location's current content on every path. A pass accepted by this
//     checker is semantics-preserving.
//
//  2. `check_dead_store_elimination` — accepts removal of StoreStack /
//     StoreGlobal instructions that an independent backward location-
//     liveness analysis on the *before* function proves dead; everything
//     else must be preserved verbatim.
//
//  3. `differential_check` — bounded randomized equivalence of two RTL
//     versions of a function: both run on the RTL executor with identical
//     random inputs and global states; results, all globals, and annotation
//     traces must agree bit-exactly (runtime traps must coincide).
//
//  4. `cross_check_machine` — end-to-end: the linked binary on the machine
//     simulator against the mini-C interpreter over stateful call sequences
//     (covers register allocation, code emission, encoding, linking).
//
// These checkers are themselves *tested* (seeded miscompilations must be
// caught), not proved — the documented substitution for the Coq development.
#pragma once

#include <cstdint>
#include <string>

#include "driver/compiler.hpp"
#include "minic/ast.hpp"
#include "rtl/rtl.hpp"

namespace vc::validate {

struct CheckResult {
  bool ok = true;
  std::string message;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string m) { return {false, std::move(m)}; }
};

/// Symbolic equivalence for CFG- and count-preserving rewrites (CSE and
/// memory forwarding).
CheckResult check_structure_preserving(const rtl::Function& before,
                                       const rtl::Function& after);

/// Validates a dead-store-elimination step: `after` must be `before` minus
/// only StoreStack/StoreGlobal instructions whose location is provably dead
/// (never read again on any path) in `before`.
CheckResult check_dead_store_elimination(const rtl::Function& before,
                                         const rtl::Function& after);

/// Randomized differential equivalence of two RTL versions of one function
/// of `program` (globals/types are taken from the program).
CheckResult differential_check(const minic::Program& program,
                               const rtl::Function& before,
                               const rtl::Function& after, int n_tests,
                               std::uint64_t seed);

/// End-to-end: compiled image vs. reference interpreter on `fn_name`,
/// over `n_tests` stateful call sequences.
CheckResult cross_check_machine(const minic::Program& program,
                                const driver::Compiled& compiled,
                                const std::string& fn_name, int n_tests,
                                std::uint64_t seed);

/// Compiles `program` under `config` with every pass validated:
/// `check_structure_preserving` for CSE and forwarding,
/// `check_dead_store_elimination` for the dead-store pass,
/// `differential_check` for every applied pass (including lowering cleanup
/// and register allocation), and a final `cross_check_machine` per function.
/// Throws ValidationError on the first rejected step.
driver::Compiled validated_compile(const minic::Program& program,
                                   driver::Config config, int n_tests = 12,
                                   std::uint64_t seed = 1);

}  // namespace vc::validate
