// The target registry: the one place that maps --target names to
// descriptors. Declared in src/mach/target.hpp but defined here so the
// target-neutral layers never name a concrete target.
#include <vector>

#include "mach/target.hpp"
#include "support/diagnostics.hpp"
#include "targets/ppc/target.hpp"
#include "targets/rv32/target.hpp"

namespace vc::mach {
namespace {

std::vector<const TargetDesc*> registry() {
  return {&targets::ppc_target(), &targets::rv32_target()};
}

}  // namespace

const TargetDesc& target_by_name(const std::string& name) {
  for (const TargetDesc* t : registry())
    if (t->name == name) return *t;
  std::string known;
  for (const TargetDesc* t : registry()) {
    if (!known.empty()) known += ", ";
    known += t->name;
  }
  throw CompileError("unknown target '" + name + "' (known targets: " + known +
                     ")");
}

std::vector<std::string> target_names() {
  std::vector<std::string> names;
  for (const TargetDesc* t : registry()) names.push_back(t->name);
  return names;
}

const std::string& default_target_name() {
  return registry().front()->name;
}

}  // namespace vc::mach
