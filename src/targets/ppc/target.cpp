#include "targets/ppc/target.hpp"

namespace vc::targets {
namespace {

using mach::MOp;
using mach::OpInfo;
using mach::TargetDesc;
using mach::Unit;

/// The dual-issue MPC755 pipeline facts, op by op (the same values the
/// shared timing model hard-wired before the machine layer went
/// target-parametric — preserved exactly, so PPC images and fleet records
/// are byte-identical across the refactor).
void fill_ops(TargetDesc& d) {
  auto set = [&](MOp op, Unit unit, std::uint8_t latency, bool complex = false,
                 bool blocking = false) {
    OpInfo& info = d.ops[static_cast<std::size_t>(op)];
    info.legal = true;
    info.unit = unit;
    info.latency = latency;
    info.complex = complex;
    info.blocking = blocking;
  };

  // Integer unit. mullw/divw/mfcr are multi-cycle ("complex") and cannot
  // pair as the second IU instruction; divw blocks the IU until done.
  for (MOp op : {MOp::Li, MOp::Lis, MOp::Ori, MOp::Xori, MOp::Addi, MOp::Mr,
                 MOp::Add, MOp::Subf, MOp::And, MOp::Or, MOp::Xor, MOp::Nor,
                 MOp::Neg, MOp::Slw, MOp::Sraw, MOp::Srw, MOp::Rlwinm,
                 MOp::Cmpw, MOp::Cmpwi, MOp::Nop})
    set(op, Unit::IU, 1);
  set(MOp::Mullw, Unit::IU, 3, /*complex=*/true);
  set(MOp::Divw, Unit::IU, 19, /*complex=*/true, /*blocking=*/true);
  set(MOp::Mfcr, Unit::IU, 2, /*complex=*/true);
  // The f64<->i32 conversions run in the FPU with FP latency.
  set(MOp::Fcti, Unit::FPU, 4);
  set(MOp::Icvf, Unit::FPU, 4);

  // Floating-point unit (pipelined except fdiv).
  for (MOp op : {MOp::Fadd, MOp::Fsub, MOp::Fmul, MOp::Fmadd, MOp::Fmsub})
    set(op, Unit::FPU, 4);
  set(MOp::Fdiv, Unit::FPU, 31, /*complex=*/false, /*blocking=*/true);
  set(MOp::Fcmpu, Unit::FPU, 4);
  for (MOp op : {MOp::Fneg, MOp::Fabs, MOp::Fmr}) set(op, Unit::FPU, 2);

  // Load/store unit: L1 hits are single-cycle (calibration, EXPERIMENTS.md).
  for (MOp op : {MOp::Lwz, MOp::Stw, MOp::Lwzx, MOp::Stwx, MOp::Lfd,
                 MOp::Stfd, MOp::Lfdx, MOp::Stfdx})
    set(op, Unit::LSU, 1);

  // Branch unit; the CR logical unit shares it.
  for (MOp op : {MOp::B, MOp::Bc, MOp::Blr, MOp::Cror}) set(op, Unit::BPU, 1);
}

TargetDesc make_ppc() {
  TargetDesc d;
  d.name = "ppc";

  d.zero_gpr = -1;  // no hardwired zero
  d.stack_ptr = 1;
  d.data_base = 2;  // TOC-style small-data base
  d.scratch_gpr0 = 11;
  d.scratch_gpr1 = 12;
  d.scratch_fpr0 = 12;
  d.scratch_fpr1 = 13;
  for (int r = 14; r <= 31; ++r) d.alloc_gprs.push_back(r);  // r14..r31
  for (int r = 14; r <= 31; ++r) d.alloc_fprs.push_back(r);  // f14..f31
  d.first_arg_gpr = 3;  // r3..r10
  d.n_arg_gprs = 8;
  d.first_arg_fpr = 1;  // f1..f8
  d.n_arg_fprs = 8;
  d.ret_gpr = 3;
  d.ret_fpr = 1;
  d.has_cr = true;

  fill_ops(d);
  d.issue_width = 2;
  d.iu_pairing = true;
  d.max_resources_per_instr = 9;  // mfcr: 8 CR-field reads + 1 GPR write

  d.imm_min = -32768;  // 16-bit d-form immediates
  d.imm_max = 32767;

  // MPC755 L1: 32 KiB, 8-way, 32-byte lines on both sides.
  d.machine.icache = {128, 8, 32};
  d.machine.dcache = {128, 8, 32};
  d.machine.miss_penalty = 30;
  d.machine.taken_branch_penalty = 6;

  d.peephole.fuse_multiply_add = true;
  d.peephole.fold_cmp_imm = true;
  d.peephole.fold_add_imm = true;

  d.lower = &ppc_lower;
  return d;
}

}  // namespace

const mach::TargetDesc& ppc_target() {
  static const TargetDesc desc = [] {
    TargetDesc d = make_ppc();
    mach::validate_target(d);
    return d;
  }();
  return desc;
}

}  // namespace vc::targets
