// PPC RTL lowering: allocator colors map to r14../f14.., compares go
// through the condition register (cmpw/fcmpu + bc / mfcr+rlwinm), globals
// are d-form accesses off r2 (small-data) or lis @ha / @l pairs.
#include "targets/ppc/target.hpp"

namespace vc::targets {
namespace {

using mach::AsmFunction;
using mach::AsmOp;
using mach::DataLayout;
using mach::EmitOptions;
using mach::MInstr;
using mach::MOp;
using mach::RelocKind;
using mach::TargetDesc;
using minic::BinOp;
using minic::UnOp;
using rtl::Opcode;
using rtl::RegClass;
using rtl::VReg;

/// CR bit indices (whole-CR numbering): integer compares use cr0, float
/// compares cr1; cr1's FU bit doubles as the cror scratch bit.
constexpr int kCr0Lt = 0, kCr0Gt = 1, kCr0Eq = 2;
constexpr int kCr1Lt = 4, kCr1Gt = 5, kCr1Eq = 6, kCr1Scratch = 7;

struct CmpPlan {
  bool is_float = false;
  int bit = 0;        // CR bit to test after the compare (and optional cror)
  bool expect = true; // branch/set when CR[bit] == expect
  bool need_cror = false;
  int cror_a = 0, cror_b = 0;  // OR'ed into kCr1Scratch when need_cror
};

CmpPlan plan_compare(BinOp op) {
  CmpPlan p;
  switch (op) {
    case BinOp::ICmpEq: p.bit = kCr0Eq; p.expect = true; break;
    case BinOp::ICmpNe: p.bit = kCr0Eq; p.expect = false; break;
    case BinOp::ICmpLt: p.bit = kCr0Lt; p.expect = true; break;
    case BinOp::ICmpGe: p.bit = kCr0Lt; p.expect = false; break;
    case BinOp::ICmpGt: p.bit = kCr0Gt; p.expect = true; break;
    case BinOp::ICmpLe: p.bit = kCr0Gt; p.expect = false; break;
    case BinOp::FCmpEq: p.is_float = true; p.bit = kCr1Eq; p.expect = true; break;
    case BinOp::FCmpNe: p.is_float = true; p.bit = kCr1Eq; p.expect = false; break;
    case BinOp::FCmpLt: p.is_float = true; p.bit = kCr1Lt; p.expect = true; break;
    case BinOp::FCmpGt: p.is_float = true; p.bit = kCr1Gt; p.expect = true; break;
    case BinOp::FCmpLe:
      p.is_float = true; p.need_cror = true;
      p.cror_a = kCr1Lt; p.cror_b = kCr1Eq;
      p.bit = kCr1Scratch; p.expect = true;
      break;
    case BinOp::FCmpGe:
      p.is_float = true; p.need_cror = true;
      p.cror_a = kCr1Gt; p.cror_b = kCr1Eq;
      p.bit = kCr1Scratch; p.expect = true;
      break;
    default:
      throw vc::InternalError("plan_compare on non-comparison");
  }
  return p;
}

class Emitter {
 public:
  Emitter(const rtl::Function& fn, const regalloc::Allocation& alloc,
          DataLayout& layout, const TargetDesc& desc,
          const EmitOptions& options)
      : fn_(fn), alloc_(alloc), layout_(layout), desc_(desc),
        options_(options) {}

  AsmFunction run() {
    out_.name = fn_.name;
    const std::size_t n_slots = fn_.slots.size();
    out_.frame_bytes =
        n_slots == 0
            ? 0
            : static_cast<std::uint32_t>((8 + 8 * n_slots + 15) / 16 * 16);

    // Prologue.
    if (out_.frame_bytes != 0)
      push(make_regimm(MOp::Addi, desc_.stack_ptr, desc_.stack_ptr,
                       -static_cast<std::int32_t>(out_.frame_bytes)));

    for (rtl::BlockId b = 0; b < fn_.blocks.size(); ++b) {
      out_.labels.emplace_back(static_cast<int>(b), out_.ops.size());
      for (const rtl::Instr& ins : fn_.blocks[b].instrs) emit(ins);
    }
    return std::move(out_);
  }

 private:
  // --- helpers --------------------------------------------------------------

  [[nodiscard]] int gpr_of(VReg v) const {
    const auto& loc = alloc_.locs[v];
    vc::check(loc.in_reg && fn_.vregs[v] == RegClass::I32,
              "expected an allocated GPR vreg");
    vc::check(loc.color < desc_.n_int_colors(), "GPR color out of range");
    return desc_.alloc_gprs[static_cast<std::size_t>(loc.color)];
  }

  [[nodiscard]] int fpr_of(VReg v) const {
    const auto& loc = alloc_.locs[v];
    vc::check(loc.in_reg && fn_.vregs[v] == RegClass::F64,
              "expected an allocated FPR vreg");
    vc::check(loc.color < desc_.n_float_colors(), "FPR color out of range");
    return desc_.alloc_fprs[static_cast<std::size_t>(loc.color)];
  }

  [[nodiscard]] std::int32_t slot_offset(rtl::Slot s) const {
    return 8 + 8 * static_cast<std::int32_t>(s);
  }

  static MInstr make_regimm(MOp op, int rd, int ra, std::int32_t imm) {
    MInstr m;
    m.op = op;
    m.rd = static_cast<std::uint8_t>(rd);
    m.ra = static_cast<std::uint8_t>(ra);
    m.imm = imm;
    return m;
  }

  static MInstr make_reg3(MOp op, int rd, int ra, int rb, int rc = 0) {
    MInstr m;
    m.op = op;
    m.rd = static_cast<std::uint8_t>(rd);
    m.ra = static_cast<std::uint8_t>(ra);
    m.rb = static_cast<std::uint8_t>(rb);
    m.rc = static_cast<std::uint8_t>(rc);
    return m;
  }

  void push(MInstr ins) {
    AsmOp op;
    op.ins = ins;
    out_.ops.push_back(std::move(op));
  }

  void push_reloc(MInstr ins, const std::string& sym, std::int32_t addend,
                  RelocKind kind = RelocKind::DataDisp) {
    AsmOp op;
    op.ins = ins;
    op.reloc_sym = sym;
    op.reloc_addend = addend;
    op.reloc_kind = kind;
    out_.ops.push_back(std::move(op));
  }

  /// Emits a d-form global/constant-pool access. With small-data addressing
  /// this is one instruction off r2; without it, a lis @ha / d-form @l pair
  /// through the scratch register.
  void access_global(MOp dform, int value_reg, const std::string& sym,
                     std::int32_t addend) {
    if (options_.small_data_area) {
      push_reloc(make_regimm(dform, value_reg, desc_.data_base, 0), sym,
                 addend);
      return;
    }
    push_reloc(make_regimm(MOp::Lis, desc_.scratch_gpr0, 0, 0), sym, addend,
               RelocKind::AbsHa);
    push_reloc(make_regimm(dform, value_reg, desc_.scratch_gpr0, 0), sym,
               addend, RelocKind::AbsLo);
  }

  /// Materializes the address of sym+addend into `reg`.
  void load_global_address(int reg, const std::string& sym,
                           std::int32_t addend) {
    if (options_.small_data_area) {
      push_reloc(make_regimm(MOp::Addi, reg, desc_.data_base, 0), sym, addend);
      return;
    }
    push_reloc(make_regimm(MOp::Lis, reg, 0, 0), sym, addend, RelocKind::AbsHa);
    push_reloc(make_regimm(MOp::Addi, reg, reg, 0), sym, addend,
               RelocKind::AbsLo);
  }

  void push_branch(MInstr ins, int label) {
    AsmOp op;
    op.ins = ins;
    op.target_label = label;
    out_.ops.push_back(std::move(op));
  }

  void load_imm(int rd, std::int32_t value) {
    if (value >= desc_.imm_min && value <= desc_.imm_max) {
      push(make_regimm(MOp::Li, rd, 0, value));
    } else {
      push(make_regimm(MOp::Lis, rd, 0, value >> 16));
      const std::int32_t lo = value & 0xFFFF;
      if (lo != 0) push(make_regimm(MOp::Ori, rd, rd, lo));
    }
  }

  /// Emits cmpw/fcmpu (+ cror) for `op` on vregs a, b; returns the plan.
  CmpPlan emit_compare(BinOp op, VReg a, VReg b) {
    const CmpPlan p = plan_compare(op);
    if (p.is_float) {
      MInstr c;
      c.op = MOp::Fcmpu;
      c.crf = 1;
      c.ra = static_cast<std::uint8_t>(fpr_of(a));
      c.rb = static_cast<std::uint8_t>(fpr_of(b));
      push(c);
      if (p.need_cror) {
        MInstr r;
        r.op = MOp::Cror;
        r.crbd = kCr1Scratch;
        r.crba = static_cast<std::uint8_t>(p.cror_a);
        r.crbb = static_cast<std::uint8_t>(p.cror_b);
        push(r);
      }
    } else {
      MInstr c;
      c.op = MOp::Cmpw;
      c.crf = 0;
      c.ra = static_cast<std::uint8_t>(gpr_of(a));
      c.rb = static_cast<std::uint8_t>(gpr_of(b));
      push(c);
    }
    return p;
  }

  /// Materializes CR[bit]==expect into rd as 0/1 (mfcr + rlwinm [+ xori]).
  void materialize_crbit(int rd, int bit, bool expect) {
    push(make_regimm(MOp::Mfcr, desc_.scratch_gpr0, 0, 0));
    MInstr rl;
    rl.op = MOp::Rlwinm;
    rl.rd = static_cast<std::uint8_t>(rd);
    rl.ra = static_cast<std::uint8_t>(desc_.scratch_gpr0);
    rl.sh = static_cast<std::uint8_t>(bit + 1);
    rl.mb = 31;
    rl.me = 31;
    push(rl);
    if (!expect) push(make_regimm(MOp::Xori, rd, rd, 1));
  }

  [[nodiscard]] int param_reg(int index) const {
    // The index-th parameter gets the next argument register of its class.
    int gpr = desc_.first_arg_gpr;
    int fpr = desc_.first_arg_fpr;
    for (int i = 0; i < index; ++i) {
      if (fn_.params[static_cast<std::size_t>(i)].cls == RegClass::I32)
        ++gpr;
      else
        ++fpr;
    }
    const bool is_int =
        fn_.params[static_cast<std::size_t>(index)].cls == RegClass::I32;
    const int reg = is_int ? gpr : fpr;
    vc::check(is_int ? reg < desc_.first_arg_gpr + desc_.n_arg_gprs
                     : reg < desc_.first_arg_fpr + desc_.n_arg_fprs,
              "too many parameters for registers");
    return reg;
  }

  // --- main dispatcher ------------------------------------------------------

  void emit(const rtl::Instr& ins) {
    switch (ins.op) {
      case Opcode::Phi:
        // Phis are eliminated by ssa-out before instruction selection.
        throw vc::InternalError("phi instruction reached machine lowering");
      case Opcode::LdI:
        load_imm(gpr_of(ins.dst), ins.int_imm);
        return;
      case Opcode::LdF: {
        const std::uint32_t off = layout_.add_const(ins.f64_imm);
        access_global(MOp::Lfd, fpr_of(ins.dst), "$cpool",
                      static_cast<std::int32_t>(off));
        return;
      }
      case Opcode::Mov: {
        if (fn_.vregs[ins.dst] == RegClass::I32)
          push(make_regimm(MOp::Mr, gpr_of(ins.dst), gpr_of(ins.src1), 0));
        else
          push(make_reg3(MOp::Fmr, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      }
      case Opcode::Un:
        emit_unary(ins);
        return;
      case Opcode::Bin:
        emit_binary(ins);
        return;
      case Opcode::LoadGlobal: {
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        const std::int32_t addend = static_cast<std::int32_t>(esz) * ins.elem;
        if (esz == 8)
          access_global(MOp::Lfd, fpr_of(ins.dst), ins.sym, addend);
        else
          access_global(MOp::Lwz, gpr_of(ins.dst), ins.sym, addend);
        return;
      }
      case Opcode::StoreGlobal: {
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        const std::int32_t addend = static_cast<std::int32_t>(esz) * ins.elem;
        if (esz == 8)
          access_global(MOp::Stfd, fpr_of(ins.src1), ins.sym, addend);
        else
          access_global(MOp::Stw, gpr_of(ins.src1), ins.sym, addend);
        return;
      }
      case Opcode::LoadGlobalIdx:
      case Opcode::StoreGlobalIdx: {
        const bool is_store = ins.op == Opcode::StoreGlobalIdx;
        const VReg idx = is_store ? ins.src2 : ins.src1;
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        // scratch <- idx * esz, then an x-form access against the array base.
        MInstr sl;
        sl.op = MOp::Rlwinm;
        sl.rd = static_cast<std::uint8_t>(desc_.scratch_gpr0);
        sl.ra = static_cast<std::uint8_t>(gpr_of(idx));
        sl.sh = esz == 8 ? 3 : 2;
        sl.mb = 0;
        sl.me = esz == 8 ? 28 : 29;
        push(sl);
        int base_reg;
        if (options_.small_data_area) {
          // Fold the array offset into the index register, base off r2.
          push_reloc(make_regimm(MOp::Addi, desc_.scratch_gpr0,
                                 desc_.scratch_gpr0, 0),
                     ins.sym, 0);
          base_reg = desc_.data_base;
        } else {
          load_global_address(desc_.scratch_gpr1, ins.sym, 0);
          base_reg = desc_.scratch_gpr1;
        }
        if (is_store) {
          if (esz == 8)
            push(make_reg3(MOp::Stfdx, fpr_of(ins.src1), base_reg,
                           desc_.scratch_gpr0));
          else
            push(make_reg3(MOp::Stwx, gpr_of(ins.src1), base_reg,
                           desc_.scratch_gpr0));
        } else {
          if (esz == 8)
            push(make_reg3(MOp::Lfdx, fpr_of(ins.dst), base_reg,
                           desc_.scratch_gpr0));
          else
            push(make_reg3(MOp::Lwzx, gpr_of(ins.dst), base_reg,
                           desc_.scratch_gpr0));
        }
        return;
      }
      case Opcode::LoadStack: {
        const std::int32_t off = slot_offset(ins.slot);
        if (fn_.slots[ins.slot] == RegClass::F64)
          push(make_regimm(MOp::Lfd, fpr_of(ins.dst), desc_.stack_ptr, off));
        else
          push(make_regimm(MOp::Lwz, gpr_of(ins.dst), desc_.stack_ptr, off));
        return;
      }
      case Opcode::StoreStack: {
        const std::int32_t off = slot_offset(ins.slot);
        if (fn_.slots[ins.slot] == RegClass::F64)
          push(make_regimm(MOp::Stfd, fpr_of(ins.src1), desc_.stack_ptr, off));
        else
          push(make_regimm(MOp::Stw, gpr_of(ins.src1), desc_.stack_ptr, off));
        return;
      }
      case Opcode::GetParam: {
        const int src = param_reg(ins.param_index);
        if (fn_.vregs[ins.dst] == RegClass::I32)
          push(make_regimm(MOp::Mr, gpr_of(ins.dst), src, 0));
        else
          push(make_reg3(MOp::Fmr, fpr_of(ins.dst), src, 0));
        return;
      }
      case Opcode::Jump: {
        MInstr b;
        b.op = MOp::B;
        push_branch(b, static_cast<int>(ins.target));
        return;
      }
      case Opcode::Branch: {
        MInstr c;
        c.op = MOp::Cmpwi;
        c.crf = 0;
        c.ra = static_cast<std::uint8_t>(gpr_of(ins.src1));
        c.imm = 0;
        push(c);
        MInstr bc;
        bc.op = MOp::Bc;
        bc.crbit = kCr0Eq;
        bc.expect = false;  // branch if src != 0
        push_branch(bc, static_cast<int>(ins.target));
        MInstr b;
        b.op = MOp::B;
        push_branch(b, static_cast<int>(ins.target2));
        return;
      }
      case Opcode::BranchCmp: {
        const CmpPlan p = emit_compare(ins.bin_op, ins.src1, ins.src2);
        MInstr bc;
        bc.op = MOp::Bc;
        bc.crbit = static_cast<std::uint8_t>(p.bit);
        bc.expect = p.expect;
        push_branch(bc, static_cast<int>(ins.target));
        MInstr b;
        b.op = MOp::B;
        push_branch(b, static_cast<int>(ins.target2));
        return;
      }
      case Opcode::Ret: {
        if (ins.src1 != rtl::kNoVReg) {
          if (fn_.vregs[ins.src1] == RegClass::I32) {
            if (gpr_of(ins.src1) != desc_.ret_gpr)
              push(make_regimm(MOp::Mr, desc_.ret_gpr, gpr_of(ins.src1), 0));
          } else if (fpr_of(ins.src1) != desc_.ret_fpr) {
            push(make_reg3(MOp::Fmr, desc_.ret_fpr, fpr_of(ins.src1), 0));
          }
        }
        if (out_.frame_bytes != 0)
          push(make_regimm(MOp::Addi, desc_.stack_ptr, desc_.stack_ptr,
                           static_cast<std::int32_t>(out_.frame_bytes)));
        MInstr blr;
        blr.op = MOp::Blr;
        push(blr);
        return;
      }
      case Opcode::Annot: {
        mach::AnnotEntry entry;
        entry.addr = static_cast<std::uint32_t>(out_.ops.size());
        entry.format = ins.annot_format;
        for (const rtl::AnnotOperand& a : ins.annot_args) {
          mach::MLoc loc;
          if (a.is_slot) {
            loc.kind = mach::MLoc::Kind::StackSlot;
            loc.offset = slot_offset(a.slot) -
                         static_cast<std::int32_t>(out_.frame_bytes);
            loc.is_f64 = fn_.slots[a.slot] == RegClass::F64;
          } else if (fn_.vregs[a.vreg] == RegClass::I32) {
            loc.kind = mach::MLoc::Kind::Gpr;
            loc.index = gpr_of(a.vreg);
          } else {
            loc.kind = mach::MLoc::Kind::Fpr;
            loc.index = fpr_of(a.vreg);
          }
          entry.operands.push_back(loc);
        }
        out_.annots.push_back(std::move(entry));
        return;
      }
    }
    throw vc::InternalError("bad RTL opcode in codegen");
  }

  void emit_unary(const rtl::Instr& ins) {
    switch (ins.un_op) {
      case UnOp::INeg:
        push(make_regimm(MOp::Neg, gpr_of(ins.dst), gpr_of(ins.src1), 0));
        return;
      case UnOp::INot:
        push(make_reg3(MOp::Nor, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src1)));
        return;
      case UnOp::FNeg:
        push(make_reg3(MOp::Fneg, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::FAbs:
        push(make_reg3(MOp::Fabs, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::I2F:
        push(make_reg3(MOp::Icvf, fpr_of(ins.dst), gpr_of(ins.src1), 0));
        return;
      case UnOp::F2I:
        push(make_reg3(MOp::Fcti, gpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::LNot:
        throw vc::InternalError("LNot must be expanded during lowering");
    }
    throw vc::InternalError("bad UnOp in codegen");
  }

  void emit_binary(const rtl::Instr& ins) {
    switch (ins.bin_op) {
      case BinOp::IAdd:
        push(make_reg3(MOp::Add, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::ISub:
        // subf rd, ra, rb computes rb - ra.
        push(make_reg3(MOp::Subf, gpr_of(ins.dst), gpr_of(ins.src2),
                       gpr_of(ins.src1)));
        return;
      case BinOp::IMul:
        push(make_reg3(MOp::Mullw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IDiv:
        push(make_reg3(MOp::Divw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IRem: {
        // scratch = a / b ; scratch = scratch * b ; rd = a - scratch.
        const int a = gpr_of(ins.src1);
        const int b = gpr_of(ins.src2);
        push(make_reg3(MOp::Divw, desc_.scratch_gpr0, a, b));
        push(make_reg3(MOp::Mullw, desc_.scratch_gpr0, desc_.scratch_gpr0, b));
        push(make_reg3(MOp::Subf, gpr_of(ins.dst), desc_.scratch_gpr0, a));
        return;
      }
      case BinOp::IAnd:
        push(make_reg3(MOp::And, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IOr:
        push(make_reg3(MOp::Or, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IXor:
        push(make_reg3(MOp::Xor, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IShl:
        push(make_reg3(MOp::Slw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IShr:
        push(make_reg3(MOp::Sraw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::FAdd:
        push(make_reg3(MOp::Fadd, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FSub:
        push(make_reg3(MOp::Fsub, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FMul:
        push(make_reg3(MOp::Fmul, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FDiv:
        push(make_reg3(MOp::Fdiv, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::ICmpEq: case BinOp::ICmpNe: case BinOp::ICmpLt:
      case BinOp::ICmpLe: case BinOp::ICmpGt: case BinOp::ICmpGe:
      case BinOp::FCmpEq: case BinOp::FCmpNe: case BinOp::FCmpLt:
      case BinOp::FCmpLe: case BinOp::FCmpGt: case BinOp::FCmpGe: {
        const CmpPlan p = emit_compare(ins.bin_op, ins.src1, ins.src2);
        materialize_crbit(gpr_of(ins.dst), p.bit, p.expect);
        return;
      }
      case BinOp::FMin:
      case BinOp::FMax:
        throw vc::InternalError("fmin/fmax must be expanded during lowering");
    }
    throw vc::InternalError("bad BinOp in codegen");
  }

  const rtl::Function& fn_;
  const regalloc::Allocation& alloc_;
  DataLayout& layout_;
  const TargetDesc& desc_;
  EmitOptions options_;
  AsmFunction out_;
};

}  // namespace

mach::AsmFunction ppc_lower(const rtl::Function& fn,
                            const regalloc::Allocation& alloc,
                            mach::DataLayout& layout,
                            const mach::TargetDesc& desc,
                            const mach::EmitOptions& options) {
  return Emitter(fn, alloc, layout, desc, options).run();
}

}  // namespace vc::targets
