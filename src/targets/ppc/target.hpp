// The PPC backend: an MPC755-flavoured dual-issue PowerPC-G3-like target,
// the machine of the source paper's flight-control experiment. This module
// owns every PPC fact — register roles and ABI, the op subset with its
// latencies and units, dual-issue pairing rules, L1 geometry, peephole
// permissions — plus the RTL lowering that maps allocator colors to
// r14../f14.. and compiles compares through the condition register.
#pragma once

#include "mach/codegen.hpp"
#include "mach/target.hpp"

namespace vc::targets {

/// The PPC descriptor (validated once at first use).
const mach::TargetDesc& ppc_target();

/// PPC RTL lowering (the descriptor's `lower` hook).
mach::AsmFunction ppc_lower(const rtl::Function& fn,
                            const regalloc::Allocation& alloc,
                            mach::DataLayout& layout,
                            const mach::TargetDesc& desc,
                            const mach::EmitOptions& options);

}  // namespace vc::targets
