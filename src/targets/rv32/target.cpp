#include "targets/rv32/target.hpp"

namespace vc::targets {
namespace {

using mach::MOp;
using mach::OpInfo;
using mach::TargetDesc;
using mach::Unit;

/// A single-issue in-order RV32IMF-class pipeline: one instruction per cycle,
/// iterative divider, longer FP latencies than the PPC's FPU but a cheaper
/// taken branch (short front end, no BTB mispredict modeled).
void fill_ops(TargetDesc& d) {
  auto set = [&](MOp op, Unit unit, std::uint8_t latency, bool complex = false,
                 bool blocking = false) {
    OpInfo& info = d.ops[static_cast<std::size_t>(op)];
    info.legal = true;
    info.unit = unit;
    info.latency = latency;
    info.complex = complex;
    info.blocking = blocking;
  };

  // Integer ALU, single cycle.
  for (MOp op : {MOp::Li, MOp::Addi, MOp::Xori, MOp::Mr, MOp::Add, MOp::Subf,
                 MOp::And, MOp::Or, MOp::Xor, MOp::Lui, MOp::Sll, MOp::Srl,
                 MOp::Sra, MOp::Slli, MOp::Slt, MOp::Sltu, MOp::Sltiu,
                 MOp::Nop})
    set(op, Unit::IU, 1);
  set(MOp::Mullw, Unit::IU, 4, /*complex=*/true);
  set(MOp::Divw, Unit::IU, 20, /*complex=*/true, /*blocking=*/true);
  set(MOp::Rem, Unit::IU, 20, /*complex=*/true, /*blocking=*/true);

  // Floating-point unit (double precision; fdiv iterative).
  for (MOp op : {MOp::Fadd, MOp::Fsub, MOp::Fmul}) set(op, Unit::FPU, 5);
  for (MOp op : {MOp::Fmadd, MOp::Fmsub}) set(op, Unit::FPU, 6);
  set(MOp::Fdiv, Unit::FPU, 26, /*complex=*/false, /*blocking=*/true);
  for (MOp op : {MOp::Fneg, MOp::Fabs, MOp::Fmr}) set(op, Unit::FPU, 2);
  set(MOp::Fcti, Unit::FPU, 4);
  set(MOp::Icvf, Unit::FPU, 4);
  for (MOp op : {MOp::Feq, MOp::Flt, MOp::Fle}) set(op, Unit::FPU, 2);

  // Load/store unit: two-cycle L1 hit.
  for (MOp op : {MOp::Lwz, MOp::Stw, MOp::Lfd, MOp::Stfd}) set(op, Unit::LSU, 2);

  // Branches (fused compare-and-branch included).
  for (MOp op : {MOp::B, MOp::Blr, MOp::Beq, MOp::Bne, MOp::Blt, MOp::Bge})
    set(op, Unit::BPU, 1);
}

TargetDesc make_rv32() {
  TargetDesc d;
  d.name = "rv32";

  d.zero_gpr = 0;   // x0 reads as zero
  d.stack_ptr = 2;  // sp = x2
  d.data_base = 3;  // gp = x3, small-data base
  d.scratch_gpr0 = 5;  // t0, t1
  d.scratch_gpr1 = 6;
  d.scratch_fpr0 = 0;  // ft0, ft1
  d.scratch_fpr1 = 1;
  // Callee-saved s0..s11 for the allocator: x8, x9, x18..x27; plus x28, x29
  // (t3, t4 — treated as allocatable here since there are no calls).
  for (int r : {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29})
    d.alloc_gprs.push_back(r);
  // fs0..fs11 plus ft8, ft9 for symmetry with the integer class.
  for (int r : {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29})
    d.alloc_fprs.push_back(r);
  d.first_arg_gpr = 10;  // a0..a7 = x10..x17
  d.n_arg_gprs = 8;
  d.first_arg_fpr = 10;  // fa0..fa7 = f10..f17
  d.n_arg_fprs = 8;
  d.ret_gpr = 10;
  d.ret_fpr = 10;
  d.has_cr = false;

  fill_ops(d);
  d.issue_width = 1;
  d.iu_pairing = false;
  d.max_resources_per_instr = 4;  // fmadd: 3 FPR reads + 1 write

  d.imm_min = -2048;  // 12-bit I-type immediates
  d.imm_max = 2047;

  // 8 KiB 2-way L1 with 32-byte lines on both sides; slower memory.
  d.machine.icache = {128, 2, 32};
  d.machine.dcache = {128, 2, 32};
  d.machine.miss_penalty = 40;
  d.machine.taken_branch_penalty = 2;

  // No condition register, so there is no li+cmpw -> cmpwi rewrite.
  d.peephole.fuse_multiply_add = true;
  d.peephole.fold_cmp_imm = false;
  d.peephole.fold_add_imm = true;

  d.lower = &rv32_lower;
  return d;
}

}  // namespace

const mach::TargetDesc& rv32_target() {
  static const TargetDesc desc = [] {
    TargetDesc d = make_rv32();
    mach::validate_target(d);
    return d;
  }();
  return desc;
}

}  // namespace vc::targets
