// The RV32 backend: a single-issue RV32IMF-flavoured RISC-V target (in-order
// five-stage core with hardware mul/div and double-precision FP). This module
// owns every RISC-V fact — register roles (hardwired x0, sp=x2, gp=x3 as the
// small-data base, s-registers for the allocator, a-registers for arguments),
// the legal op subset with its latencies, the 12-bit immediate discipline
// (lui/addi pairs for wide constants), and an RTL lowering that has no
// condition register: compares materialize 0/1 via slt/sltu/feq/flt/fle and
// branches fuse into compare-and-branch (beq/bne/blt/bge).
#pragma once

#include "mach/codegen.hpp"
#include "mach/target.hpp"

namespace vc::targets {

/// The RV32 descriptor (validated once at first use).
const mach::TargetDesc& rv32_target();

/// RV32 RTL lowering (the descriptor's `lower` hook).
mach::AsmFunction rv32_lower(const rtl::Function& fn,
                             const regalloc::Allocation& alloc,
                             mach::DataLayout& layout,
                             const mach::TargetDesc& desc,
                             const mach::EmitOptions& options);

}  // namespace vc::targets
