// RV32 RTL lowering. No condition register: integer compares materialize
// through slt/sltu/sltiu (+ xori to invert), float compares through
// feq/flt/fle into a GPR, and two-way branches fuse into compare-and-branch
// (beq/bne/blt/bge) where possible. Wide constants are lui+addi pairs;
// globals are d-form accesses off gp (small-data) or lui %hi / %lo pairs;
// indexed array accesses scale with slli and add the base explicitly since
// there are no indexed loads.
#include "targets/rv32/target.hpp"

namespace vc::targets {
namespace {

using mach::AsmFunction;
using mach::AsmOp;
using mach::DataLayout;
using mach::EmitOptions;
using mach::MInstr;
using mach::MOp;
using mach::RelocKind;
using mach::TargetDesc;
using minic::BinOp;
using minic::UnOp;
using rtl::Opcode;
using rtl::RegClass;
using rtl::VReg;

class Emitter {
 public:
  Emitter(const rtl::Function& fn, const regalloc::Allocation& alloc,
          DataLayout& layout, const TargetDesc& desc,
          const EmitOptions& options)
      : fn_(fn), alloc_(alloc), layout_(layout), desc_(desc),
        options_(options) {}

  AsmFunction run() {
    out_.name = fn_.name;
    const std::size_t n_slots = fn_.slots.size();
    out_.frame_bytes =
        n_slots == 0
            ? 0
            : static_cast<std::uint32_t>((8 + 8 * n_slots + 15) / 16 * 16);
    vc::check(out_.frame_bytes <=
                  static_cast<std::uint32_t>(desc_.imm_max),
              "stack frame too large for 12-bit immediates");

    if (out_.frame_bytes != 0)
      push(make_regimm(MOp::Addi, desc_.stack_ptr, desc_.stack_ptr,
                       -static_cast<std::int32_t>(out_.frame_bytes)));

    for (rtl::BlockId b = 0; b < fn_.blocks.size(); ++b) {
      out_.labels.emplace_back(static_cast<int>(b), out_.ops.size());
      for (const rtl::Instr& ins : fn_.blocks[b].instrs) emit(ins);
    }
    return std::move(out_);
  }

 private:
  // --- helpers --------------------------------------------------------------

  [[nodiscard]] int gpr_of(VReg v) const {
    const auto& loc = alloc_.locs[v];
    vc::check(loc.in_reg && fn_.vregs[v] == RegClass::I32,
              "expected an allocated GPR vreg");
    vc::check(loc.color < desc_.n_int_colors(), "GPR color out of range");
    return desc_.alloc_gprs[static_cast<std::size_t>(loc.color)];
  }

  [[nodiscard]] int fpr_of(VReg v) const {
    const auto& loc = alloc_.locs[v];
    vc::check(loc.in_reg && fn_.vregs[v] == RegClass::F64,
              "expected an allocated FPR vreg");
    vc::check(loc.color < desc_.n_float_colors(), "FPR color out of range");
    return desc_.alloc_fprs[static_cast<std::size_t>(loc.color)];
  }

  [[nodiscard]] std::int32_t slot_offset(rtl::Slot s) const {
    return 8 + 8 * static_cast<std::int32_t>(s);
  }

  static MInstr make_regimm(MOp op, int rd, int ra, std::int32_t imm) {
    MInstr m;
    m.op = op;
    m.rd = static_cast<std::uint8_t>(rd);
    m.ra = static_cast<std::uint8_t>(ra);
    m.imm = imm;
    return m;
  }

  static MInstr make_reg3(MOp op, int rd, int ra, int rb, int rc = 0) {
    MInstr m;
    m.op = op;
    m.rd = static_cast<std::uint8_t>(rd);
    m.ra = static_cast<std::uint8_t>(ra);
    m.rb = static_cast<std::uint8_t>(rb);
    m.rc = static_cast<std::uint8_t>(rc);
    return m;
  }

  void push(MInstr ins) {
    AsmOp op;
    op.ins = ins;
    out_.ops.push_back(std::move(op));
  }

  void push_reloc(MInstr ins, const std::string& sym, std::int32_t addend,
                  RelocKind kind = RelocKind::DataDisp) {
    AsmOp op;
    op.ins = ins;
    op.reloc_sym = sym;
    op.reloc_addend = addend;
    op.reloc_kind = kind;
    out_.ops.push_back(std::move(op));
  }

  void push_branch(MInstr ins, int label) {
    AsmOp op;
    op.ins = ins;
    op.target_label = label;
    out_.ops.push_back(std::move(op));
  }

  /// Emits a d-form global/constant-pool access. Small-data addressing is one
  /// instruction off gp; without it, a lui %hi / d-form %lo pair through the
  /// scratch register.
  void access_global(MOp dform, int value_reg, const std::string& sym,
                     std::int32_t addend) {
    if (options_.small_data_area) {
      push_reloc(make_regimm(dform, value_reg, desc_.data_base, 0), sym,
                 addend);
      return;
    }
    push_reloc(make_regimm(MOp::Lui, desc_.scratch_gpr0, 0, 0), sym, addend,
               RelocKind::AbsHi20);
    push_reloc(make_regimm(dform, value_reg, desc_.scratch_gpr0, 0), sym,
               addend, RelocKind::AbsLo12);
  }

  /// Materializes the address of sym+addend into `reg`.
  void load_global_address(int reg, const std::string& sym,
                           std::int32_t addend) {
    if (options_.small_data_area) {
      push_reloc(make_regimm(MOp::Addi, reg, desc_.data_base, 0), sym, addend);
      return;
    }
    push_reloc(make_regimm(MOp::Lui, reg, 0, 0), sym, addend,
               RelocKind::AbsHi20);
    push_reloc(make_regimm(MOp::Addi, reg, reg, 0), sym, addend,
               RelocKind::AbsLo12);
  }

  void load_imm(int rd, std::int32_t value) {
    if (value >= desc_.imm_min && value <= desc_.imm_max) {
      push(make_regimm(MOp::Li, rd, 0, value));
      return;
    }
    // lui hi / addi lo, with the +0x800 rounding that makes the
    // sign-extended 12-bit low part recombine exactly.
    const std::int32_t hi =
        (value + 0x800) >> 12;
    const std::int32_t lo = value - (hi << 12);
    push(make_regimm(MOp::Lui, rd, 0, hi));
    if (lo != 0) push(make_regimm(MOp::Addi, rd, rd, lo));
  }

  /// Emits the 0/1 materialization of `op`(a, b) into GPR rd. Integer eq/ne
  /// route through the scratch register; everything else is one or two ops.
  void materialize_compare(BinOp op, VReg a, VReg b, int rd) {
    const int t = desc_.scratch_gpr0;
    const int zero = desc_.zero_gpr;
    switch (op) {
      case BinOp::ICmpEq:
        push(make_reg3(MOp::Xor, t, gpr_of(a), gpr_of(b)));
        push(make_regimm(MOp::Sltiu, rd, t, 1));
        return;
      case BinOp::ICmpNe:
        push(make_reg3(MOp::Xor, t, gpr_of(a), gpr_of(b)));
        push(make_reg3(MOp::Sltu, rd, zero, t));
        return;
      case BinOp::ICmpLt:
        push(make_reg3(MOp::Slt, rd, gpr_of(a), gpr_of(b)));
        return;
      case BinOp::ICmpGe:
        push(make_reg3(MOp::Slt, rd, gpr_of(a), gpr_of(b)));
        push(make_regimm(MOp::Xori, rd, rd, 1));
        return;
      case BinOp::ICmpGt:
        push(make_reg3(MOp::Slt, rd, gpr_of(b), gpr_of(a)));
        return;
      case BinOp::ICmpLe:
        push(make_reg3(MOp::Slt, rd, gpr_of(b), gpr_of(a)));
        push(make_regimm(MOp::Xori, rd, rd, 1));
        return;
      case BinOp::FCmpEq:
        push(make_reg3(MOp::Feq, rd, fpr_of(a), fpr_of(b)));
        return;
      case BinOp::FCmpNe:
        push(make_reg3(MOp::Feq, rd, fpr_of(a), fpr_of(b)));
        push(make_regimm(MOp::Xori, rd, rd, 1));
        return;
      case BinOp::FCmpLt:
        push(make_reg3(MOp::Flt, rd, fpr_of(a), fpr_of(b)));
        return;
      case BinOp::FCmpLe:
        push(make_reg3(MOp::Fle, rd, fpr_of(a), fpr_of(b)));
        return;
      case BinOp::FCmpGt:
        push(make_reg3(MOp::Flt, rd, fpr_of(b), fpr_of(a)));
        return;
      case BinOp::FCmpGe:
        push(make_reg3(MOp::Fle, rd, fpr_of(b), fpr_of(a)));
        return;
      default:
        throw vc::InternalError("materialize_compare on non-comparison");
    }
  }

  [[nodiscard]] int param_reg(int index) const {
    int gpr = desc_.first_arg_gpr;
    int fpr = desc_.first_arg_fpr;
    for (int i = 0; i < index; ++i) {
      if (fn_.params[static_cast<std::size_t>(i)].cls == RegClass::I32)
        ++gpr;
      else
        ++fpr;
    }
    const bool is_int =
        fn_.params[static_cast<std::size_t>(index)].cls == RegClass::I32;
    const int reg = is_int ? gpr : fpr;
    vc::check(is_int ? reg < desc_.first_arg_gpr + desc_.n_arg_gprs
                     : reg < desc_.first_arg_fpr + desc_.n_arg_fprs,
              "too many parameters for registers");
    return reg;
  }

  // --- main dispatcher ------------------------------------------------------

  void emit(const rtl::Instr& ins) {
    switch (ins.op) {
      case Opcode::Phi:
        // Phis are eliminated by ssa-out before instruction selection.
        throw vc::InternalError("phi instruction reached machine lowering");
      case Opcode::LdI:
        load_imm(gpr_of(ins.dst), ins.int_imm);
        return;
      case Opcode::LdF: {
        const std::uint32_t off = layout_.add_const(ins.f64_imm);
        access_global(MOp::Lfd, fpr_of(ins.dst), "$cpool",
                      static_cast<std::int32_t>(off));
        return;
      }
      case Opcode::Mov: {
        if (fn_.vregs[ins.dst] == RegClass::I32)
          push(make_regimm(MOp::Mr, gpr_of(ins.dst), gpr_of(ins.src1), 0));
        else
          push(make_reg3(MOp::Fmr, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      }
      case Opcode::Un:
        emit_unary(ins);
        return;
      case Opcode::Bin:
        emit_binary(ins);
        return;
      case Opcode::LoadGlobal: {
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        const std::int32_t addend = static_cast<std::int32_t>(esz) * ins.elem;
        if (esz == 8)
          access_global(MOp::Lfd, fpr_of(ins.dst), ins.sym, addend);
        else
          access_global(MOp::Lwz, gpr_of(ins.dst), ins.sym, addend);
        return;
      }
      case Opcode::StoreGlobal: {
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        const std::int32_t addend = static_cast<std::int32_t>(esz) * ins.elem;
        if (esz == 8)
          access_global(MOp::Stfd, fpr_of(ins.src1), ins.sym, addend);
        else
          access_global(MOp::Stw, gpr_of(ins.src1), ins.sym, addend);
        return;
      }
      case Opcode::LoadGlobalIdx:
      case Opcode::StoreGlobalIdx: {
        // No indexed loads: scale the index with slli, add the base register
        // explicitly, and finish with a d-form access.
        const bool is_store = ins.op == Opcode::StoreGlobalIdx;
        const VReg idx = is_store ? ins.src2 : ins.src1;
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        push(make_regimm(MOp::Slli, desc_.scratch_gpr0, gpr_of(idx),
                         esz == 8 ? 3 : 2));
        MOp dform;
        if (is_store)
          dform = esz == 8 ? MOp::Stfd : MOp::Stw;
        else
          dform = esz == 8 ? MOp::Lfd : MOp::Lwz;
        const int value_reg =
            esz == 8 ? (is_store ? fpr_of(ins.src1) : fpr_of(ins.dst))
                     : (is_store ? gpr_of(ins.src1) : gpr_of(ins.dst));
        if (options_.small_data_area) {
          // address = gp + scaled index; the displacement carries sym's
          // small-data offset via the reloc.
          push(make_reg3(MOp::Add, desc_.scratch_gpr0, desc_.data_base,
                         desc_.scratch_gpr0));
          push_reloc(make_regimm(dform, value_reg, desc_.scratch_gpr0, 0),
                     ins.sym, 0);
        } else {
          load_global_address(desc_.scratch_gpr1, ins.sym, 0);
          push(make_reg3(MOp::Add, desc_.scratch_gpr0, desc_.scratch_gpr1,
                         desc_.scratch_gpr0));
          push(make_regimm(dform, value_reg, desc_.scratch_gpr0, 0));
        }
        return;
      }
      case Opcode::LoadStack: {
        const std::int32_t off = slot_offset(ins.slot);
        if (fn_.slots[ins.slot] == RegClass::F64)
          push(make_regimm(MOp::Lfd, fpr_of(ins.dst), desc_.stack_ptr, off));
        else
          push(make_regimm(MOp::Lwz, gpr_of(ins.dst), desc_.stack_ptr, off));
        return;
      }
      case Opcode::StoreStack: {
        const std::int32_t off = slot_offset(ins.slot);
        if (fn_.slots[ins.slot] == RegClass::F64)
          push(make_regimm(MOp::Stfd, fpr_of(ins.src1), desc_.stack_ptr, off));
        else
          push(make_regimm(MOp::Stw, gpr_of(ins.src1), desc_.stack_ptr, off));
        return;
      }
      case Opcode::GetParam: {
        const int src = param_reg(ins.param_index);
        if (fn_.vregs[ins.dst] == RegClass::I32)
          push(make_regimm(MOp::Mr, gpr_of(ins.dst), src, 0));
        else
          push(make_reg3(MOp::Fmr, fpr_of(ins.dst), src, 0));
        return;
      }
      case Opcode::Jump: {
        MInstr b;
        b.op = MOp::B;
        push_branch(b, static_cast<int>(ins.target));
        return;
      }
      case Opcode::Branch: {
        // bnez src -> target; b -> target2.
        push_branch(make_reg3(MOp::Bne, 0, gpr_of(ins.src1), desc_.zero_gpr),
                    static_cast<int>(ins.target));
        MInstr b;
        b.op = MOp::B;
        push_branch(b, static_cast<int>(ins.target2));
        return;
      }
      case Opcode::BranchCmp: {
        emit_branch_cmp(ins);
        return;
      }
      case Opcode::Ret: {
        if (ins.src1 != rtl::kNoVReg) {
          if (fn_.vregs[ins.src1] == RegClass::I32) {
            if (gpr_of(ins.src1) != desc_.ret_gpr)
              push(make_regimm(MOp::Mr, desc_.ret_gpr, gpr_of(ins.src1), 0));
          } else if (fpr_of(ins.src1) != desc_.ret_fpr) {
            push(make_reg3(MOp::Fmr, desc_.ret_fpr, fpr_of(ins.src1), 0));
          }
        }
        if (out_.frame_bytes != 0)
          push(make_regimm(MOp::Addi, desc_.stack_ptr, desc_.stack_ptr,
                           static_cast<std::int32_t>(out_.frame_bytes)));
        MInstr blr;
        blr.op = MOp::Blr;
        push(blr);
        return;
      }
      case Opcode::Annot: {
        mach::AnnotEntry entry;
        entry.addr = static_cast<std::uint32_t>(out_.ops.size());
        entry.format = ins.annot_format;
        for (const rtl::AnnotOperand& a : ins.annot_args) {
          mach::MLoc loc;
          if (a.is_slot) {
            loc.kind = mach::MLoc::Kind::StackSlot;
            loc.offset = slot_offset(a.slot) -
                         static_cast<std::int32_t>(out_.frame_bytes);
            loc.is_f64 = fn_.slots[a.slot] == RegClass::F64;
          } else if (fn_.vregs[a.vreg] == RegClass::I32) {
            loc.kind = mach::MLoc::Kind::Gpr;
            loc.index = gpr_of(a.vreg);
          } else {
            loc.kind = mach::MLoc::Kind::Fpr;
            loc.index = fpr_of(a.vreg);
          }
          entry.operands.push_back(loc);
        }
        out_.annots.push_back(std::move(entry));
        return;
      }
    }
    throw vc::InternalError("bad RTL opcode in codegen");
  }

  void emit_branch_cmp(const rtl::Instr& ins) {
    // Integer compares fuse directly into beq/bne/blt/bge (swapping operands
    // for gt/le); float compares materialize into the scratch register and
    // branch on it being nonzero.
    const auto fused = [&](MOp op, VReg lhs, VReg rhs) {
      push_branch(make_reg3(op, 0, gpr_of(lhs), gpr_of(rhs)),
                  static_cast<int>(ins.target));
    };
    switch (ins.bin_op) {
      case BinOp::ICmpEq: fused(MOp::Beq, ins.src1, ins.src2); break;
      case BinOp::ICmpNe: fused(MOp::Bne, ins.src1, ins.src2); break;
      case BinOp::ICmpLt: fused(MOp::Blt, ins.src1, ins.src2); break;
      case BinOp::ICmpGe: fused(MOp::Bge, ins.src1, ins.src2); break;
      case BinOp::ICmpGt: fused(MOp::Blt, ins.src2, ins.src1); break;
      case BinOp::ICmpLe: fused(MOp::Bge, ins.src2, ins.src1); break;
      default: {
        materialize_compare(ins.bin_op, ins.src1, ins.src2,
                            desc_.scratch_gpr0);
        push_branch(make_reg3(MOp::Bne, 0, desc_.scratch_gpr0,
                              desc_.zero_gpr),
                    static_cast<int>(ins.target));
        break;
      }
    }
    MInstr b;
    b.op = MOp::B;
    push_branch(b, static_cast<int>(ins.target2));
  }

  void emit_unary(const rtl::Instr& ins) {
    switch (ins.un_op) {
      case UnOp::INeg:
        // rd = x0 - src (subf rd, ra, rb computes rb - ra).
        push(make_reg3(MOp::Subf, gpr_of(ins.dst), gpr_of(ins.src1),
                       desc_.zero_gpr));
        return;
      case UnOp::INot: {
        // rd = -1 - src == ~src. (xori's 16-bit immediate field is unsigned
        // in the shared encoding, so xori rd, src, -1 cannot encode.)
        const int t = desc_.scratch_gpr0;
        push(make_regimm(MOp::Li, t, 0, -1));
        push(make_reg3(MOp::Subf, gpr_of(ins.dst), gpr_of(ins.src1), t));
        return;
      }
      case UnOp::FNeg:
        push(make_reg3(MOp::Fneg, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::FAbs:
        push(make_reg3(MOp::Fabs, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::I2F:
        push(make_reg3(MOp::Icvf, fpr_of(ins.dst), gpr_of(ins.src1), 0));
        return;
      case UnOp::F2I:
        push(make_reg3(MOp::Fcti, gpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::LNot:
        throw vc::InternalError("LNot must be expanded during lowering");
    }
    throw vc::InternalError("bad UnOp in codegen");
  }

  void emit_binary(const rtl::Instr& ins) {
    switch (ins.bin_op) {
      case BinOp::IAdd:
        push(make_reg3(MOp::Add, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::ISub:
        // subf rd, ra, rb computes rb - ra.
        push(make_reg3(MOp::Subf, gpr_of(ins.dst), gpr_of(ins.src2),
                       gpr_of(ins.src1)));
        return;
      case BinOp::IMul:
        push(make_reg3(MOp::Mullw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IDiv:
        push(make_reg3(MOp::Divw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IRem:
        push(make_reg3(MOp::Rem, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IAnd:
        push(make_reg3(MOp::And, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IOr:
        push(make_reg3(MOp::Or, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IXor:
        push(make_reg3(MOp::Xor, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IShl:
        push(make_reg3(MOp::Sll, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IShr:
        push(make_reg3(MOp::Sra, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::FAdd:
        push(make_reg3(MOp::Fadd, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FSub:
        push(make_reg3(MOp::Fsub, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FMul:
        push(make_reg3(MOp::Fmul, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FDiv:
        push(make_reg3(MOp::Fdiv, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::ICmpEq: case BinOp::ICmpNe: case BinOp::ICmpLt:
      case BinOp::ICmpLe: case BinOp::ICmpGt: case BinOp::ICmpGe:
      case BinOp::FCmpEq: case BinOp::FCmpNe: case BinOp::FCmpLt:
      case BinOp::FCmpLe: case BinOp::FCmpGt: case BinOp::FCmpGe:
        materialize_compare(ins.bin_op, ins.src1, ins.src2, gpr_of(ins.dst));
        return;
      case BinOp::FMin:
      case BinOp::FMax:
        throw vc::InternalError("fmin/fmax must be expanded during lowering");
    }
    throw vc::InternalError("bad BinOp in codegen");
  }

  const rtl::Function& fn_;
  const regalloc::Allocation& alloc_;
  DataLayout& layout_;
  const TargetDesc& desc_;
  EmitOptions options_;
  AsmFunction out_;
};

}  // namespace

mach::AsmFunction rv32_lower(const rtl::Function& fn,
                             const regalloc::Allocation& alloc,
                             mach::DataLayout& layout,
                             const mach::TargetDesc& desc,
                             const mach::EmitOptions& options) {
  return Emitter(fn, alloc, layout, desc, options).run();
}

}  // namespace vc::targets
