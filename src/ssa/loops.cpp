#include <algorithm>

#include "ssa/ssa.hpp"
#include "support/strings.hpp"

namespace vc::ssa {

using rtl::BlockId;
using rtl::Function;
using rtl::kNoBlock;

bool Loop::contains(BlockId b) const {
  return std::binary_search(blocks.begin(), blocks.end(), b);
}

LoopForest find_loops(const Function& fn, const std::vector<BlockId>& idom,
                      const std::vector<std::vector<BlockId>>& preds) {
  LoopForest forest;
  forest.loop_of_block.assign(fn.blocks.size(), -1);

  // Natural loops: one loop per header, merged over all back edges u -> h
  // with h dom u. Blocks are collected by the standard backward walk from
  // each latch until the header.
  for (BlockId h = 0; h < fn.blocks.size(); ++h) {
    if (idom[h] == kNoBlock) continue;  // unreachable
    std::vector<BlockId> latches;
    for (BlockId p : preds[h])
      if (idom[p] != kNoBlock && rtl::dominates(idom, h, p))
        latches.push_back(p);
    if (latches.empty()) continue;

    std::vector<char> in(fn.blocks.size(), 0);
    in[h] = 1;
    std::vector<BlockId> work;
    for (BlockId l : latches)
      if (!in[l]) { in[l] = 1; work.push_back(l); }
    while (!work.empty()) {
      const BlockId b = work.back();
      work.pop_back();
      for (BlockId p : preds[b])
        if (idom[p] != kNoBlock && !in[p]) { in[p] = 1; work.push_back(p); }
    }

    Loop loop;
    loop.header = h;
    loop.latches = std::move(latches);
    std::sort(loop.latches.begin(), loop.latches.end());
    for (BlockId b = 0; b < fn.blocks.size(); ++b)
      if (in[b]) loop.blocks.push_back(b);
    forest.loops.push_back(std::move(loop));
  }

  // Nesting: loop A is inside loop B iff B contains A's header and A != B.
  // Parent = smallest strictly-containing loop. Depth follows parents.
  const int n = static_cast<int>(forest.loops.size());
  for (int a = 0; a < n; ++a) {
    int best = -1;
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      if (!forest.loops[b].contains(forest.loops[a].header)) continue;
      if (best == -1 ||
          forest.loops[b].blocks.size() < forest.loops[best].blocks.size())
        best = b;
    }
    forest.loops[a].parent = best;
  }
  for (int a = 0; a < n; ++a) {
    int depth = 1;
    for (int p = forest.loops[a].parent; p != -1; p = forest.loops[p].parent)
      ++depth;
    forest.loops[a].depth = depth;
  }

  // Innermost loop per block = deepest loop containing it.
  for (int a = 0; a < n; ++a)
    for (BlockId b : forest.loops[a].blocks) {
      const int cur = forest.loop_of_block[b];
      if (cur == -1 || forest.loops[a].depth > forest.loops[cur].depth)
        forest.loop_of_block[b] = a;
    }
  return forest;
}

std::vector<std::vector<BlockId>> dominance_frontiers(
    const Function& fn, const std::vector<BlockId>& idom,
    const std::vector<std::vector<BlockId>>& preds) {
  std::vector<std::vector<BlockId>> df(fn.blocks.size());
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    if (idom[b] == kNoBlock || preds[b].size() < 2) continue;
    for (BlockId p : preds[b]) {
      if (idom[p] == kNoBlock) continue;
      BlockId runner = p;
      while (runner != idom[b]) {
        df[runner].push_back(b);
        runner = idom[runner];
      }
    }
  }
  for (auto& f : df) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  return df;
}

bool has_phis(const Function& fn) {
  for (const auto& bb : fn.blocks)
    for (const auto& ins : bb.instrs)
      if (ins.op == rtl::Opcode::Phi) return true;
  return false;
}

}  // namespace vc::ssa
