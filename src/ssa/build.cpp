// Pruned SSA construction (Cytron et al.): preheader canonicalization,
// liveness-pruned phi placement on iterated dominance frontiers, and
// dominator-tree renaming with fresh vregs.
#include <algorithm>

#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"
#include "support/strings.hpp"

namespace vc::ssa {

using rtl::BasicBlock;
using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::kNoBlock;
using rtl::kNoVReg;
using rtl::Opcode;
using rtl::RegClass;
using rtl::VReg;

namespace {

void retarget_terminator(Instr& term, BlockId from, BlockId to) {
  if (term.op == Opcode::Jump || term.op == Opcode::Branch ||
      term.op == Opcode::BranchCmp) {
    if (term.target == from) term.target = to;
    if (term.op != Opcode::Jump && term.target2 == from) term.target2 = to;
  }
}

/// Gives every natural-loop header a dedicated preheader: a block whose only
/// successor is the header and through which every non-back-edge entry flows.
/// LICM hoists into it and the rotation/unroll matchers key on it.
bool insert_preheaders(Function& fn) {
  bool changed = false;
  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);
  const std::size_t n_orig = fn.blocks.size();
  for (BlockId h = 0; h < n_orig; ++h) {
    if (idom[h] == kNoBlock) continue;
    std::vector<BlockId> entries;
    bool is_header = false;
    for (BlockId p : preds[h]) {
      if (idom[p] != kNoBlock && rtl::dominates(idom, h, p))
        is_header = true;
      else
        entries.push_back(p);
    }
    if (!is_header || entries.empty()) continue;
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
    if (entries.size() == 1 &&
        fn.blocks[entries[0]].successors().size() == 1)
      continue;  // already canonical

    const BlockId pre = static_cast<BlockId>(fn.blocks.size());
    BasicBlock bb;
    Instr jmp;
    jmp.op = Opcode::Jump;
    jmp.target = h;
    bb.instrs.push_back(jmp);
    fn.blocks.push_back(std::move(bb));
    for (BlockId p : entries)
      retarget_terminator(fn.blocks[p].instrs.back(), h, pre);
    changed = true;
  }
  return changed;
}

}  // namespace

bool build_ssa(Function& fn) {
  check(!has_phis(fn), "build_ssa on a function already in SSA form");
  rtl::remove_unreachable_blocks(fn);
  insert_preheaders(fn);

  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);
  const auto children = rtl::dominator_children(idom);
  const auto df = dominance_frontiers(fn, idom, preds);
  const rtl::Liveness live = rtl::compute_liveness(fn);

  const std::size_t n_vars = fn.vregs.size();

  // Definition blocks of each original vreg.
  std::vector<std::vector<BlockId>> def_blocks(n_vars);
  for (BlockId b = 0; b < fn.blocks.size(); ++b)
    for (const Instr& ins : fn.blocks[b].instrs)
      if (auto d = ins.def()) def_blocks[*d].push_back(b);

  // Liveness-pruned phi placement on iterated dominance frontiers.
  std::vector<std::vector<VReg>> phi_vars(fn.blocks.size());
  {
    std::vector<int> placed(fn.blocks.size(), -1);
    std::vector<int> queued(fn.blocks.size(), -1);
    for (VReg v = 0; v < n_vars; ++v) {
      if (def_blocks[v].empty()) continue;
      std::vector<BlockId> work = def_blocks[v];
      for (BlockId b : work) queued[b] = static_cast<int>(v);
      while (!work.empty()) {
        const BlockId d = work.back();
        work.pop_back();
        for (BlockId y : df[d]) {
          if (placed[y] == static_cast<int>(v)) continue;
          if (!live.live_in[y].test(v)) continue;
          placed[y] = static_cast<int>(v);
          phi_vars[y].push_back(v);
          if (queued[y] != static_cast<int>(v)) {
            queued[y] = static_cast<int>(v);
            work.push_back(y);
          }
        }
      }
    }
  }
  for (auto& vars : phi_vars) std::sort(vars.begin(), vars.end());

  // Materialize phi instructions (args filled during renaming). The dst holds
  // the original variable until the renaming walk reaches the block.
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    if (phi_vars[b].empty()) continue;
    std::vector<Instr> head;
    head.reserve(phi_vars[b].size());
    for (VReg v : phi_vars[b]) {
      Instr phi;
      phi.op = Opcode::Phi;
      phi.dst = v;
      head.push_back(phi);
    }
    auto& instrs = fn.blocks[b].instrs;
    instrs.insert(instrs.begin(), head.begin(), head.end());
  }

  // A use reached by no definition reads zero — the executor's initial
  // register state. The entry constants below are the SSA names for that
  // state; the post-SSA cleanup removes them when unused.
  const VReg zero_i = fn.new_vreg(RegClass::I32);
  const VReg zero_f = fn.new_vreg(RegClass::F64);
  {
    Instr zi;
    zi.op = Opcode::LdI;
    zi.dst = zero_i;
    zi.int_imm = 0;
    Instr zf;
    zf.op = Opcode::LdF;
    zf.dst = zero_f;
    zf.f64_imm = 0.0;
    auto& entry = fn.blocks[0].instrs;
    entry.insert(entry.begin(), {zi, zf});
  }

  // Dominator-tree renaming. Every definition gets a fresh vreg; uses read
  // the innermost dominating definition of their original variable.
  std::vector<std::vector<VReg>> stacks(n_vars);
  const auto read_var = [&](VReg v) -> VReg {
    if (v < n_vars && !stacks[v].empty()) return stacks[v].back();
    return fn.vregs[v] == RegClass::I32 ? zero_i : zero_f;
  };

  struct Frame {
    BlockId block;
    std::size_t child = 0;
    std::vector<VReg> popped;  // original vars pushed in this block
  };
  std::vector<Frame> stack;
  stack.push_back({0});
  while (!stack.empty()) {
    Frame& fr = stack.back();
    const BlockId b = fr.block;
    if (fr.child == 0) {
      // First visit: rename this block and fill successor phi args.
      for (Instr& ins : fn.blocks[b].instrs) {
        if (ins.op == Opcode::Phi) {
          const VReg v = ins.dst;
          const VReg nn = fn.new_vreg(fn.vregs[v]);
          ins.dst = nn;
          stacks[v].push_back(nn);
          fr.popped.push_back(v);
          continue;
        }
        detail::rewrite_uses(ins, read_var);
        if (auto d = ins.def()) {
          const VReg v = *d;
          if (v < n_vars) {  // the entry zero constants keep their names
            const VReg nn = fn.new_vreg(fn.vregs[v]);
            ins.dst = nn;
            stacks[v].push_back(nn);
            fr.popped.push_back(v);
          }
        }
      }
      for (BlockId s : fn.blocks[b].successors()) {
        std::size_t k = 0;
        for (Instr& ins : fn.blocks[s].instrs) {
          if (ins.op != Opcode::Phi) break;
          ins.phi_args.push_back({b, read_var(phi_vars[s][k])});
          ++k;
        }
      }
    }
    if (fr.child < children[b].size()) {
      const BlockId c = children[b][fr.child++];
      stack.push_back({c});
      continue;
    }
    for (auto it = fr.popped.rbegin(); it != fr.popped.rend(); ++it)
      stacks[*it].pop_back();
    stack.pop_back();
  }

  // Deterministic textual form: phi args sorted by predecessor. A pred that
  // branches twice to the same block contributes one arg per edge; collapse
  // the duplicates (same incoming value by construction).
  for (auto& bb : fn.blocks)
    for (Instr& ins : bb.instrs) {
      if (ins.op != Opcode::Phi) break;
      std::sort(ins.phi_args.begin(), ins.phi_args.end(),
                [](const rtl::PhiArg& a, const rtl::PhiArg& b) {
                  return a.pred < b.pred;
                });
      ins.phi_args.erase(
          std::unique(ins.phi_args.begin(), ins.phi_args.end(),
                      [](const rtl::PhiArg& a, const rtl::PhiArg& b) {
                        return a.pred == b.pred;
                      }),
          ins.phi_args.end());
    }
  return true;
}

}  // namespace vc::ssa
