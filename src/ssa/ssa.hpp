// SSA mid-end over RTL (ROADMAP: loop optimizations beyond the paper's set).
//
// The paper's compiler — like CompCert 1.7 it reproduces — performs no loop
// optimizations (§3.2). This subsystem goes past that while keeping the
// translation-validation architecture: RTL is brought into pruned SSA form
// (dominance-frontier phi placement on the existing idom/RPO analyses), a
// family of SSA passes runs — global value numbering, loop-invariant code
// motion, bounded unrolling of the counted loops the ACG annotates, and loop
// rotation — and out-of-SSA lowering with critical-edge splitting restores
// plain RTL before the scalar cleanup round and register allocation.
//
// Every pass is an untrusted rewrite checked by a validator (src/validate):
// an SSA well-formedness check after every step, a phi-aware value-graph
// equivalence check for the CFG-preserving passes (GVN, LICM), and — for
// unrolling, which rewrites the "loop <= N" bounds the IPET engine and the
// runtime monitor consume — an annotation-rewrite certificate verified
// against the original bounds (factor k ⇒ residual bound ⌈n/k⌉, anchors
// remapped) before any downstream consumer trusts the new rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/analysis.hpp"
#include "rtl/rtl.hpp"

namespace vc::ssa {

// --- loop analysis ---------------------------------------------------------

/// One natural loop: `header` dominates every block in `blocks`; `latches`
/// are the in-loop predecessors of the header (back-edge sources).
struct Loop {
  rtl::BlockId header = 0;
  std::vector<rtl::BlockId> blocks;   // sorted, includes header
  std::vector<rtl::BlockId> latches;  // sorted
  int parent = -1;                    // index of enclosing loop, -1 if top
  int depth = 1;                      // 1 = outermost

  [[nodiscard]] bool contains(rtl::BlockId b) const;
};

/// The loop forest of a function, innermost loop per block.
struct LoopForest {
  std::vector<Loop> loops;
  std::vector<int> loop_of_block;  // innermost loop index per block, -1 = none
};

LoopForest find_loops(const rtl::Function& fn,
                      const std::vector<rtl::BlockId>& idom,
                      const std::vector<std::vector<rtl::BlockId>>& preds);

/// Dominance frontiers (Cytron et al.) for phi placement.
std::vector<std::vector<rtl::BlockId>> dominance_frontiers(
    const rtl::Function& fn, const std::vector<rtl::BlockId>& idom,
    const std::vector<std::vector<rtl::BlockId>>& preds);

/// True if any instruction in `fn` is a phi (i.e. the function is in SSA
/// form and must pass through destroy_ssa before regalloc/emission).
bool has_phis(const rtl::Function& fn);

// --- construction / destruction -------------------------------------------

/// Brings `fn` into pruned SSA form: inserts a dedicated preheader in front
/// of every natural-loop header (so LICM and the rotation/unroll matchers see
/// a canonical shape), places phis on iterated dominance frontiers of each
/// multiply-defined vreg (pruned by liveness), and renames every definition
/// to a fresh vreg. A use reached by no definition reads the function-entry
/// zero of its class — exactly the RTL executor's initial register state, so
/// the rewrite is semantics-preserving. Returns true (the function changed).
bool build_ssa(rtl::Function& fn);

/// Leaves SSA form: splits critical edges into blocks that carry phi copies,
/// lowers each block's phi run as one parallel copy per incoming edge
/// (cycle-safe sequentialization with a class-correct temp), and erases the
/// phi instructions. Returns true if the function contained phis.
bool destroy_ssa(rtl::Function& fn);

// --- SSA optimization passes ----------------------------------------------

/// Global value numbering over SSA: dominator-scoped hash-consing of pure
/// instructions and phis (keyed by block + incoming value numbers), with
/// integrated copy propagation. A redundant computation is replaced by a Mov
/// from its representative. Integer commutative operations are canonicalized
/// by operand value number; float operations are never reordered (bit-exact
/// results are part of the differential oracle). CFG is unchanged.
bool global_value_numbering(rtl::Function& fn);

/// Loop-invariant code motion: hoists pure, non-trapping instructions
/// (integer division/modulo excluded) whose operands are defined outside the
/// loop — or were themselves hoisted — to the loop preheader. SSA guarantees
/// the single definition dominates all uses after hoisting. CFG is unchanged.
bool loop_invariant_code_motion(rtl::Function& fn);

/// Loop rotation (inversion) of annotated counted loops whose header is
/// phis + a fused compare branch: the header becomes a once-executed guard
/// (phi operands substituted with their preheader arguments), the latch gets
/// the test with latch arguments, the header phis move to the body entry,
/// and exit phis merge the guard/latch paths for values live after the loop.
/// The per-entry back-edge count drops from n to n-1, so every existing
/// "loop <= n" bound stays sound. Only loops carrying a loop-bound
/// annotation are rotated (unannotated loops keep the shape the machine-level
/// bound derivation recognizes).
bool loop_rotation(rtl::Function& fn);

// --- unrolling + annotation-rewrite certificate ----------------------------

/// Position of one Annot instruction (block + index within the block).
struct AnnotAnchor {
  rtl::BlockId block = 0;
  std::uint32_t index = 0;
};

/// Certificate for one unrolled loop: the claim that rewriting every
/// "loop <= original_bound" annotation of the loop into k copies of
/// "loop <= residual_bound" is sound. The checker re-derives
/// residual = ceil(original / factor), verifies each before-anchor is an
/// Annot with the old format, each after-anchor an Annot with the new
/// format, the anchor counts match (k after-anchors per before-anchor), and
/// that no other annotation in the function changed.
struct UnrollLoopCert {
  std::string function;
  rtl::BlockId header = 0;            // loop header in the pre-pass function
  int factor = 0;                     // k
  long long original_bound = 0;       // n
  long long residual_bound = 0;       // claimed ceil(n/k); k | n here, so n/k
  std::string old_format;             // "loop <= n"
  std::string new_format;             // "loop <= residual"
  std::vector<AnnotAnchor> before_anchors;  // in the pre-pass function
  std::vector<AnnotAnchor> after_anchors;   // in the post-pass function
};

struct UnrollCertificate {
  std::vector<UnrollLoopCert> loops;
};

/// Bounded unrolling of counted loops the ACG already annotates. A loop
/// qualifies when its header is phis + `brcmp (i icmplt limit)`, the counter
/// is a header phi advanced by exactly +1 per iteration, init and limit
/// resolve to integer constants with trip count n = limit - init > 0, every
/// annotation in the loop is "loop <= n", and some factor k in [2..8]
/// divides n within the code-size budget. The body is cloned k-1 times with
/// interior tests elided (sound: i ≡ init (mod k) and k | n imply the elided
/// tests always pass), and every loop-bound annotation is rewritten to the
/// residual bound n/k, recorded in `cert` for the annotation-rewrite
/// checker. Returns true if any loop was unrolled.
bool loop_unrolling(rtl::Function& fn, UnrollCertificate* cert);

}  // namespace vc::ssa
