// Loop rotation (inversion) of annotated counted loops. The header becomes a
// once-executed guard; the latch takes over the back-edge test; exit phis
// merge the guard/latch paths. Per-entry back-edge counts drop from n to
// n-1, so every existing "loop <= n" bound stays sound for the IPET rows
// and the runtime monitor. Unannotated loops are left alone: they keep the
// while-shape the machine-level bound derivation recognizes.
#include <algorithm>

#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"

namespace vc::ssa {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::kNoVReg;
using rtl::Opcode;
using rtl::VReg;

namespace {

struct Candidate {
  BlockId header = 0;
  BlockId pre = 0;
  BlockId latch = 0;
  BlockId body = 0;  // in-loop target of the header test
  BlockId exit = 0;  // out-of-loop target
  std::vector<BlockId> loop_blocks;
};

bool in(const std::vector<BlockId>& sorted, BlockId b) {
  return std::binary_search(sorted.begin(), sorted.end(), b);
}

/// Finds one rotatable loop (analyses are recomputed after each rotation).
bool find_candidate(const Function& fn, Candidate* out) {
  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);
  const LoopForest forest = find_loops(fn, idom, preds);
  for (const Loop& loop : forest.loops) {
    const BlockId h = loop.header;
    // Header: phi run, then optional pure loop-independent "extras"
    // (lowering materializes constant loop limits here), then a fused
    // compare branch. The extras stay in the guard block after rotation —
    // it keeps the header's block id and still dominates the whole loop —
    // so they must not read a phi or anything defined inside the loop
    // (other than a preceding extra).
    const auto& hi = fn.blocks[h].instrs;
    if (hi.back().op != Opcode::BranchCmp) continue;
    std::vector<VReg> loop_defs;
    for (BlockId b : loop.blocks)
      for (const Instr& ins : fn.blocks[b].instrs)
        if (auto d = ins.def()) loop_defs.push_back(*d);
    std::sort(loop_defs.begin(), loop_defs.end());
    bool shape_ok = true;
    bool in_extras = false;
    std::vector<VReg> extra_defs;
    for (std::size_t i = 0; i + 1 < hi.size(); ++i) {
      if (hi[i].op == Opcode::Phi) {
        if (in_extras) { shape_ok = false; break; }
        continue;
      }
      in_extras = true;
      if (!hi[i].is_pure()) { shape_ok = false; break; }
      for (VReg u : hi[i].uses()) {
        const bool in_loop =
            std::binary_search(loop_defs.begin(), loop_defs.end(), u);
        const bool own_extra =
            std::find(extra_defs.begin(), extra_defs.end(), u) !=
            extra_defs.end();
        if (in_loop && !own_extra) { shape_ok = false; break; }
      }
      if (!shape_ok) break;
      if (auto d = hi[i].def()) extra_defs.push_back(*d);
    }
    if (!shape_ok) continue;
    // Exactly two predecessors: one entry edge, one latch ending in a jump.
    if (preds[h].size() != 2 || loop.latches.size() != 1) continue;
    const BlockId latch = loop.latches[0];
    if (latch == h) continue;
    BlockId pre = rtl::kNoBlock;
    for (BlockId p : preds[h])
      if (p != latch) pre = p;
    if (pre == rtl::kNoBlock || loop.contains(pre)) continue;
    if (fn.blocks[latch].instrs.back().op != Opcode::Jump) continue;
    // One in-loop target (body entry, no other preds, no phis) and one
    // out-of-loop target (sole exit, no other preds).
    const Instr& term = hi.back();
    BlockId body, exit;
    if (loop.contains(term.target) && !loop.contains(term.target2)) {
      body = term.target;
      exit = term.target2;
    } else if (loop.contains(term.target2) && !loop.contains(term.target)) {
      body = term.target2;
      exit = term.target;
    } else {
      continue;
    }
    if (body == h || exit == h || body == exit) continue;
    if (preds[body].size() != 1 || preds[exit].size() != 1) continue;
    if (fn.blocks[body].instrs.front().op == Opcode::Phi) continue;
    // All other exits stay inside: only the header leaves the loop.
    bool closed = true;
    for (BlockId b : loop.blocks) {
      if (b == h) continue;
      for (BlockId s : fn.blocks[b].successors())
        if (!loop.contains(s)) { closed = false; break; }
      if (!closed) break;
    }
    if (!closed) continue;
    // Only annotated loops rotate (the bound survives any shape).
    bool annotated = false;
    for (BlockId b : loop.blocks)
      for (const Instr& ins : fn.blocks[b].instrs)
        if (ins.op == Opcode::Annot &&
            detail::parse_loop_bound(ins.annot_format) >= 0)
          annotated = true;
    if (!annotated) continue;
    out->header = h;
    out->pre = pre;
    out->latch = latch;
    out->body = body;
    out->exit = exit;
    out->loop_blocks = loop.blocks;
    return true;
  }
  return false;
}

void rotate_one(Function& fn, const Candidate& c) {
  auto& hi = fn.blocks[c.header].instrs;
  std::size_t n_phi = 0;
  while (n_phi < hi.size() && hi[n_phi].op == Opcode::Phi) ++n_phi;

  // Collect the header phis: dst, entry-path value, latch-path value.
  struct PhiInfo {
    VReg dst = kNoVReg;
    VReg pre_val = kNoVReg;
    VReg latch_val = kNoVReg;
  };
  std::vector<PhiInfo> phis;
  for (std::size_t i = 0; i < n_phi; ++i) {
    PhiInfo pi;
    pi.dst = hi[i].dst;
    for (const rtl::PhiArg& a : hi[i].phi_args) {
      if (a.pred == c.pre) pi.pre_val = a.src;
      if (a.pred == c.latch) pi.latch_val = a.src;
    }
    phis.push_back(pi);
  }
  const auto subst = [&](VReg v, bool latch_side) {
    for (const PhiInfo& pi : phis)
      if (pi.dst == v) return latch_side ? pi.latch_val : pi.pre_val;
    return v;
  };

  // Latch: the back-edge jump becomes the loop test with latch-side values.
  Instr latch_term = hi.back();
  latch_term.src1 = subst(latch_term.src1, true);
  latch_term.src2 = subst(latch_term.src2, true);
  fn.blocks[c.latch].instrs.back() = latch_term;

  // Header becomes the guard: phis removed, extras stay (they are pure,
  // loop-independent, and the guard still dominates every former loop
  // block), test takes entry-side values.
  Instr guard = hi.back();
  guard.src1 = subst(guard.src1, false);
  guard.src2 = subst(guard.src2, false);
  hi.erase(hi.begin(), hi.begin() + static_cast<std::ptrdiff_t>(n_phi));
  hi.back() = guard;

  // The body entry is the new loop header: it inherits the phis, now merging
  // the guard edge and the back edge.
  std::vector<Instr> moved;
  for (const PhiInfo& pi : phis) {
    Instr phi;
    phi.op = Opcode::Phi;
    phi.dst = pi.dst;
    phi.phi_args.push_back({c.header, pi.pre_val});
    phi.phi_args.push_back({c.latch, pi.latch_val});
    std::sort(phi.phi_args.begin(), phi.phi_args.end(),
              [](const rtl::PhiArg& a, const rtl::PhiArg& b) {
                return a.pred < b.pred;
              });
    moved.push_back(std::move(phi));
  }
  auto& bi = fn.blocks[c.body].instrs;
  bi.insert(bi.begin(), moved.begin(), moved.end());

  // Values live after the loop used the header phis (the only loop
  // definitions that dominated the exit). Those uses now need exit phis
  // merging the guard and latch paths. Two sweeps per phi: detect first,
  // then insert the exit phi and rewrite — inserting into the exit block
  // while iterating it would invalidate the instruction references.
  for (const PhiInfo& pi : phis) {
    const auto outside_use = [&](const Instr& ins) {
      if (ins.op == Opcode::Phi) {
        // A phi arg is a use at the end of its predecessor: only args
        // arriving from outside the loop count (and get rewritten).
        for (const rtl::PhiArg& a : ins.phi_args)
          if (a.src == pi.dst && !in(c.loop_blocks, a.pred)) return true;
        return false;
      }
      for (VReg u : ins.uses())
        if (u == pi.dst) return true;
      return false;
    };
    bool used = false;
    for (BlockId b = 0; b < fn.blocks.size() && !used; ++b) {
      if (in(c.loop_blocks, b)) continue;
      for (const Instr& ins : fn.blocks[b].instrs)
        if (outside_use(ins)) { used = true; break; }
    }
    if (!used) continue;
    const VReg exit_name = fn.new_vreg(fn.vregs[pi.dst]);
    {
      Instr phi;
      phi.op = Opcode::Phi;
      phi.dst = exit_name;
      phi.phi_args.push_back({c.header, pi.pre_val});
      phi.phi_args.push_back({c.latch, pi.latch_val});
      std::sort(phi.phi_args.begin(), phi.phi_args.end(),
                [](const rtl::PhiArg& a, const rtl::PhiArg& b) {
                  return a.pred < b.pred;
                });
      auto& ei = fn.blocks[c.exit].instrs;
      ei.insert(ei.begin(), std::move(phi));
    }
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
      if (in(c.loop_blocks, b)) continue;
      for (Instr& ins : fn.blocks[b].instrs) {
        if (ins.dst == exit_name) continue;  // the exit phi itself
        if (ins.op == Opcode::Phi) {
          for (rtl::PhiArg& a : ins.phi_args)
            if (a.src == pi.dst && !in(c.loop_blocks, a.pred))
              a.src = exit_name;
        } else {
          detail::rewrite_uses(ins, [&](VReg u) {
            return u == pi.dst ? exit_name : u;
          });
        }
      }
    }
  }
}

}  // namespace

bool loop_rotation(Function& fn) {
  if (!has_phis(fn)) return false;  // SSA passes only run inside the bracket
  bool changed = false;
  // One rotation per iteration; analyses are recomputed because the CFG
  // edges (and dominance) change. Each loop rotates at most once (after
  // rotation its header is no longer phis + branch), so this terminates.
  for (;;) {
    Candidate c;
    if (!find_candidate(fn, &c)) break;
    rotate_one(fn, c);
    changed = true;
  }
  return changed;
}

}  // namespace vc::ssa
