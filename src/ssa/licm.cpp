// Loop-invariant code motion over SSA: pure, non-trapping instructions whose
// operands are defined outside the loop move to the loop preheader. The CFG
// is unchanged, so check_ssa_equivalence applies directly.
#include <algorithm>

#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"

namespace vc::ssa {

using minic::BinOp;
using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::kNoBlock;
using rtl::Opcode;
using rtl::VReg;

namespace {

/// Hoistable: pure and cannot fault when executed on the (possibly never
/// taken) loop-entry path. Integer division/remainder trap on zero, so they
/// stay put; IEEE float ops never trap.
bool hoistable(const Instr& ins) {
  if (ins.op == Opcode::Phi) return false;
  if (!ins.is_pure()) return false;
  if (ins.op == Opcode::Bin &&
      (ins.bin_op == BinOp::IDiv || ins.bin_op == BinOp::IRem))
    return false;
  return true;
}

}  // namespace

bool loop_invariant_code_motion(Function& fn) {
  if (!has_phis(fn)) return false;  // SSA passes only run inside the bracket

  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);
  const LoopForest forest = find_loops(fn, idom, preds);
  if (forest.loops.empty()) return false;

  // def_block[v]: block defining v, or kNoBlock. Maintained incrementally as
  // instructions move.
  std::vector<BlockId> def_block(fn.vregs.size(), kNoBlock);
  for (BlockId b = 0; b < fn.blocks.size(); ++b)
    for (const Instr& ins : fn.blocks[b].instrs)
      if (auto d = ins.def()) def_block[*d] = b;

  // Innermost loops first: a value hoisted to an inner preheader can then be
  // hoisted again by the enclosing loop's pass.
  std::vector<int> order(forest.loops.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (forest.loops[a].depth != forest.loops[b].depth)
      return forest.loops[a].depth > forest.loops[b].depth;
    return a < b;
  });

  bool changed = false;
  for (int li : order) {
    const Loop& loop = forest.loops[li];

    // Preheader: the unique non-latch predecessor of the header, itself with
    // a single successor (build_ssa canonicalizes this shape).
    BlockId pre = kNoBlock;
    bool ok = true;
    for (BlockId p : preds[loop.header]) {
      if (std::binary_search(loop.latches.begin(), loop.latches.end(), p))
        continue;
      if (pre != kNoBlock && pre != p) { ok = false; break; }
      pre = p;
    }
    if (!ok || pre == kNoBlock || loop.contains(pre) ||
        fn.blocks[pre].successors().size() != 1)
      continue;

    const auto invariant = [&](const Instr& ins) {
      for (VReg u : ins.uses()) {
        const BlockId d = def_block[u];
        if (d != kNoBlock && loop.contains(d)) return false;
      }
      return true;
    };

    // Fixpoint: hoisting one instruction can make its dependents invariant.
    bool local = true;
    while (local) {
      local = false;
      for (BlockId b : loop.blocks) {
        auto& instrs = fn.blocks[b].instrs;
        std::vector<Instr> kept;
        kept.reserve(instrs.size());
        for (Instr& ins : instrs) {
          if (hoistable(ins) && invariant(ins)) {
            if (auto d = ins.def()) def_block[*d] = pre;
            auto& pi = fn.blocks[pre].instrs;
            pi.insert(pi.end() - 1, std::move(ins));
            local = true;
            changed = true;
          } else {
            kept.push_back(std::move(ins));
          }
        }
        instrs = std::move(kept);
      }
    }
  }
  return changed;
}

}  // namespace vc::ssa
