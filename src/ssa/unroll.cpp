// Bounded unrolling of annotated counted loops, with an annotation-rewrite
// certificate. The matcher is deliberately conservative: it proves from the
// SSA def chains that the loop runs exactly n = limit - init iterations with
// the counter advancing by +1, and fully unrolls (k = n, small n, bounded
// body size) by cloning the body k-1 times with interior tests elided
// (sound because i ≡ init (mod k) and k | n make every elided test true),
// rewriting each "loop <= n" annotation to the residual bound n/k = 1. The
// rewrite is recorded in an UnrollCertificate that check_unroll_certificate
// verifies before the IPET engine or the runtime monitor consume the new
// bounds.
#include <algorithm>
#include <map>
#include <optional>

#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"

namespace vc::ssa {

using minic::BinOp;
using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::kNoBlock;
using rtl::kNoVReg;
using rtl::Opcode;
using rtl::VReg;

namespace {

constexpr std::size_t kBodyBudget = 128;  // cloned instrs per loop, max

struct Candidate {
  BlockId header = 0;
  BlockId pre = 0;
  BlockId latch = 0;
  BlockId body_entry = 0;
  long long trip = 0;  // n
  int factor = 0;      // k
  std::vector<BlockId> loop_blocks;  // sorted, includes header
  std::vector<AnnotAnchor> annots;   // every "loop <= n" site in the loop
};

std::optional<long long> const_of(const Function& fn,
                                  const std::vector<detail::DefSite>& sites,
                                  VReg v) {
  const Instr* d =
      detail::def_instr(fn, sites, detail::chase_movs(fn, sites, v));
  if (d == nullptr || d->op != Opcode::LdI) return std::nullopt;
  return d->int_imm;
}

bool match_loop(const Function& fn, const Loop& loop,
                const std::vector<std::vector<BlockId>>& preds,
                const std::vector<detail::DefSite>& sites, Candidate* out) {
  const BlockId h = loop.header;
  const auto& hi = fn.blocks[h].instrs;
  if (hi.back().op != Opcode::BranchCmp || hi.back().bin_op != BinOp::ICmpLt)
    return false;
  if (preds[h].size() != 2 || loop.latches.size() != 1) return false;
  const BlockId latch = loop.latches[0];
  if (latch == h) return false;
  BlockId pre = kNoBlock;
  for (BlockId p : preds[h])
    if (p != latch) pre = p;
  if (pre == kNoBlock || loop.contains(pre)) return false;
  if (fn.blocks[latch].instrs.back().op != Opcode::Jump) return false;

  const Instr& term = hi.back();
  if (!loop.contains(term.target) || loop.contains(term.target2)) return false;
  const BlockId body_entry = term.target;
  if (body_entry == h) return false;

  // Header: phis, then optionally pure instructions depending on nothing
  // defined inside the loop (they stay in the header, which keeps dominating
  // the clones), then the test.
  std::size_t n_phi = 0;
  while (n_phi + 1 < hi.size() && hi[n_phi].op == Opcode::Phi) ++n_phi;
  for (std::size_t i = n_phi; i + 1 < hi.size(); ++i) {
    const Instr& ins = hi[i];
    if (!ins.is_pure()) return false;
    for (VReg u : ins.uses()) {
      const auto& s = sites[u];
      if (s.block == kNoBlock) continue;
      if (s.block == h && fn.blocks[h].instrs[s.index].op == Opcode::Phi)
        return false;
      if (s.block != h && loop.contains(s.block)) return false;
    }
  }

  // Counter: a header phi advanced by exactly +1 each iteration, between
  // constant init and constant limit.
  const VReg iv = detail::chase_movs(fn, sites, term.src1);
  const Instr* iv_def = detail::def_instr(fn, sites, iv);
  if (iv_def == nullptr || iv_def->op != Opcode::Phi || sites[iv].block != h)
    return false;
  VReg init_v = kNoVReg, next_v = kNoVReg;
  for (const rtl::PhiArg& a : iv_def->phi_args) {
    if (a.pred == pre) init_v = a.src;
    if (a.pred == latch) next_v = a.src;
  }
  if (init_v == kNoVReg || next_v == kNoVReg) return false;
  const auto init_c = const_of(fn, sites, init_v);
  const auto limit_c = const_of(fn, sites, term.src2);
  if (!init_c || !limit_c) return false;
  const Instr* nd =
      detail::def_instr(fn, sites, detail::chase_movs(fn, sites, next_v));
  if (nd == nullptr || nd->op != Opcode::Bin || nd->bin_op != BinOp::IAdd)
    return false;
  const VReg a1 = detail::chase_movs(fn, sites, nd->src1);
  const VReg a2 = detail::chase_movs(fn, sites, nd->src2);
  const bool inc_ok = (a1 == iv && const_of(fn, sites, a2) == 1) ||
                      (a2 == iv && const_of(fn, sites, a1) == 1);
  if (!inc_ok) return false;

  const long long n = *limit_c - *init_c;
  if (n <= 0) return false;

  // Only the header may leave the loop, and every annotation in the loop
  // must be this loop's bound (so the certificate's conservation law —
  // nothing else changed — is exact).
  std::size_t body_size = 0;
  std::vector<AnnotAnchor> annots;
  for (BlockId b : loop.blocks) {
    if (b != h) {
      for (BlockId s : fn.blocks[b].successors())
        if (!loop.contains(s)) return false;
      body_size += fn.blocks[b].instrs.size();
    }
    for (std::uint32_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
      const Instr& ins = fn.blocks[b].instrs[i];
      if (ins.op != Opcode::Annot) continue;
      if (detail::parse_loop_bound(ins.annot_format) != n) return false;
      annots.push_back({b, i});
    }
  }
  if (annots.empty()) return false;  // unannotated loops keep their shape

  // Full unrolling only (k = n): a partial factor keeps the back-edge test
  // and the counter while paying the code size, which measures as a net
  // loss on this machine model — the fused compare-and-branch makes loop
  // overhead cheap. Collapsing a short counted loop to one straight-line
  // body (one residual test) is the case that pays.
  const int k = static_cast<int>(n);
  if (n < 2 || n > 8 || body_size * static_cast<std::size_t>(k) > kBodyBudget)
    return false;

  out->header = h;
  out->pre = pre;
  out->latch = latch;
  out->body_entry = body_entry;
  out->trip = n;
  out->factor = k;
  out->loop_blocks = loop.blocks;
  out->annots = std::move(annots);
  return true;
}

void unroll_one(Function& fn, const Candidate& c, UnrollCertificate* cert) {
  const int k = c.factor;
  const long long residual = c.trip / k;
  const std::string new_format = "loop <= " + std::to_string(residual);

  UnrollLoopCert row;
  row.function = fn.name;
  row.header = c.header;
  row.factor = k;
  row.original_bound = c.trip;
  row.residual_bound = residual;
  row.old_format = "loop <= " + std::to_string(c.trip);
  row.new_format = new_format;
  row.before_anchors = c.annots;

  // Body blocks (everything but the header), and the values they define.
  std::vector<BlockId> body;
  for (BlockId b : c.loop_blocks)
    if (b != c.header) body.push_back(b);
  std::vector<char> body_def(fn.vregs.size(), 0);
  for (BlockId b : body)
    for (const Instr& ins : fn.blocks[b].instrs)
      if (auto d = ins.def()) body_def[*d] = 1;

  // Header phi table: dst -> latch-side incoming value.
  std::map<VReg, VReg> latch_arg;
  for (const Instr& ins : fn.blocks[c.header].instrs) {
    if (ins.op != Opcode::Phi) break;
    for (const rtl::PhiArg& a : ins.phi_args)
      if (a.pred == c.latch) latch_arg[ins.dst] = a.src;
  }

  // Rewrite copy 0's annotations in place (their anchors keep positions).
  for (const AnnotAnchor& a : c.annots) {
    fn.blocks[a.block].instrs[a.index].annot_format = new_format;
    row.after_anchors.push_back(a);
  }

  // Per-copy state. Copy 0 is the original body: identity maps.
  std::vector<std::map<BlockId, BlockId>> bmaps(1);   // block renames
  std::vector<std::map<VReg, VReg>> vmaps(1);         // body-def renames
  // headervals[j][x]: the name copy j reads where copy 0 reads header phi x.
  std::vector<std::map<VReg, VReg>> headervals(1);
  for (BlockId b : body) bmaps[0][b] = b;
  for (BlockId b : body)
    for (const Instr& ins : fn.blocks[b].instrs)
      if (auto d = ins.def()) vmaps[0][*d] = *d;
  for (const auto& [dst, src] : latch_arg) headervals[0][dst] = dst;

  // The latch-side value of header phi x, in copy j's names: what the next
  // copy (or the header, after the last copy) receives for x.
  const auto latch_val_in_copy = [&](int j, VReg x) -> VReg {
    const VReg l = latch_arg.at(x);
    if (l < body_def.size() && body_def[l]) return vmaps[j].at(l);
    const auto hv = headervals[j].find(l);
    if (hv != headervals[j].end()) return hv->second;
    return l;  // loop-invariant
  };

  for (int j = 1; j < k; ++j) {
    std::map<VReg, VReg> vmap;
    for (VReg v = 0; v < body_def.size(); ++v)
      if (body_def[v]) vmap[v] = fn.new_vreg(fn.vregs[v]);

    std::map<VReg, VReg> headerval;
    for (const auto& [dst, src] : latch_arg)
      headerval[dst] = latch_val_in_copy(j - 1, dst);

    const auto resolve = [&](VReg v) -> VReg {
      if (v < body_def.size() && body_def[v]) return vmap.at(v);
      const auto hv = headerval.find(v);
      if (hv != headerval.end()) return hv->second;
      return v;
    };

    std::map<BlockId, BlockId> bmap;
    for (BlockId b : body)
      bmap[b] = static_cast<BlockId>(fn.blocks.size() + bmap.size());
    const BlockId prev_latch = bmaps[j - 1].at(c.latch);

    for (BlockId b : body) {
      rtl::BasicBlock nb;
      nb.instrs.reserve(fn.blocks[b].instrs.size());
      for (const Instr& orig : fn.blocks[b].instrs) {
        Instr ins = orig;
        if (ins.op == Opcode::Phi) {
          // Body-internal phi: remap preds into this copy; the header edge
          // becomes the previous copy's latch, carrying the value the
          // header edge carried, resolved into this copy's context.
          ins.dst = vmap.at(ins.dst);
          for (rtl::PhiArg& a : ins.phi_args) {
            if (a.pred == c.header) {
              a.pred = prev_latch;
              const auto hv = headerval.find(a.src);
              a.src = hv != headerval.end() ? hv->second : a.src;
            } else {
              a.pred = bmap.at(a.pred);
              a.src = resolve(a.src);
            }
          }
          std::sort(ins.phi_args.begin(), ins.phi_args.end(),
                    [](const rtl::PhiArg& x, const rtl::PhiArg& y) {
                      return x.pred < y.pred;
                    });
        } else {
          detail::rewrite_uses(ins, resolve);
          if (auto d = ins.def()) ins.dst = vmap.at(*d);
          if (ins.op == Opcode::Jump || ins.op == Opcode::Branch ||
              ins.op == Opcode::BranchCmp) {
            // Only the latch targets the header; the chain is fixed below.
            if (ins.target != c.header) ins.target = bmap.at(ins.target);
            if (ins.op != Opcode::Jump && ins.target2 != c.header)
              ins.target2 = bmap.at(ins.target2);
          }
        }
        nb.instrs.push_back(std::move(ins));
      }
      fn.blocks.push_back(std::move(nb));
    }

    // Anchors of this copy: same in-block indices, cloned blocks.
    for (const AnnotAnchor& a : c.annots)
      row.after_anchors.push_back({bmap.at(a.block), a.index});

    bmaps.push_back(std::move(bmap));
    vmaps.push_back(std::move(vmap));
    headervals.push_back(std::move(headerval));
  }

  // Chain the copies: copy j's latch falls through to copy j+1's body entry
  // (the elided interior tests); only the last copy jumps back to the header.
  for (int j = 0; j < k - 1; ++j) {
    Instr& term = fn.blocks[bmaps[j].at(c.latch)].instrs.back();
    term.target = bmaps[j + 1].at(c.body_entry);
  }

  // Header phis: the back edge now arrives from the last copy's latch with
  // the last copy's values.
  const BlockId last_latch = bmaps[k - 1].at(c.latch);
  for (Instr& ins : fn.blocks[c.header].instrs) {
    if (ins.op != Opcode::Phi) break;
    for (rtl::PhiArg& a : ins.phi_args) {
      if (a.pred != c.latch) continue;
      a.pred = last_latch;
      a.src = latch_val_in_copy(k - 1, ins.dst);
    }
    std::sort(ins.phi_args.begin(), ins.phi_args.end(),
              [](const rtl::PhiArg& x, const rtl::PhiArg& y) {
                return x.pred < y.pred;
              });
  }

  cert->loops.push_back(std::move(row));
}

}  // namespace

bool loop_unrolling(Function& fn, UnrollCertificate* cert) {
  if (!has_phis(fn)) return false;  // SSA passes only run inside the bracket
  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);
  const LoopForest forest = find_loops(fn, idom, preds);
  const auto sites = detail::def_sites(fn);

  // Innermost loops only; disjoint, so one analysis round serves them all.
  std::vector<char> has_child(forest.loops.size(), 0);
  for (const Loop& l : forest.loops)
    if (l.parent >= 0) has_child[l.parent] = 1;

  bool changed = false;
  for (std::size_t i = 0; i < forest.loops.size(); ++i) {
    if (has_child[i]) continue;
    Candidate c;
    if (!match_loop(fn, forest.loops[i], preds, sites, &c)) continue;
    unroll_one(fn, c, cert);
    changed = true;
  }
  return changed;
}

}  // namespace vc::ssa
