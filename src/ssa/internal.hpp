// Shared helpers for the SSA passes (not part of the public API).
#pragma once

#include "rtl/analysis.hpp"
#include "rtl/rtl.hpp"

namespace vc::ssa::detail {

/// Applies `f` to every vreg operand read by `ins`, storing the result back.
/// Mirrors Instr::uses() exactly (annot args and phi args included).
template <class F>
void rewrite_uses(rtl::Instr& ins, F f) {
  using rtl::Opcode;
  switch (ins.op) {
    case Opcode::Mov:
    case Opcode::Un:
    case Opcode::Branch:
    case Opcode::LoadGlobalIdx:
    case Opcode::StoreGlobal:
    case Opcode::StoreStack:
      ins.src1 = f(ins.src1);
      break;
    case Opcode::Bin:
    case Opcode::BranchCmp:
    case Opcode::StoreGlobalIdx:
      ins.src1 = f(ins.src1);
      ins.src2 = f(ins.src2);
      break;
    case Opcode::Ret:
      if (ins.src1 != rtl::kNoVReg) ins.src1 = f(ins.src1);
      break;
    case Opcode::Annot:
      for (rtl::AnnotOperand& a : ins.annot_args)
        if (!a.is_slot) a.vreg = f(a.vreg);
      break;
    case Opcode::Phi:
      for (rtl::PhiArg& a : ins.phi_args) a.src = f(a.src);
      break;
    default:
      break;
  }
}

/// Definition site of every vreg: (block, index) or block == kNoBlock if the
/// vreg has no definition. Meaningful on SSA-form functions (single def).
struct DefSite {
  rtl::BlockId block = rtl::kNoBlock;
  std::uint32_t index = 0;
};

inline std::vector<DefSite> def_sites(const rtl::Function& fn) {
  std::vector<DefSite> sites(fn.vregs.size());
  for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b)
    for (std::uint32_t i = 0; i < fn.blocks[b].instrs.size(); ++i)
      if (auto d = fn.blocks[b].instrs[i].def()) sites[*d] = {b, i};
  return sites;
}

inline const rtl::Instr* def_instr(const rtl::Function& fn,
                                   const std::vector<DefSite>& sites,
                                   rtl::VReg v) {
  if (v >= sites.size() || sites[v].block == rtl::kNoBlock) return nullptr;
  return &fn.blocks[sites[v].block].instrs[sites[v].index];
}

/// Follows Mov chains to the originating vreg (SSA form: chains are acyclic).
inline rtl::VReg chase_movs(const rtl::Function& fn,
                            const std::vector<DefSite>& sites, rtl::VReg v) {
  for (;;) {
    const rtl::Instr* d = def_instr(fn, sites, v);
    if (d == nullptr || d->op != rtl::Opcode::Mov) return v;
    v = d->src1;
  }
}

/// Parses a loop-bound annotation "loop <= N"; returns N or -1.
inline long long parse_loop_bound(const std::string& format) {
  const std::string prefix = "loop <= ";
  if (format.rfind(prefix, 0) != 0) return -1;
  long long n = 0;
  if (format.size() == prefix.size()) return -1;
  for (std::size_t i = prefix.size(); i < format.size(); ++i) {
    if (format[i] < '0' || format[i] > '9') return -1;
    n = n * 10 + (format[i] - '0');
    if (n > 1'000'000'000LL) return -1;
  }
  return n;
}

}  // namespace vc::ssa::detail
