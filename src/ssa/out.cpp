// Out-of-SSA lowering: interference-guided phi-web coalescing, then
// critical-edge splitting plus per-edge parallel-copy sequentialization
// (cycle-safe: the swap/lost-copy problems are handled with a class-correct
// temporary). Coalescing matters for code quality, not just cleanliness: a
// loop-carried phi whose web stays split costs one copy per iteration inside
// the loop — and keeps the split back-edge block alive, adding a taken jump
// per iteration that branch tunneling cannot remove.
#include <algorithm>
#include <unordered_set>

#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"
#include "support/bitset.hpp"
#include "support/strings.hpp"

namespace vc::ssa {

using rtl::BasicBlock;
using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

namespace {

/// Merges each phi with its arguments under one name wherever the values'
/// live ranges do not interfere, so the per-edge copies the lowering below
/// inserts degenerate to dst == src no-ops. Interference uses phi-aware
/// liveness: a phi argument is a use at the end of its predecessor (not
/// live into the phi's block), and a phi destination is defined at block
/// top, all phis of a run in parallel. The block-level liveness the scalar
/// passes use would treat every latch argument as live across the whole
/// loop entry and forbid exactly the loop-carried merges that matter.
void coalesce_phi_webs(Function& fn) {
  const std::size_t nb = fn.blocks.size();
  const std::size_t nv = fn.vregs.size();

  // Merge candidates: every value appearing in a phi (dst or arg).
  DenseBitset web(nv);
  bool any = false;
  for (const BasicBlock& bb : fn.blocks)
    for (const Instr& ins : bb.instrs) {
      if (ins.op != Opcode::Phi) break;
      any = true;
      web.set(ins.dst);
      for (const rtl::PhiArg& a : ins.phi_args) web.set(a.src);
    }
  if (!any) return;

  // Phi-aware liveness fixpoint.
  std::vector<DenseBitset> gen(nb, DenseBitset(nv));
  std::vector<DenseBitset> kill(nb, DenseBitset(nv));
  std::vector<DenseBitset> phi_out(nb, DenseBitset(nv));  // args, at pred end
  for (BlockId b = 0; b < nb; ++b) {
    for (const Instr& ins : fn.blocks[b].instrs) {
      if (ins.op == Opcode::Phi) {
        kill[b].set(ins.dst);
        for (const rtl::PhiArg& a : ins.phi_args) phi_out[a.pred].set(a.src);
        continue;
      }
      for (VReg u : ins.uses())
        if (!kill[b].test(u)) gen[b].set(u);
      if (auto d = ins.def()) kill[b].set(*d);
    }
  }
  std::vector<DenseBitset> live_in(nb, DenseBitset(nv));
  std::vector<DenseBitset> live_out(nb, DenseBitset(nv));
  for (bool changed = true; changed;) {
    changed = false;
    for (BlockId b = static_cast<BlockId>(nb); b-- > 0;) {
      DenseBitset out = phi_out[b];
      for (BlockId s : fn.blocks[b].successors()) out.union_with(live_in[s]);
      DenseBitset in = out;
      in.subtract(kill[b]);
      in.union_with(gen[b]);
      if (out != live_out[b]) { live_out[b] = std::move(out); changed = true; }
      if (in != live_in[b]) { live_in[b] = std::move(in); changed = true; }
    }
  }

  // Interference among web members (others cannot be merged anyway).
  std::unordered_set<std::uint64_t> conflict;
  const auto pair_key = [](VReg a, VReg b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  const auto mark_against_live = [&](VReg d, const DenseBitset& live) {
    if (!web.test(d)) return;
    live.for_each([&](std::size_t v) {
      if (v != d && web.test(v)) conflict.insert(pair_key(d, static_cast<VReg>(v)));
    });
  };
  for (BlockId b = 0; b < nb; ++b) {
    DenseBitset live = live_out[b];
    const auto& instrs = fn.blocks[b].instrs;
    std::size_t i = instrs.size();
    while (i-- > 0) {
      const Instr& ins = instrs[i];
      if (ins.op == Opcode::Phi) break;
      if (auto d = ins.def()) {
        mark_against_live(*d, live);
        live.reset(*d);
      }
      for (VReg u : ins.uses()) live.set(u);
    }
    // The phi run defines every dst in parallel at block top: each dst
    // interferes with whatever is live just below the run. The args died
    // at their predecessors' ends and are not live here.
    if (i != static_cast<std::size_t>(-1))
      for (std::size_t k = 0; k <= i; ++k)
        mark_against_live(instrs[k].dst, live);
  }

  // Greedy web merging with path-halving union-find; classes merge only
  // when no member pair interferes.
  std::vector<VReg> parent(nv);
  for (VReg v = 0; v < nv; ++v) parent[v] = v;
  const auto find = [&](VReg v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  std::vector<std::vector<VReg>> members(nv);
  web.for_each([&](std::size_t v) { members[v].push_back(static_cast<VReg>(v)); });
  for (const BasicBlock& bb : fn.blocks)
    for (const Instr& ins : bb.instrs) {
      if (ins.op != Opcode::Phi) break;
      for (const rtl::PhiArg& a : ins.phi_args) {
        const VReg rd = find(ins.dst);
        const VReg rs = find(a.src);
        if (rd == rs || fn.vregs[rd] != fn.vregs[rs]) continue;
        bool clash = false;
        for (VReg x : members[rd]) {
          for (VReg y : members[rs])
            if (conflict.count(pair_key(x, y)) != 0) { clash = true; break; }
          if (clash) break;
        }
        if (clash) continue;
        parent[rs] = rd;
        members[rd].insert(members[rd].end(), members[rs].begin(),
                           members[rs].end());
        members[rs].clear();
      }
    }

  for (BasicBlock& bb : fn.blocks)
    for (Instr& ins : bb.instrs) {
      if (ins.def()) ins.dst = find(ins.dst);
      detail::rewrite_uses(ins, [&](VReg u) { return find(u); });
    }
}

/// Emits `dst_i <- src_i` copies whose combined effect is the simultaneous
/// assignment of all pairs, into `out`. Copies with dst == src are dropped;
/// cycles are broken by saving one cycle member to a fresh temp.
void sequentialize_parallel_copy(Function& fn,
                                 std::vector<std::pair<VReg, VReg>> pending,
                                 std::vector<Instr>* out) {
  pending.erase(std::remove_if(pending.begin(), pending.end(),
                               [](const auto& c) { return c.first == c.second; }),
                pending.end());
  const auto emit = [&](VReg dst, VReg src) {
    Instr mov;
    mov.op = Opcode::Mov;
    mov.dst = dst;
    mov.src1 = src;
    out->push_back(mov);
  };
  while (!pending.empty()) {
    bool progressed = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const VReg dst = pending[i].first;
      bool blocked = false;
      for (const auto& c : pending)
        if (c.second == dst) { blocked = true; break; }
      if (blocked) continue;
      emit(dst, pending[i].second);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
      break;
    }
    if (progressed) continue;
    // Every pending dst is also a pending src: pure cycles. Save one dst's
    // old value to a temp, rename it as a source, and retry.
    const VReg d = pending.front().first;
    const VReg t = fn.new_vreg(fn.vregs[d]);
    emit(t, d);
    for (auto& c : pending)
      if (c.second == d) c.second = t;
  }
}

}  // namespace

bool destroy_ssa(Function& fn) {
  if (!has_phis(fn)) return false;

  // Coalesce on the pristine SSA function (liveness and interference are
  // cleanest there); the splitting/lowering below then mostly inserts
  // nothing, and fully-coalesced split blocks reduce to bare jumps that
  // branch tunneling removes in the following scalar round.
  coalesce_phi_webs(fn);

  // Split critical edges into phi blocks: an edge from a multi-successor
  // block into a multi-predecessor block cannot carry copies in either
  // endpoint, so it gets its own block.
  auto preds = rtl::predecessors(fn);
  const std::size_t n_orig = fn.blocks.size();
  for (BlockId v = 0; v < n_orig; ++v) {
    if (fn.blocks[v].instrs.front().op != Opcode::Phi) continue;
    std::vector<BlockId> ps = preds[v];
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    for (BlockId p : ps) {
      if (fn.blocks[p].successors().size() < 2) continue;
      const BlockId mid = static_cast<BlockId>(fn.blocks.size());
      BasicBlock bb;
      Instr jmp;
      jmp.op = Opcode::Jump;
      jmp.target = v;
      bb.instrs.push_back(jmp);
      fn.blocks.push_back(std::move(bb));
      Instr& term = fn.blocks[p].instrs.back();
      if (term.target == v) term.target = mid;
      if (term.op != Opcode::Jump && term.target2 == v) term.target2 = mid;
      for (Instr& ins : fn.blocks[v].instrs) {
        if (ins.op != Opcode::Phi) break;
        for (rtl::PhiArg& a : ins.phi_args)
          if (a.pred == p) a.pred = mid;
      }
    }
  }

  // Lower each block's phi run as one parallel copy per incoming edge,
  // placed before the predecessor's terminator.
  preds = rtl::predecessors(fn);
  for (BlockId v = 0; v < fn.blocks.size(); ++v) {
    if (fn.blocks[v].instrs.front().op != Opcode::Phi) continue;
    std::size_t n_phi = 0;
    while (n_phi < fn.blocks[v].instrs.size() &&
           fn.blocks[v].instrs[n_phi].op == Opcode::Phi)
      ++n_phi;
    std::vector<BlockId> ps = preds[v];
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    for (BlockId p : ps) {
      std::vector<std::pair<VReg, VReg>> copies;
      for (std::size_t k = 0; k < n_phi; ++k) {
        const Instr& phi = fn.blocks[v].instrs[k];
        const rtl::PhiArg* hit = nullptr;
        for (const rtl::PhiArg& a : phi.phi_args)
          if (a.pred == p) { hit = &a; break; }
        check(hit != nullptr, "phi lacks an arg for a predecessor edge");
        copies.emplace_back(phi.dst, hit->src);
      }
      std::vector<Instr> seq;
      sequentialize_parallel_copy(fn, std::move(copies), &seq);
      auto& pi = fn.blocks[p].instrs;
      pi.insert(pi.end() - 1, seq.begin(), seq.end());
    }
    auto& vi = fn.blocks[v].instrs;
    vi.erase(vi.begin(), vi.begin() + static_cast<std::ptrdiff_t>(n_phi));
  }
  return true;
}

}  // namespace vc::ssa
