// Global value numbering over SSA: dominator-scoped hash-consing with
// integrated copy propagation. Untrusted; checked by check_ssa_equivalence
// plus the differential oracle.
#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>

#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"

namespace vc::ssa {

using minic::BinOp;
using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

namespace {

bool is_commutative_int(BinOp op) {
  switch (op) {
    case BinOp::IAdd:
    case BinOp::IMul:
    case BinOp::IAnd:
    case BinOp::IOr:
    case BinOp::IXor:
    case BinOp::ICmpEq:
    case BinOp::ICmpNe:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool global_value_numbering(Function& fn) {
  if (!has_phis(fn)) return false;  // SSA passes only run inside the bracket

  const auto idom = rtl::immediate_dominators(fn);
  const auto children = rtl::dominator_children(idom);

  // vn[v] = representative vreg of v's value class. Assigned once per vreg
  // (SSA), so value equalities are globally valid; *availability* of the
  // representative at a point is guaranteed by the scoped table below.
  std::vector<VReg> vn(fn.vregs.size());
  for (VReg v = 0; v < vn.size(); ++v) vn[v] = v;
  const auto find = [&](VReg v) { return vn[v]; };

  std::unordered_map<std::string, VReg> table;
  std::vector<std::string> undo;

  bool changed = false;

  const auto key_of = [&](const Instr& ins, BlockId b) -> std::string {
    switch (ins.op) {
      case Opcode::LdI:
        return "ldi:" + std::to_string(ins.int_imm);
      case Opcode::LdF: {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &ins.f64_imm, sizeof(bits));
        return "ldf:" + std::to_string(bits);
      }
      case Opcode::Un:
        return "un:" + std::to_string(static_cast<int>(ins.un_op)) + ":" +
               std::to_string(find(ins.src1));
      case Opcode::Bin: {
        // Division can trap; it is an anchored event for the SSA
        // equivalence checker, so it is never value-numbered away.
        if (ins.bin_op == BinOp::IDiv || ins.bin_op == BinOp::IRem)
          return {};
        VReg a = find(ins.src1);
        VReg b2 = find(ins.src2);
        // Integer commutative ops canonicalize by value number; float
        // operands are never reordered (bit-exact results are part of the
        // differential oracle).
        if (is_commutative_int(ins.bin_op) && a > b2) std::swap(a, b2);
        return "bin:" + std::to_string(static_cast<int>(ins.bin_op)) + ":" +
               std::to_string(a) + ":" + std::to_string(b2);
      }
      case Opcode::GetParam:
        return "par:" + std::to_string(ins.param_index);
      case Opcode::Phi: {
        std::string k = "phi:" + std::to_string(b);
        for (const rtl::PhiArg& a : ins.phi_args)
          k += ":" + std::to_string(a.pred) + "," + std::to_string(find(a.src));
        return k;
      }
      default:
        return {};
    }
  };

  struct Frame {
    BlockId block;
    std::size_t child = 0;
    std::size_t undo_mark = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0, 0});
  while (!stack.empty()) {
    Frame& fr = stack.back();
    const BlockId b = fr.block;
    if (fr.child == 0) {
      fr.undo_mark = undo.size();
      for (Instr& ins : fn.blocks[b].instrs) {
        // Copy propagation: route every operand to its representative.
        detail::rewrite_uses(ins, [&](VReg v) {
          const VReg r = find(v);
          if (r != v) changed = true;
          return r;
        });
        if (ins.op == Opcode::Mov) {
          vn[ins.dst] = find(ins.src1);
          continue;
        }
        const std::string key = key_of(ins, b);
        if (key.empty()) continue;
        const auto it = table.find(key);
        if (it != table.end()) {
          // Redundant. A phi is left in place (its dst just joins the
          // representative's class — a mid-phi-run Mov would break the
          // phis-at-head invariant); a plain instruction becomes a copy.
          const VReg rep = it->second;
          vn[ins.dst] = find(rep);
          if (ins.op != Opcode::Phi) {
            Instr mov;
            mov.op = Opcode::Mov;
            mov.dst = ins.dst;
            mov.src1 = rep;
            ins = mov;
            changed = true;
          }
        } else {
          table.emplace(key, ins.dst);
          undo.push_back(key);
        }
      }
    }
    if (fr.child < children[b].size()) {
      const BlockId c = children[b][fr.child++];
      stack.push_back({c, 0, 0});
      continue;
    }
    while (undo.size() > fr.undo_mark) {
      table.erase(undo.back());
      undo.pop_back();
    }
    stack.pop_back();
  }

  return changed;
}

}  // namespace vc::ssa
