// Human-readable WCET report, in the spirit of an aiT result sheet:
// the bound, the loop table (bounds and their provenance), per-block costs
// with disassembly anchors, and analysis warnings.
#pragma once

#include <string>

#include "mach/program.hpp"
#include "wcet/wcet.hpp"

namespace vc::wcet {

/// Formats `result` for function `fn_name` of `image` as a text report.
std::string format_report(const mach::Image& image, const std::string& fn_name,
                          const WcetResult& result);

}  // namespace vc::wcet
