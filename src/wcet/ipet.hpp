// Implicit Path Enumeration (IPET) WCET engine.
//
// Where the structural engine (wcet.cpp) computes a longest path over the
// collapsed loop nest, this engine phrases the same question as an integer
// linear program over CFG edge frequencies — the formulation at the core of
// aiT, the analyzer the paper's numbers come from: maximize the sum of
// block cost times block frequency, subject to flow conservation, loop
// bounds, and infeasible-edge facts from the value analysis (which is where
// annotation-derived range facts become frequency caps the structural
// engine cannot express).
//
// The ILP is solved by src/ilp (exact rationals, untrusted simplex +
// branch-and-bound); the returned flow assignment is re-checked against
// every constraint by the independent verifier before the bound is
// believed. A failed check is a hard error naming the function.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mach/timing.hpp"
#include "wcet/cfg.hpp"
#include "wcet/value_analysis.hpp"

namespace vc::wcet {

/// Result of the IPET engine for one function.
struct IpetInfo {
  std::uint64_t wcet_cycles = 0;
  int lp_vars = 0;             ///< edge-frequency variables (incl. virtual)
  int lp_constraints = 0;
  std::int64_t simplex_pivots = 0;
  std::int64_t bnb_nodes = 0;
  /// Edges pinned to frequency 0 by value-analysis infeasibility (these are
  /// the constraints the structural engine cannot see).
  int capped_edges = 0;
  /// The optimal flow passed the independent certificate check. Always true
  /// when analyze_ipet returns (failure throws); recorded for reporting.
  bool certificate_verified = false;
  /// Optimal execution count per block (by start address) — the witness
  /// flow behind the bound.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> block_freq;
};

/// Inputs shared with the structural engine: the reconstructed CFG, the
/// value-analysis result, per-loop iteration bounds (index-aligned with
/// cfg.loops), per-block cycle costs, and the persistence charges.
IpetInfo analyze_ipet(const Cfg& cfg, const ValueAnalysisResult& values,
                      const std::vector<std::int64_t>& loop_bound,
                      const std::vector<std::uint64_t>& block_cost,
                      const std::vector<std::uint64_t>& loop_ps_charge,
                      std::uint64_t function_ps_charge,
                      const std::string& fn_name);

}  // namespace vc::wcet
