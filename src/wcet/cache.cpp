#include "wcet/cache.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace vc::wcet {
namespace {

/// Abstract must-cache: line address -> maximal age (0-based), kept
/// separately for the instruction (0) and data (1) caches. A line is
/// guaranteed present iff it has an entry (age < ways by invariant).
struct MustState {
  bool reachable = false;
  std::map<std::uint32_t, int> age[2];

  bool operator==(const MustState& o) const {
    return reachable == o.reachable && age[0] == o.age[0] && age[1] == o.age[1];
  }
};

MustState join(const MustState& a, const MustState& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  MustState out;
  out.reachable = true;
  for (int space = 0; space < 2; ++space) {
    for (const auto& [line, age_a] : a.age[space]) {
      auto it = b.age[space].find(line);
      if (it != b.age[space].end())
        out.age[space][line] = std::max(age_a, it->second);
    }
  }
  return out;
}

/// One abstract access event: either a precise line or an imprecise range.
struct Event {
  bool is_data = false;
  bool precise = false;
  std::uint32_t line = 0;                 // precise
  std::uint32_t range_lo = 0, range_hi = 0;  // imprecise: line range
  int daccess_index = -1;                 // index into values.accesses
  int iline_index = -1;                   // index into result ilines[block]
};

class CacheAnalyzer {
 public:
  CacheAnalyzer(const Cfg& cfg, const ValueAnalysisResult& values,
                const mach::CacheConfig& icfg, const mach::CacheConfig& dcfg)
      : cfg_(cfg), values_(values), icfg_(icfg), dcfg_(dcfg) {}

  CacheAnalysisResult run() {
    build_events();
    fixpoint();
    classify();
    persistence();
    return std::move(result_);
  }

 private:
  void build_events() {
    const std::size_t n = cfg_.blocks.size();
    result_.ilines.assign(n, {});
    result_.daccess.assign(values_.accesses.size(), AccessClass{});
    events_.assign(n, {});

    // Index data accesses by (block, instr index).
    std::map<std::pair<int, int>, int> daccess_at;
    for (std::size_t i = 0; i < values_.accesses.size(); ++i)
      daccess_at[{values_.accesses[i].block, values_.accesses[i].index}] =
          static_cast<int>(i);

    for (std::size_t b = 0; b < n; ++b) {
      const MachineBlock& bb = cfg_.blocks[b];
      std::uint32_t prev_line = 0xFFFFFFFF;
      for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        const std::uint32_t addr = bb.start + static_cast<std::uint32_t>(i) * 4;
        const std::uint32_t line = icfg_.line_addr(addr);
        if (line != prev_line) {
          prev_line = line;
          Event ev;
          ev.is_data = false;
          ev.precise = true;
          ev.line = line;
          ev.iline_index = static_cast<int>(result_.ilines[b].size());
          ILineEvent ie;
          ie.line_addr = line;
          ie.first_instr = static_cast<int>(i);
          result_.ilines[b].push_back(ie);
          events_[b].push_back(ev);
        }
        auto it = daccess_at.find({static_cast<int>(b), static_cast<int>(i)});
        if (it != daccess_at.end()) {
          const MemAccess& acc = values_.accesses[static_cast<std::size_t>(it->second)];
          Event ev;
          ev.is_data = true;
          ev.daccess_index = it->second;
          if (auto c = acc.address.as_constant()) {
            ev.precise = true;
            ev.line = dcfg_.line_addr(static_cast<std::uint32_t>(*c));
          } else {
            ev.precise = false;
            ev.range_lo = dcfg_.line_addr(static_cast<std::uint32_t>(
                std::max<std::int64_t>(acc.address.lo(), 0)));
            ev.range_hi = dcfg_.line_addr(static_cast<std::uint32_t>(
                std::min<std::int64_t>(acc.address.hi(), 0xFFFFFFFFll)));
          }
          events_[b].push_back(ev);
        }
      }
    }
  }

  void transfer_event(const Event& ev, MustState* s) const {
    const mach::CacheConfig& cfg = ev.is_data ? dcfg_ : icfg_;
    auto& age = s->age[ev.is_data ? 1 : 0];
    if (ev.precise) {
      const std::uint32_t set = cfg.set_of(ev.line);
      auto it = age.find(ev.line);
      const int old_age =
          it != age.end() ? it->second : static_cast<int>(cfg.ways);
      // Lines in the same set younger than the accessed line age by one.
      for (auto& [line, a] : age)
        if (cfg.set_of(line) == set && a < old_age) ++a;
      age[ev.line] = 0;
      // Evict lines whose age reached the associativity.
      for (auto it2 = age.begin(); it2 != age.end();) {
        if (it2->second >= static_cast<int>(cfg.ways))
          it2 = age.erase(it2);
        else
          ++it2;
      }
    } else {
      // Imprecise access: every possibly-touched set ages by one.
      const std::uint64_t span =
          (static_cast<std::uint64_t>(ev.range_hi) - ev.range_lo) /
              cfg.line_bytes +
          1;
      const bool all_sets = span >= cfg.sets;
      std::set<std::uint32_t> sets;
      if (!all_sets) {
        for (std::uint32_t line = ev.range_lo; line <= ev.range_hi;
             line += cfg.line_bytes)
          sets.insert(cfg.set_of(line));
      }
      for (auto it = age.begin(); it != age.end();) {
        if (all_sets || sets.count(cfg.set_of(it->first)) != 0) {
          if (++it->second >= static_cast<int>(cfg.ways)) {
            it = age.erase(it);
            continue;
          }
        }
        ++it;
      }
    }
  }

  void fixpoint() {
    const std::size_t n = cfg_.blocks.size();
    in_.assign(n, MustState{});
    in_[0].reachable = true;

    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < n; ++b) {
        if (!in_[b].reachable) continue;
        MustState s = in_[b];
        for (const Event& ev : events_[b]) transfer_event(ev, &s);
        for (int succ : cfg_.blocks[b].succs) {
          MustState joined = join(in_[static_cast<std::size_t>(succ)], s);
          if (!(joined == in_[static_cast<std::size_t>(succ)])) {
            in_[static_cast<std::size_t>(succ)] = std::move(joined);
            changed = true;
          }
        }
      }
    }
  }

  void classify() {
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      if (!in_[b].reachable) continue;
      MustState s = in_[b];
      for (const Event& ev : events_[b]) {
        const bool hit =
            ev.precise && s.age[ev.is_data ? 1 : 0].count(ev.line) != 0;
        AccessClass cls;
        cls.cls = hit ? CacheClass::AlwaysHit : CacheClass::Miss;
        if (ev.is_data)
          result_.daccess[static_cast<std::size_t>(ev.daccess_index)] = cls;
        else
          result_.ilines[b][static_cast<std::size_t>(ev.iline_index)].cls = cls;
        transfer_event(ev, &s);
      }
    }
  }

  /// The loop-nest path of block b, innermost first, ending with -1
  /// (function scope).
  [[nodiscard]] std::vector<int> scopes_of(int b) const {
    std::vector<int> out;
    int l = cfg_.loop_of[static_cast<std::size_t>(b)];
    while (l != -1) {
      out.push_back(l);
      l = cfg_.loops[static_cast<std::size_t>(l)].parent;
    }
    out.push_back(-1);
    return out;
  }

  /// All blocks belonging to scope (loop index or -1 = whole function).
  [[nodiscard]] std::vector<int> blocks_of_scope(int scope) const {
    if (scope == -1) {
      std::vector<int> all(cfg_.blocks.size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
      return all;
    }
    return cfg_.loops[static_cast<std::size_t>(scope)].blocks;
  }

  void persistence() {
    // Precompute, per scope, the per-set line population and pollution.
    // Scope ids: -1 (function) and every loop index.
    std::vector<int> scopes{-1};
    for (std::size_t i = 0; i < cfg_.loops.size(); ++i)
      scopes.push_back(static_cast<int>(i));

    struct ScopeInfo {
      // Per cache-space (0 = instruction, 1 = data): set -> distinct lines.
      std::map<std::uint32_t, std::set<std::uint32_t>> lines[2];
      std::set<std::uint32_t> polluted[2];
      bool fully_polluted[2] = {false, false};
    };
    std::map<int, ScopeInfo> info;

    for (int scope : scopes) {
      ScopeInfo& si = info[scope];
      for (int b : blocks_of_scope(scope)) {
        for (const Event& ev : events_[static_cast<std::size_t>(b)]) {
          const mach::CacheConfig& cfg = ev.is_data ? dcfg_ : icfg_;
          const int space = ev.is_data ? 1 : 0;
          if (ev.precise) {
            si.lines[space][cfg.set_of(ev.line)].insert(ev.line);
          } else {
            const std::uint64_t span =
                (static_cast<std::uint64_t>(ev.range_hi) - ev.range_lo) /
                    cfg.line_bytes +
                1;
            if (span >= cfg.sets) {
              si.fully_polluted[space] = true;
            } else {
              for (std::uint32_t line = ev.range_lo; line <= ev.range_hi;
                   line += cfg.line_bytes) {
                si.polluted[space].insert(cfg.set_of(line));
                si.lines[space][cfg.set_of(line)].insert(line);
              }
            }
          }
        }
      }
    }

    auto persistent_in = [&](int scope, bool is_data, std::uint32_t line) {
      const mach::CacheConfig& cfg = is_data ? dcfg_ : icfg_;
      const int space = is_data ? 1 : 0;
      const ScopeInfo& si = info.at(scope);
      if (si.fully_polluted[space]) return false;
      const std::uint32_t set = cfg.set_of(line);
      if (si.polluted[space].count(set) != 0) return false;
      auto it = si.lines[space].find(set);
      const std::size_t population = it == si.lines[space].end()
                                         ? 0
                                         : it->second.size();
      return population <= cfg.ways;
    };

    // Upgrade Miss classifications to Persistent at the outermost fitting
    // scope along the access's loop-nest path.
    auto upgrade = [&](int block, bool is_data, std::uint32_t line,
                       AccessClass* cls) {
      if (cls->cls != CacheClass::Miss) return;
      const std::vector<int> path = scopes_of(block);
      // path is innermost-first; search outermost-first.
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (persistent_in(*it, is_data, line)) {
          cls->cls = CacheClass::Persistent;
          cls->scope = *it;
          return;
        }
      }
    };

    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      for (const Event& ev : events_[b]) {
        if (!ev.precise) continue;
        if (ev.is_data)
          upgrade(static_cast<int>(b), true, ev.line,
                  &result_.daccess[static_cast<std::size_t>(ev.daccess_index)]);
        else
          upgrade(static_cast<int>(b), false, ev.line,
                  &result_.ilines[b][static_cast<std::size_t>(ev.iline_index)].cls);
      }
    }
  }

  const Cfg& cfg_;
  const ValueAnalysisResult& values_;
  mach::CacheConfig icfg_;
  mach::CacheConfig dcfg_;
  CacheAnalysisResult result_;
  std::vector<std::vector<Event>> events_;
  std::vector<MustState> in_;
};

}  // namespace

CacheAnalysisResult analyze_caches(const Cfg& cfg,
                                   const ValueAnalysisResult& values,
                                   const mach::MachineConfig& config) {
  return CacheAnalyzer(cfg, values, config.icache, config.dcache).run();
}

}  // namespace vc::wcet
