#include "wcet/value_analysis.hpp"

#include <algorithm>

#include "mach/target.hpp"
#include "machine/machine.hpp"

namespace vc::wcet {

using mach::Image;
using mach::MInstr;
using mach::MOp;

namespace {

constexpr std::uint32_t kEntryR1 = Image::kStackTop - 64;
constexpr std::uint32_t kStackLo = Image::kStackTop - (1u << 16);
constexpr std::uint32_t kStackHi = Image::kStackTop;

bool in_stack(std::int64_t addr) {
  return addr >= kStackLo && addr < kStackHi;
}

Interval u32_interval(const Interval& v) {
  // Addresses are computed with wrap-around u32 arithmetic; our intervals are
  // signed 64-bit. Values stay well within u32 range for valid programs; on
  // overflow fall back to the full range.
  if (v.is_bottom()) return Interval::range(0, 0xFFFFFFFFll);
  if (v.lo() < 0 || v.hi() > 0xFFFFFFFFll)
    return Interval::range(0, 0xFFFFFFFFll);
  return v;
}

}  // namespace

std::uint32_t stack_loc_address(const mach::MLoc& loc) {
  check(loc.kind == mach::MLoc::Kind::StackSlot, "not a stack location");
  return kEntryR1 + static_cast<std::uint32_t>(loc.offset);
}

AbsState AbsState::entry_state(const mach::TargetDesc& desc) {
  AbsState s;
  s.reachable = true;
  for (auto& g : s.gpr) g = Interval::i32_range();
  // Pinned registers (calling convention / linker script facts).
  s.gpr[desc.stack_ptr] = Interval::constant(kEntryR1);
  s.gpr[desc.data_base] = Interval::constant(Image::kDataBase);
  if (desc.zero_gpr >= 0) s.gpr[desc.zero_gpr] = Interval::constant(0);
  return s;
}

AbsState AbsState::join(const AbsState& other) const {
  if (!reachable) return other;
  if (!other.reachable) return *this;
  AbsState out;
  out.reachable = true;
  for (int i = 0; i < 32; ++i) out.gpr[i] = gpr[i].join(other.gpr[i]);
  for (const auto& [addr, v] : stack) {
    auto it = other.stack.find(addr);
    if (it != other.stack.end()) out.stack[addr] = v.join(it->second);
  }
  return out;
}

AbsState AbsState::widen(const AbsState& next) const {
  if (!reachable) return next;
  if (!next.reachable) return *this;
  AbsState out;
  out.reachable = true;
  for (int i = 0; i < 32; ++i) out.gpr[i] = gpr[i].widen(next.gpr[i]);
  for (const auto& [addr, v] : stack) {
    auto it = next.stack.find(addr);
    if (it != next.stack.end()) out.stack[addr] = v.widen(it->second);
  }
  return out;
}

bool AbsState::operator==(const AbsState& other) const {
  return reachable == other.reachable && gpr == other.gpr &&
         stack == other.stack;
}

namespace {

class Analyzer {
 public:
  Analyzer(const Cfg& cfg, const AnnotIndex& annots,
           const mach::TargetDesc& desc)
      : cfg_(cfg), annots_(annots), desc_(desc) {}

  ValueAnalysisResult run() {
    const std::size_t n = cfg_.blocks.size();
    result_.block_in.assign(n, AbsState{});
    result_.block_in[0] = AbsState::entry_state(desc_);

    // Worklist to fixpoint with widening at loop headers.
    std::vector<int> widen_count(n, 0);
    std::vector<bool> in_list(n, false);
    std::vector<int> worklist{0};
    in_list[0] = true;
    while (!worklist.empty()) {
      const int b = worklist.back();
      worklist.pop_back();
      in_list[b] = false;

      AbsState s = result_.block_in[static_cast<std::size_t>(b)];
      if (!s.reachable) continue;
      transfer_block(b, &s, /*record=*/false);

      for (std::size_t k = 0;
           k < cfg_.blocks[static_cast<std::size_t>(b)].succs.size(); ++k) {
        const int succ = cfg_.blocks[static_cast<std::size_t>(b)].succs[k];
        AbsState refined = refine_edge(b, static_cast<int>(k), s);
        AbsState& dest = result_.block_in[static_cast<std::size_t>(succ)];
        AbsState joined = dest.join(refined);
        const bool is_header = is_loop_header(succ);
        if (is_header && widen_count[static_cast<std::size_t>(succ)] > 2)
          joined = dest.widen(joined);
        if (!(joined == dest)) {
          dest = joined;
          if (is_header) ++widen_count[static_cast<std::size_t>(succ)];
          if (!in_list[static_cast<std::size_t>(succ)]) {
            in_list[static_cast<std::size_t>(succ)] = true;
            worklist.push_back(succ);
          }
        }
      }
    }

    // Final recording pass: memory accesses, compare facts, edge states.
    for (std::size_t b = 0; b < n; ++b) {
      AbsState s = result_.block_in[b];
      if (!s.reachable) continue;
      transfer_block(static_cast<int>(b), &s, /*record=*/true);
      for (std::size_t k = 0; k < cfg_.blocks[b].succs.size(); ++k) {
        const int succ = cfg_.blocks[b].succs[k];
        result_.edge_out[{static_cast<int>(b), succ}] =
            refine_edge(static_cast<int>(b), static_cast<int>(k), s);
      }
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] bool is_loop_header(int block) const {
    for (const auto& loop : cfg_.loops)
      if (loop.header == block) return true;
    return false;
  }

  void apply_constraints(std::uint32_t addr, AbsState* s) const {
    auto it = annots_.constraints.find(addr);
    if (it == annots_.constraints.end()) return;
    for (const ValueConstraint& c : it->second) {
      if (c.loc.kind == mach::MLoc::Kind::Gpr) {
        Interval& g = s->gpr[c.loc.index];
        const Interval met = g.meet(c.range);
        if (!met.is_bottom()) g = met;
      } else if (c.loc.kind == mach::MLoc::Kind::StackSlot && !c.loc.is_f64) {
        const std::uint32_t cell = stack_loc_address(c.loc);
        Interval cur = s->stack.count(cell) ? s->stack[cell]
                                            : Interval::i32_range();
        const Interval met = cur.meet(c.range);
        if (!met.is_bottom()) s->stack[cell] = met;
      }
    }
  }

  struct PendingCmp {
    bool valid = false;
    bool is_int = false;
    int lhs = -1, rhs = -1;
    std::int32_t imm = 0;
  };

  /// The GPR an instruction defines, or -1. Used by the copy tracker; listing
  /// a non-GPR destination here is conservative (it only drops equalities).
  static int def_gpr(const MInstr& m) {
    switch (m.op) {
      case MOp::Li: case MOp::Lis: case MOp::Ori: case MOp::Xori:
      case MOp::Addi: case MOp::Mr: case MOp::Add: case MOp::Subf:
      case MOp::Mullw: case MOp::Divw: case MOp::Neg: case MOp::And:
      case MOp::Or: case MOp::Xor: case MOp::Nor: case MOp::Slw:
      case MOp::Srw: case MOp::Sraw: case MOp::Rlwinm: case MOp::Mfcr:
      case MOp::Fcti: case MOp::Lwz: case MOp::Lwzx:
      case MOp::Lui: case MOp::Sll: case MOp::Srl: case MOp::Sra:
      case MOp::Slli: case MOp::Slt: case MOp::Sltu: case MOp::Sltiu:
      case MOp::Rem: case MOp::Feq: case MOp::Flt: case MOp::Fle:
        return m.rd;
      default:
        return -1;
    }
  }

  /// The GPR whose value a register-to-register copy duplicates, or -1.
  static int copy_src(const MInstr& m) {
    if (m.op == MOp::Mr) return m.ra;
    if ((m.op == MOp::Addi || m.op == MOp::Ori) && m.imm == 0) return m.ra;
    return -1;
  }

  void transfer_block(int b, AbsState* s, bool record) {
    const MachineBlock& bb = cfg_.blocks[static_cast<std::size_t>(b)];
    // Track the most recent compare writing each CR field in this block.
    PendingCmp cr_state[8];
    // Block-local copy classes: root[i] is the representative of the set of
    // registers known to hold the same value as r_i. Lets the terminator's
    // compare refine every copy of the tested register in refine_edge —
    // without this, a fact on the compared register is lost whenever the
    // optimizer routed the dominating use through a different copy.
    std::array<std::uint8_t, 32> root;
    for (int i = 0; i < 32; ++i) root[i] = static_cast<std::uint8_t>(i);
    auto detach = [&root](int d) {
      const auto du = static_cast<std::uint8_t>(d);
      if (root[d] != du) {  // non-representative member: just leave the class
        root[d] = du;
        return;
      }
      int nrep = -1;  // representative dies: promote the first other member
      for (int j = 0; j < 32; ++j)
        if (j != d && root[j] == du) {
          if (nrep < 0) nrep = j;
          root[j] = static_cast<std::uint8_t>(nrep);
        }
    };

    std::uint32_t addr = bb.start;
    for (std::size_t i = 0; i < bb.instrs.size(); ++i, addr += 4) {
      apply_constraints(addr, s);
      const MInstr& m = bb.instrs[i];
      transfer_instr(m, s, record, b, static_cast<int>(i), addr);
      if (desc_.zero_gpr >= 0)
        s->gpr[desc_.zero_gpr] = Interval::constant(0);
      if (const int d = def_gpr(m); d >= 0) {
        const int src = copy_src(m);
        detach(d);
        if (src >= 0 && src != d) root[d] = root[src];
      }
      switch (m.op) {
        case MOp::Cmpw:
          cr_state[m.crf] = PendingCmp{true, true, m.ra, m.rb, 0};
          break;
        case MOp::Cmpwi:
          cr_state[m.crf] = PendingCmp{true, true, m.ra, -1, m.imm};
          break;
        case MOp::Fcmpu:
          cr_state[m.crf] = PendingCmp{true, false, -1, -1, 0};
          break;
        case MOp::Cror:
          cr_state[m.crbd / 4].valid = false;
          break;
        default:
          break;
      }
      if (record && m.op == MOp::Bc) {
        const PendingCmp& p = cr_state[m.crbit / 4];
        if (p.valid && p.is_int) {
          ValueAnalysisResult::CompareFact fact;
          fact.lhs_reg = p.lhs;
          fact.rhs_reg = p.rhs;
          fact.rhs_imm = p.imm;
          fact.lhs_at_test = s->gpr[p.lhs];
          fact.rhs_at_test =
              p.rhs >= 0 ? s->gpr[p.rhs] : Interval::constant(p.imm);
          result_.compare_facts[b] = fact;
        }
      }
      if (record && mach::is_cond_branch(m.op) && m.op != MOp::Bc) {
        // Compare-and-branch: the operands are on the branch itself.
        ValueAnalysisResult::CompareFact fact;
        fact.lhs_reg = m.ra;
        fact.rhs_reg = m.rb;
        fact.lhs_at_test = s->gpr[m.ra];
        fact.rhs_at_test = s->gpr[m.rb];
        result_.compare_facts[b] = fact;
      }
      if (i + 1 == bb.instrs.size() && m.op == MOp::Bc) {
        // Stash the pending compare for edge refinement.
        last_cmp_[b] = cr_state[m.crbit / 4].valid && cr_state[m.crbit / 4].is_int
                           ? cr_state[m.crbit / 4]
                           : PendingCmp{};
      }
    }
    block_copies_[b] = root;
  }

  /// Refines the post-block state along successor edge `k` using the
  /// terminator's compare, when recognized.
  AbsState refine_edge(int b, int k, const AbsState& out) const {
    const MachineBlock& bb = cfg_.blocks[static_cast<std::size_t>(b)];
    const MInstr& t = bb.instrs.back();
    if (!mach::is_cond_branch(t.op)) return out;
    const auto cond = mach::branch_condition(t);
    if (!cond) return out;
    PendingCmp cmp;
    if (cond->has_operands) {
      // Compare-and-branch carries its integer operands directly.
      cmp = PendingCmp{true, true, t.ra, t.rb, 0};
    } else {
      auto it = last_cmp_.find(b);
      if (it == last_cmp_.end() || !it->second.valid) return out;
      cmp = it->second;
    }

    // Edge 0 is taken (relation == when_true), edge 1 is fall-through.
    const bool cond_true = (k == 0) == cond->when_true;
    const int rel = cond->rel;

    AbsState s = out;
    Interval& a = s.gpr[cmp.lhs];
    Interval bval =
        cmp.rhs >= 0 ? s.gpr[cmp.rhs] : Interval::constant(cmp.imm);
    if (a.is_bottom() || bval.is_bottom()) return s;

    Interval a2 = a;
    Interval b2 = bval;
    if (rel == mach::kLt) {
      if (cond_true) {  // a < b
        a2 = a.refine_lt(bval.hi());
        b2 = bval.refine_gt(a.lo());
      } else {  // a >= b
        a2 = a.refine_ge(bval.lo());
        b2 = bval.refine_le(a.hi());
      }
    } else if (rel == mach::kGt) {
      if (cond_true) {  // a > b
        a2 = a.refine_gt(bval.lo());
        b2 = bval.refine_lt(a.hi());
      } else {  // a <= b
        a2 = a.refine_le(bval.hi());
        b2 = bval.refine_ge(a.lo());
      }
    } else if (rel == mach::kEq) {
      if (cond_true) {
        a2 = a.meet(bval);
        b2 = a2;
      }
      // a != b: no useful interval refinement in general.
    }
    // An empty refinement means the edge is infeasible.
    if (a2.is_bottom() || b2.is_bottom()) {
      s.reachable = false;
      return s;
    }
    // Apply each refinement to the whole copy class of the tested register:
    // every member holds the same concrete value, so meeting its interval
    // with the refined one stays sound (and an empty meet proves the edge
    // infeasible).
    const auto& root = block_copies_.at(b);
    auto apply_class = [&](int reg, const Interval& refined) {
      const std::uint8_t r = root[reg];
      for (int i = 0; i < 32; ++i) {
        if (root[i] != r) continue;
        const Interval met = s.gpr[i].meet(refined);
        if (met.is_bottom()) {
          s.reachable = false;
          return;
        }
        s.gpr[i] = met;
      }
    };
    apply_class(cmp.lhs, a2);
    if (!s.reachable) return s;
    if (cmp.rhs >= 0) apply_class(cmp.rhs, b2);
    return s;
  }

  void transfer_instr(const MInstr& m, AbsState* s, bool record, int block,
                      int index, std::uint32_t addr) {
    auto& g = s->gpr;
    auto top = [] { return Interval::i32_range(); };
    switch (m.op) {
      case MOp::Li:
        g[m.rd] = Interval::constant(m.imm);
        break;
      case MOp::Lis:
        g[m.rd] = Interval::constant(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(m.imm) << 16));
        break;
      case MOp::Ori:
        if (auto c = g[m.ra].as_constant())
          g[m.rd] = Interval::constant(
              static_cast<std::int32_t>(static_cast<std::uint32_t>(*c) |
                                        static_cast<std::uint32_t>(m.imm)));
        else
          g[m.rd] = top();
        break;
      case MOp::Xori:
        if (auto c = g[m.ra].as_constant())
          g[m.rd] = Interval::constant(
              static_cast<std::int32_t>(static_cast<std::uint32_t>(*c) ^
                                        static_cast<std::uint32_t>(m.imm)));
        else if (static_cast<std::uint32_t>(m.imm) == 1 &&
                 Interval::boolean().contains(g[m.ra]))
          g[m.rd] = Interval::boolean();
        else
          g[m.rd] = top();
        break;
      case MOp::Addi:
        g[m.rd] = g[m.ra].add(Interval::constant(m.imm)).clamp_i32();
        break;
      case MOp::Mr:
        g[m.rd] = g[m.ra];
        break;
      case MOp::Add:
        g[m.rd] = g[m.ra].add(g[m.rb]).clamp_i32();
        break;
      case MOp::Subf:
        g[m.rd] = g[m.rb].sub(g[m.ra]).clamp_i32();
        break;
      case MOp::Mullw:
        g[m.rd] = g[m.ra].mul(g[m.rb]).clamp_i32();
        break;
      case MOp::Divw:
        g[m.rd] = g[m.ra].div(g[m.rb]).clamp_i32();
        if (g[m.rd].is_bottom()) g[m.rd] = top();
        break;
      case MOp::Neg:
        g[m.rd] = g[m.ra].neg().clamp_i32();
        break;
      case MOp::And:
        // Common case: masking a boolean.
        if (Interval::boolean().contains(g[m.ra]) ||
            Interval::boolean().contains(g[m.rb]))
          g[m.rd] = Interval::boolean();
        else
          g[m.rd] = top();
        break;
      case MOp::Or:
      case MOp::Xor:
        if (Interval::boolean().contains(g[m.ra]) &&
            Interval::boolean().contains(g[m.rb]))
          g[m.rd] = Interval::boolean();
        else
          g[m.rd] = top();
        break;
      case MOp::Nor:
        g[m.rd] = top();
        break;
      case MOp::Slw:
      case MOp::Srw:
      case MOp::Sraw:
        g[m.rd] = top();
        break;
      case MOp::Rlwinm: {
        // Recognize slwi (mb=0, me=31-sh): multiply by 2^sh.
        if (m.mb == 0 && m.me == 31 - m.sh) {
          g[m.rd] = g[m.ra]
                        .mul(Interval::constant(std::int64_t{1} << m.sh))
                        .clamp_i32();
        } else if (m.mb == 31 && m.me == 31) {
          g[m.rd] = Interval::boolean();  // single-bit extraction
        } else {
          g[m.rd] = top();
        }
        break;
      }
      case MOp::Mfcr:
        g[m.rd] = top();
        break;
      case MOp::Fcti:
        g[m.rd] = top();
        break;
      case MOp::Lwz:
      case MOp::Lwzx:
      case MOp::Lfd:
      case MOp::Lfdx:
      case MOp::Stw:
      case MOp::Stwx:
      case MOp::Stfd:
      case MOp::Stfdx: {
        const bool is_store = m.op == MOp::Stw || m.op == MOp::Stwx ||
                              m.op == MOp::Stfd || m.op == MOp::Stfdx;
        const bool is_f64 = m.op == MOp::Lfd || m.op == MOp::Lfdx ||
                            m.op == MOp::Stfd || m.op == MOp::Stfdx;
        const bool x_form = m.op == MOp::Lwzx || m.op == MOp::Stwx ||
                            m.op == MOp::Lfdx || m.op == MOp::Stfdx;
        Interval ea = x_form
                          ? g[m.ra].add(g[m.rb])
                          : g[m.ra].add(Interval::constant(m.imm));
        ea = u32_interval(ea);
        if (record) {
          MemAccess acc;
          acc.block = block;
          acc.index = index;
          acc.addr_of_instr = addr;
          acc.is_store = is_store;
          acc.is_f64 = is_f64;
          acc.address = ea;
          result_.accesses.push_back(acc);
        }
        if (is_store) {
          if (auto c = ea.as_constant()) {
            if (in_stack(*c)) {
              if (!is_f64)
                s->stack[static_cast<std::uint32_t>(*c)] = g[m.rd];
              else
                s->stack.erase(static_cast<std::uint32_t>(*c));
            }
          } else if (ea.lo() <= kStackHi && ea.hi() >= kStackLo) {
            // Imprecise store possibly into the stack: invalidate slots in
            // range (cf. Gebhard et al. on imprecise memory accesses).
            for (auto it = s->stack.begin(); it != s->stack.end();) {
              if (static_cast<std::int64_t>(it->first) >= ea.lo() - 8 &&
                  static_cast<std::int64_t>(it->first) <= ea.hi())
                it = s->stack.erase(it);
              else
                ++it;
            }
          }
        } else if (!is_f64) {
          Interval v = top();
          if (auto c = ea.as_constant()) {
            if (in_stack(*c)) {
              auto it = s->stack.find(static_cast<std::uint32_t>(*c));
              if (it != s->stack.end()) v = it->second;
            }
          }
          g[m.rd] = v;
        }
        break;
      }
      case MOp::Lui:
        g[m.rd] = Interval::constant(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(m.imm) << 12));
        break;
      case MOp::Slli:
        // Multiply by 2^sh (the rv32 analogue of slwi).
        g[m.rd] = g[m.ra]
                      .mul(Interval::constant(std::int64_t{1} << (m.imm & 31)))
                      .clamp_i32();
        break;
      case MOp::Slt: case MOp::Sltu: case MOp::Sltiu:
      case MOp::Feq: case MOp::Flt: case MOp::Fle:
        g[m.rd] = Interval::boolean();
        break;
      case MOp::Sll: case MOp::Srl: case MOp::Sra: case MOp::Rem:
        g[m.rd] = top();
        break;
      case MOp::Icvf:
      case MOp::Fadd: case MOp::Fsub: case MOp::Fmul: case MOp::Fdiv:
      case MOp::Fmadd: case MOp::Fmsub: case MOp::Fneg: case MOp::Fabs:
      case MOp::Fmr:
      case MOp::Cmpw: case MOp::Cmpwi: case MOp::Fcmpu: case MOp::Cror:
      case MOp::B: case MOp::Bc: case MOp::Blr: case MOp::Nop:
      case MOp::Beq: case MOp::Bne: case MOp::Blt: case MOp::Bge:
        break;
    }
  }

  const Cfg& cfg_;
  const AnnotIndex& annots_;
  const mach::TargetDesc& desc_;
  ValueAnalysisResult result_;
  std::map<int, PendingCmp> last_cmp_;
  // Per-block copy classes at the terminator (position-independent within
  // the block walk, so one snapshot per block suffices).
  std::map<int, std::array<std::uint8_t, 32>> block_copies_;
};

}  // namespace

ValueAnalysisResult analyze_values(const Cfg& cfg, const AnnotIndex& annots,
                                  const mach::TargetDesc& desc) {
  return Analyzer(cfg, annots, desc).run();
}

}  // namespace vc::wcet
