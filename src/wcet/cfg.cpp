#include "wcet/cfg.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/strings.hpp"

namespace vc::wcet {

using mach::MInstr;
using mach::MOp;

int Cfg::block_at(std::uint32_t addr) const {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].start == addr) return static_cast<int>(i);
  return -1;
}

int Cfg::block_containing(std::uint32_t addr) const {
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (addr >= blocks[i].start && addr < blocks[i].end())
      return static_cast<int>(i);
  return -1;
}

bool Cfg::loop_within(int inner, int outer) const {
  while (inner != -1) {
    if (inner == outer) return true;
    inner = loops[static_cast<std::size_t>(inner)].parent;
  }
  return false;
}

namespace {

/// Dominators over the reconstructed CFG (iterative, RPO-based).
std::vector<int> dominators(const Cfg& cfg) {
  const int n = static_cast<int>(cfg.blocks.size());
  // Reverse postorder.
  std::vector<int> rpo;
  std::vector<bool> visited(n, false);
  std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
  visited[0] = true;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& succs = cfg.blocks[b].succs;
    if (next < succs.size()) {
      const int s = succs[next++];
      if (!visited[s]) {
        visited[s] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      rpo.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(rpo.begin(), rpo.end());

  std::vector<int> rpo_index(n, -1);
  for (std::size_t i = 0; i < rpo.size(); ++i)
    rpo_index[rpo[i]] = static_cast<int>(i);

  std::vector<int> idom(n, -1);
  idom[0] = 0;
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : rpo) {
      if (b == 0) continue;
      int best = -1;
      for (int p : cfg.blocks[b].preds) {
        if (idom[p] == -1) continue;
        best = best == -1 ? p : intersect(best, p);
      }
      if (best != -1 && idom[b] != best) {
        idom[b] = best;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<int>& idom, int a, int b) {
  while (true) {
    if (a == b) return true;
    if (b == 0 || idom[b] == -1) return false;
    b = idom[b];
  }
}

}  // namespace

Cfg build_cfg(const mach::Image& image, const std::string& fn_name) {
  const std::uint32_t lo = image.fn_entry.at(fn_name);
  const std::uint32_t hi = image.fn_end.at(fn_name);

  // Decode and find leaders.
  std::set<std::uint32_t> leaders{lo};
  std::map<std::uint32_t, MInstr> code;
  for (std::uint32_t addr = lo; addr < hi; addr += 4) {
    const MInstr ins = image.fetch(addr);
    code[addr] = ins;
    if (ins.op == MOp::B || mach::is_cond_branch(ins.op)) {
      const std::uint32_t target =
          addr + static_cast<std::uint32_t>(ins.disp) * 4;
      if (target < lo || target >= hi)
        throw CompileError("branch outside function at " + hex32(addr));
      leaders.insert(target);
      if (addr + 4 < hi) leaders.insert(addr + 4);
    } else if (ins.op == MOp::Blr) {
      if (addr + 4 < hi) leaders.insert(addr + 4);
    }
  }

  Cfg cfg;
  cfg.entry_addr = lo;
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    const std::uint32_t start = *it;
    auto next = std::next(it);
    const std::uint32_t end = next == leaders.end() ? hi : *next;
    MachineBlock bb;
    bb.start = start;
    for (std::uint32_t addr = start; addr < end; addr += 4)
      bb.instrs.push_back(code.at(addr));
    // Successors.
    const MInstr& last = bb.instrs.back();
    const std::uint32_t last_addr = end - 4;
    if (last.op == MOp::B) {
      bb.succ_addrs.push_back(last_addr +
                              static_cast<std::uint32_t>(last.disp) * 4);
    } else if (mach::is_cond_branch(last.op)) {
      bb.succ_addrs.push_back(last_addr +
                              static_cast<std::uint32_t>(last.disp) * 4);
      if (end < hi) bb.succ_addrs.push_back(end);
    } else if (last.op == MOp::Blr) {
      // no successors
    } else {
      // Fall-through into the next leader (no draining branch in between):
      // our code generator never produces this; reject to stay sound.
      throw CompileError("block at " + hex32(start) +
                         " falls through into a leader (unsupported layout)");
    }
    cfg.blocks.push_back(std::move(bb));
  }

  // Resolve successor ids and predecessor lists.
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    for (std::uint32_t t : cfg.blocks[i].succ_addrs) {
      const int s = cfg.block_at(t);
      check(s >= 0, "branch into the middle of a block");
      cfg.blocks[i].succs.push_back(s);
    }
  }
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i)
    for (int s : cfg.blocks[i].succs)
      cfg.blocks[static_cast<std::size_t>(s)].preds.push_back(
          static_cast<int>(i));

  // Natural loops from back edges (tail -> header where header dominates
  // tail). Irreducible flow (a back edge whose header does not dominate the
  // tail) is rejected, matching the coding rules the paper's domain enforces.
  const std::vector<int> idom = dominators(cfg);
  std::map<int, Loop> loops_by_header;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (int s : cfg.blocks[b].succs) {
      if (!dominates(idom, s, static_cast<int>(b))) continue;
      // Back edge b -> s.
      Loop& loop = loops_by_header[s];
      loop.header = s;
      loop.latches.push_back(static_cast<int>(b));
      // Collect the natural loop body by backwards reachability from the
      // latch without passing through the header.
      std::set<int> body{s, static_cast<int>(b)};
      std::vector<int> work{static_cast<int>(b)};
      while (!work.empty()) {
        const int x = work.back();
        work.pop_back();
        if (x == s) continue;
        for (int p : cfg.blocks[static_cast<std::size_t>(x)].preds) {
          if (body.insert(p).second) work.push_back(p);
        }
      }
      for (int x : body)
        if (std::find(loop.blocks.begin(), loop.blocks.end(), x) ==
            loop.blocks.end())
          loop.blocks.push_back(x);
    }
  }
  // Check reducibility: every retreating edge must be a back edge (header
  // dominates tail) — already guaranteed by construction above, except that
  // a genuine irreducible region would show up as a cycle not captured by
  // any natural loop; the path analysis detects that later (cycle in the
  // "acyclic" graph) and reports it.

  // Order loops outermost-first by containment and fill parents.
  std::vector<Loop> loops;
  for (auto& [header, loop] : loops_by_header) loops.push_back(loop);
  std::sort(loops.begin(), loops.end(), [](const Loop& a, const Loop& b) {
    return a.blocks.size() > b.blocks.size();
  });
  for (std::size_t i = 0; i < loops.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const auto& outer = loops[j].blocks;
      if (std::find(outer.begin(), outer.end(), loops[i].header) !=
          outer.end()) {
        loops[i].parent = static_cast<int>(j);  // innermost containing so far
      }
    }
  }
  for (std::size_t i = 0; i < loops.size(); ++i)
    if (loops[i].parent != -1)
      loops[static_cast<std::size_t>(loops[i].parent)].children.push_back(
          static_cast<int>(i));

  // Exit edges.
  for (auto& loop : loops) {
    std::set<int> members(loop.blocks.begin(), loop.blocks.end());
    for (int b : loop.blocks)
      for (int s : cfg.blocks[static_cast<std::size_t>(b)].succs)
        if (members.count(s) == 0) loop.exits.emplace_back(b, s);
  }

  // Innermost loop per block.
  cfg.loop_of.assign(cfg.blocks.size(), -1);
  for (std::size_t li = 0; li < loops.size(); ++li) {
    for (int b : loops[li].blocks) {
      const int cur = cfg.loop_of[static_cast<std::size_t>(b)];
      if (cur == -1 ||
          loops[static_cast<std::size_t>(cur)].blocks.size() >
              loops[li].blocks.size())
        cfg.loop_of[static_cast<std::size_t>(b)] = static_cast<int>(li);
    }
  }
  cfg.loops = std::move(loops);
  return cfg;
}

}  // namespace vc::wcet
