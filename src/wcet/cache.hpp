// Static L1 cache analysis (Ferdinand-style must analysis + scope-based
// persistence), the "cache analysis" phase of an aiT-like tool.
//
// Classification per access (instruction fetch lines and data accesses):
//   AlwaysHit   — the line is in the must cache at this point (hit on every
//                 execution, from the unknown initial cache state onward);
//   Persistent  — once loaded, the line cannot be evicted within `scope`
//                 (a loop, or the whole function when scope == -1): at most
//                 one miss per entry of the scope;
//   Miss        — charged as a miss on every execution (sound default).
//
// The persistence criterion is the classic fit test: within the scope, the
// set of distinct lines mapping to each cache set (including every line an
// imprecisely-addressed access might touch) must not exceed the
// associativity.
#pragma once

#include <cstdint>
#include <vector>

#include "mach/timing.hpp"
#include "wcet/cfg.hpp"
#include "wcet/value_analysis.hpp"

namespace vc::wcet {

enum class CacheClass { AlwaysHit, Persistent, Miss };

struct AccessClass {
  CacheClass cls = CacheClass::Miss;
  int scope = -1;  // Persistent: loop index, or -1 for the function scope
};

/// One instruction-fetch line event within a block (in fetch order).
struct ILineEvent {
  std::uint32_t line_addr = 0;
  int first_instr = 0;  // index of the first instruction fetched in the line
  AccessClass cls;
};

struct CacheAnalysisResult {
  /// Per block: I-cache line events in order.
  std::vector<std::vector<ILineEvent>> ilines;
  /// Parallel to ValueAnalysisResult::accesses.
  std::vector<AccessClass> daccess;
};

CacheAnalysisResult analyze_caches(const Cfg& cfg,
                                   const ValueAnalysisResult& values,
                                   const mach::MachineConfig& config);

}  // namespace vc::wcet
