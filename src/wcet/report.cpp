#include "wcet/report.hpp"

#include <algorithm>
#include <cstdio>

#include "support/strings.hpp"

namespace vc::wcet {

std::string format_report(const mach::Image& image, const std::string& fn_name,
                          const WcetResult& result) {
  std::string out;
  out += "WCET report for '" + fn_name + "'\n";
  out += "  code:  " + hex32(image.fn_entry.at(fn_name)) + " .. " +
         hex32(image.fn_end.at(fn_name)) + "  (" +
         std::to_string(image.code_size_of(fn_name)) + " bytes)\n";
  out += "  bound: " + std::to_string(result.wcet_cycles) + " cycles\n";

  // Per-engine detail when more than the default structural engine ran.
  if (result.ipet) {
    if (result.structural_cycles) {
      out += "  engines: structural " +
             std::to_string(*result.structural_cycles) + ", ipet " +
             std::to_string(result.ipet->wcet_cycles);
      if (*result.structural_cycles > 0) {
        const double delta =
            100.0 *
            (static_cast<double>(*result.structural_cycles) -
             static_cast<double>(result.ipet->wcet_cycles)) /
            static_cast<double>(*result.structural_cycles);
        char buf[48];
        std::snprintf(buf, sizeof buf, " (%.2f%% tighter)", delta);
        out += buf;
      }
      out += "\n";
    }
    out += "  ipet: " + std::to_string(result.ipet->lp_vars) + " flow var(s), " +
           std::to_string(result.ipet->lp_constraints) + " constraint(s), " +
           std::to_string(result.ipet->capped_edges) +
           " infeasible edge(s), " +
           std::to_string(result.ipet->simplex_pivots) + " pivot(s), " +
           std::to_string(result.ipet->bnb_nodes) + " b&b node(s), " +
           "certificate " +
           (result.ipet->certificate_verified ? "verified" : "UNVERIFIED") +
           "\n";
  }

  if (!result.loops.empty()) {
    out += "  loops:\n";
    for (const auto& loop : result.loops) {
      out += "    header " + hex32(loop.header_addr) + "  bound " +
             std::to_string(loop.bound);
      if (loop.derived && loop.from_annotation)
        out += "  (derived, annotation agrees)";
      else if (loop.derived)
        out += "  (derived from binary)";
      else
        out += "  (from annotation)";
      out += "\n";
    }
  }

  if (!result.block_costs.empty()) {
    out += "  blocks (worst-case cost per execution):\n";
    auto sorted = result.block_costs;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [addr, cost] : sorted) {
      out += "    " + hex32(addr) + "  " + pad_left(std::to_string(cost), 6) +
             " cycles\n";
    }
  }

  for (const auto& w : result.warnings) out += "  warning: " + w + "\n";
  return out;
}

}  // namespace vc::wcet
