#include "wcet/report.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace vc::wcet {

std::string format_report(const ppc::Image& image, const std::string& fn_name,
                          const WcetResult& result) {
  std::string out;
  out += "WCET report for '" + fn_name + "'\n";
  out += "  code:  " + hex32(image.fn_entry.at(fn_name)) + " .. " +
         hex32(image.fn_end.at(fn_name)) + "  (" +
         std::to_string(image.code_size_of(fn_name)) + " bytes)\n";
  out += "  bound: " + std::to_string(result.wcet_cycles) + " cycles\n";

  if (!result.loops.empty()) {
    out += "  loops:\n";
    for (const auto& loop : result.loops) {
      out += "    header " + hex32(loop.header_addr) + "  bound " +
             std::to_string(loop.bound);
      if (loop.derived && loop.from_annotation)
        out += "  (derived, annotation agrees)";
      else if (loop.derived)
        out += "  (derived from binary)";
      else
        out += "  (from annotation)";
      out += "\n";
    }
  }

  if (!result.block_costs.empty()) {
    out += "  blocks (worst-case cost per execution):\n";
    auto sorted = result.block_costs;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [addr, cost] : sorted) {
      out += "    " + hex32(addr) + "  " + pad_left(std::to_string(cost), 6) +
             " cycles\n";
    }
  }

  for (const auto& w : result.warnings) out += "  warning: " + w + "\n";
  return out;
}

}  // namespace vc::wcet
