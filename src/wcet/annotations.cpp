#include "wcet/annotations.hpp"

#include <limits>
#include <sstream>

#include "support/strings.hpp"

namespace vc::wcet {
namespace {

struct Term {
  bool is_const = false;
  std::int64_t value = 0;
  int operand = 0;  // %k index (1-based)
};

struct Link {
  bool strict = false;  // '<' vs '<='
};

/// Tokenizes "a <= b < c" into alternating terms and links.
bool tokenize(const std::string& format, std::vector<Term>* terms,
              std::vector<Link>* links) {
  std::istringstream in(format);
  std::string tok;
  bool want_term = true;
  while (in >> tok) {
    if (want_term) {
      Term t;
      if (tok[0] == '%') {
        t.is_const = false;
        try {
          t.operand = std::stoi(tok.substr(1));
        } catch (...) {
          return false;
        }
        if (t.operand <= 0) return false;
      } else {
        try {
          std::size_t used = 0;
          t.value = std::stoll(tok, &used);
          if (used != tok.size()) return false;
        } catch (...) {
          return false;
        }
        t.is_const = true;
      }
      terms->push_back(t);
    } else {
      if (tok == "<=")
        links->push_back(Link{false});
      else if (tok == "<")
        links->push_back(Link{true});
      else
        return false;
    }
    want_term = !want_term;
  }
  return !want_term && terms->size() >= 2 &&
         links->size() == terms->size() - 1;
}

}  // namespace

std::optional<std::map<int, Interval>> parse_chain(const std::string& format) {
  std::vector<Term> terms;
  std::vector<Link> links;
  if (!tokenize(format, &terms, &links)) return std::nullopt;

  std::map<int, Interval> result;
  // Forward pass: the tightest constant lower bound reaching each operand.
  {
    bool have = false;
    std::int64_t bound = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i > 0 && have && links[i - 1].strict) ++bound;
      if (terms[i].is_const) {
        bound = have && i > 0 ? std::max(bound, terms[i].value)
                              : terms[i].value;
        have = true;
      } else if (have) {
        auto [it, inserted] =
            result.emplace(terms[i].operand, Interval::i32_range());
        it->second = it->second.meet(Interval::range(
            bound, std::numeric_limits<std::int64_t>::max()));
      }
    }
  }
  // Backward pass: the tightest constant upper bound.
  {
    bool have = false;
    std::int64_t bound = 0;
    for (std::size_t i = terms.size(); i-- > 0;) {
      if (i + 1 < terms.size() && have && links[i].strict) --bound;
      if (terms[i].is_const) {
        bound = have && i + 1 < terms.size() ? std::min(bound, terms[i].value)
                                             : terms[i].value;
        have = true;
      } else if (have) {
        auto [it, inserted] =
            result.emplace(terms[i].operand, Interval::i32_range());
        it->second = it->second.meet(Interval::range(
            std::numeric_limits<std::int64_t>::min(), bound));
      }
    }
  }
  return result;
}

AnnotIndex index_annotations(const mach::Image& image, std::uint32_t lo,
                             std::uint32_t hi) {
  AnnotIndex index;
  for (const auto& entry : image.annotations) {
    if (entry.addr < lo || entry.addr >= hi) continue;

    // "loop <= N"
    {
      std::istringstream in(entry.format);
      std::string a, b, c, rest;
      if ((in >> a >> b >> c) && !(in >> rest) && a == "loop" &&
          (b == "<=" || b == "<")) {
        try {
          std::int64_t n = std::stoll(c);
          if (b == "<") --n;
          auto [it, inserted] = index.loop_bounds.emplace(entry.addr, n);
          if (!inserted) it->second = std::min(it->second, n);
          continue;
        } catch (...) {
          // fall through to chain parsing
        }
      }
    }

    const auto chain = parse_chain(entry.format);
    if (!chain) {
      index.warnings.push_back("unparseable annotation \"" + entry.format +
                               "\" at " + hex32(entry.addr));
      continue;
    }
    for (const auto& [operand, range] : *chain) {
      if (operand > static_cast<int>(entry.operands.size())) {
        index.warnings.push_back("annotation operand %" +
                                 std::to_string(operand) + " out of range");
        continue;
      }
      const mach::MLoc& loc =
          entry.operands[static_cast<std::size_t>(operand - 1)];
      if (loc.kind == mach::MLoc::Kind::Fpr) continue;  // floats untracked
      index.constraints[entry.addr].push_back(ValueConstraint{loc, range});
    }
  }
  return index;
}

}  // namespace vc::wcet
