// Interval value analysis on the binary (the "value analysis" phase of an
// aiT-style analyzer): tracks signed-interval abstractions of the 32 GPRs
// and of stack slots (identified by absolute address — r1 is known exactly
// at function entry, as a stack-pointer annotation would provide in aiT).
//
// Results feed three consumers: effective-address intervals for the data
// cache analysis, counter intervals for automatic loop-bound derivation, and
// the evaluation of annotation constraints (paper §3.4).
#pragma once

#include <array>
#include <map>
#include <vector>

#include "mach/target.hpp"
#include "support/interval.hpp"
#include "wcet/annotations.hpp"
#include "wcet/cfg.hpp"

namespace vc::wcet {

struct AbsState {
  bool reachable = false;
  std::array<Interval, 32> gpr;
  /// Tracked i32 stack cells, keyed by absolute address.
  std::map<std::uint32_t, Interval> stack;

  static AbsState entry_state(const mach::TargetDesc& desc);
  /// Least upper bound; drops stack keys absent on either side.
  [[nodiscard]] AbsState join(const AbsState& other) const;
  /// Widening against the next iterate (applied at loop headers).
  [[nodiscard]] AbsState widen(const AbsState& next) const;
  bool operator==(const AbsState& other) const;
};

/// One memory access with its statically derived address interval.
struct MemAccess {
  int block = 0;
  int index = 0;        // instruction index within the block
  std::uint32_t addr_of_instr = 0;
  bool is_store = false;
  bool is_f64 = false;  // 8-byte access
  Interval address;     // effective address interval (never bottom)
};

struct ValueAnalysisResult {
  std::vector<AbsState> block_in;                     // per block
  std::map<std::pair<int, int>, AbsState> edge_out;   // refined per CFG edge
  std::vector<MemAccess> accesses;
  /// The compare feeding each block's conditional terminator, if recognized:
  /// block -> (register, rhs interval at the compare, rhs register or -1).
  struct CompareFact {
    int lhs_reg = -1;
    int rhs_reg = -1;       // -1 when immediate
    std::int32_t rhs_imm = 0;
    Interval lhs_at_test;   // interval of lhs register at the compare
    Interval rhs_at_test;
  };
  std::map<int, CompareFact> compare_facts;
};

ValueAnalysisResult analyze_values(const Cfg& cfg, const AnnotIndex& annots,
                                  const mach::TargetDesc& desc);

/// Address of the stack cell a StackSlot annotation location refers to
/// (entry r1 is pinned by the harness/linker convention).
std::uint32_t stack_loc_address(const mach::MLoc& loc);

}  // namespace vc::wcet
