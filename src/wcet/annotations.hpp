// Parsing of the auto-generated annotation table (paper §3.4).
//
// Two annotation forms are understood by the analyzer:
//
//   "loop <= N"                      — the innermost loop containing the
//                                      annotation point iterates at most N
//                                      times per entry;
//   chains like "0 <= %1 <= %2 < 360" — interval constraints on the %k
//                                      operands (resolved to machine
//                                      registers or stack slots at
//                                      compilation time).
//
// Anything unparseable is ignored with a warning (annotations must never be
// required for soundness, only for precision).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mach/program.hpp"
#include "support/interval.hpp"

namespace vc::wcet {

/// One interval constraint on a value location at a code address.
struct ValueConstraint {
  mach::MLoc loc;
  Interval range;
};

struct AnnotIndex {
  /// Code address -> loop bound annotations ("loop <= N").
  std::map<std::uint32_t, std::int64_t> loop_bounds;
  /// Code address -> operand interval constraints.
  std::map<std::uint32_t, std::vector<ValueConstraint>> constraints;
  std::vector<std::string> warnings;
};

/// Indexes the image's annotation entries that fall inside [lo, hi).
AnnotIndex index_annotations(const mach::Image& image, std::uint32_t lo,
                             std::uint32_t hi);

/// Parses a constraint chain; returns per-%k intervals (1-based keys), or
/// nullopt if the format is not understood. Exposed for unit testing.
std::optional<std::map<int, Interval>> parse_chain(const std::string& format);

}  // namespace vc::wcet
