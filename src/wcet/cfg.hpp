// Control-flow reconstruction from the binary (the first phase of an
// aiT-style analyzer, cf. Gebhard et al., Fig. 1, in the same proceedings).
//
// Decodes the function's code words, finds leaders (branch targets and
// fall-through points after conditional branches), forms basic blocks, and
// computes the natural-loop forest needed by the path analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mach/program.hpp"

namespace vc::wcet {

struct MachineBlock {
  std::uint32_t start = 0;  // address of first instruction
  std::vector<mach::MInstr> instrs;
  std::vector<std::uint32_t> succ_addrs;  // successor block start addresses
  std::vector<int> succs;                 // successor block ids
  std::vector<int> preds;

  [[nodiscard]] std::uint32_t end() const {
    return start + static_cast<std::uint32_t>(instrs.size()) * 4;
  }
};

struct Loop {
  int header = 0;               // block id
  std::vector<int> blocks;      // member block ids (includes header)
  int parent = -1;              // enclosing loop index, -1 for top level
  std::vector<int> children;
  /// Back-edge sources (latches) and exit edges (from, to) leaving the loop.
  std::vector<int> latches;
  std::vector<std::pair<int, int>> exits;
};

struct Cfg {
  std::uint32_t entry_addr = 0;
  std::vector<MachineBlock> blocks;  // blocks[0] is the entry
  std::vector<Loop> loops;           // inner loops appear after their parents
  std::vector<int> loop_of;          // innermost loop index per block (-1 none)

  [[nodiscard]] int block_at(std::uint32_t addr) const;  // -1 if not a leader
  [[nodiscard]] int block_containing(std::uint32_t addr) const;

  /// True if `inner` equals `outer` or is nested (transitively) inside it.
  [[nodiscard]] bool loop_within(int inner, int outer) const;
};

/// Reconstructs the CFG of `fn_name` from the image. Throws CompileError on
/// malformed code (branch outside the function, irreducible loops).
Cfg build_cfg(const mach::Image& image, const std::string& fn_name);

}  // namespace vc::wcet
