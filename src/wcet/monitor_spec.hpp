// Builds a machine::MonitorSpec — the fact base the runtime execution
// monitor holds a simulation to — from the static artifacts of one function:
// the reconstructed CFG (legal control transfers), the image's raw
// annotation table (live-value interval claims), and, in Full mode, the
// loop-bound rows the WCET path analyses consume.
//
// This is deliberately the *only* coupling point between the monitor and the
// analyzer: the facts come from here (they are what is being checked), the
// checking machinery lives entirely in src/machine/monitor.*.
#pragma once

#include <string>

#include "machine/monitor.hpp"
#include "mach/program.hpp"
#include "wcet/wcet.hpp"

namespace vc::wcet {

/// Builds the monitor fact base for `fn_name`:
///   - Cfg and Full: the legal transfer targets of every branch instruction,
///     straight from the reconstructed CFG's successor lists (blr maps to
///     the stop address);
///   - Full only: value checks from the image's annotation entries inside
///     the function, and loop-bound rows from analyze_wcet's structural
///     engine (exactly the rows IPET consumes). `options` controls the
///     annotation/cache knobs of that analysis; its engine field is ignored.
/// Throws like build_cfg / analyze_wcet on malformed code or unbounded loops.
machine::MonitorSpec build_monitor_spec(const mach::Image& image,
                                        const std::string& fn_name,
                                        machine::MonitorMode mode,
                                        const WcetOptions& options = {});

}  // namespace vc::wcet
