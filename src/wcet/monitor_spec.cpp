#include "wcet/monitor_spec.hpp"

#include "mach/isa.hpp"
#include "wcet/cfg.hpp"

namespace vc::wcet {

machine::MonitorSpec build_monitor_spec(const mach::Image& image,
                                        const std::string& fn_name,
                                        machine::MonitorMode mode,
                                        const WcetOptions& options) {
  machine::MonitorSpec spec;
  spec.function = fn_name;
  if (mode == machine::MonitorMode::Off) return spec;
  spec.lo = image.fn_entry.at(fn_name);
  spec.hi = image.fn_end.at(fn_name);

  const Cfg cfg = build_cfg(image, fn_name);

  // Legal transfers per branch instruction. A blr leaves the harness frame
  // (the simulator jumps to the stop address); every other branch must land
  // on one of its block's CFG successors. Branches the reconstruction
  // somehow left mid-block get no entry — the monitor then flags them at
  // runtime, which is exactly the kind of reconstruction bug it exists for.
  for (const MachineBlock& block : cfg.blocks) {
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      if (!mach::is_branch(block.instrs[i].op)) continue;
      const std::uint32_t pc =
          block.start + static_cast<std::uint32_t>(i) * 4;
      if (block.instrs[i].op == mach::MOp::Blr)
        spec.branch_targets[pc] = {mach::Image::kStopAddr};
      else if (i + 1 == block.instrs.size())
        spec.branch_targets[pc] = block.succ_addrs;
    }
  }

  if (mode != machine::MonitorMode::Full) return spec;

  // Value claims: the raw annotation table, independently re-parsed by the
  // spec itself (MonitorSpec::add_annotation shares nothing with the
  // analyzer's chain parser).
  for (const mach::AnnotEntry& entry : image.annotations)
    if (entry.addr >= spec.lo && entry.addr < spec.hi)
      spec.add_annotation(entry);

  // Loop-bound rows: what the path analyses consume (annotation bounds
  // refined by automatic derivation), one row per natural loop, with the
  // loop body as address ranges so the monitor can classify back edges.
  WcetOptions wopts = options;
  wopts.engine = WcetEngine::Structural;
  const WcetResult result = analyze_wcet(image, fn_name, wopts);
  for (std::size_t l = 0; l < result.loops.size(); ++l) {
    machine::MonitorLoopRow row;
    row.header_pc = result.loops[l].header_addr;
    row.bound = result.loops[l].bound;
    for (const int b : cfg.loops[l].blocks) {
      const MachineBlock& block = cfg.blocks[static_cast<std::size_t>(b)];
      row.body.emplace_back(block.start, block.end());
    }
    spec.loops.push_back(std::move(row));
  }
  return spec;
}

}  // namespace vc::wcet
