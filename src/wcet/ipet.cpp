#include "wcet/ipet.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ilp/solver.hpp"
#include "support/strings.hpp"
#include "support/workspace.hpp"
#include "wcet/wcet.hpp"

namespace vc::wcet {
namespace {

/// One frequency variable of the IPET system: a real CFG edge, the virtual
/// entry edge into block 0, or a virtual exit edge out of a returning block.
struct FlowEdge {
  int from = -1;  // -1: virtual entry
  int to = -1;    // -1: virtual exit
};

std::string block_label(const Cfg& cfg, int b) {
  if (b < 0) return "ext";
  return "b" + std::to_string(b) + "@" +
         hex32(cfg.blocks[static_cast<std::size_t>(b)].start);
}

}  // namespace

IpetInfo analyze_ipet(const Cfg& cfg, const ValueAnalysisResult& values,
                      const std::vector<std::int64_t>& loop_bound,
                      const std::vector<std::uint64_t>& block_cost,
                      const std::vector<std::uint64_t>& loop_ps_charge,
                      std::uint64_t function_ps_charge,
                      const std::string& fn_name) {
  check(loop_bound.size() == cfg.loops.size() &&
            loop_ps_charge.size() == cfg.loops.size() &&
            block_cost.size() == cfg.blocks.size(),
        "ipet: input vectors not aligned with the CFG");

  // ---- Variables: one per edge (real + virtual). -------------------------
  // The edge table is dead the moment the LP is built, so it lives in the
  // per-job workspace arena (bumped, rewound at the next job reset) rather
  // than the heap: one row buffer per record of a both-engine campaign.
  std::size_t n_edges = 1;  // the virtual entry edge
  for (const MachineBlock& b : cfg.blocks)
    n_edges += std::max<std::size_t>(b.succs.size(), 1);
  Arena& arena = this_thread_workspace().arena;
  FlowEdge* edges = arena.alloc_array<FlowEdge>(n_edges);
  std::size_t n_built = 0;
  std::vector<std::vector<int>> out_vars(cfg.blocks.size());
  std::vector<std::vector<int>> in_vars(cfg.blocks.size());
  const int entry_var = 0;
  edges[n_built++] = {-1, 0};
  in_vars[0].push_back(entry_var);
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (int s : cfg.blocks[b].succs) {
      const int v = static_cast<int>(n_built);
      edges[n_built++] = {static_cast<int>(b), s};
      out_vars[b].push_back(v);
      in_vars[static_cast<std::size_t>(s)].push_back(v);
    }
    if (cfg.blocks[b].succs.empty()) {
      const int v = static_cast<int>(n_built);
      edges[n_built++] = {static_cast<int>(b), -1};
      out_vars[b].push_back(v);
    }
  }
  check(n_built == n_edges, "ipet: edge count mismatch");

  ilp::Problem problem;
  problem.num_vars = static_cast<int>(n_edges);
  problem.integer = true;

  // ---- Objective: each edge pays the cost of the block it enters. --------
  // Loop-persistence charges are paid once per loop entry, so they ride on
  // the edges entering the loop header from outside (matching the one-shot
  // first-miss charge the structural engine adds per collapsed loop node).
  // The function-wide persistence charge is a constant (entry flow is
  // pinned to 1) and is added after solving.
  auto entering_loop = [&](const FlowEdge& e) -> std::uint64_t {
    if (e.to < 0) return 0;
    std::uint64_t charge = 0;
    for (std::size_t l = 0; l < cfg.loops.size(); ++l) {
      if (cfg.loops[l].header != e.to) continue;
      const auto& members = cfg.loops[l].blocks;
      const bool from_inside =
          e.from >= 0 &&
          std::find(members.begin(), members.end(), e.from) != members.end();
      if (!from_inside) charge += loop_ps_charge[l];
    }
    return charge;
  };
  for (std::size_t v = 0; v < n_edges; ++v) {
    const FlowEdge& e = edges[v];
    if (e.to < 0) continue;  // virtual exit edges are free
    const std::uint64_t cost =
        block_cost[static_cast<std::size_t>(e.to)] + entering_loop(e);
    if (cost != 0)
      problem.objective.push_back(
          {static_cast<int>(v), ilp::Rat(static_cast<std::int64_t>(cost))});
  }

  // ---- Structural constraints. -------------------------------------------
  {
    ilp::Constraint c;
    c.terms = {{entry_var, ilp::Rat(1)}};
    c.sense = ilp::Sense::Eq;
    c.rhs = ilp::Rat(1);
    c.tag = "entry";
    problem.constraints.push_back(c);
  }
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    ilp::Constraint c;
    for (int v : in_vars[b]) c.terms.push_back({v, ilp::Rat(1)});
    for (int v : out_vars[b]) c.terms.push_back({v, ilp::Rat(-1)});
    c.sense = ilp::Sense::Eq;
    c.rhs = ilp::Rat(0);
    c.tag = "flow " + block_label(cfg, static_cast<int>(b));
    problem.constraints.push_back(c);
  }

  // Loop bounds: back-edge flow <= bound * entry-edge flow. Together with
  // conservation this bounds every block of the loop, nested loops
  // multiplying out through their entry edges.
  for (std::size_t l = 0; l < cfg.loops.size(); ++l) {
    const Loop& loop = cfg.loops[l];
    const std::set<int> members(loop.blocks.begin(), loop.blocks.end());
    const std::set<int> latches(loop.latches.begin(), loop.latches.end());
    ilp::Constraint c;
    for (int v : in_vars[static_cast<std::size_t>(loop.header)]) {
      const FlowEdge& e = edges[static_cast<std::size_t>(v)];
      if (e.from >= 0 && members.count(e.from) != 0) {
        if (latches.count(e.from) != 0) c.terms.push_back({v, ilp::Rat(1)});
      } else {
        c.terms.push_back({v, ilp::Rat(-std::max<std::int64_t>(
                                  loop_bound[l], 0))});
      }
    }
    c.sense = ilp::Sense::Le;
    c.rhs = ilp::Rat(0);
    c.tag = "loop " + block_label(cfg, loop.header) +
            " <= " + std::to_string(loop_bound[l]);
    problem.constraints.push_back(c);
  }

  // Infeasible-edge facts: the value analysis proved (under the trusted
  // annotations) that these edges can never be taken, so their frequency is
  // pinned to zero. This is the flow information the structural engine has
  // no way to use.
  IpetInfo info;
  for (std::size_t v = 0; v < n_edges; ++v) {
    const FlowEdge& e = edges[v];
    if (e.from < 0 || e.to < 0) continue;
    const auto it = values.edge_out.find({e.from, e.to});
    if (it == values.edge_out.end() || it->second.reachable) continue;
    ilp::Constraint c;
    c.terms = {{static_cast<int>(v), ilp::Rat(1)}};
    c.sense = ilp::Sense::Eq;
    c.rhs = ilp::Rat(0);
    c.tag = "infeasible " + block_label(cfg, e.from) + "->" +
            block_label(cfg, e.to);
    problem.constraints.push_back(c);
    ++info.capped_edges;
  }

  info.lp_vars = problem.num_vars;
  info.lp_constraints = static_cast<int>(problem.constraints.size());

  // ---- Solve (untrusted) and verify (trusted). ---------------------------
  const ilp::Solution sol = ilp::solve(problem);
  if (sol.status == ilp::Status::Infeasible)
    throw WcetError("IPET system infeasible for " + fn_name +
                    " (contradictory flow facts)");
  if (sol.status == ilp::Status::Unbounded)
    throw WcetError("IPET objective unbounded for " + fn_name +
                    " (missing loop bound constraint)");
  const std::string err =
      ilp::check_certificate(problem, sol.values, sol.objective);
  if (!err.empty())
    throw WcetError("IPET certificate verification failed for " + fn_name +
                    ": " + err);
  info.certificate_verified = true;
  info.simplex_pivots = sol.pivots;
  info.bnb_nodes = sol.bnb_nodes;

  check(sol.objective.is_integer() && sol.objective >= ilp::Rat(0),
        "ipet: optimal objective is not a non-negative integer");
  info.wcet_cycles =
      static_cast<std::uint64_t>(sol.objective.num()) + function_ps_charge;

  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    std::uint64_t freq = 0;
    for (int v : in_vars[b]) {
      const ilp::Rat& x = sol.values[static_cast<std::size_t>(v)];
      freq += static_cast<std::uint64_t>(x.num());
    }
    info.block_freq.emplace_back(cfg.blocks[b].start, freq);
  }
  return info;
}

}  // namespace vc::wcet
