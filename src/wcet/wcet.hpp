// The static WCET analyzer facade (the aiT stand-in of the reproduction).
//
// Phases, mirroring Gebhard et al.'s description of aiT in the same
// proceedings: decode + CFG reconstruction (cfg.hpp), value analysis
// (value_analysis.hpp), loop bound analysis (annotations + automatic
// derivation of canonical counted loops), cache analysis (cache.hpp),
// per-block pipeline timing via the shared IssueModel, and a structural
// IPET-style longest-path computation over the loop nest.
//
// Soundness contract (enforced by property tests against the simulator):
// for every input, analyze_wcet(...).wcet_cycles >= observed cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mach/program.hpp"
#include "mach/timing.hpp"
#include "wcet/ipet.hpp"

namespace vc::wcet {

/// Which path-analysis backend computes the bound. Structural is the
/// longest-path engine over the collapsed loop nest; Ipet phrases the same
/// question as an ILP over edge frequencies (ipet.hpp) and can exploit
/// infeasible-edge facts; Both runs the two independently and records each
/// bound plus the tightness delta (the N-version cross-check).
enum class WcetEngine { Structural, Ipet, Both };

/// Canonical engine names, indexed by WcetEngine. The single source of
/// truth for CLI parsing, report JSON, and bench footers (the kConfigNames
/// pattern).
inline constexpr const char* kWcetEngineNames[] = {"structural", "ipet",
                                                   "both"};

[[nodiscard]] inline std::string to_string(WcetEngine engine) {
  return kWcetEngineNames[static_cast<int>(engine)];
}

/// Parses a canonical engine name; nullopt for anything else.
[[nodiscard]] std::optional<WcetEngine> parse_wcet_engine(
    const std::string& name);

struct WcetOptions {
  /// Machine-configuration override (caches, penalties). Unset = use the
  /// image target's configuration (the normal case); set for ablations.
  std::optional<mach::MachineConfig> machine;
  /// Consult the image's annotation table (§3.4 flow). Disabling this is the
  /// ablation of bench_annotations.
  bool use_annotations = true;
  /// Run the cache must/persistence analysis. When disabled every access is
  /// charged as a miss (the "no cache analysis" ablation).
  bool cache_analysis = true;
  /// Path-analysis backend(s) to run.
  WcetEngine engine = WcetEngine::Structural;
};

struct LoopBoundInfo {
  std::uint32_t header_addr = 0;
  std::int64_t bound = 0;
  bool from_annotation = false;
  bool derived = false;  // automatically derived from the loop's exit test
};

struct WcetResult {
  /// The bound of the selected engine (the IPET bound when it ran — it is
  /// never looser than structural on systems both can express).
  std::uint64_t wcet_cycles = 0;
  /// The structural engine's bound; set unless engine == Ipet.
  std::optional<std::uint64_t> structural_cycles;
  /// The IPET engine's result; set unless engine == Structural.
  std::optional<IpetInfo> ipet;
  std::vector<LoopBoundInfo> loops;
  std::vector<std::string> warnings;
  /// Diagnostic: per-block base costs (by block start address).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> block_costs;
};

/// A loop without any usable bound makes WCET computation impossible.
class WcetError : public std::runtime_error {
 public:
  explicit WcetError(const std::string& message)
      : std::runtime_error(message) {}
};

WcetResult analyze_wcet(const mach::Image& image, const std::string& fn_name,
                        const WcetOptions& options = {});

}  // namespace vc::wcet
