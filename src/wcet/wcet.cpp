#include "wcet/wcet.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "mach/target.hpp"
#include "support/strings.hpp"
#include "wcet/annotations.hpp"
#include "wcet/cache.hpp"
#include "wcet/cfg.hpp"
#include "wcet/ipet.hpp"
#include "wcet/value_analysis.hpp"

namespace vc::wcet {

std::optional<WcetEngine> parse_wcet_engine(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kWcetEngineNames); ++i)
    if (name == kWcetEngineNames[i]) return static_cast<WcetEngine>(i);
  return std::nullopt;
}

using mach::MInstr;
using mach::MOp;

namespace {

// ---------------------------------------------------------------------------
// Loop bound analysis
// ---------------------------------------------------------------------------

/// Tries to derive a bound for the canonical counted loop: an in-loop
/// conditional exit whose compare tests a counter register against a limit,
/// where the counter is incremented by exactly 1 per iteration.
std::optional<std::int64_t> derive_bound(const Cfg& cfg,
                                         const ValueAnalysisResult& values,
                                         const Loop& loop) {
  const std::set<int> members(loop.blocks.begin(), loop.blocks.end());

  for (const auto& [exit_from, exit_to] : loop.exits) {
    const MachineBlock& bb = cfg.blocks[static_cast<std::size_t>(exit_from)];
    if (!mach::is_cond_branch(bb.instrs.back().op)) continue;
    auto fact_it = values.compare_facts.find(exit_from);
    if (fact_it == values.compare_facts.end()) continue;
    const auto& fact = fact_it->second;
    const MInstr& bc = bb.instrs.back();
    const auto cond = mach::branch_condition(bc);
    if (!cond) continue;

    // Determine the relation that holds on the *stay-in-loop* edge.
    // succs[0] is the taken edge, succs[1] the fall-through.
    const int stay_succ_index = bb.succs[0] == exit_to ? 1 : 0;
    if (bb.succs[static_cast<std::size_t>(stay_succ_index)] == exit_to)
      continue;  // both edges leave: not the pattern
    const bool stay_when_true = (stay_succ_index == 0) == cond->when_true;
    const int rel = cond->rel;

    // Stay relation must be "counter < limit" or "counter <= limit".
    bool counter_is_lhs = true;
    bool strict = true;
    if (rel == mach::kLt && stay_when_true) {
      counter_is_lhs = true;  // lhs < rhs
      strict = true;
    } else if (rel == mach::kGt && stay_when_true) {
      counter_is_lhs = false;  // lhs > rhs, i.e. rhs < lhs: counter is rhs
      strict = true;
    } else if (rel == mach::kGt && !stay_when_true) {
      counter_is_lhs = true;  // stay when !(lhs > rhs): lhs <= rhs
      strict = false;
    } else if (rel == mach::kLt && !stay_when_true) {
      counter_is_lhs = false;  // stay when !(lhs < rhs): rhs <= lhs
      strict = false;
    } else {
      continue;
    }

    const int counter = counter_is_lhs ? fact.lhs_reg : fact.rhs_reg;
    const Interval limit =
        counter_is_lhs ? fact.rhs_at_test : fact.lhs_at_test;
    if (counter < 0 || limit.is_bottom()) continue;
    if (limit.hi() > 1'000'000'000ll) continue;  // unbounded limit

    // The counter must be incremented by exactly +1 once per iteration:
    // exactly one in-loop definition, of the form addi C,C,1 or
    // add C,C,X / add C,X,C with X == 1, or the uncoalesced
    // add T,C,X ; mr C,T pair.
    int defs = 0;
    bool step_ok = false;
    int reads[mach::IssueModel::kMaxResourcesPerInstr];
    int writes[mach::IssueModel::kMaxResourcesPerInstr];
    int n_reads = 0;
    int n_writes = 0;
    // Is `reg` exactly 1 just before instruction `i` of block `b`? The last
    // in-block definition wins; with no in-block definition, fall back to the
    // value analysis' block-entry interval — CSE hoists the step constant out
    // of the loop, so a same-block `li reg, 1` is not guaranteed to exist.
    const auto reg_is_one = [&](const MachineBlock& mb, int b, std::size_t i,
                                int reg) {
      int r2[mach::IssueModel::kMaxResourcesPerInstr];
      int w2[mach::IssueModel::kMaxResourcesPerInstr];
      int nr2 = 0;
      int nw2 = 0;
      for (std::size_t j = i; j > 0; --j) {
        const MInstr& def = mb.instrs[j - 1];
        mach::IssueModel::resources(def, r2, &nr2, w2, &nw2);
        for (int k = 0; k < nw2; ++k)
          if (w2[k] == reg) return def.op == MOp::Li && def.imm == 1;
      }
      const Interval& iv =
          values.block_in[static_cast<std::size_t>(b)].gpr[reg];
      return !iv.is_bottom() && iv.lo() == 1 && iv.hi() == 1;
    };
    for (int b : loop.blocks) {
      const MachineBlock& mb = cfg.blocks[static_cast<std::size_t>(b)];
      for (std::size_t i = 0; i < mb.instrs.size(); ++i) {
        const MInstr& m = mb.instrs[i];
        mach::IssueModel::resources(m, reads, &n_reads, writes, &n_writes);
        bool writes_counter = false;
        for (int k = 0; k < n_writes; ++k)
          if (writes[k] == counter) writes_counter = true;
        if (!writes_counter) continue;
        ++defs;
        if (m.op == MOp::Addi && m.rd == counter && m.ra == counter &&
            m.imm == 1) {
          step_ok = true;
        } else if (m.op == MOp::Add && m.rd == counter &&
                   (m.ra == counter || m.rb == counter)) {
          const int other = m.ra == counter ? m.rb : m.ra;
          if (reg_is_one(mb, b, i, other)) step_ok = true;
        } else if (m.op == MOp::Mr && m.rd == counter) {
          // mr C,T after add T,C,1-ish: accept if the source was computed as
          // C + 1 in the same block.
          const int t = m.ra;
          for (std::size_t j = 0; j < i; ++j) {
            const MInstr& def = mb.instrs[j];
            if (def.op == MOp::Addi && def.rd == t && def.ra == counter &&
                def.imm == 1) {
              step_ok = true;
            } else if (def.op == MOp::Add && def.rd == t &&
                       (def.ra == counter || def.rb == counter)) {
              const int other = def.ra == counter ? def.rb : def.ra;
              if (reg_is_one(mb, b, j, other)) step_ok = true;
            }
          }
        }
      }
    }
    if (defs != 1 || !step_ok) continue;

    // Initial counter interval: join over entry edges into the header.
    Interval init = Interval::bottom();
    for (int p : cfg.blocks[static_cast<std::size_t>(loop.header)].preds) {
      if (members.count(p) != 0) continue;  // back edge
      auto es = values.edge_out.find({p, loop.header});
      if (es == values.edge_out.end() || !es->second.reachable)
        continue;
      init = init.join(es->second.gpr[counter]);
    }
    if (init.is_bottom()) continue;

    const std::int64_t trips =
        limit.hi() - init.lo() + (strict ? 0 : 1);
    return std::max<std::int64_t>(trips, 0);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Block timing
// ---------------------------------------------------------------------------

std::uint64_t block_base_cost(const MachineBlock& bb,
                              const std::vector<ILineEvent>& ilines,
                              const std::vector<const AccessClass*>& daccess,
                              const mach::TargetDesc& desc,
                              const mach::MachineConfig& machine,
                              bool reachable) {
  mach::IssueModel pipe(desc);
  pipe.reset();
  int reads[mach::IssueModel::kMaxResourcesPerInstr];
  int writes[mach::IssueModel::kMaxResourcesPerInstr];
  int n_reads = 0;
  int n_writes = 0;
  std::size_t iline_next = 0;
  std::size_t dacc_next = 0;

  for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
    const MInstr& m = bb.instrs[i];
    std::uint32_t fetch_stall = 0;
    if (iline_next < ilines.size() &&
        ilines[iline_next].first_instr == static_cast<int>(i)) {
      if (ilines[iline_next].cls.cls == CacheClass::Miss)
        fetch_stall = machine.miss_penalty;
      ++iline_next;
    }
    std::uint32_t extra_mem = 0;
    if (mach::is_memory_op(m.op)) {
      if (dacc_next < daccess.size()) {
        if (daccess[dacc_next]->cls == CacheClass::Miss)
          extra_mem = machine.miss_penalty;
        ++dacc_next;
      } else {
        // The value analysis records no accesses for blocks it proves
        // unreachable (e.g. an annotation-guarded error arm). Charging the
        // full miss penalty keeps the cost sound regardless; the mismatch
        // is only an invariant violation on reachable blocks.
        check(!reachable, "data access bookkeeping mismatch");
        extra_mem = machine.miss_penalty;
      }
    }
    mach::IssueModel::resources(m, reads, &n_reads, writes, &n_writes);
    pipe.issue(m, reads, n_reads, writes, n_writes, extra_mem, fetch_stall);
    if (mach::is_branch(m.op)) {
      pipe.drain();
      pipe.add_stall(machine.taken_branch_penalty);
    }
  }
  pipe.drain();
  return pipe.current_cycle();
}

// ---------------------------------------------------------------------------
// Structural IPET: longest path over the loop nest
// ---------------------------------------------------------------------------

struct PathContext {
  const Cfg& cfg;
  const std::vector<std::uint64_t>& block_cost;
  const std::vector<std::int64_t>& loop_bound;       // per loop index
  const std::vector<std::uint64_t>& loop_ps_charge;  // per loop index
};

std::uint64_t loop_wcet(const PathContext& ctx, int loop_index);

/// Longest path through a region (a set of blocks with inner loops already
/// collapsed), from `source` to every block; returns the distance map.
/// `region_loop` is the loop whose body we traverse (-1 for the whole
/// function); its back edges to `header` are ignored.
std::map<int, std::uint64_t> longest_paths(const PathContext& ctx,
                                           int region_loop, int source) {
  const Cfg& cfg = ctx.cfg;
  std::set<int> members;
  if (region_loop == -1) {
    for (std::size_t i = 0; i < cfg.blocks.size(); ++i)
      members.insert(static_cast<int>(i));
  } else {
    const auto& blocks = cfg.loops[static_cast<std::size_t>(region_loop)].blocks;
    members.insert(blocks.begin(), blocks.end());
  }

  // A block is a "node" of this region if it belongs to the region and its
  // innermost containing loop within the region is either the region itself
  // or it is the header of an immediate inner loop (which represents the
  // whole collapsed inner loop).
  auto inner_loop_of = [&](int b) -> int {
    int l = cfg.loop_of[static_cast<std::size_t>(b)];
    // Walk up until the parent is the region loop.
    while (l != -1 && cfg.loops[static_cast<std::size_t>(l)].parent !=
                          region_loop)
      l = cfg.loops[static_cast<std::size_t>(l)].parent;
    return l;  // -1 means the block sits directly in the region
  };

  auto node_of = [&](int b) -> int {
    const int l = inner_loop_of(b);
    if (l == -1) return b;  // plain block
    return cfg.loops[static_cast<std::size_t>(l)].header;  // collapsed rep
  };

  auto node_cost = [&](int node) -> std::uint64_t {
    const int l = inner_loop_of(node);
    if (l == -1) return ctx.block_cost[static_cast<std::size_t>(node)];
    return loop_wcet(ctx, l);
  };

  // Build the collapsed edge list.
  std::map<int, std::vector<int>> edges;  // node -> successor nodes
  std::map<int, int> indegree;
  std::set<int> nodes;
  const int header =
      region_loop == -1
          ? -1
          : cfg.loops[static_cast<std::size_t>(region_loop)].header;
  for (int b : members) {
    const int from_node = node_of(b);
    nodes.insert(from_node);
    const int from_inner = inner_loop_of(b);
    for (int s : cfg.blocks[static_cast<std::size_t>(b)].succs) {
      if (members.count(s) == 0) continue;   // leaves the region
      if (s == header) continue;             // region back edge
      const int to_node = node_of(s);
      if (from_node == to_node) continue;    // intra-collapsed edge
      // Only keep edges that actually leave the collapsed inner loop.
      if (from_inner != -1) {
        const auto& inner =
            cfg.loops[static_cast<std::size_t>(from_inner)].blocks;
        if (std::find(inner.begin(), inner.end(), s) != inner.end()) continue;
      }
      edges[from_node].push_back(to_node);
      ++indegree[to_node];
      nodes.insert(to_node);
    }
  }

  // Topological longest path.
  std::map<int, std::uint64_t> dist;
  const int source_node = node_of(source);
  dist[source_node] = node_cost(source_node);
  std::vector<int> ready;
  for (int nd : nodes)
    if (indegree[nd] == 0) ready.push_back(nd);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const int nd = ready.back();
    ready.pop_back();
    ++processed;
    auto dit = dist.find(nd);
    if (dit != dist.end()) {
      for (int s : edges[nd]) {
        const std::uint64_t cand = dit->second + node_cost(s);
        auto [sit, inserted] = dist.emplace(s, cand);
        if (!inserted) sit->second = std::max(sit->second, cand);
      }
    }
    for (int s : edges[nd])
      if (--indegree[s] == 0) ready.push_back(s);
  }
  if (processed != nodes.size())
    throw WcetError("cycle in collapsed region graph (irreducible flow?)");
  return dist;
}

std::uint64_t loop_wcet(const PathContext& ctx, int loop_index) {
  const Loop& loop = ctx.cfg.loops[static_cast<std::size_t>(loop_index)];
  const std::map<int, std::uint64_t> dist =
      longest_paths(ctx, loop_index, loop.header);

  auto dist_to = [&](int b) -> std::uint64_t {
    // The block may be collapsed into an inner loop header node.
    auto it = dist.find(b);
    if (it != dist.end()) return it->second;
    int l = ctx.cfg.loop_of[static_cast<std::size_t>(b)];
    while (l != -1) {
      auto hit = dist.find(ctx.cfg.loops[static_cast<std::size_t>(l)].header);
      if (hit != dist.end()) return hit->second;
      l = ctx.cfg.loops[static_cast<std::size_t>(l)].parent;
    }
    return 0;
  };

  std::uint64_t per_iter = 0;
  for (int latch : loop.latches)
    per_iter = std::max(per_iter, dist_to(latch));
  std::uint64_t exit_path = 0;
  for (const auto& [from, to] : loop.exits)
    exit_path = std::max(exit_path, dist_to(from));

  const auto bound = static_cast<std::uint64_t>(
      std::max<std::int64_t>(ctx.loop_bound[static_cast<std::size_t>(loop_index)], 0));
  return bound * per_iter + exit_path +
         ctx.loop_ps_charge[static_cast<std::size_t>(loop_index)];
}

}  // namespace

WcetResult analyze_wcet(const mach::Image& image, const std::string& fn_name,
                        const WcetOptions& options) {
  WcetResult result;

  const mach::TargetDesc& desc = mach::target_by_name(
      image.target.empty() ? mach::default_target_name() : image.target);
  const mach::MachineConfig machine =
      options.machine ? *options.machine : desc.machine;

  const Cfg cfg = build_cfg(image, fn_name);
  AnnotIndex annots;
  if (options.use_annotations)
    annots = index_annotations(image, image.fn_entry.at(fn_name),
                               image.fn_end.at(fn_name));
  result.warnings = annots.warnings;

  const ValueAnalysisResult values = analyze_values(cfg, annots, desc);

  CacheAnalysisResult caches;
  if (options.cache_analysis) {
    caches = analyze_caches(cfg, values, machine);
  } else {
    // Everything is a miss.
    caches.ilines.assign(cfg.blocks.size(), {});
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      const MachineBlock& bb = cfg.blocks[b];
      std::uint32_t prev_line = 0xFFFFFFFF;
      for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
        const std::uint32_t addr =
            bb.start + static_cast<std::uint32_t>(i) * 4;
        const std::uint32_t line = machine.icache.line_addr(addr);
        if (line != prev_line) {
          prev_line = line;
          ILineEvent ev;
          ev.line_addr = line;
          ev.first_instr = static_cast<int>(i);
          ev.cls = AccessClass{CacheClass::Miss, -1};
          caches.ilines[b].push_back(ev);
        }
      }
    }
    caches.daccess.assign(values.accesses.size(),
                          AccessClass{CacheClass::Miss, -1});
  }

  // Loop bounds: annotations take effect on the innermost loop containing
  // the annotation point; automatic derivation refines them.
  std::vector<std::int64_t> loop_bound(cfg.loops.size(), -1);
  std::vector<bool> bound_from_annot(cfg.loops.size(), false);
  std::vector<bool> bound_derived(cfg.loops.size(), false);
  for (const auto& [addr, n] : annots.loop_bounds) {
    const int b = cfg.block_containing(addr);
    if (b < 0) continue;
    const int l = cfg.loop_of[static_cast<std::size_t>(b)];
    if (l < 0) {
      result.warnings.push_back("loop annotation at " + hex32(addr) +
                                " is outside any loop");
      continue;
    }
    auto& bound = loop_bound[static_cast<std::size_t>(l)];
    if (bound < 0 || n < bound) {
      bound = n;
      bound_from_annot[static_cast<std::size_t>(l)] = true;
    }
  }
  for (std::size_t l = 0; l < cfg.loops.size(); ++l) {
    const auto derived = derive_bound(cfg, values, cfg.loops[l]);
    if (derived) {
      bound_derived[l] = true;
      if (loop_bound[l] < 0 || *derived < loop_bound[l]) {
        loop_bound[l] = *derived;
        bound_from_annot[l] = false;
      }
    }
  }
  for (std::size_t l = 0; l < cfg.loops.size(); ++l) {
    if (loop_bound[l] < 0)
      throw WcetError(
          "no bound for loop headed at " +
          hex32(cfg.blocks[static_cast<std::size_t>(cfg.loops[l].header)]
                    .start) +
          " in " + fn_name + " (annotation required)");
    LoopBoundInfo info;
    info.header_addr =
        cfg.blocks[static_cast<std::size_t>(cfg.loops[l].header)].start;
    info.bound = loop_bound[l];
    info.from_annotation = bound_from_annot[l];
    info.derived = bound_derived[l];
    result.loops.push_back(info);
  }

  // Per-block base costs plus per-execution (Miss) cache charges; collect
  // persistence charges per scope.
  std::vector<std::uint64_t> block_cost(cfg.blocks.size(), 0);
  std::vector<std::uint64_t> loop_ps_charge(cfg.loops.size(), 0);
  std::uint64_t function_ps_charge = 0;

  // Group data-access classes per block in instruction order.
  std::vector<std::vector<const AccessClass*>> dacc_by_block(cfg.blocks.size());
  for (std::size_t i = 0; i < values.accesses.size(); ++i)
    dacc_by_block[static_cast<std::size_t>(values.accesses[i].block)]
        .push_back(&caches.daccess[i]);

  auto charge_persistent = [&](const AccessClass& cls) {
    if (cls.cls != CacheClass::Persistent) return;
    if (cls.scope == -1)
      function_ps_charge += machine.miss_penalty;
    else
      loop_ps_charge[static_cast<std::size_t>(cls.scope)] +=
          machine.miss_penalty;
  };

  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    block_cost[b] = block_base_cost(cfg.blocks[b], caches.ilines[b],
                                    dacc_by_block[b], desc, machine,
                                    values.block_in[b].reachable);
    for (const ILineEvent& ev : caches.ilines[b]) charge_persistent(ev.cls);
    result.block_costs.emplace_back(cfg.blocks[b].start, block_cost[b]);
  }
  for (const AccessClass& cls : caches.daccess) charge_persistent(cls);

  // Path analysis: both engines consume the same CFG, bounds, costs, and
  // persistence charges — they differ only in how they maximize over paths.
  if (options.engine != WcetEngine::Ipet) {
    PathContext ctx{cfg, block_cost, loop_bound, loop_ps_charge};
    const std::map<int, std::uint64_t> dist = longest_paths(ctx, -1, 0);
    std::uint64_t best = 0;
    for (const auto& [node, d] : dist) best = std::max(best, d);
    result.structural_cycles = best + function_ps_charge;
    result.wcet_cycles = *result.structural_cycles;
  }
  if (options.engine != WcetEngine::Structural) {
    result.ipet = analyze_ipet(cfg, values, loop_bound, block_cost,
                               loop_ps_charge, function_ps_charge, fn_name);
    // The IPET bound is the selected bound whenever it ran: it is exact for
    // the constraint system, so it is never looser than the structural
    // over-approximation of the same system.
    result.wcet_cycles = result.ipet->wcet_cycles;
  }
  return result;
}

}  // namespace vc::wcet
