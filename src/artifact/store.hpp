// A content-addressed artifact store: the reproduction's counterpart of a
// build/analysis cache in a CompCert + aiT campaign pipeline. Both tools are
// pure functions of (source, options, tool version), so an artifact is keyed
// by the 128-bit digest of exactly those inputs (support/hash.hpp) and a
// warm rerun of a 2500-file campaign reduces to hash lookups.
//
// Layout:  <dir>/ab/cdef.../{image.bin, annot.txt, stats.json, meta}
//   image.bin   serialized linked executable (artifact/image_io.hpp)
//   annot.txt   human-readable annotation table ("annotation file" of §3.4)
//   stats.json  caller-owned JSON results document (the fleet stores its
//               per-run execution/WCET stanzas here; the store is agnostic)
//   meta        sizes + FNV-128 digests of the three payload files
//
// Contracts:
//   Sharding      — the in-memory index is split over kShards mutex-striped
//                   maps keyed by digest bits, so fleet workers touching
//                   different artifacts never contend on one lock.
//   Publication   — write-then-rename: payloads land in a hidden tmp dir
//                   that is atomically renamed into place, so readers (and
//                   crashes) never observe a half-written entry. A lost
//                   publish race is benign: the winner's entry is equivalent.
//   Integrity     — every lookup re-reads meta and re-hashes all payloads;
//                   a corrupt, truncated, or stale-format entry is evicted,
//                   counted (corrupt_dropped), and reported as a miss so the
//                   caller transparently falls back to a cold compile.
//   Eviction      — optional byte budget; least-recently-used entries (by a
//                   store-global access tick) are removed until under budget.
//   Persistence   — opening a store re-indexes whatever survives on disk, in
//                   scan order; that is what makes campaign restarts warm.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/hash.hpp"
#include "support/json.hpp"

namespace vc::artifact {

/// Counters for the cache footers and the campaign reports. Monotonic since
/// store open, except resident_* which track the current disk contents.
struct StoreStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  // absent entries AND integrity-failed entries
  std::uint64_t publishes = 0;
  std::uint64_t publish_races = 0;   // lost write-then-rename races (benign)
  std::uint64_t stats_updates = 0;
  std::uint64_t corrupt_dropped = 0;  // integrity/parse failures evicted
  std::uint64_t evictions = 0;        // LRU budget evictions
  std::uint64_t resident_entries = 0;
  std::uint64_t resident_bytes = 0;
  double lookup_seconds = 0.0;
  double publish_seconds = 0.0;

  [[nodiscard]] std::string summary() const;
};

class ArtifactStore {
 public:
  struct Options {
    std::string dir;
    /// LRU payload-byte budget; 0 = unlimited.
    std::uint64_t budget_bytes = 0;
  };

  /// Opens (creating if needed) the store and indexes surviving entries.
  /// Entries with unreadable or mismatched meta are removed on the spot.
  explicit ArtifactStore(const Options& options);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Derives the artifact key from everything the compile depends on. The
  /// fields are length-framed, so no two distinct tuples share a digest by
  /// concatenation.
  static Hash128 make_key(std::string_view source, std::string_view entry,
                          std::string_view config, std::string_view target,
                          bool annotations,
                          std::string_view compiler_version);

  struct Loaded {
    std::vector<std::uint8_t> image_bytes;  // still serialized; the caller
                                            // deserializes (image_io) and
                                            // calls invalidate() on failure
    std::string annot;
    json::Value stats;
  };

  /// Integrity-checked load; nullopt on miss or on a dropped corrupt entry.
  std::optional<Loaded> lookup(const Hash128& key);

  /// Publishes a new entry (write-then-rename). `info` is merged into meta
  /// under "info" for debuggability (config, compiler version, ...).
  void publish(const Hash128& key,
               const std::vector<std::uint8_t>& image_bytes,
               const std::string& annot, const json::Value& stats,
               json::Value info = {});

  /// Replaces the stats document of a resident entry (image untouched);
  /// false if the entry is not resident.
  bool update_stats(const Hash128& key, const json::Value& stats);

  /// Drops an entry the caller found unusable after lookup (e.g. the image
  /// failed to deserialize); counted as corrupt.
  void invalidate(const Hash128& key);

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  static constexpr std::size_t kShards = 16;

 private:
  struct Entry {
    std::uint64_t bytes = 0;  // payload + meta bytes on disk
    std::uint64_t tick = 0;   // last-use order for LRU
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;  // hex key -> entry
  };

  /// Shard = top nibble of the digest — recoverable from the first hex char
  /// of an on-disk entry name, so re-indexing lands entries in the same
  /// shard they would hash to.
  Shard& shard_of(const Hash128& key) {
    return shards_[(key.hi >> 60) & (kShards - 1)];
  }
  [[nodiscard]] std::string entry_dir(const std::string& hex) const;
  void index_existing();
  bool drop_entry_locked(Shard& shard, const std::string& hex);
  void enforce_budget();

  std::string dir_;
  std::uint64_t budget_bytes_ = 0;
  Shard shards_[kShards];

  mutable std::mutex stats_mutex_;
  StoreStats stats_;
  std::atomic<std::uint64_t> next_tick_{1};
  std::atomic<std::uint64_t> tmp_counter_{0};
};

}  // namespace vc::artifact
