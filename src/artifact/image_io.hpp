// Binary serialization of linked images (mach::Image) for the artifact store:
// a cached compile is only useful if the *executable* — code words, initial
// data, symbol tables, and the annotation table the WCET analyzer consumes —
// round-trips exactly. The format is explicit little-endian with a magic and
// version word, so a stale-format entry deserializes to a clean error (the
// store treats it as corrupt and falls back to a cold compile) rather than a
// silently wrong image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mach/program.hpp"

namespace vc::artifact {

/// Current serialization format version; bump on any layout change so old
/// store entries miss instead of mis-parse.
inline constexpr std::uint32_t kImageFormatVersion = 2;

/// Serializes `image` to the versioned binary format.
std::vector<std::uint8_t> serialize_image(const mach::Image& image);

/// Deserialization outcome: the image, or a diagnostic. Never throws —
/// malformed cache bytes are expected input for the store's fallback path.
struct ImageParse {
  mach::Image image;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

ImageParse deserialize_image(const std::vector<std::uint8_t>& bytes);

/// Renders the image's annotation table as the human-readable "annotation
/// file" of the paper's §3.4 flow (one line per entry: address, format,
/// operand locations). Stored next to image.bin for debuggability; the
/// authoritative copy the analyzer consumes lives inside image.bin.
std::string annotation_text(const mach::Image& image);

}  // namespace vc::artifact
