#include "artifact/store.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

namespace vc::artifact {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kPayloadFiles[] = {"image.bin", "annot.txt",
                                         "stats.json"};
constexpr int kMetaFormat = 1;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool is_hex(const std::string& s) {
  for (const char c : s)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buffer.str();
}

bool write_file(const fs::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  return out.good();
}

/// Atomic same-directory replacement: write `<name>.tmp`, rename over name.
bool write_file_atomic(const fs::path& dir, const std::string& name,
                       std::string_view content) {
  const fs::path tmp = dir / (name + ".tmp");
  if (!write_file(tmp, content)) return false;
  std::error_code ec;
  fs::rename(tmp, dir / name, ec);
  if (ec) fs::remove(tmp, ec);
  return !ec;
}

json::Value file_stanza(std::string_view content) {
  json::Value v;
  v["bytes"] = json::Value(static_cast<std::uint64_t>(content.size()));
  v["fnv128"] = json::Value(fnv128(content).hex());
  return v;
}

/// Total on-disk bytes a meta document accounts for (payloads + meta itself).
std::uint64_t meta_total_bytes(const json::Value& meta,
                               std::size_t meta_bytes) {
  std::uint64_t total = meta_bytes;
  for (const char* name : kPayloadFiles)
    total += meta.at("files").at(name).at("bytes").as_u64();
  return total;
}

}  // namespace

std::string StoreStats::summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "artifact store: %llu lookup(s): %llu hit(s), %llu miss(es); "
      "%llu publish(es), %llu stats update(s); %llu corrupt dropped, "
      "%llu evicted; resident %llu entr%s / %.1f MiB; "
      "lookup %.2fs, publish %.2fs",
      static_cast<unsigned long long>(lookups),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(publishes),
      static_cast<unsigned long long>(stats_updates),
      static_cast<unsigned long long>(corrupt_dropped),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(resident_entries),
      resident_entries == 1 ? "y" : "ies",
      static_cast<double>(resident_bytes) / (1024.0 * 1024.0), lookup_seconds,
      publish_seconds);
  return buf;
}

ArtifactStore::ArtifactStore(const Options& options)
    : dir_(options.dir), budget_bytes_(options.budget_bytes) {
  fs::create_directories(dir_);
  index_existing();
}

Hash128 ArtifactStore::make_key(std::string_view source,
                                std::string_view entry,
                                std::string_view config,
                                std::string_view target, bool annotations,
                                std::string_view compiler_version) {
  Fnv128 h;
  h.update_sized(source);
  h.update_sized(entry);
  h.update_sized(config);
  h.update_sized(target);
  h.update_bool(annotations);
  h.update_sized(compiler_version);
  return h.digest();
}

std::string ArtifactStore::entry_dir(const std::string& hex) const {
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex.substr(2);
}

void ArtifactStore::index_existing() {
  std::error_code ec;
  for (const fs::directory_entry& shard_dir : fs::directory_iterator(dir_, ec)) {
    if (!shard_dir.is_directory()) continue;
    const std::string prefix = shard_dir.path().filename().string();
    if (prefix.size() != 2 || !is_hex(prefix)) continue;
    std::error_code inner_ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(shard_dir.path(), inner_ec)) {
      const std::string rest = entry.path().filename().string();
      if (rest.size() != 30 || !is_hex(rest) || !entry.is_directory()) {
        // Crash debris: tmp dirs/files from a publication or stats update
        // that was killed mid-write. Atomic rename guarantees none of it was
        // ever visible as an entry; drop it and account it so a restart
        // after a crash is observable in the corruption counter.
        fs::remove_all(entry.path(), inner_ec);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.corrupt_dropped;
        continue;
      }
      const std::string hex = prefix + rest;
      bool valid = false;
      std::uint64_t bytes = 0;
      json::Value meta_doc;
      if (const auto meta_text = read_file(entry.path() / "meta")) {
        json::Parsed meta = json::parse(*meta_text);
        if (meta.ok() && meta.value.at("format").as_i64() == kMetaFormat &&
            meta.value.at("key").as_string() == hex) {
          bytes = meta_total_bytes(meta.value, meta_text->size());
          meta_doc = std::move(meta.value);
          valid = true;
        }
      }
      // Stray "<name>.tmp" files inside an entry (a crashed write_file_atomic)
      // are not referenced by meta; garbage-collect and count them so a kill
      // mid-write is observable in the corruption counter.
      for (const fs::directory_entry& inner :
           fs::directory_iterator(entry.path(), inner_ec)) {
        if (inner.path().extension() == ".tmp") {
          fs::remove(inner.path(), inner_ec);
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.corrupt_dropped;
        }
      }
      // Crash-consistency: an entry is only indexed when every payload file
      // is present with exactly the byte count meta recorded — a truncated
      // image from a kill mid-write must never be re-served. (Lookups
      // re-hash payloads anyway; this catches the damage at restart, before
      // anything can be handed out.)
      if (valid) {
        for (const char* name : kPayloadFiles) {
          std::error_code size_ec;
          const std::uint64_t on_disk =
              fs::file_size(entry.path() / name, size_ec);
          if (size_ec ||
              on_disk != meta_doc.at("files").at(name).at("bytes").as_u64()) {
            valid = false;
            break;
          }
        }
      }
      if (!valid) {
        fs::remove_all(entry.path(), inner_ec);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.corrupt_dropped;
        continue;
      }
      // The shard is the top nibble of the digest = the first hex char.
      const char c0 = hex[0];
      const std::size_t shard_index = static_cast<std::size_t>(
          c0 <= '9' ? c0 - '0' : c0 - 'a' + 10);
      Shard& shard = shards_[shard_index & (kShards - 1)];
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries[hex] = Entry{bytes, next_tick_.fetch_add(1)};
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.resident_entries;
      stats_.resident_bytes += bytes;
    }
  }
  enforce_budget();
}

bool ArtifactStore::drop_entry_locked(Shard& shard, const std::string& hex) {
  const auto it = shard.entries.find(hex);
  if (it == shard.entries.end()) return false;
  const std::uint64_t bytes = it->second.bytes;
  shard.entries.erase(it);
  std::error_code ec;
  fs::remove_all(entry_dir(hex), ec);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  --stats_.resident_entries;
  stats_.resident_bytes -= bytes;
  return true;
}

std::optional<ArtifactStore::Loaded> ArtifactStore::lookup(
    const Hash128& key) {
  const auto t_start = Clock::now();
  const std::string hex = key.hex();
  Shard& shard = shard_of(key);
  std::unique_lock<std::mutex> lock(shard.mutex);

  const auto note = [&](bool hit, bool corrupt) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.lookups;
    ++(hit ? stats_.hits : stats_.misses);
    if (corrupt) ++stats_.corrupt_dropped;
    stats_.lookup_seconds += seconds_since(t_start);
  };

  const auto it = shard.entries.find(hex);
  if (it == shard.entries.end()) {
    lock.unlock();
    note(false, false);
    return std::nullopt;
  }

  // Re-read and re-hash everything: disk contents are untrusted (truncation,
  // corruption, concurrent external eviction). Any surprise drops the entry
  // and reports a miss so the caller falls back to a cold compile.
  const fs::path edir = entry_dir(hex);
  Loaded loaded;
  bool ok = false;
  do {
    const auto meta_text = read_file(edir / "meta");
    if (!meta_text) break;
    const json::Parsed meta = json::parse(*meta_text);
    if (!meta.ok() || meta.value.at("format").as_i64() != kMetaFormat ||
        meta.value.at("key").as_string() != hex)
      break;
    std::string contents[3];
    bool intact = true;
    for (int i = 0; i < 3; ++i) {
      const auto text = read_file(edir / kPayloadFiles[i]);
      const json::Value& stanza = meta.value.at("files").at(kPayloadFiles[i]);
      if (!text || text->size() != stanza.at("bytes").as_u64() ||
          fnv128(*text).hex() != stanza.at("fnv128").as_string()) {
        intact = false;
        break;
      }
      contents[i] = std::move(*text);
    }
    if (!intact) break;
    const json::Parsed stats_doc = json::parse(contents[2]);
    if (!stats_doc.ok()) break;
    loaded.image_bytes.assign(contents[0].begin(), contents[0].end());
    loaded.annot = std::move(contents[1]);
    loaded.stats = stats_doc.value;
    ok = true;
  } while (false);

  if (!ok) {
    drop_entry_locked(shard, hex);
    lock.unlock();
    note(false, true);
    return std::nullopt;
  }

  it->second.tick = next_tick_.fetch_add(1);
  lock.unlock();
  note(true, false);
  return loaded;
}

void ArtifactStore::publish(const Hash128& key,
                            const std::vector<std::uint8_t>& image_bytes,
                            const std::string& annot, const json::Value& stats,
                            json::Value info) {
  const auto t_start = Clock::now();
  const std::string hex = key.hex();
  const std::string image_text(image_bytes.begin(), image_bytes.end());
  const std::string stats_text = stats.dump(1);

  json::Value meta;
  meta["format"] = json::Value(static_cast<std::int64_t>(kMetaFormat));
  meta["key"] = json::Value(hex);
  meta["files"]["image.bin"] = file_stanza(image_text);
  meta["files"]["annot.txt"] = file_stanza(annot);
  meta["files"]["stats.json"] = file_stanza(stats_text);
  if (!info.is_null()) meta["info"] = std::move(info);
  const std::string meta_text = meta.dump(1);

  const fs::path shard_path = fs::path(dir_) / hex.substr(0, 2);
  const fs::path final_path = shard_path / hex.substr(2);
  const fs::path tmp_path =
      shard_path / (".tmp-" + hex.substr(2, 8) + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(tmp_counter_.fetch_add(1)));

  std::error_code ec;
  fs::create_directories(shard_path, ec);
  fs::create_directory(tmp_path, ec);
  const bool written = !ec && write_file(tmp_path / "image.bin", image_text) &&
                       write_file(tmp_path / "annot.txt", annot) &&
                       write_file(tmp_path / "stats.json", stats_text) &&
                       write_file(tmp_path / "meta", meta_text);
  bool published = false;
  bool raced = false;
  if (written) {
    fs::rename(tmp_path, final_path, ec);
    if (!ec) {
      published = true;
    } else {
      // Another worker/process published this key first; its entry is
      // equivalent by construction (same key = same inputs).
      raced = fs::exists(final_path / "meta");
    }
  }
  fs::remove_all(tmp_path, ec);

  const std::uint64_t total_bytes = image_text.size() + annot.size() +
                                    stats_text.size() + meta_text.size();
  if (published) {
    Shard& shard = shard_of(key);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.entries[hex] = Entry{total_bytes, next_tick_.fetch_add(1)};
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.publishes;
    ++stats_.resident_entries;
    stats_.resident_bytes += total_bytes;
    stats_.publish_seconds += seconds_since(t_start);
  } else {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (raced) ++stats_.publish_races;
    stats_.publish_seconds += seconds_since(t_start);
  }
  if (published) enforce_budget();
}

bool ArtifactStore::update_stats(const Hash128& key,
                                 const json::Value& stats) {
  const std::string hex = key.hex();
  const std::string stats_text = stats.dump(1);
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(hex);
  if (it == shard.entries.end()) return false;

  const fs::path edir = entry_dir(hex);
  const auto meta_text = read_file(edir / "meta");
  if (!meta_text) return false;
  json::Parsed meta = json::parse(*meta_text);
  if (!meta.ok()) return false;
  const std::uint64_t old_total = it->second.bytes;
  meta.value["files"]["stats.json"] = file_stanza(stats_text);
  const std::string new_meta = meta.value.dump(1);
  // stats.json first, meta last: a crash between the two leaves a hash
  // mismatch that the next lookup detects and repairs via cold fallback.
  if (!write_file_atomic(edir, "stats.json", stats_text)) return false;
  if (!write_file_atomic(edir, "meta", new_meta)) return false;

  const std::uint64_t new_total =
      meta_total_bytes(meta.value, new_meta.size());
  it->second.bytes = new_total;
  it->second.tick = next_tick_.fetch_add(1);
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.stats_updates;
  stats_.resident_bytes += new_total - old_total;
  return true;
}

void ArtifactStore::invalidate(const Hash128& key) {
  Shard& shard = shard_of(key);
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped = drop_entry_locked(shard, key.hex());
  }
  if (dropped) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.corrupt_dropped;
  }
}

void ArtifactStore::enforce_budget() {
  if (budget_bytes_ == 0) return;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (stats_.resident_bytes <= budget_bytes_) return;
    }
    // Victim = globally least-recently-used entry (scan shard minima).
    std::string victim;
    std::uint64_t victim_tick = UINT64_MAX;
    std::size_t victim_shard = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      for (const auto& [hex, entry] : shards_[s].entries) {
        if (entry.tick < victim_tick) {
          victim_tick = entry.tick;
          victim = hex;
          victim_shard = s;
        }
      }
    }
    if (victim.empty()) return;  // budget smaller than any entry: store empty
    {
      std::lock_guard<std::mutex> lock(shards_[victim_shard].mutex);
      drop_entry_locked(shards_[victim_shard], victim);
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.evictions;
  }
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace vc::artifact
