#include "artifact/image_io.hpp"

#include <cstring>

#include "support/strings.hpp"

namespace vc::artifact {

namespace {

constexpr std::uint32_t kMagic = 0x5643494D;  // "VCIM"

// Guards against absurd counts in corrupt headers before any allocation.
constexpr std::uint64_t kMaxElems = 1ull << 28;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return fail();
    *v = bytes_[pos_++];
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return fail();
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i)
      out |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
             << (8 * i);
    pos_ += 4;
    *v = out;
    return true;
  }
  bool i32(std::int32_t* v) {
    std::uint32_t raw = 0;
    if (!u32(&raw)) return false;
    *v = static_cast<std::int32_t>(raw);
    return true;
  }
  bool str(std::string* s) {
    std::uint32_t size = 0;
    if (!u32(&size) || size > kMaxElems || pos_ + size > bytes_.size())
      return fail();
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return true;
  }

  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

 private:
  bool fail() {
    truncated_ = true;
    return false;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

void write_sym_map(Writer* w, const std::map<std::string, std::uint32_t>& m) {
  w->u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [name, value] : m) {
    w->str(name);
    w->u32(value);
  }
}

bool read_sym_map(Reader* r, std::map<std::string, std::uint32_t>* m) {
  std::uint32_t count = 0;
  if (!r->u32(&count) || count > kMaxElems) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::uint32_t value = 0;
    if (!r->str(&name) || !r->u32(&value)) return false;
    (*m)[name] = value;
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> serialize_image(const mach::Image& image) {
  Writer w;
  w.u32(kMagic);
  w.u32(kImageFormatVersion);
  w.str(image.target);

  w.u32(static_cast<std::uint32_t>(image.words.size()));
  for (const std::uint32_t word : image.words) w.u32(word);
  w.bytes(image.data_init);
  write_sym_map(&w, image.fn_entry);
  write_sym_map(&w, image.fn_end);
  write_sym_map(&w, image.global_addr);

  w.u32(static_cast<std::uint32_t>(image.annotations.size()));
  for (const mach::AnnotEntry& a : image.annotations) {
    w.u32(a.addr);
    w.str(a.format);
    w.u32(static_cast<std::uint32_t>(a.operands.size()));
    for (const mach::MLoc& op : a.operands) {
      w.u8(static_cast<std::uint8_t>(op.kind));
      w.i32(op.index);
      w.i32(op.offset);
      w.u8(op.is_f64 ? 1 : 0);
    }
  }
  return w.take();
}

ImageParse deserialize_image(const std::vector<std::uint8_t>& bytes) {
  ImageParse out;
  Reader r(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!r.u32(&magic) || magic != kMagic) {
    out.error = "bad image magic";
    return out;
  }
  if (!r.u32(&version) || version != kImageFormatVersion) {
    out.error = "unsupported image format version";
    return out;
  }
  if (!r.str(&out.image.target)) {
    out.error = "bad target name";
    return out;
  }

  std::uint32_t word_count = 0;
  if (!r.u32(&word_count) || word_count > kMaxElems) {
    out.error = "bad code section";
    return out;
  }
  out.image.words.resize(word_count);
  for (std::uint32_t i = 0; i < word_count; ++i)
    if (!r.u32(&out.image.words[i])) {
      out.error = "truncated code section";
      return out;
    }

  std::uint32_t data_size = 0;
  if (!r.u32(&data_size) || data_size > kMaxElems) {
    out.error = "bad data section";
    return out;
  }
  out.image.data_init.resize(data_size);
  for (std::uint32_t i = 0; i < data_size; ++i)
    if (!r.u8(&out.image.data_init[i])) {
      out.error = "truncated data section";
      return out;
    }

  if (!read_sym_map(&r, &out.image.fn_entry) ||
      !read_sym_map(&r, &out.image.fn_end) ||
      !read_sym_map(&r, &out.image.global_addr)) {
    out.error = "bad symbol table";
    return out;
  }

  std::uint32_t annot_count = 0;
  if (!r.u32(&annot_count) || annot_count > kMaxElems) {
    out.error = "bad annotation table";
    return out;
  }
  out.image.annotations.resize(annot_count);
  for (std::uint32_t i = 0; i < annot_count; ++i) {
    mach::AnnotEntry& a = out.image.annotations[i];
    std::uint32_t op_count = 0;
    if (!r.u32(&a.addr) || !r.str(&a.format) || !r.u32(&op_count) ||
        op_count > kMaxElems) {
      out.error = "bad annotation entry";
      return out;
    }
    a.operands.resize(op_count);
    for (std::uint32_t j = 0; j < op_count; ++j) {
      mach::MLoc& op = a.operands[j];
      std::uint8_t kind = 0;
      std::uint8_t is_f64 = 0;
      if (!r.u8(&kind) || kind > 2 || !r.i32(&op.index) || !r.i32(&op.offset) ||
          !r.u8(&is_f64)) {
        out.error = "bad annotation operand";
        return out;
      }
      op.kind = static_cast<mach::MLoc::Kind>(kind);
      op.is_f64 = is_f64 != 0;
    }
  }

  if (!r.at_end()) {
    out.error = "trailing bytes after image";
    return out;
  }
  return out;
}

std::string annotation_text(const mach::Image& image) {
  std::string out;
  for (const mach::AnnotEntry& a : image.annotations) {
    out += hex32(a.addr);
    out += "  ";
    out += a.format;
    for (const mach::MLoc& op : a.operands) {
      out += "  ";
      out += op.to_string();
    }
    out += "\n";
  }
  return out;
}

}  // namespace vc::artifact
