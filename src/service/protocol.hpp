// The vccd wire protocol: length-prefixed JSON frames over a local
// Unix-domain socket.
//
// Frame layout: a 4-byte little-endian payload length, then exactly that
// many bytes of UTF-8 JSON. The length must be non-zero and at most
// kMaxFrameBytes; the payload must parse as a JSON object. Every violation
// — short header, oversized length, trailing garbage, non-object payload,
// unknown "op", ill-typed field — is answered with one error frame and the
// connection is dropped. The daemon never crashes on client input: it is an
// UNTRUSTED convenience layer. Every artifact it serves was produced by the
// verified pipeline and gated by the translation validators, the IPET
// certificate checker, and (when armed) the execution monitor — none of
// which live in this directory (DESIGN.md §13).
//
// Requests (all JSON objects with an "op" field):
//   {"op":"ping"}                          -> {"ok":true,"pong":true}
//   {"op":"status"}                        -> {"ok":true,"status":{...}}
//   {"op":"shutdown"}                      -> {"ok":true} + graceful drain
//   {"op":"job","id":N,"source":...,...}   -> {"ok":true,"id":N,
//                                              "record":{...},"cache":...,
//                                              "seconds":...}
// Replies to jobs may arrive out of submission order (clients pipeline);
// the "id" ties a reply to its request. Error replies are
// {"ok":false,"error":"..."} (plus "id" when the request carried one).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "driver/compiler.hpp"
#include "machine/monitor.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "wcet/wcet.hpp"

namespace vc::service {

/// Upper bound on one frame's payload; a length above this is a malformed
/// frame (drop), not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

// --- framing ---------------------------------------------------------------

struct Frame {
  enum class Status { Ok, Eof, Error };
  Status status = Status::Error;
  std::string payload;  // set when Ok
  std::string error;    // set when Error
};

/// Reads one frame from `fd` (blocking). Eof only at a clean frame
/// boundary; a connection that dies mid-frame is an Error.
Frame read_frame(int fd);

/// Writes one frame to `fd`. Returns false on any write failure (the
/// caller drops the connection; SIGPIPE is suppressed via MSG_NOSIGNAL).
bool write_frame(int fd, std::string_view payload);

// --- socket helpers --------------------------------------------------------

/// Binds and listens on a Unix-domain socket at `path` (unlinking any stale
/// socket first). Returns the listening fd, or -1 with `*error` set.
int listen_unix(const std::string& path, std::string* error);

/// Connects to the daemon socket at `path`. Returns the fd, or -1.
int connect_unix(const std::string& path);

// --- requests --------------------------------------------------------------

/// A validated "op":"job" request: one (source, entry, config) compile with
/// optional execution / WCET / validation phases — the service-side mirror
/// of one fleet (unit, config) job.
struct JobRequest {
  std::int64_t id = 0;
  std::string name;          // record name (defaults to "job<id>")
  std::string source;        // full mini-C program text
  std::string entry;         // entry function; "auto" = the sole function
  driver::Config config = driver::Config::Verified;
  std::string target = "ppc";  // target ISA (validated against src/targets)
  int exec_cycles = 0;
  bool cold_caches = false;
  bool wcet = false;
  bool wcet_nocache = false;
  wcet::WcetEngine wcet_engine = wcet::WcetEngine::Structural;
  bool use_annotations = true;
  machine::MonitorMode monitor = machine::MonitorMode::Off;
  driver::ValidateLevel validate = driver::ValidateLevel::Off;
  /// SSA mid-end for this job's compile (FleetOptions::ssa). Part of the
  /// class key and the incremental-recompilation hash.
  bool ssa = false;
  std::uint64_t input_seed = 0;

  /// Groups jobs that can share one run_fleet call: everything except the
  /// per-unit fields (id/name/source/entry/seed).
  [[nodiscard]] std::string class_key() const;
  /// Latency bucket for the status percentiles (the config's cli name).
  [[nodiscard]] std::string job_class() const;
  /// The incremental-recompilation key: a dependency hash over the source,
  /// entry, config, pass pipeline identity (compiler version), and every
  /// run parameter that shapes the record. Equal hash => the cached record
  /// is THE answer, no disk touched.
  [[nodiscard]] Hash128 request_hash() const;
};

/// Outcome of strictly parsing one request payload.
struct ParsedRequest {
  std::string error;  // non-empty => malformed (error reply, then drop)
  std::string op;     // "ping" | "status" | "shutdown" | "job"
  std::optional<std::int64_t> id;  // echoed in error replies when present
  std::optional<JobRequest> job;   // set when op == "job"
  [[nodiscard]] bool ok() const { return error.empty(); }
};

ParsedRequest parse_request(const std::string& payload);

/// Serializes `job` back into a request payload (client side; also used by
/// the shard supervisor to re-stamp ids when forwarding).
json::Value job_to_json(const JobRequest& job);

/// {"ok":false,"error":message} (+ "id" when given).
std::string error_reply(const std::string& message,
                        std::optional<std::int64_t> id = std::nullopt);

}  // namespace vc::service
