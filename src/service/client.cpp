#include "service/client.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

namespace vc::service {

ServiceClient::~ServiceClient() { close(); }

ServiceClient::ServiceClient(ServiceClient&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)) {}

bool ServiceClient::connect(const std::string& socket_path) {
  close();
  fd_ = connect_unix(socket_path);
  return fd_ >= 0;
}

void ServiceClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool ServiceClient::send(const json::Value& request) {
  if (fd_ < 0) return false;
  if (write_frame(fd_, request.dump())) return true;
  close();
  return false;
}

std::optional<json::Value> ServiceClient::recv() {
  if (fd_ < 0) return std::nullopt;
  Frame frame = read_frame(fd_);
  if (frame.status != Frame::Status::Ok) {
    close();
    return std::nullopt;
  }
  json::Parsed parsed = json::parse(frame.payload);
  if (!parsed.ok()) {
    close();
    return std::nullopt;
  }
  return std::move(parsed.value);
}

std::optional<json::Value> ServiceClient::call(const json::Value& request) {
  if (!send(request)) return std::nullopt;
  return recv();
}

pid_t spawn_daemon(const std::string& vccd_path,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  std::vector<std::string> storage;
  storage.reserve(args.size() + 1);
  storage.push_back(vccd_path);
  for (const std::string& a : args) storage.push_back(a);
  for (std::string& s : storage) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv(vccd_path.c_str(), argv.data());
    ::_exit(127);  // exec failed
  }
  return pid;
}

bool wait_until_ready(const std::string& socket_path,
                      double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  json::Value ping;
  ping["op"] = json::Value("ping");
  while (std::chrono::steady_clock::now() < deadline) {
    ServiceClient client;
    if (client.connect(socket_path)) {
      const auto reply = client.call(ping);
      if (reply && reply->at("ok").as_bool()) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

int terminate_daemon(pid_t pid, double timeout_seconds) {
  if (pid <= 0) return -1;
  ::kill(pid, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      return -1;
    }
    if (got < 0) return -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace vc::service
