#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "driver/fleet.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/workspace.hpp"
#include "validate/validate.hpp"

namespace vc::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Percentile over an unsorted sample (nearest-rank); 0 when empty.
double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const std::size_t rank = std::min(
      sample.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sample.size())));
  return sample[rank];
}

/// Resolves an "auto" entry against a parsed program: the sole function, or
/// the sole "_step" function when several exist. Empty on ambiguity.
std::string resolve_auto_entry(const minic::Program& program) {
  if (program.functions.size() == 1) return program.functions[0].name;
  std::string step;
  for (const minic::Function& fn : program.functions) {
    if (fn.name.size() > 5 &&
        fn.name.compare(fn.name.size() - 5, 5, "_step") == 0) {
      if (!step.empty()) return "";  // two step functions: ambiguous
      step = fn.name;
    }
  }
  return step;
}

}  // namespace

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)), started_(Clock::now()) {
  if (!options_.cache_dir.empty())
    store_ = std::make_unique<artifact::ArtifactStore>(
        artifact::ArtifactStore::Options{options_.cache_dir,
                                         options_.cache_budget_bytes});
}

ServiceServer::~ServiceServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_batcher_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  for (const auto& conn : conns_) {
    if (conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (const auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

bool ServiceServer::start(std::string* error) {
  if (::pipe(wake_pipe_) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  listen_fd_ = listen_unix(options_.socket_path, error);
  if (listen_fd_ < 0) return false;
  batcher_ = std::thread([this] { batch_loop(); });
  return true;
}

void ServiceServer::request_drain() {
  // Only async-signal-safe calls here: this runs from SIGTERM handlers.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

int ServiceServer::serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      // Reap connections whose reader already finished, so a long-lived
      // daemon does not accumulate one zombie thread per past client. The
      // write mutex serializes the close against a reply writer holding a
      // reference — the writer sees fd == -1, never a recycled descriptor.
      for (auto& old : conns_) {
        if (old->done.load() && old->reader.joinable()) {
          old->reader.join();
          std::lock_guard<std::mutex> wlock(old->write_mutex);
          ::close(old->fd);
          old->fd = -1;
        }
      }
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const auto& c) {
                                    return c->fd < 0 && !c->reader.joinable();
                                  }),
                   conns_.end());
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { connection_loop(conn); });
  }

  // Graceful drain: stop accepting, stop reading (clients see EOF), let the
  // batcher finish everything already accepted, flush replies, then stats.
  draining_.store(true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
    // Join the readers first: after this no thread can enqueue, so the
    // idle wait below really is the last job.
    for (const auto& conn : conns_)
      if (conn->reader.joinable()) conn->reader.join();
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_batcher_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) {
      std::lock_guard<std::mutex> wlock(conn->write_mutex);
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
  }
  std::fprintf(stdout, "%s\n", stats_summary().c_str());
  std::fflush(stdout);
  return 0;
}

void ServiceServer::connection_loop(std::shared_ptr<Connection> conn) {
  // Set on a protocol violation: the connection is actively dropped
  // (SHUT_RDWR, so the client sees EOF now, not at the next reap). A clean
  // client EOF leaves the socket half-open — replies to still-queued
  // pipelined jobs must be able to go out.
  bool dropped = false;
  for (;;) {
    Frame frame = read_frame(conn->fd);
    if (frame.status == Frame::Status::Eof) break;
    if (frame.status == Frame::Status::Error) {
      // Malformed framing: one error reply, then drop the connection.
      reply(conn, error_reply(frame.error));
      dropped = true;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++requests_;
    }
    ParsedRequest request = parse_request(frame.payload);
    if (!request.ok()) {
      reply(conn, error_reply(request.error, request.id));
      dropped = true;
      break;  // strict protocol: malformed request drops the connection
    }
    if (request.op == "ping") {
      json::Value doc;
      doc["ok"] = json::Value(true);
      doc["pong"] = json::Value(true);
      reply(conn, doc.dump());
      continue;
    }
    if (request.op == "status") {
      json::Value doc;
      doc["ok"] = json::Value(true);
      doc["status"] = status_json();
      reply(conn, doc.dump());
      continue;
    }
    if (request.op == "shutdown") {
      json::Value doc;
      doc["ok"] = json::Value(true);
      doc["draining"] = json::Value(true);
      reply(conn, doc.dump());
      request_drain();
      continue;
    }
    handle_job(conn, std::move(*request.job));
  }
  if (dropped) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  conn->done.store(true);
}

void ServiceServer::handle_job(const std::shared_ptr<Connection>& conn,
                               JobRequest job) {
  const auto t_arrival = Clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++job_requests_;
  }
  // Incremental recompilation: an identical request (dependency hash over
  // source + config + pass-pipeline identity + run parameters) is resolved
  // straight from the memo — no store, no disk, no compile. The resolved
  // record still rides the queue so the BATCHER sends it: the reader thread
  // must never block in send() (a pipelining client that is not draining
  // replies yet would stop this thread reading, fill both socket buffers,
  // and deadlock the daemon).
  Queued queued;
  queued.job = std::move(job);
  queued.conn = conn;
  queued.enqueued = t_arrival;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    const auto it = memo_.find(queued.job.request_hash().hex());
    if (it != memo_.end()) {
      queued.memo_hit = true;
      queued.memo_record = it->second;
    }
  }
  std::lock_guard<std::mutex> lock(queue_mutex_);
  queue_.push_back(std::move(queued));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    queue_peak_ = std::max(queue_peak_,
                           static_cast<std::uint64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
}

void ServiceServer::batch_loop() {
  for (;;) {
    std::vector<Queued> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_batcher_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_batcher_) return;
        continue;
      }
      // Tiny gather window: pipelined clients enqueue bursts; taking the
      // burst as one batch amortizes the fleet fan-out.
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      lock.lock();
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      in_flight_ = batch.size();
    }
    process_batch(std::move(batch));
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      in_flight_ = 0;
    }
    idle_cv_.notify_all();
  }
}

void ServiceServer::reply_record(const Queued& queued,
                                 const json::Value& record,
                                 const char* cache_kind) {
  json::Value doc;
  doc["ok"] = json::Value(true);
  doc["id"] = json::Value(queued.job.id);
  doc["record"] = record;
  doc["cache"] = json::Value(cache_kind);
  doc["seconds"] = json::Value(seconds_since(queued.enqueued));
  reply(queued.conn, doc.dump());
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++jobs_completed_;
  note_latency(queued.job.job_class(), seconds_since(queued.enqueued));
}

void ServiceServer::process_batch(std::vector<Queued> batch) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++batches_;
  }
  // Memo-resolved jobs first: the reader already attached the finished
  // record, so these are pure sends (and the latency the client sees is
  // queue wait + one gather window, not a compile).
  for (const Queued& queued : batch) {
    if (!queued.memo_hit) continue;
    reply_record(queued, queued.memo_record, "incremental");
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++incremental_hits_;
  }
  // Group jobs that share every run option (config included) so each group
  // is exactly one run_fleet call.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].memo_hit) continue;
    groups[batch[i].job.class_key()].push_back(i);
  }

  for (const auto& [class_key, indices] : groups) {
    (void)class_key;
    const JobRequest& head = batch[indices.front()].job;

    // Parse + typecheck each job's source up front; per-job failures are
    // replied as failed records, never thrown at the batch.
    std::vector<minic::Program> programs;
    programs.reserve(indices.size());
    std::vector<driver::FleetUnit> units;
    std::vector<std::size_t> unit_to_batch;
    for (const std::size_t i : indices) {
      const JobRequest& job = batch[i].job;
      try {
        minic::Program program = minic::parse_program(job.source, job.name);
        minic::type_check(program);
        std::string entry = job.entry;
        if (entry == "auto") {
          entry = resolve_auto_entry(program);
          if (entry.empty())
            throw std::runtime_error(
                "entry 'auto' needs a single function (or a single *_step "
                "function)");
        } else if (!entry.empty() &&
                   program.find_function(entry) == nullptr) {
          throw std::runtime_error("no function '" + entry + "'");
        }
        programs.push_back(std::move(program));
        driver::FleetUnit unit;
        unit.name = job.name;
        unit.entry = entry;
        unit.input_seed = job.input_seed;
        units.push_back(std::move(unit));
        unit_to_batch.push_back(i);
      } catch (const std::exception& e) {
        driver::FleetRecord failed;
        failed.name = job.name;
        failed.config = job.config;
        failed.ok = false;
        failed.error = e.what();
        reply_record(batch[i], driver::record_core_json(failed), "miss");
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++misses_;
      }
    }
    if (units.empty()) continue;
    // programs stopped reallocating; wire the unit pointers up now.
    for (std::size_t u = 0; u < units.size(); ++u)
      units[u].program = &programs[u];

    driver::FleetOptions fleet;
    fleet.jobs = options_.jobs;
    fleet.target = head.target;
    fleet.configs = {head.config};
    fleet.exec_cycles = head.exec_cycles;
    fleet.cold_caches = head.cold_caches;
    fleet.wcet = head.wcet;
    fleet.wcet_nocache = head.wcet_nocache;
    fleet.wcet_engine = head.wcet_engine;
    fleet.use_annotations = head.use_annotations;
    fleet.monitor = head.monitor;
    fleet.ssa = head.ssa;
    fleet.store = store_.get();
    if (head.validate != driver::ValidateLevel::Off) {
      const driver::ValidateLevel level = head.validate;
      // Same n_tests/seed convention as the campaign benches, so daemon
      // records are byte-identical to the serial references.
      fleet.compile_override = [level](const minic::Program& program,
                                       driver::Config config,
                                       const driver::CompileOptions& copts) {
        return validate::validated_compile(program, config, /*n_tests=*/6,
                                           /*seed=*/1, level, copts);
      };
    }

    driver::FleetReport report;
    try {
      report = driver::run_fleet(units, fleet);
    } catch (const std::exception& e) {
      // run_fleet only throws on option-validation errors; fail every job
      // in the group rather than the connection.
      for (const std::size_t u : unit_to_batch)
        reply(batch[u].conn, error_reply(e.what(), batch[u].job.id));
      continue;
    }

    for (std::size_t u = 0; u < units.size(); ++u) {
      const driver::FleetRecord& record = report.records[u];
      const Queued& queued = batch[unit_to_batch[u]];
      const char* cache_kind = record.cache_hit
                                   ? "full"
                                   : (record.cache_image_hit ? "image"
                                                             : "miss");
      const json::Value core = driver::record_core_json(record);
      // Memoize BEFORE replying: a client may resubmit the instant it sees
      // the reply, and that resubmission must find the memo populated.
      {
        std::lock_guard<std::mutex> lock(memo_mutex_);
        memo_.emplace(queued.job.request_hash().hex(), core);
      }
      reply_record(queued, core, cache_kind);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (record.cache_hit)
        ++full_hits_;
      else if (record.cache_image_hit)
        ++image_hits_;
      else
        ++misses_;
      monitored_steps_ += record.monitored_steps;
      monitor_violations_ += record.monitor_violations;
      for (const pass::PassStat& p : record.pass_stats.passes)
        validator_checks_ += p.checks;
    }
  }
}

void ServiceServer::reply(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->fd < 0) return;
  // A client that disconnected mid-campaign loses its replies; the daemon
  // shrugs (write failure is not an error worth more than dropping).
  (void)write_frame(conn->fd, payload);
}

void ServiceServer::note_latency(const std::string& job_class,
                                 double seconds) {
  // stats_mutex_ held by callers.
  latency_[job_class].push_back(seconds);
}

json::Value ServiceServer::status_json() {
  json::Value status;
  status["uptime_seconds"] = json::Value(seconds_since(started_));
  status["pid"] = json::Value(static_cast<std::int64_t>(::getpid()));
  if (options_.shard_index >= 0)
    status["shard_index"] =
        json::Value(static_cast<std::int64_t>(options_.shard_index));
  status["jobs"] = json::Value(static_cast<std::int64_t>(options_.jobs));
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    status["queue_depth"] = json::Value(
        static_cast<std::uint64_t>(queue_.size() + in_flight_));
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  status["queue_peak"] = json::Value(queue_peak_);
  status["requests"] = json::Value(requests_);
  status["job_requests"] = json::Value(job_requests_);
  status["jobs_completed"] = json::Value(jobs_completed_);
  status["batches"] = json::Value(batches_);
  const double uptime = seconds_since(started_);
  status["jobs_per_second"] = json::Value(
      uptime > 0.0 ? static_cast<double>(jobs_completed_) / uptime : 0.0);

  json::Value cache;
  cache["incremental"] = json::Value(incremental_hits_);
  cache["full"] = json::Value(full_hits_);
  cache["image"] = json::Value(image_hits_);
  cache["miss"] = json::Value(misses_);
  if (store_ != nullptr) {
    const artifact::StoreStats s = store_->stats();
    json::Value store;
    store["lookups"] = json::Value(s.lookups);
    store["hits"] = json::Value(s.hits);
    store["misses"] = json::Value(s.misses);
    store["publishes"] = json::Value(s.publishes);
    store["corrupt_dropped"] = json::Value(s.corrupt_dropped);
    store["evictions"] = json::Value(s.evictions);
    store["resident_entries"] = json::Value(s.resident_entries);
    store["resident_bytes"] = json::Value(s.resident_bytes);
    cache["store"] = std::move(store);
  }
  status["cache"] = std::move(cache);

  json::Value latency;
  for (const auto& [job_class, sample] : latency_) {
    json::Value l;
    l["count"] = json::Value(static_cast<std::uint64_t>(sample.size()));
    l["p50_ms"] = json::Value(1e3 * percentile(sample, 0.50));
    l["p99_ms"] = json::Value(1e3 * percentile(sample, 0.99));
    latency[job_class] = std::move(l);
  }
  status["latency"] = std::move(latency);

  status["validator_checks"] = json::Value(validator_checks_);
  status["monitored_steps"] = json::Value(monitored_steps_);
  status["monitor_violations"] = json::Value(monitor_violations_);
  status["arena_peak_bytes"] = json::Value(global_arena_peak_bytes());
  return status;
}

std::string ServiceServer::stats_summary() {
  const json::Value status = status_json();
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "vccd: served %llu job(s) in %llu batch(es) over %.1fs "
      "(%.1f jobs/s); cache: %llu incremental, %llu full, %llu image, "
      "%llu miss; queue peak %llu; monitor: %llu step(s), %llu violation(s); "
      "arena peak %llu bytes",
      static_cast<unsigned long long>(status.at("jobs_completed").as_u64()),
      static_cast<unsigned long long>(status.at("batches").as_u64()),
      status.at("uptime_seconds").as_double(),
      status.at("jobs_per_second").as_double(),
      static_cast<unsigned long long>(
          status.at("cache").at("incremental").as_u64()),
      static_cast<unsigned long long>(status.at("cache").at("full").as_u64()),
      static_cast<unsigned long long>(status.at("cache").at("image").as_u64()),
      static_cast<unsigned long long>(status.at("cache").at("miss").as_u64()),
      static_cast<unsigned long long>(status.at("queue_peak").as_u64()),
      static_cast<unsigned long long>(status.at("monitored_steps").as_u64()),
      static_cast<unsigned long long>(
          status.at("monitor_violations").as_u64()),
      static_cast<unsigned long long>(
          status.at("arena_peak_bytes").as_u64()));
  return buf;
}

}  // namespace vc::service
