#include "service/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "mach/target.hpp"

namespace vc::service {

namespace {

/// read() the exact byte count, retrying on EINTR. Returns bytes read
/// (== size on success; 0 on immediate EOF; -1 on error; a short count
/// means EOF mid-buffer).
ssize_t read_exact(int fd, void* buf, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n =
        ::read(fd, static_cast<char*>(buf) + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

Frame read_frame(int fd) {
  Frame frame;
  std::uint8_t header[4];
  const ssize_t got = read_exact(fd, header, sizeof header);
  if (got == 0) {
    frame.status = Frame::Status::Eof;
    return frame;
  }
  if (got != sizeof header) {
    frame.error = "connection died mid-header";
    return frame;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(header[0]) |
                               static_cast<std::uint32_t>(header[1]) << 8 |
                               static_cast<std::uint32_t>(header[2]) << 16 |
                               static_cast<std::uint32_t>(header[3]) << 24;
  if (length == 0 || length > kMaxFrameBytes) {
    frame.error = "invalid frame length " + std::to_string(length) +
                  " (must be 1.." + std::to_string(kMaxFrameBytes) + ")";
    return frame;
  }
  frame.payload.resize(length);
  if (read_exact(fd, frame.payload.data(), length) !=
      static_cast<ssize_t>(length)) {
    frame.payload.clear();
    frame.error = "connection died mid-payload";
    return frame;
  }
  frame.status = Frame::Status::Ok;
  return frame;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::string buffer;
  buffer.reserve(4 + payload.size());
  buffer.push_back(static_cast<char>(length & 0xFF));
  buffer.push_back(static_cast<char>((length >> 8) & 0xFF));
  buffer.push_back(static_cast<char>((length >> 16) & 0xFF));
  buffer.push_back(static_cast<char>((length >> 24) & 0xFF));
  buffer.append(payload);
  std::size_t done = 0;
  while (done < buffer.size()) {
    // MSG_NOSIGNAL: a client that vanished must surface as EPIPE, never as
    // a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, buffer.data() + done, buffer.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 128) < 0) {
    *error = "cannot listen on " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string JobRequest::class_key() const {
  std::string key = driver::to_string(config);
  key += '|';
  key += target;
  key += '|';
  key += std::to_string(exec_cycles);
  key += cold_caches ? "|cold" : "|warm";
  key += wcet ? "|wcet" : "|-";
  key += wcet_nocache ? "|nocache" : "|-";
  key += '|';
  key += wcet::to_string(wcet_engine);
  key += use_annotations ? "|annot" : "|-";
  key += '|';
  key += machine::to_string(monitor);
  key += '|';
  key += driver::to_string(validate);
  key += ssa ? "|ssa" : "|-";
  return key;
}

std::string JobRequest::job_class() const {
  return driver::kConfigNames[static_cast<int>(config)].cli;
}

Hash128 JobRequest::request_hash() const {
  Fnv128 h;
  // Length-framed fields, exactly like the artifact-store key: no two
  // distinct requests may collide by concatenation.
  h.update_sized("vccd-incremental-2");
  h.update_sized(driver::kCompilerVersion);  // pass-pipeline identity
  h.update_sized(source);
  h.update_sized(entry);
  h.update_sized(name);
  h.update_sized(driver::to_string(config));
  h.update_sized(target);
  h.update_u64(static_cast<std::uint64_t>(exec_cycles));
  h.update_bool(cold_caches);
  h.update_bool(wcet);
  h.update_bool(wcet_nocache);
  h.update_sized(wcet::to_string(wcet_engine));
  h.update_bool(use_annotations);
  h.update_sized(machine::to_string(monitor));
  h.update_sized(driver::to_string(validate));
  h.update_bool(ssa);
  h.update_u64(input_seed);
  return h.digest();
}

namespace {

/// Field accessor that distinguishes "absent" from "ill-typed": absent is
/// fine (defaults apply), ill-typed is a protocol error.
template <typename T>
bool read_field(const json::Value& doc, const char* key, json::Value::Kind a,
                json::Value::Kind b, T convert, std::string* error) {
  const json::Value& v = doc.at(key);
  if (v.is_null()) return true;
  if (v.kind() != a && v.kind() != b) {
    *error = std::string("field '") + key + "' has the wrong type";
    return false;
  }
  convert(v);
  return true;
}

}  // namespace

ParsedRequest parse_request(const std::string& payload) {
  ParsedRequest out;
  json::Parsed parsed = json::parse(payload);
  if (!parsed.ok()) {
    out.error = "malformed JSON: " + parsed.error;
    return out;
  }
  const json::Value& doc = parsed.value;
  if (!doc.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  if (doc.at("id").kind() == json::Value::Kind::Int ||
      doc.at("id").kind() == json::Value::Kind::UInt)
    out.id = doc.at("id").as_i64();
  if (doc.at("op").kind() != json::Value::Kind::String) {
    out.error = "missing or non-string 'op'";
    return out;
  }
  out.op = doc.at("op").as_string();
  if (out.op == "ping" || out.op == "status" || out.op == "shutdown")
    return out;
  if (out.op != "job") {
    out.error = "unknown op '" + out.op + "'";
    return out;
  }

  JobRequest job;
  if (!out.id) {
    out.error = "job request needs an integer 'id'";
    return out;
  }
  job.id = *out.id;
  if (doc.at("source").kind() != json::Value::Kind::String ||
      doc.at("source").as_string().empty()) {
    out.error = "job request needs a non-empty string 'source'";
    return out;
  }
  job.source = doc.at("source").as_string();

  std::string err;
  const auto str = json::Value::Kind::String;
  const auto b = json::Value::Kind::Bool;
  const auto i = json::Value::Kind::Int;
  const auto u = json::Value::Kind::UInt;
  const bool ok =
      read_field(doc, "name", str, str,
                 [&](const json::Value& v) { job.name = v.as_string(); },
                 &err) &&
      read_field(doc, "entry", str, str,
                 [&](const json::Value& v) { job.entry = v.as_string(); },
                 &err) &&
      read_field(doc, "config", str, str,
                 [&](const json::Value& v) {
                   const auto c = driver::parse_config(v.as_string());
                   if (c)
                     job.config = *c;
                   else
                     err = "unknown config '" + v.as_string() + "'";
                 },
                 &err) &&
      err.empty() &&
      read_field(doc, "target", str, str,
                 [&](const json::Value& v) {
                   const auto& known = mach::target_names();
                   if (std::find(known.begin(), known.end(), v.as_string()) !=
                       known.end())
                     job.target = v.as_string();
                   else
                     err = "unknown target '" + v.as_string() + "'";
                 },
                 &err) &&
      err.empty() &&
      read_field(doc, "exec_cycles", i, u,
                 [&](const json::Value& v) {
                   const std::int64_t n = v.as_i64();
                   if (n < 0 || n > 1000000)
                     err = "exec_cycles out of range";
                   else
                     job.exec_cycles = static_cast<int>(n);
                 },
                 &err) &&
      err.empty() &&
      read_field(doc, "cold_caches", b, b,
                 [&](const json::Value& v) { job.cold_caches = v.as_bool(); },
                 &err) &&
      read_field(doc, "wcet", b, b,
                 [&](const json::Value& v) { job.wcet = v.as_bool(); },
                 &err) &&
      read_field(doc, "wcet_nocache", b, b,
                 [&](const json::Value& v) {
                   job.wcet_nocache = v.as_bool();
                 },
                 &err) &&
      read_field(doc, "wcet_engine", str, str,
                 [&](const json::Value& v) {
                   const auto e = wcet::parse_wcet_engine(v.as_string());
                   if (e)
                     job.wcet_engine = *e;
                   else
                     err = "unknown wcet_engine '" + v.as_string() + "'";
                 },
                 &err) &&
      err.empty() &&
      read_field(doc, "use_annotations", b, b,
                 [&](const json::Value& v) {
                   job.use_annotations = v.as_bool();
                 },
                 &err) &&
      read_field(doc, "monitor", str, str,
                 [&](const json::Value& v) {
                   const auto m = machine::parse_monitor_mode(v.as_string());
                   if (m)
                     job.monitor = *m;
                   else
                     err = "unknown monitor mode '" + v.as_string() + "'";
                 },
                 &err) &&
      err.empty() &&
      read_field(doc, "validate", str, str,
                 [&](const json::Value& v) {
                   const std::string s = v.as_string();
                   if (s == "off")
                     job.validate = driver::ValidateLevel::Off;
                   else if (s == "rtl")
                     job.validate = driver::ValidateLevel::Rtl;
                   else if (s == "full")
                     job.validate = driver::ValidateLevel::Full;
                   else
                     err = "unknown validate level '" + s + "'";
                 },
                 &err) &&
      err.empty() &&
      read_field(doc, "ssa", b, b,
                 [&](const json::Value& v) { job.ssa = v.as_bool(); }, &err) &&
      read_field(doc, "input_seed", u, i,
                 [&](const json::Value& v) { job.input_seed = v.as_u64(); },
                 &err);
  if (!ok || !err.empty()) {
    out.error = err.empty() ? "ill-typed job field" : err;
    return out;
  }
  if (job.name.empty()) job.name = "job" + std::to_string(job.id);
  out.job = std::move(job);
  return out;
}

json::Value job_to_json(const JobRequest& job) {
  json::Value doc;
  doc["op"] = json::Value("job");
  doc["id"] = json::Value(job.id);
  doc["name"] = json::Value(job.name);
  doc["source"] = json::Value(job.source);
  doc["entry"] = json::Value(job.entry);
  doc["config"] = json::Value(driver::to_string(job.config));
  doc["target"] = json::Value(job.target);
  doc["exec_cycles"] = json::Value(static_cast<std::int64_t>(job.exec_cycles));
  doc["cold_caches"] = json::Value(job.cold_caches);
  doc["wcet"] = json::Value(job.wcet);
  doc["wcet_nocache"] = json::Value(job.wcet_nocache);
  doc["wcet_engine"] = json::Value(wcet::to_string(job.wcet_engine));
  doc["use_annotations"] = json::Value(job.use_annotations);
  doc["monitor"] = json::Value(machine::to_string(job.monitor));
  doc["validate"] = json::Value(driver::to_string(job.validate));
  doc["ssa"] = json::Value(job.ssa);
  doc["input_seed"] = json::Value(job.input_seed);
  return doc;
}

std::string error_reply(const std::string& message,
                        std::optional<std::int64_t> id) {
  json::Value doc;
  doc["ok"] = json::Value(false);
  doc["error"] = json::Value(message);
  if (id) doc["id"] = json::Value(*id);
  return doc.dump();
}

}  // namespace vc::service
