// Client side of the vccd protocol: a blocking framed connection plus the
// process helpers the benches/tests/CLI use to spawn and supervise a
// daemon. One ServiceClient per thread; requests may be pipelined (send N,
// then collect N replies — replies carry the request "id" and may arrive
// out of submission order).
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "support/json.hpp"

namespace vc::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& o) noexcept;

  /// Connects to the daemon socket; false if nothing listens there.
  bool connect(const std::string& socket_path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request frame. False on a dead connection.
  bool send(const json::Value& request);

  /// Receives one reply frame (blocking). nullopt on EOF/dead connection
  /// or a malformed reply.
  std::optional<json::Value> recv();

  /// send + recv convenience for the serial ops (ping/status/shutdown).
  std::optional<json::Value> call(const json::Value& request);

 private:
  int fd_ = -1;
};

/// Spawns `vccd_path` with `args` (fork/exec; argv[0] is set for you).
/// Returns the child pid, or -1.
pid_t spawn_daemon(const std::string& vccd_path,
                   const std::vector<std::string>& args);

/// Polls the daemon socket until a ping round-trips (true) or
/// `timeout_seconds` elapses (false).
bool wait_until_ready(const std::string& socket_path, double timeout_seconds);

/// SIGTERMs `pid` and waits for it; returns the exit code (-1 on signal
/// death or wait failure). The drain contract: a healthy daemon exits 0.
int terminate_daemon(pid_t pid, double timeout_seconds);

}  // namespace vc::service
