// The vccd single-process daemon: accepts framed requests over a local
// Unix-domain socket (service/protocol.hpp), batches queued compile/
// execute/WCET jobs through the fleet runner, and keeps two hot layers of
// state resident across requests:
//
//   1. the in-memory incremental-recompilation memo — a dependency hash
//      over (source, entry, config, pass-pipeline identity, every run
//      parameter, input seed) mapped to the finished record, so an
//      identical re-submission is answered without touching the disk or
//      the compiler at all;
//   2. the content-addressed artifact store (optional, --cache-dir), whose
//      in-memory index persists across batches exactly as it does across
//      fleet runs.
//
// Trust boundary: the daemon is UNTRUSTED serving machinery. Every record
// it produces comes out of the same run_fleet path the offline campaigns
// use — translation validators, IPET certificate checker, and execution
// monitor included — and the determinism soak holds it to byte-identical
// records against the serial in-process reference.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "artifact/store.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"

namespace vc::service {

struct ServerOptions {
  std::string socket_path;
  /// Fleet workers per batch; 0 = one per hardware thread.
  int jobs = 0;
  /// Artifact-store directory (empty = no on-disk cache).
  std::string cache_dir;
  std::uint64_t cache_budget_bytes = 0;
  /// >= 0 when this server is one shard of a supervised group (labels the
  /// status report; shards are otherwise ordinary servers).
  int shard_index = -1;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds the socket and launches the batch worker. False (with *error
  /// set) if the socket cannot be bound.
  bool start(std::string* error);

  /// Accept loop. Returns the process exit code after a drain request
  /// (graceful: in-flight and queued jobs finish, stats flush) — 0 on a
  /// clean drain.
  int serve();

  /// Async-signal-safe drain trigger (writes one byte to the wake pipe);
  /// install it from SIGTERM/SIGINT handlers via a global.
  void request_drain();

  /// One-line final stats (printed by serve() on drain; exposed for tests).
  [[nodiscard]] std::string stats_summary();

  /// The status document served to "status" requests.
  [[nodiscard]] json::Value status_json();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  struct Queued {
    JobRequest job;
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point enqueued;
    /// Set when the reader resolved the job from the incremental memo: the
    /// batcher just sends this record (cache "incremental") without
    /// compiling. Replies must never happen on the reader thread — a
    /// pipelining client that has not started draining replies yet would
    /// wedge the read loop in send() and deadlock the whole daemon.
    bool memo_hit = false;
    json::Value memo_record;
  };

  void connection_loop(std::shared_ptr<Connection> conn);
  void handle_job(const std::shared_ptr<Connection>& conn, JobRequest job);
  void batch_loop();
  void process_batch(std::vector<Queued> batch);
  void reply(const std::shared_ptr<Connection>& conn,
             const std::string& payload);
  void reply_record(const Queued& queued, const json::Value& record,
                    const char* cache_kind);
  void note_latency(const std::string& job_class, double seconds);

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> draining_{false};

  std::unique_ptr<artifact::ArtifactStore> store_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // batcher wakeups
  std::condition_variable idle_cv_;    // drain waits for empty+idle
  std::deque<Queued> queue_;
  std::size_t in_flight_ = 0;
  bool stop_batcher_ = false;
  std::thread batcher_;

  /// Incremental memo: request hash (hex) -> finished record document.
  std::mutex memo_mutex_;
  std::unordered_map<std::string, json::Value> memo_;

  /// Counters + latency reservoirs (guarded by stats_mutex_).
  std::mutex stats_mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t job_requests_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t incremental_hits_ = 0;
  std::uint64_t full_hits_ = 0;
  std::uint64_t image_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t queue_peak_ = 0;
  std::uint64_t validator_checks_ = 0;
  std::uint64_t monitored_steps_ = 0;
  std::uint64_t monitor_violations_ = 0;
  std::uint64_t batches_ = 0;
  std::map<std::string, std::vector<double>> latency_;  // per job class
  std::chrono::steady_clock::time_point started_;
};

}  // namespace vc::service
