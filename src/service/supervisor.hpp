// Shard mode (`vccd --shards=N`): a tiny supervisor process that owns the
// public socket, spawns N single-process vccd shards on private sockets
// (`<sock>.s0` .. `<sock>.sN-1`, all over ONE artifact store directory),
// round-robins first-seen job requests across them (a resubmission returns
// to the shard whose memo already holds it), and restarts a dead shard
// without losing queued work.
//
// Exactly-once delivery: every forwarded job stays in the owning shard's
// pending table (keyed by a supervisor-stamped internal id) until its reply
// has been routed back to the client. A shard that dies — crash, SIGKILL,
// OOM — takes no state with it that matters: the supervisor respawns it,
// waits for its ping, and resubmits every pending request verbatim. Replies
// are keyed by id, so a client can never observe a duplicate, and
// determinism makes the re-run record identical to what the dead shard
// would have sent.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/protocol.hpp"
#include "support/json.hpp"

namespace vc::service {

struct SupervisorOptions {
  std::string socket_path;
  int shards = 2;
  /// Executable to spawn shards from (normally /proc/self/exe).
  std::string vccd_path;
  /// Flags forwarded verbatim to every shard (--jobs, --cache-dir, ...).
  std::vector<std::string> shard_args;
};

class ShardSupervisor {
 public:
  explicit ShardSupervisor(SupervisorOptions options);
  ~ShardSupervisor();
  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Binds the public socket and launches the shard channels.
  bool start(std::string* error);

  /// Accept loop; returns the exit code after a graceful drain.
  int serve();

  /// Async-signal-safe drain trigger.
  void request_drain();

  [[nodiscard]] json::Value status_json();

  /// One-line final stats (printed by serve() on drain).
  [[nodiscard]] std::string stats_summary();

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  struct Pending {
    std::string payload;  // forwarded frame (internal id already stamped)
    std::shared_ptr<Connection> conn;
    std::int64_t client_id = 0;
    std::string job_class;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Shard {
    int index = 0;
    std::string socket;
    pid_t pid = -1;
    int fd = -1;                 // channel to the shard (guarded below)
    std::mutex channel_mutex;    // guards fd and writes on it
    std::thread thread;          // spawn / read / respawn loop
    std::mutex pending_mutex;
    std::map<std::uint64_t, Pending> pending;
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<bool> up{false};
    std::atomic<bool> exited{false};  // channel thread has returned
  };

  void connection_loop(std::shared_ptr<Connection> conn);
  void handle_job(const std::shared_ptr<Connection>& conn, JobRequest job);
  void shard_loop(Shard* shard);
  bool spawn_and_connect(Shard* shard);
  void resubmit_pending(Shard* shard);
  void fail_pending(Shard* shard, const std::string& reason);
  void route_reply(Shard* shard, const std::string& payload);
  void reply(const std::shared_ptr<Connection>& conn,
             const std::string& payload);
  [[nodiscard]] std::size_t pending_total();
  /// Joins every shard channel thread, then terminates the worker
  /// processes. Returns false if any worker failed to drain-exit 0.
  bool stop_shards();

  SupervisorOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_internal_{1};
  std::atomic<std::uint64_t> round_robin_{0};

  /// Dependency hash -> owning shard: resubmissions return to the shard
  /// whose memo already holds the record (the supervisor itself never
  /// answers jobs — see handle_job on why its readers must not send).
  std::mutex placement_mutex_;
  std::unordered_map<std::string, std::size_t> placement_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;  // fires when a pending empties

  std::mutex stats_mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t incremental_hits_ = 0;
  std::uint64_t full_hits_ = 0;
  std::uint64_t image_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t queue_peak_ = 0;
  std::map<std::string, std::vector<double>> latency_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace vc::service
