#include "service/supervisor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <utility>

#include "service/client.hpp"

namespace vc::service {

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

}  // namespace

ShardSupervisor::ShardSupervisor(SupervisorOptions options)
    : options_(std::move(options)),
      started_(std::chrono::steady_clock::now()) {
  if (options_.shards < 1) options_.shards = 1;
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->socket = options_.socket_path + ".s" + std::to_string(i);
    shards_.push_back(std::move(shard));
  }
}

ShardSupervisor::~ShardSupervisor() {
  stop_shards();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->reader.joinable()) conn->reader.join();
      std::lock_guard<std::mutex> wl(conn->write_mutex);
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  ::unlink(options_.socket_path.c_str());
}

bool ShardSupervisor::start(std::string* error) {
  if (::pipe(wake_pipe_) != 0) {
    if (error) *error = "pipe() failed";
    return false;
  }
  listen_fd_ = listen_unix(options_.socket_path, error);
  if (listen_fd_ < 0) return false;
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([this, raw] { shard_loop(raw); });
  }
  return true;
}

bool ShardSupervisor::stop_shards() {
  stopping_.store(true);
  bool clean = true;
  for (auto& shard : shards_) {
    // The channel thread may be mid-respawn: a fresh fd can appear AFTER a
    // one-shot shutdown() and the thread would then block in read_frame
    // forever. Keep poking whatever fd exists until the thread has exited.
    while (shard->thread.joinable() && !shard->exited.load()) {
      {
        std::lock_guard<std::mutex> lock(shard->channel_mutex);
        if (shard->fd >= 0) ::shutdown(shard->fd, SHUT_RDWR);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (shard->thread.joinable()) shard->thread.join();
    {
      std::lock_guard<std::mutex> lock(shard->channel_mutex);
      if (shard->fd >= 0) ::close(shard->fd);
      shard->fd = -1;
    }
    if (shard->pid > 0) {
      if (terminate_daemon(shard->pid, 10.0) != 0) clean = false;
      shard->pid = -1;
    }
  }
  return clean;
}

void ShardSupervisor::request_drain() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

bool ShardSupervisor::spawn_and_connect(Shard* shard) {
  if (stopping_.load()) return false;
  // Spawn the worker if it is not alive. A fresh spawn always gets a fresh
  // socket path bind (listen_unix unlinks stale files).
  if (shard->pid > 0) {
    int status = 0;
    const pid_t got = ::waitpid(shard->pid, &status, WNOHANG);
    if (got == shard->pid) shard->pid = -1;
  }
  if (shard->pid <= 0) {
    std::vector<std::string> args;
    args.push_back("--socket=" + shard->socket);
    args.push_back("--shard-index=" + std::to_string(shard->index));
    for (const std::string& a : options_.shard_args) args.push_back(a);
    shard->pid = spawn_daemon(options_.vccd_path, args);
    if (shard->pid <= 0) return false;
  }
  if (!wait_until_ready(shard->socket, 20.0)) {
    if (shard->pid > 0) {
      ::kill(shard->pid, SIGKILL);
      int status = 0;
      ::waitpid(shard->pid, &status, 0);
      shard->pid = -1;
    }
    return false;
  }
  const int fd = connect_unix(shard->socket);
  if (fd < 0) return false;
  {
    std::lock_guard<std::mutex> lock(shard->channel_mutex);
    shard->fd = fd;
  }
  shard->up.store(true);
  return true;
}

void ShardSupervisor::resubmit_pending(Shard* shard) {
  std::vector<std::string> payloads;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mutex);
    payloads.reserve(shard->pending.size());
    for (const auto& [id, pending] : shard->pending) {
      payloads.push_back(pending.payload);
    }
  }
  std::lock_guard<std::mutex> lock(shard->channel_mutex);
  if (shard->fd < 0) return;
  for (const std::string& payload : payloads) {
    if (!write_frame(shard->fd, payload)) break;
  }
}

void ShardSupervisor::fail_pending(Shard* shard, const std::string& reason) {
  std::map<std::uint64_t, Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mutex);
    orphans.swap(shard->pending);
  }
  for (auto& [id, pending] : orphans) {
    reply(pending.conn, error_reply(reason, pending.client_id));
  }
  drain_cv_.notify_all();
}

void ShardSupervisor::shard_loop(Shard* shard) {
  int spawn_failures = 0;
  while (!stopping_.load()) {
    if (!spawn_and_connect(shard)) {
      shard->up.store(false);
      if (++spawn_failures >= 5) {
        fail_pending(shard, "shard " + std::to_string(shard->index) +
                                " failed to start");
        spawn_failures = 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      continue;
    }
    spawn_failures = 0;
    // A restarted shard re-runs everything still pending. Replies are
    // routed by id, so the client sees each job exactly once.
    resubmit_pending(shard);
    for (;;) {
      int fd = -1;
      {
        std::lock_guard<std::mutex> lock(shard->channel_mutex);
        fd = shard->fd;
      }
      if (fd < 0) break;
      Frame frame = read_frame(fd);
      if (frame.status != Frame::Status::Ok) break;
      route_reply(shard, frame.payload);
    }
    shard->up.store(false);
    {
      std::lock_guard<std::mutex> lock(shard->channel_mutex);
      if (shard->fd >= 0) ::close(shard->fd);
      shard->fd = -1;
    }
    if (stopping_.load()) break;
    // The shard died under us (crash or kill): reap it, count the restart,
    // and loop back to respawn + resubmit.
    if (shard->pid > 0) {
      int status = 0;
      ::waitpid(shard->pid, &status, 0);
      shard->pid = -1;
    }
    shard->restarts.fetch_add(1);
  }
  shard->exited.store(true);
}

void ShardSupervisor::route_reply(Shard* shard, const std::string& payload) {
  json::Parsed parsed = json::parse(payload);
  if (!parsed.ok() || parsed.value.kind() != json::Value::Kind::Object) {
    return;  // shard spoke garbage; the read loop will notice on EOF
  }
  json::Value doc = std::move(parsed.value);
  const std::uint64_t internal_id = doc.at("id").as_u64(0);
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mutex);
    auto it = shard->pending.find(internal_id);
    if (it == shard->pending.end()) return;  // duplicate after a resubmit race
    pending = std::move(it->second);
    shard->pending.erase(it);
  }
  doc["id"] = json::Value(static_cast<std::int64_t>(pending.client_id));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pending.enqueued)
          .count();
  doc["seconds"] = json::Value(seconds);
  const std::string cache = doc.at("cache").as_string("miss");
  reply(pending.conn, doc.dump());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++jobs_completed_;
    if (cache == "full") {
      ++full_hits_;
    } else if (cache == "image") {
      ++image_hits_;
    } else if (cache == "incremental") {
      ++incremental_hits_;
    } else {
      ++misses_;
    }
    latency_[pending.job_class].push_back(seconds);
  }
  drain_cv_.notify_all();
}

void ShardSupervisor::reply(const std::shared_ptr<Connection>& conn,
                            const std::string& payload) {
  if (!conn) return;
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->fd < 0) return;
  write_frame(conn->fd, payload);
}

void ShardSupervisor::handle_job(const std::shared_ptr<Connection>& conn,
                                 JobRequest job) {
  // No supervisor-level memo: incremental serving is shard-owned (every
  // shard is a full ServiceServer with its own memo), and the supervisor's
  // reader threads must never send — an inline reply to a pipelining
  // client that is not draining replies yet would wedge this read loop in
  // send() and deadlock the daemon. Replies only ever originate on the
  // shard_loop reply-router threads.
  const std::uint64_t internal_id = next_internal_.fetch_add(1);
  json::Value forwarded = job_to_json(job);
  forwarded["id"] = json::Value(static_cast<std::int64_t>(internal_id));
  Pending pending;
  pending.payload = forwarded.dump();
  pending.conn = conn;
  pending.client_id = job.id;
  pending.job_class = job.job_class();
  pending.enqueued = std::chrono::steady_clock::now();

  // First-seen jobs round-robin across the shards; a resubmission returns
  // to the shard that first ran it (the supervisor keeps no record memo of
  // its own, so the shard's memo is the only incremental layer — bouncing
  // a repeat to a cold shard would turn it into a recompile).
  std::size_t shard_index;
  {
    const std::string key = job.request_hash().hex();
    std::lock_guard<std::mutex> lock(placement_mutex_);
    const auto it = placement_.find(key);
    if (it != placement_.end()) {
      shard_index = it->second;
    } else {
      shard_index = round_robin_.fetch_add(1) % shards_.size();
      placement_.emplace(key, shard_index);
    }
  }
  Shard* shard = shards_[shard_index].get();
  std::string payload = pending.payload;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mutex);
    shard->pending.emplace(internal_id, std::move(pending));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    const std::size_t depth = pending_total();
    if (depth > queue_peak_) queue_peak_ = depth;
  }
  std::lock_guard<std::mutex> lock(shard->channel_mutex);
  if (shard->fd >= 0) {
    write_frame(shard->fd, payload);
    // On failure the read loop sees EOF and the respawn path resubmits.
  }
}

std::size_t ShardSupervisor::pending_total() {
  std::size_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->pending_mutex);
    total += shard->pending.size();
  }
  return total;
}

void ShardSupervisor::connection_loop(std::shared_ptr<Connection> conn) {
  // Mirrors the server's strict-drop semantics: protocol violations shut
  // the socket down actively so the client sees EOF immediately; a clean
  // EOF leaves the write side open for in-flight job replies.
  bool dropped = false;
  for (;;) {
    Frame frame = read_frame(conn->fd);
    if (frame.status == Frame::Status::Eof) break;
    if (frame.status == Frame::Status::Error) {
      reply(conn, error_reply(frame.error));
      dropped = true;
      break;  // protocol violation: drop the connection
    }
    ParsedRequest request = parse_request(frame.payload);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++requests_;
    }
    if (!request.error.empty()) {
      reply(conn, error_reply(request.error, request.id));
      dropped = true;
      break;
    }
    if (request.op == "ping") {
      json::Value doc;
      doc["ok"] = json::Value(true);
      doc["pong"] = json::Value(true);
      reply(conn, doc.dump());
    } else if (request.op == "status") {
      json::Value doc;
      doc["ok"] = json::Value(true);
      doc["status"] = status_json();
      reply(conn, doc.dump());
    } else if (request.op == "shutdown") {
      json::Value doc;
      doc["ok"] = json::Value(true);
      doc["draining"] = json::Value(true);
      reply(conn, doc.dump());
      request_drain();
    } else {
      handle_job(conn, std::move(*request.job));
    }
  }
  if (dropped) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  conn->done.store(true);
}

int ShardSupervisor::serve() {
  bool drain = false;
  while (!drain) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      drain = true;
      break;
    }
    if (fds[0].revents == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      // Reap finished connections while we are here.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
          if ((*it)->reader.joinable()) (*it)->reader.join();
          {
            std::lock_guard<std::mutex> wl((*it)->write_mutex);
            if ((*it)->fd >= 0) ::close((*it)->fd);
            (*it)->fd = -1;
          }
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { connection_loop(conn); });
  }

  // Graceful drain: stop accepting, stop reading (no new jobs can arrive),
  // then wait until every pending table empties.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns = conns_;
  }
  for (auto& conn : conns) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  {
    // The notifiers do not hold drain_mutex_, so poll with a short wait
    // instead of relying on a wakeup that could race the predicate check.
    std::unique_lock<std::mutex> lock(drain_mutex_);
    while (pending_total() != 0) {
      drain_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  // Shut the shards down gracefully (SIGTERM drain; each must exit 0).
  const bool shards_clean = stop_shards();
  // Flush final stats and close client connections.
  std::fprintf(stderr, "vccd[supervisor]: %s\n", stats_summary().c_str());
  for (auto& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  return shards_clean ? 0 : 1;
}

std::string ShardSupervisor::stats_summary() {
  std::uint64_t restarts_total = 0;
  for (auto& shard : shards_) restarts_total += shard->restarts.load();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "shards=%zu jobs=%llu incremental=%llu full=%llu image=%llu "
                "miss=%llu queue_peak=%llu restarts=%llu",
                shards_.size(),
                static_cast<unsigned long long>(jobs_completed_),
                static_cast<unsigned long long>(incremental_hits_),
                static_cast<unsigned long long>(full_hits_),
                static_cast<unsigned long long>(image_hits_),
                static_cast<unsigned long long>(misses_),
                static_cast<unsigned long long>(queue_peak_),
                static_cast<unsigned long long>(restarts_total));
  return buffer;
}

json::Value ShardSupervisor::status_json() {
  json::Value doc;
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  doc["uptime_seconds"] = json::Value(uptime);
  doc["pid"] = json::Value(static_cast<std::int64_t>(::getpid()));
  doc["mode"] = json::Value("supervisor");
  doc["shards"] = json::Value(static_cast<std::int64_t>(shards_.size()));

  json::Value shard_list{json::Array{}};
  std::uint64_t restarts_total = 0;
  for (auto& shard : shards_) {
    json::Value entry;
    entry["index"] = json::Value(static_cast<std::int64_t>(shard->index));
    entry["pid"] = json::Value(static_cast<std::int64_t>(shard->pid));
    entry["up"] = json::Value(shard->up.load());
    const std::uint64_t r = shard->restarts.load();
    restarts_total += r;
    entry["restarts"] = json::Value(static_cast<std::int64_t>(r));
    {
      std::lock_guard<std::mutex> lock(shard->pending_mutex);
      entry["pending"] = json::Value(
          static_cast<std::int64_t>(shard->pending.size()));
    }
    entry["socket"] = json::Value(shard->socket);
    shard_list.as_array_mut().push_back(std::move(entry));
  }
  doc["shard_list"] = std::move(shard_list);
  doc["shard_restarts"] = json::Value(
      static_cast<std::int64_t>(restarts_total));
  doc["queue_depth"] = json::Value(
      static_cast<std::int64_t>(pending_total()));

  std::lock_guard<std::mutex> lock(stats_mutex_);
  doc["requests"] = json::Value(static_cast<std::int64_t>(requests_));
  doc["jobs_completed"] = json::Value(
      static_cast<std::int64_t>(jobs_completed_));
  doc["queue_peak"] = json::Value(static_cast<std::int64_t>(queue_peak_));
  doc["jobs_per_second"] =
      json::Value(uptime > 0.0
                      ? static_cast<double>(jobs_completed_) / uptime
                      : 0.0);
  json::Value cache;
  cache["incremental_hits"] = json::Value(
      static_cast<std::int64_t>(incremental_hits_));
  cache["full_hits"] = json::Value(static_cast<std::int64_t>(full_hits_));
  cache["image_hits"] = json::Value(static_cast<std::int64_t>(image_hits_));
  cache["misses"] = json::Value(static_cast<std::int64_t>(misses_));
  doc["cache"] = std::move(cache);
  json::Value latency;
  for (const auto& [job_class, samples] : latency_) {
    json::Value entry;
    entry["count"] = json::Value(static_cast<std::int64_t>(samples.size()));
    entry["p50_ms"] = json::Value(percentile(samples, 50.0) * 1000.0);
    entry["p99_ms"] = json::Value(percentile(samples, 99.0) * 1000.0);
    latency[job_class] = std::move(entry);
  }
  doc["latency"] = std::move(latency);
  return doc;
}

}  // namespace vc::service
