// String interning: map each distinct name to a dense non-negative id.
//
// Hot loops that key tables by global or function *name* pay a string hash
// plus a character-wise compare per lookup (and a tree walk for std::map).
// Interning once at setup turns every later lookup into an array index: the
// RTL executor resolves LoadGlobal/StoreGlobal against a dense
// vector<vector<Value>> indexed by SymbolId instead of a
// map<string, vector<Value>> probed per executed instruction.
//
// Ids are assigned in first-intern order, so tables built by iterating a
// program deterministically get deterministic ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/diagnostics.hpp"

namespace vc {

using SymbolId = std::int32_t;
constexpr SymbolId kNoSymbol = -1;

class SymbolTable {
 public:
  /// Id for `name`, assigning the next dense id on first sight.
  SymbolId intern(std::string_view name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<SymbolId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);  // map owns its own string copy
    return id;
  }

  /// Id for `name`, or kNoSymbol if it was never interned. Never allocates.
  [[nodiscard]] SymbolId find(std::string_view name) const {
    auto it = ids_.find(name);
    return it == ids_.end() ? kNoSymbol : it->second;
  }

  [[nodiscard]] const std::string& name(SymbolId id) const {
    check(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
          "symtab: id out of range");
    return names_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  void clear() {
    ids_.clear();
    names_.clear();
  }

 private:
  // Heterogeneous lookup so find()/intern() accept string_view without a
  // temporary std::string.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::unordered_map<std::string, SymbolId, Hash, Eq> ids_;
  std::vector<std::string> names_;
};

}  // namespace vc
