#include "support/alloccount.hpp"

#include <cstdlib>
#include <new>

namespace vc::alloc {
namespace {

// Plain thread_local PODs: zero-initialized per thread, no guards, and the
// accounting adds two increments to each allocation.
thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_bytes = 0;

void* counted_alloc(std::size_t size) {
  ++t_allocations;
  t_bytes += size;
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++t_allocations;
  t_bytes += size;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded ? padded : align);
}

}  // namespace

Counters snapshot() { return {t_allocations, t_bytes}; }

}  // namespace vc::alloc

// Replacement global allocation functions ([new.delete.single]): counting
// shims over malloc/free. Defined once in vc_support and linked into every
// binary. ASan still intercepts the malloc underneath, so leak and overflow
// detection are unaffected.
void* operator new(std::size_t size) {
  void* p = vc::alloc::counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = vc::alloc::counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return vc::alloc::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return vc::alloc::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = vc::alloc::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = vc::alloc::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
