#include "support/arena.hpp"

#include "support/diagnostics.hpp"

// ASan interface: poison the unused tail of every chunk so off-the-end reads
// of arena arrays fault like heap overflows. No-ops outside sanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define VC_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VC_ARENA_ASAN 1
#endif
#endif

#ifdef VC_ARENA_ASAN
extern "C" {
void __asan_poison_memory_region(const void* addr, std::size_t size);
void __asan_unpoison_memory_region(const void* addr, std::size_t size);
}
#define VC_POISON(addr, size) __asan_poison_memory_region((addr), (size))
#define VC_UNPOISON(addr, size) __asan_unpoison_memory_region((addr), (size))
#else
#define VC_POISON(addr, size) ((void)0)
#define VC_UNPOISON(addr, size) ((void)0)
#endif

namespace vc {

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  check(chunk_bytes_ >= 256, "arena: chunk size too small to be useful");
  Chunk first;
  first.data = std::make_unique<unsigned char[]>(chunk_bytes_);
  first.capacity = chunk_bytes_;
  VC_POISON(first.data.get(), first.capacity);
  chunks_.push_back(std::move(first));
}

Arena::~Arena() {
  // Unpoison before the unique_ptrs release the memory back to the heap
  // allocator (ASan would otherwise flag the allocator's own bookkeeping).
  for (Chunk& c : chunks_) {
    VC_UNPOISON(c.data.get(), c.capacity);
    (void)c;
  }
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  check(align != 0 && (align & (align - 1)) == 0 &&
            align <= alignof(std::max_align_t),
        "arena: alignment must be a power of two within max_align_t");
  if (size == 0) size = 1;  // distinct non-null pointers, keeps counters honest
  Chunk& c = chunks_[current_];
  const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
  if (aligned + size <= c.capacity) {
    void* p = c.data.get() + aligned;
    VC_UNPOISON(p, size);
    c.used = aligned + size;
    ++allocations_;
    bytes_ += size;
    live_bytes_ += size;
    if (live_bytes_ > peak_bytes_) peak_bytes_ = live_bytes_;
    return p;
  }
  return allocate_slow(size, align);
}

void* Arena::allocate_slow(std::size_t size, std::size_t align) {
  ++allocations_;
  bytes_ += size;
  live_bytes_ += size;
  if (live_bytes_ > peak_bytes_) peak_bytes_ = live_bytes_;
  if (size > chunk_bytes_ / 2) {
    // Dedicated block: a single outsized table must not trigger a chain of
    // ever-larger half-empty chunks. max_align_t alignment comes from new[].
    oversized_.push_back(std::make_unique<unsigned char[]>(size));
    return oversized_.back().get();
  }
  // Reuse an already-reserved later chunk (post-reset) or grow by one.
  if (++current_ == chunks_.size()) {
    Chunk next;
    next.data = std::make_unique<unsigned char[]>(chunk_bytes_);
    next.capacity = chunk_bytes_;
    VC_POISON(next.data.get(), next.capacity);
    chunks_.push_back(std::move(next));
  }
  Chunk& c = chunks_[current_];
  const std::size_t aligned = (0 + align - 1) & ~(align - 1);
  void* p = c.data.get() + aligned;
  VC_UNPOISON(p, size);
  c.used = aligned + size;
  return p;
}

void Arena::reset() {
  for (Chunk& c : chunks_) {
    VC_POISON(c.data.get(), c.capacity);
    c.used = 0;
  }
  current_ = 0;
  oversized_.clear();
  live_bytes_ = 0;
}

}  // namespace vc
