// Interval arithmetic over 64-bit signed integers.
//
// This is the abstract domain used by the WCET analyzer's value analysis
// (registers hold 32-bit values but intermediate interval computations are
// carried out in 64 bits so that i32 overflow can be detected and widened
// instead of silently wrapping).
//
// The lattice is the classic interval lattice with an explicit bottom
// (empty interval). `top()` is [INT64_MIN, INT64_MAX]; in practice registers
// are constrained to [INT32_MIN, INT32_MAX] by `clamp_i32()`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace vc {

class Interval {
 public:
  /// Bottom element (empty set). Default-constructed intervals are bottom.
  Interval() = default;

  /// Singleton interval [v, v].
  static Interval constant(std::int64_t v) { return Interval(v, v); }

  /// [lo, hi]; requires lo <= hi (otherwise use bottom()).
  static Interval range(std::int64_t lo, std::int64_t hi);

  static Interval bottom() { return Interval(); }
  static Interval top();
  /// Full signed 32-bit range.
  static Interval i32_range();
  /// Booleans live in [0, 1].
  static Interval boolean() { return Interval(0, 1); }

  [[nodiscard]] bool is_bottom() const { return !nonempty_; }
  [[nodiscard]] bool is_top() const;
  [[nodiscard]] std::int64_t lo() const;
  [[nodiscard]] std::int64_t hi() const;

  /// Singleton value if the interval is exactly one point.
  [[nodiscard]] std::optional<std::int64_t> as_constant() const;

  [[nodiscard]] bool contains(std::int64_t v) const;
  /// True if every element of `other` is in `this` (bottom is contained in all).
  [[nodiscard]] bool contains(const Interval& other) const;

  /// Least upper bound (interval hull).
  [[nodiscard]] Interval join(const Interval& other) const;
  /// Greatest lower bound (intersection).
  [[nodiscard]] Interval meet(const Interval& other) const;
  /// Standard widening: unstable bounds jump to the i32 extremes.
  [[nodiscard]] Interval widen(const Interval& next) const;

  // Abstract transfer functions. All results are sound over-approximations
  // of the concrete operation on every pair of elements; bottom propagates.
  [[nodiscard]] Interval add(const Interval& rhs) const;
  [[nodiscard]] Interval sub(const Interval& rhs) const;
  [[nodiscard]] Interval mul(const Interval& rhs) const;
  /// Truncating division (PowerPC divw); division by an interval containing 0
  /// yields a sound approximation assuming the program never traps.
  [[nodiscard]] Interval div(const Interval& rhs) const;
  [[nodiscard]] Interval neg() const;

  /// Clamp into [INT32_MIN, INT32_MAX]; values that overflowed 32 bits widen
  /// the result to the full i32 range (modular wrap is over-approximated).
  [[nodiscard]] Interval clamp_i32() const;

  /// Refinements used when interpreting conditional branches:
  /// the subset of `this` that can satisfy `this < bound`, etc.
  [[nodiscard]] Interval refine_lt(std::int64_t bound) const;
  [[nodiscard]] Interval refine_le(std::int64_t bound) const;
  [[nodiscard]] Interval refine_gt(std::int64_t bound) const;
  [[nodiscard]] Interval refine_ge(std::int64_t bound) const;
  [[nodiscard]] Interval refine_eq(std::int64_t v) const;

  bool operator==(const Interval& other) const;

  [[nodiscard]] std::string to_string() const;

 private:
  Interval(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi), nonempty_(true) {}

  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
  bool nonempty_ = false;
};

}  // namespace vc
