// Deterministic pseudo-random number generation for workload synthesis and
// property tests. All generators in vcflight are explicitly seeded so that
// every benchmark table and every property-test case is reproducible.
#pragma once

#include <cstdint>

namespace vc {

/// SplitMix64: tiny, fast, and statistically solid for test/workload use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0. Exactly uniform: draws below
  /// 2^64 mod n are rejected (the arc4random_uniform scheme), so the top
  /// partial copy of [0, n) never over-weights small residues. Accepted
  /// draws return next_u64() % n — identical to the old modulo-only
  /// implementation — and the rejection probability is < n / 2^64, so for
  /// the small n used throughout (< 2^17) existing seeded streams are
  /// unchanged in practice.
  std::uint64_t next_below(std::uint64_t n) {
    const std::uint64_t min = (0 - n) % n;  // == 2^64 mod n
    std::uint64_t x = next_u64();
    while (x < min) x = next_u64();
    return x % n;
  }

  /// Uniform in [lo, hi] (inclusive).
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + next_unit() * (hi - lo);
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_unit() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace vc
