#include "support/workspace.hpp"

namespace vc {

CompileWorkspace& this_thread_workspace() {
  thread_local CompileWorkspace workspace;
  return workspace;
}

}  // namespace vc
