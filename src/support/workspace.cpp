#include "support/workspace.hpp"

#include <atomic>

namespace vc {

namespace {
std::atomic<std::uint64_t> g_arena_peak_bytes{0};
}  // namespace

CompileWorkspace& this_thread_workspace() {
  thread_local CompileWorkspace workspace;
  return workspace;
}

void note_arena_peak(std::uint64_t bytes) {
  std::uint64_t seen = g_arena_peak_bytes.load(std::memory_order_relaxed);
  while (bytes > seen &&
         !g_arena_peak_bytes.compare_exchange_weak(
             seen, bytes, std::memory_order_relaxed)) {
  }
}

std::uint64_t global_arena_peak_bytes() {
  return g_arena_peak_bytes.load(std::memory_order_relaxed);
}

}  // namespace vc
