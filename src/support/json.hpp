// A small JSON document model with a writer and a strict parser — the
// serialization substrate for the artifact store's metadata/result files
// (src/artifact) and the fleet's machine-readable campaign reports
// (--report-json).
//
// Deliberate scope cuts, acceptable for tool-generated documents:
//  - numbers are kept in three exact lanes (int64 / uint64 / double), so
//    cycle counters and 64-bit seeds round-trip without precision loss;
//  - strings are escaped but only ASCII is emitted (non-ASCII bytes pass
//    through verbatim; our documents are ASCII by construction);
//  - the parser is strict: trailing garbage, unterminated values, and
//    duplicate keys (last one wins) are the only liberties taken.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vc::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { Null, Bool, Int, UInt, Double, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Value(std::uint32_t v) : kind_(Kind::UInt), uint_(v) {}
  Value(std::uint64_t v) : kind_(Kind::UInt), uint_(v) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(const char* s) : kind_(Kind::String), string_(s) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }

  /// Typed accessors with per-document defaults: a missing or differently-
  /// typed field yields `fallback`, never a throw — store readers treat any
  /// schema surprise as a cache miss, not an error.
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::string as_string(const std::string& fallback = {}) const;
  [[nodiscard]] const Array& as_array() const;    // empty if not an array
  [[nodiscard]] const Object& as_object() const;  // empty if not an object

  /// Mutable array access: appends happen in place instead of copying the
  /// array out and re-assigning it (the fleet's cached-stats update path
  /// grows multi-thousand-stanza arrays). Null becomes an empty array;
  /// any other kind is replaced by one (mirrors operator[] on objects).
  [[nodiscard]] Array& as_array_mut();

  /// Object field access; returns a shared Null value when absent.
  [[nodiscard]] const Value& at(const std::string& key) const;

  /// Mutable object field (creates the field; converts Null to Object).
  Value& operator[](const std::string& key);

  /// Serializes the document. `indent` < 0 emits the compact one-line form;
  /// >= 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void write(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse result: a document or a position-annotated error (no exceptions —
/// corrupt cache files are an expected input, not a failure).
struct Parsed {
  Value value;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

Parsed parse(std::string_view text);

}  // namespace vc::json
