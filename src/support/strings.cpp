#include "support/strings.hpp"

#include <cinttypes>
#include <cstdio>

namespace vc {

std::string hex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08" PRIx32, value);
  return buf;
}

std::string format_double(double value) {
  // Try increasing precision until the text round-trips exactly.
  for (int precision = 6; precision <= 17; ++precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace vc
