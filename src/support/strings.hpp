// Small string-formatting helpers shared across the toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vc {

/// Formats `value` as 0x%08x.
std::string hex32(std::uint32_t value);

/// Formats a double with enough precision to round-trip (shortest of %g forms).
std::string format_double(double value);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Pads `s` on the right with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Pads `s` on the left with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace vc
