#include "support/diagnostics.hpp"

namespace vc {

std::string SourceLoc::to_string() const {
  if (line == 0) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(column);
}

CompileError::CompileError(const std::string& message, SourceLoc loc)
    : std::runtime_error(loc.line != 0 ? loc.to_string() + ": " + message : message),
      loc_(loc) {}

InternalError::InternalError(const std::string& message)
    : std::logic_error("internal error: " + message) {}

ValidationError::ValidationError(std::string pass, const std::string& message)
    : std::runtime_error("validation failed [" + pass + "]: " + message),
      pass_(std::move(pass)) {}

void check(bool condition, const std::string& message) {
  if (!condition) throw InternalError(message);
}

void check(bool condition, const char* message) {
  if (!condition) throw InternalError(message);
}

}  // namespace vc
