// A small fixed-size worker pool draining a shared FIFO job queue — the
// execution substrate for the fleet runner (driver/fleet.hpp). The paper's
// experiment is embarrassingly parallel (one compile → simulate → WCET chain
// per generated file), so a plain mutex-protected queue is enough: jobs are
// coarse (milliseconds each) and queue contention is negligible.
//
// Determinism contract: the pool schedules jobs in submission order but
// completes them in any order. Callers that need reproducible output must
// write results into pre-assigned slots (index the output by job id), never
// append from worker threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Jobs must not throw — wrap fallible work in its own
  /// try/catch and record the failure in the job's result slot.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished and the queue is empty.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// One per hardware thread, at least 1 (hardware_concurrency may be 0).
  static std::size_t default_worker_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: job available / stop
  std::condition_variable idle_cv_;  // signals wait_idle: all drained
  std::size_t active_ = 0;           // jobs currently executing
  bool stop_ = false;
};

/// Runs fn(0), ..., fn(count-1) across `jobs` workers and returns when all
/// are done. jobs <= 1 runs serially on the calling thread (no pool). An
/// exception escaping `fn` is rethrown on the calling thread after all other
/// indices finish (first one wins).
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace vc
