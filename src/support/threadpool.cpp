#include "support/threadpool.hpp"

#include <exception>
#include <utility>

namespace vc {

std::size_t ThreadPool::default_worker_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_worker_count();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1) {
    // Same exception contract as the pooled path: every index runs; the
    // first exception is rethrown once the loop completes.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  ThreadPool pool(jobs);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vc
