// Heap-allocation counters for profiling and regression tests.
//
// The replacement global operator new/delete in alloccount.cpp bump a pair
// of thread-local counters (call count + bytes) before deferring to malloc.
// That makes "how many heap allocations did this phase perform" a first-class
// measurement: `vcc --profile` prints it per compile, bench_micro reports it
// per lane, and a quick-label test pins the per-job allocation count of a
// fleet campaign so an accidental copy-by-value or dropped reserve() shows
// up as a failed assertion instead of a silent throughput regression.
//
// Counters are thread-local: a worker measures only its own traffic, so the
// numbers are deterministic under any --jobs value. Under AddressSanitizer
// the counts still tick (ASan intercepts malloc underneath operator new);
// the regression test only asserts on the default preset regardless, since
// sanitizer runtimes may allocate on their own schedule.
#pragma once

#include <cstdint>

namespace vc::alloc {

struct Counters {
  std::uint64_t allocations = 0;
  std::uint64_t bytes = 0;
};

/// Snapshot of the calling thread's counters (monotonic since thread start).
[[nodiscard]] Counters snapshot();

/// Measures heap traffic on this thread between construction and the call.
class Scope {
 public:
  Scope() : start_(snapshot()) {}
  [[nodiscard]] Counters delta() const {
    const Counters now = snapshot();
    return {now.allocations - start_.allocations, now.bytes - start_.bytes};
  }

 private:
  Counters start_;
};

}  // namespace vc::alloc
