// Bump-pointer arena for per-job scratch memory.
//
// The fleet runner compiles and analyzes thousands of units per campaign;
// most intermediate allocations (analysis tables, worklists, IPET rows) are
// dead the moment the job's record is published. An arena turns each of
// those into a pointer bump inside a reusable chunk: `reset()` rewinds every
// chunk instead of returning memory to the allocator, so a long-lived
// workspace (one per fleet worker) reaches a steady state where a whole job
// runs without touching malloc.
//
// Only trivially-destructible types may live in an arena — reset() never
// runs destructors. Oversized requests (> half a chunk) get their own
// dedicated block so a single big table cannot poison chunk utilization;
// dedicated blocks ARE freed on reset, since keeping worst-case outliers
// resident forever would defeat the point of pooling.
//
// Under AddressSanitizer the free space of every chunk is poisoned, so a
// read past the end of an arena array is caught exactly like a heap
// overflow. Counters (allocations / bytes / peak) feed `vcc --profile` and
// the allocation-regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace vc {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation, aligned to `align` (a power of two <= alignof(max_align_t)).
  void* allocate(std::size_t size, std::size_t align);

  /// Array of `count` default-initialized T. T must be trivially
  /// destructible (reset() runs no destructors).
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    auto* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (p + i) T();
    return p;
  }

  /// Rewinds every chunk to empty and frees oversized dedicated blocks.
  /// Chunk capacity is retained, so a workspace reset between fleet jobs
  /// costs O(chunks), not O(bytes).
  void reset();

  // -- telemetry ------------------------------------------------------------
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  /// Bytes handed out since construction (monotonic; reset() does not rewind it).
  [[nodiscard]] std::uint64_t bytes_allocated() const { return bytes_; }
  /// High-water mark of live bytes within one reset() epoch.
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  void* allocate_slow(std::size_t size, std::size_t align);

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // chunk being bumped (chunks_ is never empty)
  std::vector<std::unique_ptr<unsigned char[]>> oversized_;
  std::uint64_t allocations_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

}  // namespace vc
