// Diagnostics: error types shared by all vcflight components.
//
// The toolchain distinguishes three failure classes:
//  - CompileError: the input program is ill-formed (user error).
//  - InternalError: an invariant of the toolchain itself was violated (tool bug).
//  - ValidationError: a translation-validation check rejected a pass output
//    (potential miscompilation; the pipeline must not ship the result).
#pragma once

#include <stdexcept>
#include <string>

namespace vc {

/// A position in a mini-C source file (1-based line/column; 0 means unknown).
struct SourceLoc {
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const;
};

/// The input program is ill-formed (syntax, type, or semantic constraint).
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& message, SourceLoc loc = {});
  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// A toolchain invariant was violated; indicates a bug in vcflight itself.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& message);
};

/// A translation-validation check failed: the transformed program could not be
/// proved equivalent to its source. Carries the pass name for reporting.
class ValidationError : public std::runtime_error {
 public:
  ValidationError(std::string pass, const std::string& message);
  [[nodiscard]] const std::string& pass() const { return pass_; }

 private:
  std::string pass_;
};

/// Throws InternalError with `message` if `condition` is false.
void check(bool condition, const std::string& message);

/// Literal-message overload: overload resolution prefers it for string
/// literals, so hot paths (the ILP pivot kernel calls check() per arithmetic
/// operation) pay no std::string construction on the non-throwing branch.
void check(bool condition, const char* message);

}  // namespace vc
