// Streaming 128-bit content hashing for the artifact store (src/artifact).
//
// FNV-1a/128: the classic byte-at-a-time fold, widened to 128 bits via the
// compiler's native __int128 multiply, so a digest is cheap enough to verify
// every artifact on load yet wide enough that the store can treat equal
// digests as equal content (collision probability ~2^-64 even across billions
// of entries — far below the disk-corruption rate the check exists to catch).
//
// The hasher is *streaming*: feed any number of update() calls and take the
// digest at the end. Multi-field keys must frame each field with its length
// (update_sized) so ("ab","c") and ("a","bc") cannot collide by concatenation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vc {

/// A 128-bit digest, comparable and hex-printable (32 lowercase chars).
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }

  [[nodiscard]] std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t half = i < 8 ? hi : lo;
      const int shift = 56 - 8 * (i % 8);
      const auto byte = static_cast<unsigned>((half >> shift) & 0xFF);
      out[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
      out[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xF];
    }
    return out;
  }
};

/// Incremental FNV-1a/128 hasher.
class Fnv128 {
 public:
  void update(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    unsigned __int128 h = state_;
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    state_ = h;
  }

  void update(std::string_view text) { update(text.data(), text.size()); }

  /// Feeds the 8 little-endian bytes of `v`.
  void update_u64(std::uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
      bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
    update(bytes, sizeof bytes);
  }

  void update_u32(std::uint32_t v) { update_u64(v); }
  void update_bool(bool v) { update_u64(v ? 1 : 0); }

  /// Length-prefixed field: unambiguous framing for multi-field keys.
  void update_sized(std::string_view field) {
    update_u64(field.size());
    update(field);
  }

  [[nodiscard]] Hash128 digest() const {
    return {static_cast<std::uint64_t>(state_ >> 64),
            static_cast<std::uint64_t>(state_)};
  }

 private:
  // FNV-1a 128-bit offset basis and prime (fnv.org reference parameters).
  static constexpr unsigned __int128 kBasis =
      (static_cast<unsigned __int128>(0x6C62272E07BB0142ull) << 64) |
      0x62B821756295C58Dull;
  static constexpr unsigned __int128 kPrime =
      (static_cast<unsigned __int128>(0x0000000001000000ull) << 64) | 0x13Bull;

  unsigned __int128 state_ = kBasis;
};

/// One-shot convenience over a single buffer.
inline Hash128 fnv128(std::string_view bytes) {
  Fnv128 h;
  h.update(bytes);
  return h.digest();
}

}  // namespace vc
