// Per-worker compile workspace: reusable scratch for the whole pipeline.
//
// The fleet runner processes thousands of (unit, config) jobs per campaign,
// and each job used to allocate its analysis scratch — liveness bitsets,
// predecessor lists, RPO/dominator vectors, worklists — from a cold heap.
// A `CompileWorkspace` owns that scratch for the lifetime of one worker
// thread: jobs `reset()` it instead of freeing it, so vector capacities and
// arena chunks reach a steady state after the first few jobs and the rest of
// the campaign runs allocation-free on these paths.
//
// The workspace lives in src/support (the bottom layer), so it exposes
// *shape*-typed pools (vectors of u32 / u8 / size_t pairs, DenseBitset
// vectors) rather than IR-typed ones; rtl::BlockId and rtl::VReg are
// std::uint32_t, so the analyses lease u32 pools directly.
//
// Leases are RAII: `auto v = ws.u32_pool.lease();` hands out a cleared
// vector with retained capacity and returns it to the pool on scope exit.
// Pools are unsynchronized by design — one workspace per thread, enforced
// socially (the fleet runner keeps one in thread_local storage).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/arena.hpp"
#include "support/bitset.hpp"
#include "support/symtab.hpp"

namespace vc {

/// Folds `bytes` into the process-wide arena high-water mark (atomic max).
void note_arena_peak(std::uint64_t bytes);

/// The largest per-job arena footprint any worker thread has reported so
/// far, across all threads that ever lived in this process. Monotone;
/// observability only (vccd status, bench footers).
[[nodiscard]] std::uint64_t global_arena_peak_bytes();

/// A pool of reusable T (T must be cheap to `clear()`). lease() prefers the
/// most recently returned object — the one whose buffers are warmest.
template <typename T>
class ScratchPool {
 public:
  class Lease {
   public:
    Lease(ScratchPool* pool, T obj) : pool_(pool), obj_(std::move(obj)) {}
    ~Lease() {
      if (pool_) pool_->give_back(std::move(obj_));
    }
    Lease(Lease&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)), obj_(std::move(o.obj_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() { return obj_; }
    T* operator->() { return &obj_; }

   private:
    ScratchPool* pool_;
    T obj_;
  };

  /// A cleared object with whatever capacity its last user grew it to.
  [[nodiscard]] Lease lease() {
    if (free_.empty()) return Lease(this, T{});
    T obj = std::move(free_.back());
    free_.pop_back();
    obj.clear();
    return Lease(this, std::move(obj));
  }

  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  friend class Lease;
  void give_back(T obj) { free_.push_back(std::move(obj)); }

  std::vector<T> free_;
};

class CompileWorkspace {
 public:
  /// Bump arena for trivially-destructible per-job tables.
  Arena arena;
  /// Name interner; persists across reset() (ids stay stable for a worker's
  /// lifetime, and re-interning the same globals every job would waste the
  /// point of interning).
  SymbolTable symbols;

  // Shape-typed scratch pools. BlockId/VReg are uint32, worklist flags are
  // uint8 (not vector<bool>: no proxy bits, clear() keeps capacity).
  ScratchPool<std::vector<std::uint32_t>> u32_pool;
  ScratchPool<std::vector<std::uint8_t>> u8_pool;
  ScratchPool<std::vector<std::pair<std::uint32_t, std::size_t>>> pair_pool;
  ScratchPool<std::vector<DenseBitset>> bitset_vec_pool;
  ScratchPool<DenseBitset> bitset_pool;
  /// Nested u32 lists (predecessor / dominator-children tables).
  ScratchPool<std::vector<std::vector<std::uint32_t>>> u32_lists_pool;

  /// End-of-job rewind: reclaims arena memory (keeping chunks) and bumps the
  /// job counter. Pooled vectors are already back in their pools when the
  /// job's leases unwound; their capacity is the asset being kept. The
  /// arena's high-water mark is folded into the process-wide peak here —
  /// fleet worker threads die with their parallel_for call, so a long-lived
  /// observer (the vccd status endpoint) needs the cross-thread maximum.
  void reset() {
    note_arena_peak(arena.peak_bytes());
    arena.reset();
    ++jobs_reset_;
  }

  [[nodiscard]] std::uint64_t jobs_reset() const { return jobs_reset_; }

 private:
  std::uint64_t jobs_reset_ = 0;
};

/// The calling thread's workspace (lazily constructed, never freed until
/// thread exit). Fleet workers and single-shot tools share this accessor so
/// every layer reaches the same per-thread scratch without plumbing a
/// pointer through call chains that do not otherwise care.
CompileWorkspace& this_thread_workspace();

}  // namespace vc
