// Dense fixed-universe bitset for the dataflow analyses. The liveness and
// availability fixpoints iterate set-algebra (union / intersection /
// difference) over vreg universes of a few hundred elements; a word-packed
// bitset makes each transfer a handful of 64-bit ops instead of a tree walk
// per element, and the `changed` results the bulk operations return are
// exactly what a worklist algorithm needs.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vc {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t universe)
      : size_(universe), words_((universe + 63) / 64, 0) {}

  /// Grows/shrinks the universe; new bits start clear. Shrinking drops any
  /// set bits beyond the new size.
  void resize(std::size_t universe) {
    size_ = universe;
    words_.resize((universe + 63) / 64, 0);
    clear_padding();
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    clear_padding();
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(popcount(w));
    return n;
  }

  [[nodiscard]] bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] bool none() const { return !any(); }

  /// this |= other; returns true if any bit changed. Universes must match.
  bool union_with(const DenseBitset& other) {
    assert(size_ == other.size_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | other.words_[i];
      changed |= merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  /// this &= other; returns true if any bit changed. Universes must match.
  bool intersect_with(const DenseBitset& other) {
    assert(size_ == other.size_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] & other.words_[i];
      changed |= merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  /// this &= ~other. Universes must match.
  void subtract(const DenseBitset& other) {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
  }

  bool operator==(const DenseBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const DenseBitset& other) const { return !(*this == other); }

  /// Calls fn(index) for every set bit, in ascending index order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  // Keeps bits beyond size_ clear so count()/any()/== stay exact.
  void clear_padding() {
    if (size_ % 64 != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
  }

  static int popcount(std::uint64_t w) { return __builtin_popcountll(w); }
  static int countr_zero(std::uint64_t w) { return __builtin_ctzll(w); }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace vc
