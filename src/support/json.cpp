#include "support/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vc::json {

namespace {

const Value kNull;
const Array kEmptyArray;
const Object kEmptyObject;

void write_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void write_newline(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

bool Value::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

std::int64_t Value::as_i64(std::int64_t fallback) const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::UInt &&
      uint_ <= static_cast<std::uint64_t>(INT64_MAX))
    return static_cast<std::int64_t>(uint_);
  return fallback;
}

std::uint64_t Value::as_u64(std::uint64_t fallback) const {
  if (kind_ == Kind::UInt) return uint_;
  if (kind_ == Kind::Int && int_ >= 0) return static_cast<std::uint64_t>(int_);
  return fallback;
}

double Value::as_double(double fallback) const {
  switch (kind_) {
    case Kind::Double: return double_;
    case Kind::Int: return static_cast<double>(int_);
    case Kind::UInt: return static_cast<double>(uint_);
    default: return fallback;
  }
}

std::string Value::as_string(const std::string& fallback) const {
  return kind_ == Kind::String ? string_ : fallback;
}

const Array& Value::as_array() const {
  return kind_ == Kind::Array ? array_ : kEmptyArray;
}

const Object& Value::as_object() const {
  return kind_ == Kind::Object ? object_ : kEmptyObject;
}

Array& Value::as_array_mut() {
  if (kind_ != Kind::Array) {
    *this = Value(Array{});
  }
  return array_;
}

const Value& Value::at(const std::string& key) const {
  if (kind_ == Kind::Object) {
    const auto it = object_.find(key);
    if (it != object_.end()) return it->second;
  }
  return kNull;
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  // Non-object access is a programming error; keep it deterministic by
  // resetting to an object rather than corrupting the existing lane.
  if (kind_ != Kind::Object) {
    *this = Value(Object{});
  }
  return object_[key];
}

void Value::write(std::string* out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::Null: *out += "null"; break;
    case Kind::Bool: *out += bool_ ? "true" : "false"; break;
    case Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      *out += buf;
      break;
    case Kind::UInt:
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(uint_));
      *out += buf;
      break;
    case Kind::Double:
      if (std::isfinite(double_)) {
        // %.17g round-trips every double; trim to %g when exact.
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        double probe = 0.0;
        char probe_buf[64];
        std::snprintf(probe_buf, sizeof probe_buf, "%g", double_);
        probe = std::strtod(probe_buf, nullptr);
        *out += probe == double_ ? probe_buf : buf;
      } else {
        *out += "null";  // JSON has no NaN/Inf; null keeps documents valid
      }
      break;
    case Kind::String: write_escaped(out, string_); break;
    case Kind::Array: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        write_newline(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      write_newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        write_newline(out, indent, depth + 1);
        write_escaped(out, key);
        *out += indent < 0 ? ":" : ": ";
        value.write(out, indent, depth + 1);
      }
      write_newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Parsed run() {
    Parsed out;
    out.value = parse_value(&out.error);
    if (!out.error.empty()) return out;
    skip_ws();
    if (pos_ != text_.size()) fail(&out.error, "trailing characters");
    return out;
  }

 private:
  void fail(std::string* error, const std::string& what) {
    if (error->empty())
      *error = what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value(std::string* error) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail(error, "unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(error);
    if (c == '[') return parse_array(error);
    if (c == '"') return parse_string(error);
    if (consume_word("null")) return {};
    if (consume_word("true")) return Value(true);
    if (consume_word("false")) return Value(false);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(error);
    fail(error, "unexpected character");
    return {};
  }

  Value parse_object(std::string* error) {
    ++pos_;  // '{'
    Object out;
    skip_ws();
    if (consume('}')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail(error, "expected object key");
        return {};
      }
      Value key = parse_string(error);
      if (!error->empty()) return {};
      skip_ws();
      if (!consume(':')) {
        fail(error, "expected ':'");
        return {};
      }
      out[key.as_string()] = parse_value(error);
      if (!error->empty()) return {};
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(out));
      fail(error, "expected ',' or '}'");
      return {};
    }
  }

  Value parse_array(std::string* error) {
    ++pos_;  // '['
    Array out;
    skip_ws();
    if (consume(']')) return Value(std::move(out));
    for (;;) {
      out.push_back(parse_value(error));
      if (!error->empty()) return {};
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(out));
      fail(error, "expected ',' or ']'");
      return {};
    }
  }

  Value parse_string(std::string* error) {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Value(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail(error, "truncated \\u escape");
            return {};
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail(error, "bad \\u escape");
              return {};
            }
          }
          // Our documents are ASCII; anything else is preserved as '?'.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          fail(error, "bad escape");
          return {};
      }
    }
    fail(error, "unterminated string");
    return {};
  }

  Value parse_number(std::string* error) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' ||
                                text_[pos_] == 'E')) {
      is_double = true;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      fail(error, "bad number");
      return {};
    }
    errno = 0;
    char* end = nullptr;
    if (is_double) {
      const double v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        fail(error, "bad number");
        return {};
      }
      return Value(v);
    }
    if (token[0] == '-') {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        fail(error, "bad number");
        return {};
      }
      return Value(static_cast<std::int64_t>(v));
    }
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      fail(error, "bad number");
      return {};
    }
    return Value(static_cast<std::uint64_t>(v));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Parsed parse(std::string_view text) { return Parser(text).run(); }

}  // namespace vc::json
