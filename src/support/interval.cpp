#include "support/interval.hpp"

#include <algorithm>
#include <limits>

#include "support/diagnostics.hpp"

namespace vc {
namespace {

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();

// Saturating arithmetic so interval bounds never wrap.
std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) return b > 0 ? kI64Max : kI64Min;
  return r;
}

std::int64_t sat_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_sub_overflow(a, b, &r)) return b < 0 ? kI64Max : kI64Min;
  return r;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) {
    const bool negative = (a < 0) != (b < 0);
    return negative ? kI64Min : kI64Max;
  }
  return r;
}

}  // namespace

Interval Interval::range(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Interval::range requires lo <= hi");
  return Interval(lo, hi);
}

Interval Interval::top() { return Interval(kI64Min, kI64Max); }

Interval Interval::i32_range() { return Interval(kI32Min, kI32Max); }

bool Interval::is_top() const {
  return nonempty_ && lo_ == kI64Min && hi_ == kI64Max;
}

std::int64_t Interval::lo() const {
  check(nonempty_, "lo() on bottom interval");
  return lo_;
}

std::int64_t Interval::hi() const {
  check(nonempty_, "hi() on bottom interval");
  return hi_;
}

std::optional<std::int64_t> Interval::as_constant() const {
  if (nonempty_ && lo_ == hi_) return lo_;
  return std::nullopt;
}

bool Interval::contains(std::int64_t v) const {
  return nonempty_ && lo_ <= v && v <= hi_;
}

bool Interval::contains(const Interval& other) const {
  if (other.is_bottom()) return true;
  if (is_bottom()) return false;
  return lo_ <= other.lo_ && other.hi_ <= hi_;
}

Interval Interval::join(const Interval& other) const {
  if (is_bottom()) return other;
  if (other.is_bottom()) return *this;
  return Interval(std::min(lo_, other.lo_), std::max(hi_, other.hi_));
}

Interval Interval::meet(const Interval& other) const {
  if (is_bottom() || other.is_bottom()) return bottom();
  const std::int64_t lo = std::max(lo_, other.lo_);
  const std::int64_t hi = std::min(hi_, other.hi_);
  if (lo > hi) return bottom();
  return Interval(lo, hi);
}

Interval Interval::widen(const Interval& next) const {
  if (is_bottom()) return next;
  if (next.is_bottom()) return *this;
  const std::int64_t lo = next.lo_ < lo_ ? kI32Min : lo_;
  const std::int64_t hi = next.hi_ > hi_ ? kI32Max : hi_;
  return Interval(std::min(lo, next.lo_), std::max(hi, next.hi_));
}

Interval Interval::add(const Interval& rhs) const {
  if (is_bottom() || rhs.is_bottom()) return bottom();
  return Interval(sat_add(lo_, rhs.lo_), sat_add(hi_, rhs.hi_));
}

Interval Interval::sub(const Interval& rhs) const {
  if (is_bottom() || rhs.is_bottom()) return bottom();
  return Interval(sat_sub(lo_, rhs.hi_), sat_sub(hi_, rhs.lo_));
}

Interval Interval::mul(const Interval& rhs) const {
  if (is_bottom() || rhs.is_bottom()) return bottom();
  const std::int64_t candidates[4] = {
      sat_mul(lo_, rhs.lo_), sat_mul(lo_, rhs.hi_),
      sat_mul(hi_, rhs.lo_), sat_mul(hi_, rhs.hi_)};
  return Interval(*std::min_element(candidates, candidates + 4),
                  *std::max_element(candidates, candidates + 4));
}

Interval Interval::div(const Interval& rhs) const {
  if (is_bottom() || rhs.is_bottom()) return bottom();
  // Remove 0 from the divisor (a trapping division never produces a value).
  Interval divisor = rhs;
  if (divisor.lo_ == 0 && divisor.hi_ == 0) return bottom();
  if (divisor.lo_ == 0) divisor.lo_ = 1;
  if (divisor.hi_ == 0) divisor.hi_ = -1;
  if (divisor.lo_ <= 0 && 0 <= divisor.hi_) {
    // Divisor straddles zero: the quotient magnitude is bounded by |dividend|.
    const std::int64_t m = std::max(std::llabs(lo_), std::llabs(hi_));
    return Interval(-m, m);
  }
  const std::int64_t candidates[4] = {lo_ / divisor.lo_, lo_ / divisor.hi_,
                                      hi_ / divisor.lo_, hi_ / divisor.hi_};
  return Interval(*std::min_element(candidates, candidates + 4),
                  *std::max_element(candidates, candidates + 4));
}

Interval Interval::neg() const {
  if (is_bottom()) return bottom();
  return Interval(sat_sub(0, hi_), sat_sub(0, lo_));
}

Interval Interval::clamp_i32() const {
  if (is_bottom()) return bottom();
  if (lo_ < kI32Min || hi_ > kI32Max) return i32_range();
  return *this;
}

Interval Interval::refine_lt(std::int64_t bound) const {
  if (bound == kI64Min) return bottom();
  return meet(Interval(kI64Min, bound - 1));
}

Interval Interval::refine_le(std::int64_t bound) const {
  return meet(Interval(kI64Min, bound));
}

Interval Interval::refine_gt(std::int64_t bound) const {
  if (bound == kI64Max) return bottom();
  return meet(Interval(bound + 1, kI64Max));
}

Interval Interval::refine_ge(std::int64_t bound) const {
  return meet(Interval(bound, kI64Max));
}

Interval Interval::refine_eq(std::int64_t v) const {
  return meet(Interval(v, v));
}

bool Interval::operator==(const Interval& other) const {
  if (is_bottom() && other.is_bottom()) return true;
  if (is_bottom() != other.is_bottom()) return false;
  return lo_ == other.lo_ && hi_ == other.hi_;
}

std::string Interval::to_string() const {
  if (is_bottom()) return "⊥";
  if (is_top()) return "⊤";
  return "[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

}  // namespace vc
