#include "rtl/exec.hpp"

#include "support/workspace.hpp"

namespace vc::rtl {

using minic::Value;

Executor::Executor(const minic::Program& program) : program_(program) {
  // Dense ids in declaration order; ids never change for this executor.
  for (const auto& g : program_.globals) global_syms_.intern(g.name);
  reset_globals();
}

void Executor::reset_globals() {
  globals_.assign(global_syms_.size(), {});
  for (const auto& g : program_.globals) {
    std::vector<Value> cells(
        g.count, g.type == minic::Type::I32 ? Value::of_i32(0)
                                            : Value::of_f64(0.0));
    for (std::size_t i = 0; i < g.init.size(); ++i) {
      cells[i] = g.type == minic::Type::I32
                     ? Value::of_i32(static_cast<std::int32_t>(g.init[i]))
                     : Value::of_f64(g.init[i]);
    }
    globals_[static_cast<std::size_t>(global_syms_.find(g.name))] =
        std::move(cells);
  }
}

Value Executor::read_cell(SymbolId sym, std::size_t index) const {
  if (sym == kNoSymbol)
    throw minic::EvalError("unknown global in RTL exec");
  const auto& cells = globals_[static_cast<std::size_t>(sym)];
  if (index >= cells.size())
    throw minic::EvalError("global index out of range for '" +
                           global_syms_.name(sym) + "'");
  return cells[index];
}

void Executor::write_cell(SymbolId sym, std::size_t index, Value v) {
  if (sym == kNoSymbol)
    throw minic::EvalError("unknown global in RTL exec");
  auto& cells = globals_[static_cast<std::size_t>(sym)];
  if (index >= cells.size())
    throw minic::EvalError("global index out of range for '" +
                           global_syms_.name(sym) + "'");
  cells[index] = v;
}

Value Executor::read_global(const std::string& name, std::size_t index) const {
  const SymbolId sym = global_syms_.find(name);
  if (sym == kNoSymbol)
    throw minic::EvalError("unknown global '" + name + "'");
  return read_cell(sym, index);
}

void Executor::write_global(const std::string& name, std::size_t index,
                            Value v) {
  const SymbolId sym = global_syms_.find(name);
  if (sym == kNoSymbol)
    throw minic::EvalError("unknown global '" + name + "'");
  write_cell(sym, index, v);
}

Value Executor::call(const Function& fn, const std::vector<Value>& args) {
  if (args.size() != fn.params.size())
    throw minic::EvalError("argument count mismatch in RTL exec");

  annotations_.clear();
  steps_ = 0;

  std::vector<Value> regs(fn.vregs.size());
  for (std::size_t i = 0; i < fn.vregs.size(); ++i)
    regs[i] = fn.vregs[i] == RegClass::I32 ? Value::of_i32(0)
                                           : Value::of_f64(0.0);
  std::vector<Value> slots(fn.slots.size());
  for (std::size_t i = 0; i < fn.slots.size(); ++i)
    slots[i] = fn.slots[i] == RegClass::I32 ? Value::of_i32(0)
                                            : Value::of_f64(0.0);

  // Resolve each instruction's global symbol once per call: loops execute
  // the same static instruction many times, and a name lookup per executed
  // load/store dominated this interpreter's profile. Unknown names stay
  // kNoSymbol and only fault if actually executed (matching the old
  // execute-time map lookup). Scratch comes from the per-thread workspace.
  CompileWorkspace& ws = this_thread_workspace();
  auto block_base = ws.u32_pool.lease();   // first flat index of each block
  auto flat_syms = ws.u32_pool.lease();    // SymbolId + 1 per instruction
  block_base->reserve(fn.blocks.size());
  for (const BasicBlock& bb : fn.blocks) {
    block_base->push_back(static_cast<std::uint32_t>(flat_syms->size()));
    for (const Instr& ins : bb.instrs) {
      std::uint32_t id = 0;  // 0 = no symbol / unknown
      if (ins.op == Opcode::LoadGlobal || ins.op == Opcode::StoreGlobal ||
          ins.op == Opcode::LoadGlobalIdx ||
          ins.op == Opcode::StoreGlobalIdx) {
        const SymbolId sym = global_syms_.find(ins.sym);
        if (sym != kNoSymbol) id = static_cast<std::uint32_t>(sym) + 1;
      }
      flat_syms->push_back(id);
    }
  }
  const auto sym_at = [&](BlockId bb, std::size_t ip) {
    const std::uint32_t id = (*flat_syms)[(*block_base)[bb] + ip];
    return id == 0 ? kNoSymbol : static_cast<SymbolId>(id - 1);
  };

  BlockId bb = 0;
  std::size_t ip = 0;

  // SSA-form functions carry phi runs at block heads. All phis of a block
  // are one parallel copy: every incoming value is read before any phi dst
  // is written (loop-carried swap patterns are wrong otherwise). The phi
  // run is consumed here at edge-transfer time, so `ip` always resumes at
  // the first non-phi instruction.
  std::vector<Value> phi_tmp;
  const auto enter_block = [&](BlockId from, BlockId to) {
    bb = to;
    ip = 0;
    const auto& instrs = fn.blocks[to].instrs;
    std::size_t n_phi = 0;
    while (n_phi < instrs.size() && instrs[n_phi].op == Opcode::Phi) ++n_phi;
    if (n_phi == 0) return;
    phi_tmp.clear();
    for (std::size_t k = 0; k < n_phi; ++k) {
      const Instr& phi = instrs[k];
      const PhiArg* hit = nullptr;
      for (const PhiArg& a : phi.phi_args)
        if (a.pred == from) { hit = &a; break; }
      if (hit == nullptr)
        throw minic::EvalError("phi has no incoming arg for edge bb" +
                               std::to_string(from) + " -> bb" +
                               std::to_string(to));
      phi_tmp.push_back(regs[hit->src]);
    }
    for (std::size_t k = 0; k < n_phi; ++k) regs[instrs[k].dst] = phi_tmp[k];
    ip = n_phi;
    steps_ += n_phi;
  };

  for (;;) {
    if (++steps_ > fuel_) throw minic::EvalError("RTL fuel exhausted");
    const Instr& ins = fn.blocks[bb].instrs[ip];
    ++ip;
    switch (ins.op) {
      case Opcode::LdI:
        regs[ins.dst] = Value::of_i32(ins.int_imm);
        break;
      case Opcode::LdF:
        regs[ins.dst] = Value::of_f64(ins.f64_imm);
        break;
      case Opcode::Mov:
        regs[ins.dst] = regs[ins.src1];
        break;
      case Opcode::Un:
        regs[ins.dst] = minic::eval_unop(ins.un_op, regs[ins.src1]);
        break;
      case Opcode::Bin: {
        const Value& a = regs[ins.src1];
        const Value& b = regs[ins.src2];
        if (minic::operand_type(ins.bin_op) == minic::Type::I32)
          regs[ins.dst] = Value::of_i32(minic::eval_ibinop(ins.bin_op, a.i, b.i));
        else if (minic::result_type(ins.bin_op) == minic::Type::F64)
          regs[ins.dst] = Value::of_f64(minic::eval_fbinop(ins.bin_op, a.f, b.f));
        else
          regs[ins.dst] = Value::of_i32(minic::eval_fcmp(ins.bin_op, a.f, b.f));
        break;
      }
      case Opcode::LoadGlobal:
        regs[ins.dst] =
            read_cell(sym_at(bb, ip - 1), static_cast<std::size_t>(ins.elem));
        break;
      case Opcode::StoreGlobal:
        write_cell(sym_at(bb, ip - 1), static_cast<std::size_t>(ins.elem),
                   regs[ins.src1]);
        break;
      case Opcode::LoadGlobalIdx: {
        const std::int32_t idx = regs[ins.src1].i;
        if (idx < 0) throw minic::EvalError("negative index in RTL exec");
        regs[ins.dst] =
            read_cell(sym_at(bb, ip - 1), static_cast<std::size_t>(idx));
        break;
      }
      case Opcode::StoreGlobalIdx: {
        const std::int32_t idx = regs[ins.src2].i;
        if (idx < 0) throw minic::EvalError("negative index in RTL exec");
        write_cell(sym_at(bb, ip - 1), static_cast<std::size_t>(idx),
                   regs[ins.src1]);
        break;
      }
      case Opcode::LoadStack:
        regs[ins.dst] = slots[ins.slot];
        break;
      case Opcode::StoreStack:
        slots[ins.slot] = regs[ins.src1];
        break;
      case Opcode::GetParam:
        regs[ins.dst] = args[static_cast<std::size_t>(ins.param_index)];
        break;
      case Opcode::Jump:
        enter_block(bb, ins.target);
        break;
      case Opcode::Branch:
        enter_block(bb, regs[ins.src1].i != 0 ? ins.target : ins.target2);
        break;
      case Opcode::BranchCmp: {
        const Value& a = regs[ins.src1];
        const Value& b = regs[ins.src2];
        std::int32_t taken;
        if (minic::operand_type(ins.bin_op) == minic::Type::I32)
          taken = minic::eval_ibinop(ins.bin_op, a.i, b.i);
        else
          taken = minic::eval_fcmp(ins.bin_op, a.f, b.f);
        enter_block(bb, taken != 0 ? ins.target : ins.target2);
        break;
      }
      case Opcode::Ret:
        if (ins.src1 != kNoVReg) return regs[ins.src1];
        return Value::of_i32(0);
      case Opcode::Annot: {
        minic::AnnotEvent ev;
        ev.format = ins.annot_format;
        for (const AnnotOperand& a : ins.annot_args)
          ev.values.push_back(a.is_slot ? slots[a.slot] : regs[a.vreg]);
        annotations_.push_back(std::move(ev));
        break;
      }
      case Opcode::Phi:
        // Phi runs are consumed by enter_block; reaching one here means it
        // sits in the entry block, which has no predecessor edge.
        throw minic::EvalError("phi instruction in entry block");
    }
  }
}

}  // namespace vc::rtl
