#include "rtl/analysis.hpp"

#include <algorithm>
#include <functional>

namespace vc::rtl {

std::vector<std::vector<BlockId>> predecessors(const Function& fn) {
  std::vector<std::vector<BlockId>> preds(fn.blocks.size());
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    for (BlockId s : fn.blocks[b].successors()) preds[s].push_back(b);
  }
  return preds;
}

std::vector<BlockId> reverse_postorder(const Function& fn) {
  std::vector<bool> visited(fn.blocks.size(), false);
  std::vector<BlockId> postorder;
  postorder.reserve(fn.blocks.size());
  // Iterative DFS to avoid deep recursion on long block chains.
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(0, 0);
  visited[0] = true;
  while (!stack.empty()) {
    auto& [block, next_succ] = stack.back();
    const std::vector<BlockId> succs = fn.blocks[block].successors();
    if (next_succ < succs.size()) {
      const BlockId s = succs[next_succ++];
      if (!visited[s]) {
        visited[s] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      postorder.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(postorder.begin(), postorder.end());
  return postorder;
}

Liveness compute_liveness(const Function& fn) {
  Liveness lv;
  lv.live_in.assign(fn.blocks.size(), {});
  lv.live_out.assign(fn.blocks.size(), {});

  // Per-block gen (upward-exposed uses) and kill (defs).
  std::vector<std::set<VReg>> gen(fn.blocks.size());
  std::vector<std::set<VReg>> kill(fn.blocks.size());
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    for (const Instr& ins : fn.blocks[b].instrs) {
      for (VReg u : ins.uses())
        if (kill[b].count(u) == 0) gen[b].insert(u);
      if (auto d = ins.def()) kill[b].insert(*d);
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId bi = fn.blocks.size(); bi-- > 0;) {
      const BlockId b = bi;
      std::set<VReg> out;
      for (BlockId s : fn.blocks[b].successors())
        out.insert(lv.live_in[s].begin(), lv.live_in[s].end());
      std::set<VReg> in = gen[b];
      for (VReg v : out)
        if (kill[b].count(v) == 0) in.insert(v);
      if (out != lv.live_out[b] || in != lv.live_in[b]) {
        lv.live_out[b] = std::move(out);
        lv.live_in[b] = std::move(in);
        changed = true;
      }
    }
  }
  return lv;
}

std::vector<BlockId> immediate_dominators(const Function& fn) {
  // Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
  const std::vector<BlockId> rpo = reverse_postorder(fn);
  std::vector<std::size_t> rpo_index(fn.blocks.size(), SIZE_MAX);
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  const auto preds = predecessors(fn);
  std::vector<BlockId> idom(fn.blocks.size(), kNoBlock);
  idom[0] = 0;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : preds[b]) {
        if (rpo_index[p] == SIZE_MAX || idom[p] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b) {
  if (idom[b] == kNoBlock) return false;
  while (true) {
    if (a == b) return true;
    if (b == 0) return false;
    b = idom[b];
  }
}

void remove_unreachable_blocks(Function& fn) {
  std::vector<bool> reachable(fn.blocks.size(), false);
  std::vector<BlockId> worklist{0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    for (BlockId s : fn.blocks[b].successors()) {
      if (!reachable[s]) {
        reachable[s] = true;
        worklist.push_back(s);
      }
    }
  }

  std::vector<BlockId> remap(fn.blocks.size(), kNoBlock);
  std::vector<BasicBlock> kept;
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    if (reachable[b]) {
      remap[b] = static_cast<BlockId>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    }
  }
  for (auto& bb : kept) {
    Instr& t = bb.instrs.back();
    if (t.op == Opcode::Jump || t.op == Opcode::Branch ||
        t.op == Opcode::BranchCmp) {
      t.target = remap[t.target];
      if (t.op != Opcode::Jump) t.target2 = remap[t.target2];
    }
  }
  fn.blocks = std::move(kept);
  fn.validate();
}

}  // namespace vc::rtl
