#include "rtl/analysis.hpp"

#include <algorithm>
#include <functional>

namespace vc::rtl {

std::vector<std::vector<BlockId>> predecessors(const Function& fn) {
  std::vector<std::vector<BlockId>> preds(fn.blocks.size());
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    for (BlockId s : fn.blocks[b].successors()) preds[s].push_back(b);
  }
  return preds;
}

std::vector<BlockId> reverse_postorder(const Function& fn) {
  std::vector<bool> visited(fn.blocks.size(), false);
  std::vector<BlockId> postorder;
  postorder.reserve(fn.blocks.size());
  // Iterative DFS to avoid deep recursion on long block chains.
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(0, 0);
  visited[0] = true;
  while (!stack.empty()) {
    auto& [block, next_succ] = stack.back();
    const std::vector<BlockId> succs = fn.blocks[block].successors();
    if (next_succ < succs.size()) {
      const BlockId s = succs[next_succ++];
      if (!visited[s]) {
        visited[s] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      postorder.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(postorder.begin(), postorder.end());
  return postorder;
}

Liveness compute_liveness(const Function& fn) {
  const std::size_t nblocks = fn.blocks.size();
  const std::size_t nvregs = fn.vregs.size();
  Liveness lv;
  lv.live_in.assign(nblocks, DenseBitset(nvregs));
  lv.live_out.assign(nblocks, DenseBitset(nvregs));

  // Per-block gen (upward-exposed uses) and kill (defs).
  std::vector<DenseBitset> gen(nblocks, DenseBitset(nvregs));
  std::vector<DenseBitset> kill(nblocks, DenseBitset(nvregs));
  for (BlockId b = 0; b < nblocks; ++b) {
    for (const Instr& ins : fn.blocks[b].instrs) {
      for (VReg u : ins.uses())
        if (!kill[b].test(u)) gen[b].set(u);
      if (auto d = ins.def()) kill[b].set(*d);
    }
  }

  const auto preds = predecessors(fn);

  // Backward worklist fixpoint, seeded in postorder so most blocks settle on
  // the first visit; a block re-enters the list only when a successor's
  // live-in grows.
  std::vector<BlockId> worklist;
  std::vector<bool> queued(nblocks, false);
  {
    std::vector<BlockId> rpo = reverse_postorder(fn);
    for (std::size_t i = rpo.size(); i-- > 0;) {
      worklist.push_back(rpo[i]);
      queued[rpo[i]] = true;
    }
    // Unreachable blocks still get live sets (some callers iterate all
    // blocks); one visit each suffices since nothing feeds back into them.
    for (BlockId b = 0; b < nblocks; ++b)
      if (!queued[b]) {
        worklist.push_back(b);
        queued[b] = true;
      }
  }

  DenseBitset in(nvregs);
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    queued[b] = false;

    DenseBitset& out = lv.live_out[b];
    for (BlockId s : fn.blocks[b].successors()) out.union_with(lv.live_in[s]);

    in = out;
    in.subtract(kill[b]);
    in.union_with(gen[b]);
    if (in != lv.live_in[b]) {
      lv.live_in[b] = in;
      for (BlockId p : preds[b])
        if (!queued[p]) {
          queued[p] = true;
          worklist.push_back(p);
        }
    }
  }
  return lv;
}

std::vector<BlockId> immediate_dominators(const Function& fn) {
  // Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
  const std::vector<BlockId> rpo = reverse_postorder(fn);
  std::vector<std::size_t> rpo_index(fn.blocks.size(), SIZE_MAX);
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  const auto preds = predecessors(fn);
  std::vector<BlockId> idom(fn.blocks.size(), kNoBlock);
  idom[0] = 0;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : preds[b]) {
        if (rpo_index[p] == SIZE_MAX || idom[p] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b) {
  if (idom[b] == kNoBlock) return false;
  while (true) {
    if (a == b) return true;
    if (b == 0) return false;
    b = idom[b];
  }
}

std::vector<std::vector<BlockId>> dominator_children(
    const std::vector<BlockId>& idom) {
  std::vector<std::vector<BlockId>> children(idom.size());
  for (BlockId b = 0; b < idom.size(); ++b) {
    if (b == 0 || idom[b] == kNoBlock) continue;
    children[idom[b]].push_back(b);
  }
  // Block ids ascend as idom runs over them, so each list is already sorted;
  // the preorder walk over these lists is deterministic.
  return children;
}

void remove_unreachable_blocks(Function& fn) {
  std::vector<bool> reachable(fn.blocks.size(), false);
  std::vector<BlockId> worklist{0};
  reachable[0] = true;
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    for (BlockId s : fn.blocks[b].successors()) {
      if (!reachable[s]) {
        reachable[s] = true;
        worklist.push_back(s);
      }
    }
  }

  std::vector<BlockId> remap(fn.blocks.size(), kNoBlock);
  std::vector<BasicBlock> kept;
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    if (reachable[b]) {
      remap[b] = static_cast<BlockId>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    }
  }
  for (auto& bb : kept) {
    Instr& t = bb.instrs.back();
    if (t.op == Opcode::Jump || t.op == Opcode::Branch ||
        t.op == Opcode::BranchCmp) {
      t.target = remap[t.target];
      if (t.op != Opcode::Jump) t.target2 = remap[t.target2];
    }
  }
  fn.blocks = std::move(kept);
  fn.validate();
}

}  // namespace vc::rtl
