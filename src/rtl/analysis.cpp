#include "rtl/analysis.hpp"

#include <algorithm>
#include <functional>

namespace vc::rtl {
namespace {

/// Rewinds a pooled vector<DenseBitset> to `count` bitsets of `universe`
/// bits, all clear, reusing both the vector slots and each bitset's word
/// storage.
void reshape_bitsets(std::vector<DenseBitset>* sets, std::size_t count,
                     std::size_t universe) {
  sets->resize(count);
  for (DenseBitset& bs : *sets) {
    bs.clear();           // zero retained words first,
    bs.resize(universe);  // then fit the universe (new words start clear)
  }
}

}  // namespace

void predecessors(const Function& fn, CompileWorkspace& ws,
                  std::vector<std::vector<BlockId>>* out) {
  (void)ws;  // result lists are caller-owned; nothing internal to pool
  out->resize(fn.blocks.size());
  for (auto& lst : *out) lst.clear();
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    for (BlockId s : fn.blocks[b].successors()) (*out)[s].push_back(b);
  }
}

std::vector<std::vector<BlockId>> predecessors(const Function& fn) {
  std::vector<std::vector<BlockId>> preds;
  predecessors(fn, this_thread_workspace(), &preds);
  return preds;
}

void reverse_postorder(const Function& fn, CompileWorkspace& ws,
                       std::vector<BlockId>* out) {
  auto visited = ws.u8_pool.lease();
  visited->assign(fn.blocks.size(), 0);
  out->clear();
  out->reserve(fn.blocks.size());
  // Iterative DFS to avoid deep recursion on long block chains.
  auto stack = ws.pair_pool.lease();  // (block, next successor index)
  stack->emplace_back(0, 0);
  (*visited)[0] = 1;
  while (!stack->empty()) {
    auto& [block, next_succ] = stack->back();
    const std::vector<BlockId> succs = fn.blocks[block].successors();
    if (next_succ < succs.size()) {
      const BlockId s = succs[next_succ++];
      if (!(*visited)[s]) {
        (*visited)[s] = 1;
        stack->emplace_back(s, 0);
      }
    } else {
      out->push_back(block);
      stack->pop_back();
    }
  }
  std::reverse(out->begin(), out->end());
}

std::vector<BlockId> reverse_postorder(const Function& fn) {
  std::vector<BlockId> rpo;
  reverse_postorder(fn, this_thread_workspace(), &rpo);
  return rpo;
}

void compute_liveness(const Function& fn, CompileWorkspace& ws,
                      Liveness* out) {
  const std::size_t nblocks = fn.blocks.size();
  const std::size_t nvregs = fn.vregs.size();
  reshape_bitsets(&out->live_in, nblocks, nvregs);
  reshape_bitsets(&out->live_out, nblocks, nvregs);

  // Per-block gen (upward-exposed uses) and kill (defs).
  auto gen = ws.bitset_vec_pool.lease();
  auto kill = ws.bitset_vec_pool.lease();
  reshape_bitsets(&*gen, nblocks, nvregs);
  reshape_bitsets(&*kill, nblocks, nvregs);
  for (BlockId b = 0; b < nblocks; ++b) {
    for (const Instr& ins : fn.blocks[b].instrs) {
      for (VReg u : ins.uses())
        if (!(*kill)[b].test(u)) (*gen)[b].set(u);
      if (auto d = ins.def()) (*kill)[b].set(*d);
    }
  }

  auto preds_lease = ws.u32_lists_pool.lease();
  predecessors(fn, ws, &*preds_lease);
  const auto& preds = *preds_lease;

  // Backward worklist fixpoint, seeded in postorder so most blocks settle on
  // the first visit; a block re-enters the list only when a successor's
  // live-in grows.
  auto worklist = ws.u32_pool.lease();
  auto queued = ws.u8_pool.lease();
  queued->assign(nblocks, 0);
  {
    auto rpo = ws.u32_pool.lease();
    reverse_postorder(fn, ws, &*rpo);
    for (std::size_t i = rpo->size(); i-- > 0;) {
      worklist->push_back((*rpo)[i]);
      (*queued)[(*rpo)[i]] = 1;
    }
    // Unreachable blocks still get live sets (some callers iterate all
    // blocks); one visit each suffices since nothing feeds back into them.
    for (BlockId b = 0; b < nblocks; ++b)
      if (!(*queued)[b]) {
        worklist->push_back(b);
        (*queued)[b] = 1;
      }
  }

  auto in_lease = ws.bitset_pool.lease();
  DenseBitset& in = *in_lease;
  in.clear();
  in.resize(nvregs);
  while (!worklist->empty()) {
    const BlockId b = worklist->back();
    worklist->pop_back();
    (*queued)[b] = 0;

    DenseBitset& bout = out->live_out[b];
    for (BlockId s : fn.blocks[b].successors())
      bout.union_with(out->live_in[s]);

    in = bout;
    in.subtract((*kill)[b]);
    in.union_with((*gen)[b]);
    if (in != out->live_in[b]) {
      out->live_in[b] = in;
      for (BlockId p : preds[b])
        if (!(*queued)[p]) {
          (*queued)[p] = 1;
          worklist->push_back(p);
        }
    }
  }
}

Liveness compute_liveness(const Function& fn) {
  Liveness lv;
  compute_liveness(fn, this_thread_workspace(), &lv);
  return lv;
}

void immediate_dominators(const Function& fn, CompileWorkspace& ws,
                          std::vector<BlockId>* out) {
  // Cooper-Harvey-Kennedy iterative algorithm over reverse postorder.
  auto rpo_lease = ws.u32_pool.lease();
  reverse_postorder(fn, ws, &*rpo_lease);
  const auto& rpo = *rpo_lease;
  auto rpo_index = ws.u32_pool.lease();
  constexpr std::uint32_t kNoIndex = 0xFFFFFFFF;
  rpo_index->assign(fn.blocks.size(), kNoIndex);
  for (std::size_t i = 0; i < rpo.size(); ++i)
    (*rpo_index)[rpo[i]] = static_cast<std::uint32_t>(i);

  auto preds_lease = ws.u32_lists_pool.lease();
  predecessors(fn, ws, &*preds_lease);
  const auto& preds = *preds_lease;
  std::vector<BlockId>& idom = *out;
  idom.assign(fn.blocks.size(), kNoBlock);
  idom[0] = 0;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while ((*rpo_index)[a] > (*rpo_index)[b]) a = idom[a];
      while ((*rpo_index)[b] > (*rpo_index)[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : preds[b]) {
        if ((*rpo_index)[p] == kNoIndex || idom[p] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
}

std::vector<BlockId> immediate_dominators(const Function& fn) {
  std::vector<BlockId> idom;
  immediate_dominators(fn, this_thread_workspace(), &idom);
  return idom;
}

bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b) {
  if (idom[b] == kNoBlock) return false;
  while (true) {
    if (a == b) return true;
    if (b == 0) return false;
    b = idom[b];
  }
}

std::vector<std::vector<BlockId>> dominator_children(
    const std::vector<BlockId>& idom) {
  std::vector<std::vector<BlockId>> children(idom.size());
  for (BlockId b = 0; b < idom.size(); ++b) {
    if (b == 0 || idom[b] == kNoBlock) continue;
    children[idom[b]].push_back(b);
  }
  // Block ids ascend as idom runs over them, so each list is already sorted;
  // the preorder walk over these lists is deterministic.
  return children;
}

void remove_unreachable_blocks(Function& fn) {
  CompileWorkspace& ws = this_thread_workspace();
  auto reachable = ws.u8_pool.lease();
  reachable->assign(fn.blocks.size(), 0);
  auto worklist = ws.u32_pool.lease();
  worklist->push_back(0);
  (*reachable)[0] = 1;
  while (!worklist->empty()) {
    const BlockId b = worklist->back();
    worklist->pop_back();
    for (BlockId s : fn.blocks[b].successors()) {
      if (!(*reachable)[s]) {
        (*reachable)[s] = 1;
        worklist->push_back(s);
      }
    }
  }

  auto remap = ws.u32_pool.lease();
  remap->assign(fn.blocks.size(), kNoBlock);
  std::vector<BasicBlock> kept;
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    if ((*reachable)[b]) {
      (*remap)[b] = static_cast<BlockId>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    }
  }
  for (auto& bb : kept) {
    Instr& t = bb.instrs.back();
    if (t.op == Opcode::Jump || t.op == Opcode::Branch ||
        t.op == Opcode::BranchCmp) {
      t.target = (*remap)[t.target];
      if (t.op != Opcode::Jump) t.target2 = (*remap)[t.target2];
    }
  }
  fn.blocks = std::move(kept);
  fn.validate();
}

}  // namespace vc::rtl
