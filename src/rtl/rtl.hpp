// RTL: the register-transfer intermediate representation of the compiler.
//
// RTL is a CFG of basic blocks over an unbounded set of typed virtual
// registers, mirroring CompCert's RTL (paper §3.2). Program variables are
// represented in one of two styles, which is exactly the axis the paper's
// experiment varies:
//
//   * pattern/stack mode (O0, O1-noregalloc): every mini-C local/parameter
//     lives in a dedicated stack slot; each statement loads its operands and
//     stores its result (the fixed per-symbol patterns of paper §2.1).
//   * value mode (verified, O2-full): locals are virtual registers; the
//     register allocator decides placement (what CompCert does, §3.3).
//
// Comparisons that feed control flow are kept as fused BranchCmp terminators;
// materialized comparisons (Bin with a compare op) lower to mfcr/rlwinm
// sequences in the backend.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace vc::rtl {

/// Register classes match the two machine register files.
enum class RegClass { I32, F64 };

std::string to_string(RegClass c);
RegClass reg_class_of(minic::Type t);

/// A virtual register id (index into Function::vregs).
using VReg = std::uint32_t;
constexpr VReg kNoVReg = 0xFFFFFFFF;

/// A stack slot id (index into Function::slots). Slots are 8 bytes each.
using Slot = std::uint32_t;

/// A basic block id (index into Function::blocks).
using BlockId = std::uint32_t;

enum class Opcode {
  LdI,             // dst <- int immediate
  LdF,             // dst <- f64 immediate (becomes a constant-pool load)
  Mov,             // dst <- src                       (same class)
  Un,              // dst <- un_op(src)
  Bin,             // dst <- bin_op(src1, src2)
  LoadGlobal,      // dst <- global[sym][elem]         (constant element)
  StoreGlobal,     // global[sym][elem] <- src
  LoadGlobalIdx,   // dst <- global[sym][idx_reg]
  StoreGlobalIdx,  // global[sym][idx_reg] <- src
  LoadStack,       // dst <- stack[slot]
  StoreStack,      // stack[slot] <- src
  GetParam,        // dst <- incoming parameter #index
  Jump,            // goto target
  Branch,          // if (src != 0) goto target else goto target2
  BranchCmp,       // if (src1 <op> src2) goto target else goto target2
  Ret,             // return src (optional)
  Annot,           // pro-forma annotation effect (paper §3.4)
  Phi,             // dst <- phi [pred: src, ...]     (SSA form only)
};

std::string to_string(Opcode op);

/// One incoming edge of a phi: the value `src` flows into the phi's dst when
/// control enters the block from predecessor `pred`. Args are kept sorted by
/// `pred` so the textual dump is deterministic and round-trip stable.
struct PhiArg {
  BlockId pred = 0;
  VReg src = kNoVReg;
};

/// An annotation operand: a value location referenced by an `__annot`
/// pro-forma effect. It is either a virtual register or a stack slot, so that
/// annotations never force loads into the generated code (paper §3.4: the %i
/// tokens resolve to "machine register, stack slot or global symbol").
struct AnnotOperand {
  bool is_slot = false;
  VReg vreg = kNoVReg;
  Slot slot = 0;

  static AnnotOperand of_vreg(VReg v) { return {false, v, 0}; }
  static AnnotOperand of_slot(Slot s) { return {true, kNoVReg, s}; }
};

struct Instr {
  Opcode op{};
  VReg dst = kNoVReg;
  VReg src1 = kNoVReg;
  VReg src2 = kNoVReg;
  std::int32_t int_imm = 0;
  double f64_imm = 0.0;
  minic::UnOp un_op{};
  minic::BinOp bin_op{};
  std::string sym;          // global symbol name
  std::int32_t elem = 0;    // element index for LoadGlobal/StoreGlobal
  Slot slot = 0;            // LoadStack/StoreStack
  std::int32_t param_index = 0;
  BlockId target = 0;       // Jump/Branch/BranchCmp: taken successor
  BlockId target2 = 0;      // Branch/BranchCmp: fallthrough successor
  std::string annot_format;
  std::vector<AnnotOperand> annot_args;
  std::vector<PhiArg> phi_args;  // Phi only; sorted by pred block id

  [[nodiscard]] bool is_terminator() const {
    return op == Opcode::Jump || op == Opcode::Branch ||
           op == Opcode::BranchCmp || op == Opcode::Ret;
  }

  /// Virtual registers read by this instruction (including annot args).
  [[nodiscard]] std::vector<VReg> uses() const;
  /// Virtual register written, if any.
  [[nodiscard]] std::optional<VReg> def() const;

  /// True for pure value-producing instructions (candidates for CSE/DCE).
  [[nodiscard]] bool is_pure() const;
};

struct BasicBlock {
  std::vector<Instr> instrs;

  [[nodiscard]] const Instr& terminator() const;
  /// Successor block ids in (taken, fallthrough) order.
  [[nodiscard]] std::vector<BlockId> successors() const;
};

struct FuncParam {
  std::string name;
  RegClass cls{};
};

struct Function {
  std::string name;
  std::vector<RegClass> vregs;  // class of each virtual register
  std::vector<RegClass> slots;  // class of each stack slot
  std::vector<FuncParam> params;
  bool has_return = false;
  RegClass ret_class = RegClass::F64;
  std::vector<BasicBlock> blocks;  // entry is block 0

  VReg new_vreg(RegClass cls);
  Slot new_slot(RegClass cls);

  [[nodiscard]] std::size_t instruction_count() const;

  /// Structural well-formedness: operands defined, classes consistent,
  /// every block ends in exactly one terminator, targets in range.
  /// Throws InternalError on violation.
  void validate() const;
};

/// Human-readable dump (for tests and debugging).
std::string print_function(const Function& fn);

}  // namespace vc::rtl
