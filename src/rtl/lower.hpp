// AST -> RTL lowering.
//
// Two modes, corresponding to the two code-generation disciplines the paper
// compares (§2.1 vs §3.3):
//
//   PatternStack: every mini-C variable gets a dedicated stack slot; each
//     statement loads its operands and stores its result. This reproduces the
//     fixed per-symbol assembly patterns of the qualified-but-unoptimized
//     production flow (paper Listing 1), including reloading loop counters
//     and bounds on every iteration.
//
//   Value: variables are virtual registers; placement is left to the register
//     allocator (what CompCert does, paper Listing 2).
#pragma once

#include "minic/ast.hpp"
#include "rtl/rtl.hpp"

namespace vc::rtl {

enum class LowerMode { PatternStack, Value };

/// Lowers `fn` against the globals of `program`. The result is validated.
Function lower_function(const minic::Program& program,
                        const minic::Function& fn, LowerMode mode);

}  // namespace vc::rtl
