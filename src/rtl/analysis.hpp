// Dataflow analyses over RTL functions: predecessors, reverse-postorder,
// liveness, dominators, and CFG cleanup. Used by the optimizer, the register
// allocator, and the translation validators.
#pragma once

#include <vector>

#include "rtl/rtl.hpp"
#include "support/bitset.hpp"

namespace vc::rtl {

/// Predecessor lists for every block.
std::vector<std::vector<BlockId>> predecessors(const Function& fn);

/// Blocks reachable from entry, in reverse postorder.
std::vector<BlockId> reverse_postorder(const Function& fn);

/// Per-block live-in / live-out virtual register sets, as dense bitsets over
/// the vreg universe (index = vreg number, size = fn.vregs.size()).
struct Liveness {
  std::vector<DenseBitset> live_in;
  std::vector<DenseBitset> live_out;
};

/// Backward worklist fixpoint over DenseBitsets: each block's transfer is a
/// handful of word ops and a block is revisited only when a successor's
/// live-in actually grows.
Liveness compute_liveness(const Function& fn);

/// Immediate dominator of every reachable block (entry's idom is itself);
/// unreachable blocks get kNoBlock.
constexpr BlockId kNoBlock = 0xFFFFFFFF;
std::vector<BlockId> immediate_dominators(const Function& fn);

/// True if `a` dominates `b` given an idom array.
bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b);

/// Children lists of the dominator tree implied by `idom` (entry is the root;
/// unreachable blocks have no parent and no children). children[b] is sorted
/// ascending, so a preorder walk from the entry is deterministic.
std::vector<std::vector<BlockId>> dominator_children(
    const std::vector<BlockId>& idom);

/// Removes blocks unreachable from entry, remapping branch targets.
/// Applied by every compiler configuration after lowering.
void remove_unreachable_blocks(Function& fn);

}  // namespace vc::rtl
