// Dataflow analyses over RTL functions: predecessors, reverse-postorder,
// liveness, dominators, and CFG cleanup. Used by the optimizer, the register
// allocator, and the translation validators.
#pragma once

#include <set>
#include <vector>

#include "rtl/rtl.hpp"

namespace vc::rtl {

/// Predecessor lists for every block.
std::vector<std::vector<BlockId>> predecessors(const Function& fn);

/// Blocks reachable from entry, in reverse postorder.
std::vector<BlockId> reverse_postorder(const Function& fn);

/// Per-block live-in / live-out virtual register sets.
struct Liveness {
  std::vector<std::set<VReg>> live_in;
  std::vector<std::set<VReg>> live_out;
};

Liveness compute_liveness(const Function& fn);

/// Immediate dominator of every reachable block (entry's idom is itself);
/// unreachable blocks get kNoBlock.
constexpr BlockId kNoBlock = 0xFFFFFFFF;
std::vector<BlockId> immediate_dominators(const Function& fn);

/// True if `a` dominates `b` given an idom array.
bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b);

/// Removes blocks unreachable from entry, remapping branch targets.
/// Applied by every compiler configuration after lowering.
void remove_unreachable_blocks(Function& fn);

}  // namespace vc::rtl
