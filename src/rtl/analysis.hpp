// Dataflow analyses over RTL functions: predecessors, reverse-postorder,
// liveness, dominators, and CFG cleanup. Used by the optimizer, the register
// allocator, and the translation validators.
//
// Each analysis has two forms: a value-returning convenience (the original
// API) and a workspace form that writes into a caller-owned result and draws
// every internal table (gen/kill bitsets, worklists, DFS stacks) from
// CompileWorkspace scratch pools. The convenience form delegates to the
// workspace form via this_thread_workspace(), so all callers share the
// pooled internals; hot callers that also want to reuse the *result* buffers
// call the workspace form directly. Both compute identical results — the
// fixpoints are deterministic regardless of where scratch memory lives.
#pragma once

#include <vector>

#include "rtl/rtl.hpp"
#include "support/bitset.hpp"
#include "support/workspace.hpp"

namespace vc::rtl {

/// Predecessor lists for every block.
std::vector<std::vector<BlockId>> predecessors(const Function& fn);
void predecessors(const Function& fn, CompileWorkspace& ws,
                  std::vector<std::vector<BlockId>>* out);

/// Blocks reachable from entry, in reverse postorder.
std::vector<BlockId> reverse_postorder(const Function& fn);
void reverse_postorder(const Function& fn, CompileWorkspace& ws,
                       std::vector<BlockId>* out);

/// Per-block live-in / live-out virtual register sets, as dense bitsets over
/// the vreg universe (index = vreg number, size = fn.vregs.size()).
struct Liveness {
  std::vector<DenseBitset> live_in;
  std::vector<DenseBitset> live_out;
};

/// Backward worklist fixpoint over DenseBitsets: each block's transfer is a
/// handful of word ops and a block is revisited only when a successor's
/// live-in actually grows.
Liveness compute_liveness(const Function& fn);
void compute_liveness(const Function& fn, CompileWorkspace& ws, Liveness* out);

/// Immediate dominator of every reachable block (entry's idom is itself);
/// unreachable blocks get kNoBlock.
constexpr BlockId kNoBlock = 0xFFFFFFFF;
std::vector<BlockId> immediate_dominators(const Function& fn);
void immediate_dominators(const Function& fn, CompileWorkspace& ws,
                          std::vector<BlockId>* out);

/// True if `a` dominates `b` given an idom array.
bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b);

/// Children lists of the dominator tree implied by `idom` (entry is the root;
/// unreachable blocks have no parent and no children). children[b] is sorted
/// ascending, so a preorder walk from the entry is deterministic.
std::vector<std::vector<BlockId>> dominator_children(
    const std::vector<BlockId>& idom);

/// Removes blocks unreachable from entry, remapping branch targets.
/// Applied by every compiler configuration after lowering.
void remove_unreachable_blocks(Function& fn);

}  // namespace vc::rtl
