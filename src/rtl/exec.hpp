// Concrete RTL executor.
//
// Runs an RTL function on concrete values with the same arithmetic as the
// mini-C interpreter. Used by tests to localize miscompilations: if
// interpreter == RTL but RTL != machine, the bug is in the backend; if
// interpreter != RTL, it is in lowering or an optimization pass.
//
// Globals are interned: the constructor assigns each global a dense
// SymbolId and call() resolves every global-accessing instruction's name to
// its id once per call, so the execution loop indexes a dense
// vector<vector<Value>> instead of probing a map<string, ...> per executed
// load/store (the fleet's exec phase runs millions of those).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minic/interp.hpp"
#include "rtl/rtl.hpp"
#include "support/symtab.hpp"

namespace vc::rtl {

class Executor {
 public:
  /// Globals are initialised from `program` exactly like the interpreter.
  explicit Executor(const minic::Program& program);

  void reset_globals();

  minic::Value call(const Function& fn,
                    const std::vector<minic::Value>& args);

  [[nodiscard]] minic::Value read_global(const std::string& name,
                                         std::size_t index = 0) const;
  void write_global(const std::string& name, std::size_t index,
                    minic::Value v);

  /// Annotation events observed during the last call.
  [[nodiscard]] const std::vector<minic::AnnotEvent>& annotations() const {
    return annotations_;
  }

  /// RTL instructions executed during the last call.
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  [[nodiscard]] minic::Value read_cell(SymbolId sym, std::size_t index) const;
  void write_cell(SymbolId sym, std::size_t index, minic::Value v);

  const minic::Program& program_;
  SymbolTable global_syms_;                         // name -> dense id
  std::vector<std::vector<minic::Value>> globals_;  // indexed by SymbolId
  std::vector<minic::AnnotEvent> annotations_;
  std::uint64_t steps_ = 0;
  std::uint64_t fuel_ = 100'000'000;
};

}  // namespace vc::rtl
