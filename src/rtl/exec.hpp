// Concrete RTL executor.
//
// Runs an RTL function on concrete values with the same arithmetic as the
// mini-C interpreter. Used by tests to localize miscompilations: if
// interpreter == RTL but RTL != machine, the bug is in the backend; if
// interpreter != RTL, it is in lowering or an optimization pass.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/interp.hpp"
#include "rtl/rtl.hpp"

namespace vc::rtl {

class Executor {
 public:
  /// Globals are initialised from `program` exactly like the interpreter.
  explicit Executor(const minic::Program& program);

  void reset_globals();

  minic::Value call(const Function& fn,
                    const std::vector<minic::Value>& args);

  [[nodiscard]] minic::Value read_global(const std::string& name,
                                         std::size_t index = 0) const;
  void write_global(const std::string& name, std::size_t index,
                    minic::Value v);

  /// Annotation events observed during the last call.
  [[nodiscard]] const std::vector<minic::AnnotEvent>& annotations() const {
    return annotations_;
  }

  /// RTL instructions executed during the last call.
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  const minic::Program& program_;
  std::map<std::string, std::vector<minic::Value>> globals_;
  std::vector<minic::AnnotEvent> annotations_;
  std::uint64_t steps_ = 0;
  std::uint64_t fuel_ = 100'000'000;
};

}  // namespace vc::rtl
