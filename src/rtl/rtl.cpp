#include "rtl/rtl.hpp"

#include "support/strings.hpp"

namespace vc::rtl {

std::string to_string(RegClass c) { return c == RegClass::I32 ? "i" : "f"; }

RegClass reg_class_of(minic::Type t) {
  return t == minic::Type::I32 ? RegClass::I32 : RegClass::F64;
}

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::LdI: return "ldi";
    case Opcode::LdF: return "ldf";
    case Opcode::Mov: return "mov";
    case Opcode::Un: return "un";
    case Opcode::Bin: return "bin";
    case Opcode::LoadGlobal: return "ldg";
    case Opcode::StoreGlobal: return "stg";
    case Opcode::LoadGlobalIdx: return "ldgx";
    case Opcode::StoreGlobalIdx: return "stgx";
    case Opcode::LoadStack: return "lds";
    case Opcode::StoreStack: return "sts";
    case Opcode::GetParam: return "param";
    case Opcode::Jump: return "jmp";
    case Opcode::Branch: return "br";
    case Opcode::BranchCmp: return "brcmp";
    case Opcode::Ret: return "ret";
    case Opcode::Annot: return "annot";
    case Opcode::Phi: return "phi";
  }
  throw InternalError("bad rtl opcode");
}

std::vector<VReg> Instr::uses() const {
  std::vector<VReg> out;
  switch (op) {
    case Opcode::LdI:
    case Opcode::LdF:
    case Opcode::LoadGlobal:
    case Opcode::LoadStack:
    case Opcode::GetParam:
    case Opcode::Jump:
      break;
    case Opcode::Mov:
    case Opcode::Un:
    case Opcode::Branch:
      out.push_back(src1);
      break;
    case Opcode::Bin:
    case Opcode::BranchCmp:
      out.push_back(src1);
      out.push_back(src2);
      break;
    case Opcode::LoadGlobalIdx:
      out.push_back(src1);  // index
      break;
    case Opcode::StoreGlobal:
    case Opcode::StoreStack:
      out.push_back(src1);  // value
      break;
    case Opcode::StoreGlobalIdx:
      out.push_back(src1);  // value
      out.push_back(src2);  // index
      break;
    case Opcode::Ret:
      if (src1 != kNoVReg) out.push_back(src1);
      break;
    case Opcode::Annot:
      for (const AnnotOperand& a : annot_args)
        if (!a.is_slot) out.push_back(a.vreg);
      break;
    case Opcode::Phi:
      for (const PhiArg& a : phi_args) out.push_back(a.src);
      break;
  }
  return out;
}

std::optional<VReg> Instr::def() const {
  switch (op) {
    case Opcode::LdI:
    case Opcode::LdF:
    case Opcode::Mov:
    case Opcode::Un:
    case Opcode::Bin:
    case Opcode::LoadGlobal:
    case Opcode::LoadGlobalIdx:
    case Opcode::LoadStack:
    case Opcode::GetParam:
    case Opcode::Phi:
      return dst;
    default:
      return std::nullopt;
  }
}

bool Instr::is_pure() const {
  switch (op) {
    case Opcode::LdI:
    case Opcode::LdF:
    case Opcode::Mov:
    case Opcode::Un:
    case Opcode::Bin:
    case Opcode::GetParam:
      return true;
    default:
      return false;
  }
}

const Instr& BasicBlock::terminator() const {
  check(!instrs.empty() && instrs.back().is_terminator(),
        "block lacks a terminator");
  return instrs.back();
}

std::vector<BlockId> BasicBlock::successors() const {
  const Instr& t = terminator();
  switch (t.op) {
    case Opcode::Jump: return {t.target};
    case Opcode::Branch:
    case Opcode::BranchCmp: return {t.target, t.target2};
    case Opcode::Ret: return {};
    default:
      throw InternalError("bad terminator");
  }
}

VReg Function::new_vreg(RegClass cls) {
  vregs.push_back(cls);
  return static_cast<VReg>(vregs.size() - 1);
}

Slot Function::new_slot(RegClass cls) {
  slots.push_back(cls);
  return static_cast<Slot>(slots.size() - 1);
}

std::size_t Function::instruction_count() const {
  std::size_t n = 0;
  for (const auto& b : blocks) n += b.instrs.size();
  return n;
}

void Function::validate() const {
  check(!blocks.empty(), "function has no blocks");
  auto check_vreg = [&](VReg v, const char* what) {
    check(v < vregs.size(), std::string("vreg out of range in ") + what);
  };
  for (const auto& bb : blocks) {
    check(!bb.instrs.empty(), "empty basic block");
    bool seen_nonphi = false;
    for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
      const Instr& ins = bb.instrs[i];
      const bool last = i + 1 == bb.instrs.size();
      check(ins.is_terminator() == last,
            "terminator placement violation in " + name);
      if (ins.op == Opcode::Phi) {
        check(!seen_nonphi, "phi after non-phi instruction in " + name);
        check(!ins.phi_args.empty(), "phi with no incoming args in " + name);
        for (std::size_t a = 0; a < ins.phi_args.size(); ++a) {
          check(ins.phi_args[a].pred < blocks.size(),
                "phi predecessor out of range in " + name);
          if (a != 0)
            check(ins.phi_args[a - 1].pred < ins.phi_args[a].pred,
                  "phi args not sorted by predecessor in " + name);
        }
      } else {
        seen_nonphi = true;
      }
      for (VReg u : ins.uses()) check_vreg(u, "use");
      if (auto d = ins.def()) check_vreg(*d, "def");
      if (ins.op == Opcode::LoadStack || ins.op == Opcode::StoreStack)
        check(ins.slot < slots.size(), "slot out of range");
      if (ins.op == Opcode::Jump || ins.op == Opcode::Branch ||
          ins.op == Opcode::BranchCmp) {
        check(ins.target < blocks.size(), "branch target out of range");
        if (ins.op != Opcode::Jump)
          check(ins.target2 < blocks.size(), "branch target2 out of range");
      }
    }
  }
}

namespace {

std::string reg_name(const Function& fn, VReg v) {
  if (v == kNoVReg) return "_";
  return to_string(fn.vregs[v]) + std::to_string(v);
}

}  // namespace

std::string print_function(const Function& fn) {
  std::string out = "function " + fn.name + "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i != 0) out += ", ";
    out += fn.params[i].name + ":" + to_string(fn.params[i].cls);
  }
  out += ")\n";
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    out += "bb" + std::to_string(b) + ":\n";
    for (const Instr& ins : fn.blocks[b].instrs) {
      out += "  ";
      switch (ins.op) {
        case Opcode::LdI:
          out += reg_name(fn, ins.dst) + " = " + std::to_string(ins.int_imm);
          break;
        case Opcode::LdF:
          out += reg_name(fn, ins.dst) + " = " + format_double(ins.f64_imm);
          break;
        case Opcode::Mov:
          out += reg_name(fn, ins.dst) + " = " + reg_name(fn, ins.src1);
          break;
        case Opcode::Un:
          out += reg_name(fn, ins.dst) + " = " + minic::to_string(ins.un_op) +
                 " " + reg_name(fn, ins.src1);
          break;
        case Opcode::Bin:
          out += reg_name(fn, ins.dst) + " = " + reg_name(fn, ins.src1) + " " +
                 minic::to_string(ins.bin_op) + " " + reg_name(fn, ins.src2);
          break;
        case Opcode::LoadGlobal:
          out += reg_name(fn, ins.dst) + " = " + ins.sym + "[" +
                 std::to_string(ins.elem) + "]";
          break;
        case Opcode::StoreGlobal:
          out += ins.sym + "[" + std::to_string(ins.elem) +
                 "] = " + reg_name(fn, ins.src1);
          break;
        case Opcode::LoadGlobalIdx:
          out += reg_name(fn, ins.dst) + " = " + ins.sym + "[" +
                 reg_name(fn, ins.src1) + "]";
          break;
        case Opcode::StoreGlobalIdx:
          out += ins.sym + "[" + reg_name(fn, ins.src2) +
                 "] = " + reg_name(fn, ins.src1);
          break;
        case Opcode::LoadStack:
          out += reg_name(fn, ins.dst) + " = slot" + std::to_string(ins.slot);
          break;
        case Opcode::StoreStack:
          out += "slot" + std::to_string(ins.slot) + " = " +
                 reg_name(fn, ins.src1);
          break;
        case Opcode::GetParam:
          out += reg_name(fn, ins.dst) + " = param" +
                 std::to_string(ins.param_index);
          break;
        case Opcode::Jump:
          out += "jmp bb" + std::to_string(ins.target);
          break;
        case Opcode::Branch:
          out += "br " + reg_name(fn, ins.src1) + " bb" +
                 std::to_string(ins.target) + " bb" + std::to_string(ins.target2);
          break;
        case Opcode::BranchCmp:
          out += "br (" + reg_name(fn, ins.src1) + " " +
                 minic::to_string(ins.bin_op) + " " + reg_name(fn, ins.src2) +
                 ") bb" + std::to_string(ins.target) + " bb" +
                 std::to_string(ins.target2);
          break;
        case Opcode::Ret:
          out += ins.src1 == kNoVReg ? "ret" : "ret " + reg_name(fn, ins.src1);
          break;
        case Opcode::Annot:
          out += "annot \"" + ins.annot_format + "\"";
          for (const AnnotOperand& a : ins.annot_args)
            out += a.is_slot ? " slot" + std::to_string(a.slot)
                             : " " + reg_name(fn, a.vreg);
          break;
        case Opcode::Phi:
          out += reg_name(fn, ins.dst) + " = phi [";
          for (std::size_t a = 0; a < ins.phi_args.size(); ++a) {
            if (a != 0) out += ", ";
            out += "bb" + std::to_string(ins.phi_args[a].pred) + ": " +
                   reg_name(fn, ins.phi_args[a].src);
          }
          out += "]";
          break;
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace vc::rtl
