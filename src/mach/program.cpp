#include "mach/program.hpp"

#include <bit>
#include <cstring>

#include "support/strings.hpp"

namespace vc::mach {

std::string MLoc::to_string() const {
  switch (kind) {
    case Kind::Gpr: return "r" + std::to_string(index);
    case Kind::Fpr: return "f" + std::to_string(index);
    case Kind::StackSlot:
      return "@sp" + std::string(offset >= 0 ? "+" : "") +
             std::to_string(offset);
  }
  throw InternalError("bad MLoc kind");
}

DataLayout::DataLayout(const minic::Program& program)
    : decls_(program.globals) {
  std::uint32_t off = 0;
  for (const auto& g : decls_) {
    const std::uint32_t esz = g.type == minic::Type::F64 ? 8 : 4;
    // Align to the element size.
    off = (off + esz - 1) / esz * esz;
    globals_[g.name] =
        GlobalInfo{off, esz, static_cast<std::uint32_t>(g.count)};
    off += esz * static_cast<std::uint32_t>(g.count);
  }
  globals_size_ = (off + 7) / 8 * 8;  // pool is 8-byte aligned
}

std::uint32_t DataLayout::offset_of(const std::string& sym,
                                    std::int32_t elem) const {
  auto it = globals_.find(sym);
  check(it != globals_.end(), "undefined global symbol '" + sym + "'");
  check(elem >= 0 && static_cast<std::uint32_t>(elem) < it->second.count,
        "global element out of range for '" + sym + "'");
  return it->second.offset +
         it->second.elem_size * static_cast<std::uint32_t>(elem);
}

std::uint32_t DataLayout::elem_size(const std::string& sym) const {
  auto it = globals_.find(sym);
  check(it != globals_.end(), "undefined global symbol '" + sym + "'");
  return it->second.elem_size;
}

std::uint32_t DataLayout::add_const(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  auto it = pool_index_.find(bits);
  if (it != pool_index_.end()) return it->second * 8;
  const auto index = static_cast<std::uint32_t>(pool_.size());
  pool_.push_back(value);
  pool_index_[bits] = index;
  return index * 8;
}

namespace {

void put_u32(std::vector<std::uint8_t>& bytes, std::uint32_t off,
             std::uint32_t v) {
  bytes[off + 0] = static_cast<std::uint8_t>(v >> 24);
  bytes[off + 1] = static_cast<std::uint8_t>(v >> 16);
  bytes[off + 2] = static_cast<std::uint8_t>(v >> 8);
  bytes[off + 3] = static_cast<std::uint8_t>(v);
}

void put_f64(std::vector<std::uint8_t>& bytes, std::uint32_t off, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u32(bytes, off, static_cast<std::uint32_t>(bits >> 32));
  put_u32(bytes, off + 4, static_cast<std::uint32_t>(bits));
}

}  // namespace

std::map<std::string, std::uint32_t> DataLayout::global_offsets() const {
  std::map<std::string, std::uint32_t> out;
  for (const auto& [name, info] : globals_) out[name] = info.offset;
  return out;
}

std::vector<std::uint8_t> DataLayout::initial_bytes() const {
  std::vector<std::uint8_t> bytes(total_size(), 0);
  for (const auto& g : decls_) {
    const GlobalInfo& info = globals_.at(g.name);
    for (std::size_t i = 0; i < g.init.size(); ++i) {
      const std::uint32_t off =
          info.offset + info.elem_size * static_cast<std::uint32_t>(i);
      if (g.type == minic::Type::F64) {
        put_f64(bytes, off, g.init[i]);
      } else {
        put_u32(bytes, off,
                static_cast<std::uint32_t>(static_cast<std::int32_t>(g.init[i])));
      }
    }
  }
  for (std::size_t i = 0; i < pool_.size(); ++i)
    put_f64(bytes, pool_base() + static_cast<std::uint32_t>(i) * 8, pool_[i]);
  return bytes;
}

std::uint32_t Image::code_size_of(const std::string& fn) const {
  return fn_end.at(fn) - fn_entry.at(fn);
}

MInstr Image::fetch(std::uint32_t addr) const {
  check(addr >= kCodeBase && addr < kCodeBase + code_size_bytes() &&
            addr % 4 == 0,
        "instruction fetch outside code segment: " + hex32(addr));
  return decode(words[(addr - kCodeBase) / 4]);
}

std::string Image::disassemble() const {
  std::string out;
  // Invert the entry map for labels.
  std::map<std::uint32_t, std::string> labels;
  for (const auto& [name, addr] : fn_entry) labels[addr] = name;
  std::map<std::uint32_t, const AnnotEntry*> annots;
  for (const auto& a : annotations) annots[a.addr] = &a;

  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t addr = kCodeBase + static_cast<std::uint32_t>(i) * 4;
    auto lit = labels.find(addr);
    if (lit != labels.end()) out += lit->second + ":\n";
    auto ait = annots.find(addr);
    if (ait != annots.end()) {
      out += "            # annotation: " + ait->second->format;
      for (const auto& loc : ait->second->operands)
        out += " " + loc.to_string();
      out += "\n";
    }
    out += "  " + hex32(addr) + ":  " + format_instr(decode(words[i]), addr) +
           "\n";
  }
  return out;
}

Image link(const std::vector<MachineFunction>& fns, const DataLayout& layout) {
  check(layout.total_size() <= 32767,
        "data segment exceeds 16-bit displacement range");

  Image image;
  image.data_init = layout.initial_bytes();

  // Assign function base addresses.
  std::uint32_t addr = Image::kCodeBase;
  for (const auto& fn : fns) {
    image.fn_entry[fn.name] = addr;
    addr += static_cast<std::uint32_t>(fn.code.size()) * 4;
    image.fn_end[fn.name] = addr;
  }

  for (const auto& fn : fns) {
    const std::uint32_t base = image.fn_entry.at(fn.name);
    std::vector<MInstr> code = fn.code;
    for (const Reloc& r : fn.relocs) {
      check(r.instr_index < code.size(), "reloc index out of range");
      std::uint32_t off;
      if (r.sym == "$cpool")
        off = layout.pool_base() + static_cast<std::uint32_t>(r.addend);
      else
        off = layout.offset_of(r.sym, 0) + static_cast<std::uint32_t>(r.addend);
      switch (r.kind) {
        case RelocKind::DataDisp:
          check(off <= 32767, "data displacement overflow");
          code[r.instr_index].imm = static_cast<std::int32_t>(off);
          break;
        case RelocKind::AbsHa: {
          const std::uint32_t addr = Image::kDataBase + off;
          code[r.instr_index].imm = static_cast<std::int32_t>(
              static_cast<std::int16_t>((addr + 0x8000) >> 16));
          break;
        }
        case RelocKind::AbsLo: {
          const std::uint32_t addr = Image::kDataBase + off;
          code[r.instr_index].imm = static_cast<std::int32_t>(
              static_cast<std::int16_t>(addr & 0xFFFF));
          break;
        }
        case RelocKind::AbsHi20: {
          const std::uint32_t addr = Image::kDataBase + off;
          code[r.instr_index].imm =
              static_cast<std::int32_t>((addr + 0x800) >> 12);
          break;
        }
        case RelocKind::AbsLo12: {
          const std::uint32_t addr = Image::kDataBase + off;
          // Sign-extended low 12 bits; the %hi part above compensates.
          std::int32_t lo = static_cast<std::int32_t>(addr & 0xFFF);
          if (lo >= 0x800) lo -= 0x1000;
          code[r.instr_index].imm = lo;
          break;
        }
      }
    }
    for (const MInstr& ins : code) image.words.push_back(encode(ins));
    for (const AnnotEntry& a : fn.annots) {
      AnnotEntry linked = a;
      linked.addr = base + a.addr * 4;  // instruction index -> address
      image.annotations.push_back(std::move(linked));
    }
  }

  // Global symbol addresses (for the harness and tests).
  for (const auto& [name, off] : layout.global_offsets())
    image.global_addr[name] = Image::kDataBase + off;
  return image;
}

}  // namespace vc::mach
