#include "mach/target.hpp"

#include <set>

#include "support/diagnostics.hpp"

namespace vc::mach {
namespace {

bool pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

[[noreturn]] void bad(const std::string& target, const std::string& field,
                      const std::string& why) {
  throw InternalError("invalid target descriptor '" + target +
                      "': field '" + field + "' " + why);
}

void check_gpr(const TargetDesc& d, const std::string& field, int r) {
  if (r < 0 || r >= 32) bad(d.name, field, "is not a GPR index (0..31)");
}

void check_fpr(const TargetDesc& d, const std::string& field, int r) {
  if (r < 0 || r >= 32) bad(d.name, field, "is not an FPR index (0..31)");
}

}  // namespace

void validate_target(const TargetDesc& d) {
  if (d.name.empty()) bad("?", "name", "is empty");
  if (d.lower == nullptr) bad(d.name, "lower", "is null");

  if (d.issue_width < 1 || d.issue_width > 4)
    bad(d.name, "issue_width", "must be 1..4");
  if (d.max_resources_per_instr < 1 ||
      d.max_resources_per_instr > IssueModel::kMaxResourcesPerInstr)
    bad(d.name, "max_resources_per_instr",
        "must be 1.." + std::to_string(IssueModel::kMaxResourcesPerInstr));

  check_gpr(d, "stack_ptr", d.stack_ptr);
  check_gpr(d, "data_base", d.data_base);
  check_gpr(d, "scratch_gpr0", d.scratch_gpr0);
  check_gpr(d, "scratch_gpr1", d.scratch_gpr1);
  check_fpr(d, "scratch_fpr0", d.scratch_fpr0);
  check_fpr(d, "scratch_fpr1", d.scratch_fpr1);
  check_gpr(d, "ret_gpr", d.ret_gpr);
  check_fpr(d, "ret_fpr", d.ret_fpr);
  if (d.zero_gpr != -1) check_gpr(d, "zero_gpr", d.zero_gpr);
  if (d.scratch_gpr0 == d.scratch_gpr1)
    bad(d.name, "scratch_gpr1", "duplicates scratch_gpr0");
  if (d.scratch_fpr0 == d.scratch_fpr1)
    bad(d.name, "scratch_fpr1", "duplicates scratch_fpr0");

  if (d.alloc_gprs.empty()) bad(d.name, "alloc_gprs", "is empty");
  if (d.alloc_fprs.empty()) bad(d.name, "alloc_fprs", "is empty");
  const std::set<int> reserved_gprs = {d.stack_ptr, d.data_base,
                                       d.scratch_gpr0, d.scratch_gpr1,
                                       d.zero_gpr};
  std::set<int> seen;
  for (int r : d.alloc_gprs) {
    check_gpr(d, "alloc_gprs", r);
    if (!seen.insert(r).second) bad(d.name, "alloc_gprs", "has duplicates");
    if (reserved_gprs.count(r))
      bad(d.name, "alloc_gprs", "contains a reserved register");
  }
  seen.clear();
  for (int r : d.alloc_fprs) {
    check_fpr(d, "alloc_fprs", r);
    if (!seen.insert(r).second) bad(d.name, "alloc_fprs", "has duplicates");
    if (r == d.scratch_fpr0 || r == d.scratch_fpr1)
      bad(d.name, "alloc_fprs", "contains a reserved register");
  }

  if (d.n_arg_gprs < 1 || d.first_arg_gpr < 0 ||
      d.first_arg_gpr + d.n_arg_gprs > 32)
    bad(d.name, "n_arg_gprs", "argument GPR window out of range");
  if (d.n_arg_fprs < 1 || d.first_arg_fpr < 0 ||
      d.first_arg_fpr + d.n_arg_fprs > 32)
    bad(d.name, "n_arg_fprs", "argument FPR window out of range");

  if (!(d.imm_min < 0 && d.imm_max > 0))
    bad(d.name, "imm_min", "immediate range must straddle zero");

  for (const CacheConfig* c : {&d.machine.icache, &d.machine.dcache}) {
    const char* which =
        c == &d.machine.icache ? "machine.icache" : "machine.dcache";
    if (!pow2(c->sets)) bad(d.name, which, "sets must be a power of two");
    if (!pow2(c->ways)) bad(d.name, which, "ways must be a power of two");
    if (!pow2(c->line_bytes) || c->line_bytes < 8)
      bad(d.name, which, "line_bytes must be a power of two >= 8");
  }

  if (d.peephole.fold_cmp_imm && !d.has_cr)
    bad(d.name, "peephole.fold_cmp_imm", "requires a CR file");

  // Resource-list capacity: every legal op, with worst-case operands, must
  // fit the declared per-target cap (the counts depend only on the opcode).
  int reads[IssueModel::kMaxResourcesPerInstr];
  int writes[IssueModel::kMaxResourcesPerInstr];
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const MOp op = static_cast<MOp>(i);
    if (!d.op(op).legal) continue;
    const bool needs_cr = op == MOp::Cmpw || op == MOp::Cmpwi ||
                          op == MOp::Fcmpu || op == MOp::Cror ||
                          op == MOp::Mfcr || op == MOp::Bc;
    if (needs_cr && !d.has_cr)
      bad(d.name, "ops[" + mnemonic(op) + "].legal", "requires a CR file");
    MInstr ins;
    ins.op = op;
    int n_reads = 0;
    int n_writes = 0;
    IssueModel::resources(ins, reads, &n_reads, writes, &n_writes);
    if (n_reads > d.max_resources_per_instr ||
        n_writes > d.max_resources_per_instr)
      bad(d.name, "max_resources_per_instr",
          "is exceeded by op '" + mnemonic(op) + "'");
    if (d.op(op).latency == 0)
      bad(d.name, "ops[" + mnemonic(op) + "].latency", "must be nonzero");
  }
}

}  // namespace vc::mach
