// Machine functions, relocations, annotation tables, and the linker that
// produces an executable image for the simulator and the WCET analyzer.
//
// Memory layout (fixed, like the embedded target's linker script):
//   code    at kCodeBase,  contiguous, one function after another;
//   data    at kDataBase,  all globals then the f64 constant pool;
//   stack   grows down from kStackTop (the harness seeds r1);
//   LR      is seeded with kStopAddr; `blr` from the outermost frame stops
//           the simulator.
// r2 holds kDataBase for the whole run (TOC-style addressing), so every
// global/constant access is a single d-form load/store with a 16-bit
// displacement.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.hpp"
#include "mach/isa.hpp"

namespace vc::mach {

/// Final location of an annotation operand (paper §3.4: "machine register,
/// stack slot or global symbol").
struct MLoc {
  enum class Kind { Gpr, Fpr, StackSlot };
  Kind kind = Kind::Gpr;
  int index = 0;            // register number
  std::int32_t offset = 0;  // StackSlot: byte offset from the *entry* r1
  bool is_f64 = false;      // StackSlot element type

  [[nodiscard]] std::string to_string() const;
};

/// One entry of the auto-generated annotation file consumed by the WCET
/// analyzer. `addr` is the address of the instruction that follows the
/// annotation point (annotations emit no code).
struct AnnotEntry {
  std::uint32_t addr = 0;
  std::string format;
  std::vector<MLoc> operands;
};

/// A fixup against the final address of `sym` plus `addend` bytes
/// (sym == "$cpool" refers to the constant pool):
///   DataDisp — imm := data-segment offset (small-data base addressing);
///   AbsHa    — imm := high half of the absolute address, adjusted so that a
///              following sign-extended low half reconstructs it (@ha);
///   AbsLo    — imm := signed low half of the absolute address (@l);
///   AbsHi20  — imm := upper 20 bits, adjusted for a sign-extended 12-bit
///              low part (lui %hi);
///   AbsLo12  — imm := signed low 12 bits of the absolute address (%lo).
enum class RelocKind { DataDisp, AbsHa, AbsLo, AbsHi20, AbsLo12 };

struct Reloc {
  std::size_t instr_index = 0;
  std::string sym;
  std::int32_t addend = 0;
  RelocKind kind = RelocKind::DataDisp;
};

struct MachineFunction {
  std::string name;
  std::vector<MInstr> code;  // branch displacements already resolved (words)
  std::vector<Reloc> relocs;
  std::vector<AnnotEntry> annots;  // addr holds an instruction *index* here
  std::uint32_t frame_bytes = 0;
};

/// Data segment layout: globals first (in declaration order), then the f64
/// constant pool. Built once per program; codegen appends pool constants.
class DataLayout {
 public:
  explicit DataLayout(const minic::Program& program);

  /// Byte offset (within the data segment) of element `elem` of `sym`.
  [[nodiscard]] std::uint32_t offset_of(const std::string& sym,
                                        std::int32_t elem) const;
  /// Element size in bytes of `sym` (4 for i32, 8 for f64).
  [[nodiscard]] std::uint32_t elem_size(const std::string& sym) const;

  /// Registers an f64 constant (deduplicated); returns its pool byte offset
  /// relative to the pool base (use sym "$cpool" in relocations).
  std::uint32_t add_const(double value);

  [[nodiscard]] std::uint32_t pool_base() const { return globals_size_; }
  [[nodiscard]] std::uint32_t total_size() const {
    return globals_size_ + static_cast<std::uint32_t>(pool_.size()) * 8;
  }

  /// Initial contents of the data segment (big-endian, like the target).
  [[nodiscard]] std::vector<std::uint8_t> initial_bytes() const;

  /// Name -> data-segment byte offset for every global.
  [[nodiscard]] std::map<std::string, std::uint32_t> global_offsets() const;

 private:
  struct GlobalInfo {
    std::uint32_t offset = 0;
    std::uint32_t elem_size = 0;
    std::uint32_t count = 0;
  };
  std::vector<minic::Global> decls_;  // copied: layouts outlive programs
  std::map<std::string, GlobalInfo> globals_;
  std::uint32_t globals_size_ = 0;
  std::vector<double> pool_;
  std::map<std::uint64_t, std::uint32_t> pool_index_;
};

struct Image {
  static constexpr std::uint32_t kCodeBase = 0x00001000;
  static constexpr std::uint32_t kDataBase = 0x00100000;
  static constexpr std::uint32_t kStackTop = 0x00200000;
  static constexpr std::uint32_t kStopAddr = 0xDEAD0000;

  /// Name of the target the image was compiled for (self-describing: the
  /// simulator and WCET analyzer resolve their descriptor from it). Empty
  /// means the registry's default target (pre-tag images).
  std::string target;

  std::vector<std::uint32_t> words;       // encoded code at kCodeBase
  std::vector<std::uint8_t> data_init;    // initial data segment
  std::map<std::string, std::uint32_t> fn_entry;   // function entry addresses
  std::map<std::string, std::uint32_t> fn_end;     // one past last instr
  std::map<std::string, std::uint32_t> global_addr;
  std::vector<AnnotEntry> annotations;    // absolute addresses

  [[nodiscard]] std::uint32_t code_size_bytes() const {
    return static_cast<std::uint32_t>(words.size()) * 4;
  }
  [[nodiscard]] std::uint32_t code_size_of(const std::string& fn) const;

  /// Decodes the word at `addr` (must be within the code segment).
  [[nodiscard]] MInstr fetch(std::uint32_t addr) const;

  /// Full disassembly listing with annotations interleaved.
  [[nodiscard]] std::string disassemble() const;
};

/// Links machine functions against a data layout into an executable image.
/// Throws InternalError if the data segment exceeds the 16-bit displacement
/// range or a symbol is undefined.
Image link(const std::vector<MachineFunction>& fns, const DataLayout& layout);

}  // namespace vc::mach
