// O2-full list scheduler: reorders instructions within regions free of
// branches, labels, relocated prologue boundaries and annotation anchors, to
// hide result latencies under the dual-issue pipeline. Dependences:
//   - register/CR RAW, WAR, WAW (via IssueModel::resources);
//   - all memory operations stay ordered except load-load pairs.
#include <algorithm>
#include <vector>

#include "mach/codegen.hpp"
#include "mach/target.hpp"
#include "mach/timing.hpp"

namespace vc::mach {
namespace {

struct Node {
  std::size_t index;              // position in the original region
  std::vector<std::size_t> succs; // dependence successors (region-relative)
  int n_preds = 0;
  std::uint32_t priority = 0;     // critical-path length to a sink
};

int schedule_region(std::vector<AsmOp>& ops, std::size_t begin,
                    std::size_t end, const TargetDesc& desc) {
  const std::size_t n = end - begin;
  if (n < 2) return 0;

  std::vector<Node> nodes(n);
  int reads[16];
  int writes[16];
  int n_reads = 0;
  int n_writes = 0;

  // Dependence edges by pairwise comparison (regions are short).
  std::vector<std::vector<int>> rd(n);
  std::vector<std::vector<int>> wr(n);
  std::vector<bool> is_mem(n);
  std::vector<bool> is_load(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].index = i;
    const MInstr& m = ops[begin + i].ins;
    IssueModel::resources(m, reads, &n_reads, writes, &n_writes);
    rd[i].assign(reads, reads + n_reads);
    wr[i].assign(writes, writes + n_writes);
    is_mem[i] = is_memory_op(m.op);
    is_load[i] = m.op == MOp::Lwz || m.op == MOp::Lwzx || m.op == MOp::Lfd ||
                 m.op == MOp::Lfdx;
  }
  auto intersects = [](const std::vector<int>& a, const std::vector<int>& b) {
    for (int x : a)
      for (int y : b)
        if (x == y) return true;
    return false;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool raw = intersects(wr[i], rd[j]);
      const bool war = intersects(rd[i], wr[j]);
      const bool waw = intersects(wr[i], wr[j]);
      const bool mem = is_mem[i] && is_mem[j] && !(is_load[i] && is_load[j]);
      if (raw || war || waw || mem) {
        nodes[i].succs.push_back(j);
        ++nodes[j].n_preds;
      }
    }
  }

  // Critical-path priorities (longest latency path to any sink).
  for (std::size_t i = n; i-- > 0;) {
    std::uint32_t best = 0;
    for (std::size_t s : nodes[i].succs)
      best = std::max(best, nodes[s].priority);
    nodes[i].priority = best + desc.latency(ops[begin + i].ins.op);
  }

  // Greedy topological order by priority (original index breaks ties, which
  // also makes the schedule deterministic).
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<int> preds_left(n);
  for (std::size_t i = 0; i < n; ++i) preds_left[i] = nodes[i].n_preds;
  std::vector<bool> placed(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i] || preds_left[i] != 0) continue;
      if (pick == n || nodes[i].priority > nodes[pick].priority) pick = i;
    }
    check(pick != n, "scheduler dependence cycle");
    placed[pick] = true;
    order.push_back(pick);
    for (std::size_t s : nodes[pick].succs) --preds_left[s];
  }

  int moved = 0;
  for (std::size_t k = 0; k < n; ++k)
    if (order[k] != k) ++moved;

  std::vector<AsmOp> scheduled;
  scheduled.reserve(n);
  for (std::size_t i : order) scheduled.push_back(ops[begin + i]);
  std::copy(scheduled.begin(), scheduled.end(), ops.begin() + begin);
  return moved;
}

}  // namespace

int schedule(AsmFunction& fn, const TargetDesc& desc) {
  std::vector<bool> boundary(fn.ops.size() + 1, false);
  boundary[0] = true;
  boundary[fn.ops.size()] = true;
  for (const auto& [label, pos] : fn.labels) boundary[pos] = true;
  for (const auto& a : fn.annots) boundary[a.addr] = true;
  for (std::size_t i = 0; i < fn.ops.size(); ++i) {
    if (is_branch(fn.ops[i].ins.op) || fn.ops[i].target_label >= 0) {
      boundary[i] = true;      // branch stays put
      boundary[i + 1] = true;  // and ends its region
    }
    // Keep compares glued to their conditional branches: a cmp directly
    // before a bc must not have other CR writers scheduled between them —
    // the CR dependence edges already guarantee that, so no extra boundary.
  }

  int moved = 0;
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= fn.ops.size(); ++i) {
    if (boundary[i]) {
      moved += schedule_region(fn.ops, begin, i, desc);
      begin = i;
    }
  }
  return moved;
}

}  // namespace vc::mach
