#include "mach/codegen.hpp"

#include <algorithm>

namespace vc::mach {

std::size_t AsmFunction::label_pos(int label) const {
  for (const auto& [l, pos] : labels)
    if (l == label) return pos;
  throw InternalError("unknown label");
}

AsmFunction emit_function(const rtl::Function& fn,
                          const regalloc::Allocation& alloc,
                          DataLayout& layout, const TargetDesc& desc,
                          const EmitOptions& options) {
  check(desc.lower != nullptr, "target descriptor has no lowering hook");
  return desc.lower(fn, alloc, layout, desc, options);
}

MachineFunction finalize(const AsmFunction& asm_fn) {
  MachineFunction out;
  out.name = asm_fn.name;
  out.frame_bytes = asm_fn.frame_bytes;
  out.code.reserve(asm_fn.ops.size());
  for (std::size_t i = 0; i < asm_fn.ops.size(); ++i) {
    const AsmOp& op = asm_fn.ops[i];
    MInstr ins = op.ins;
    if (op.target_label >= 0) {
      const std::size_t target = asm_fn.label_pos(op.target_label);
      ins.disp = static_cast<std::int32_t>(target) -
                 static_cast<std::int32_t>(i);
    }
    if (!op.reloc_sym.empty())
      out.relocs.push_back(
          Reloc{i, op.reloc_sym, op.reloc_addend, op.reloc_kind});
    out.code.push_back(ins);
  }
  for (const AnnotEntry& a : asm_fn.annots) {
    AnnotEntry e = a;
    // Clamp annotations that fall at the very end of the function.
    if (e.addr >= out.code.size() && !out.code.empty())
      e.addr = static_cast<std::uint32_t>(out.code.size() - 1);
    out.annots.push_back(std::move(e));
  }
  return out;
}

int remove_self_moves(AsmFunction& fn) {
  std::vector<AsmOp> kept;
  std::vector<std::size_t> new_index(fn.ops.size() + 1, 0);
  int removed = 0;
  for (std::size_t i = 0; i < fn.ops.size(); ++i) {
    new_index[i] = kept.size();
    const MInstr& m = fn.ops[i].ins;
    const bool self_move = (m.op == MOp::Mr || m.op == MOp::Fmr) &&
                           m.rd == m.ra && fn.ops[i].target_label < 0;
    if (self_move) {
      ++removed;
      continue;
    }
    kept.push_back(fn.ops[i]);
  }
  new_index[fn.ops.size()] = kept.size();
  if (removed == 0) return 0;
  for (auto& [label, pos] : fn.labels) pos = new_index[pos];
  for (auto& a : fn.annots) a.addr = static_cast<std::uint32_t>(new_index[a.addr]);
  fn.ops = std::move(kept);
  return removed;
}

}  // namespace vc::mach
