// Timing model of the target microarchitecture, shared between the
// cycle-level simulator (src/machine) and the static WCET analyzer
// (src/wcet), so that both sides agree on the issue rules by construction.
//
// The model is an in-order pipeline parameterized by the target descriptor:
//   - up to `issue_width` instructions issue per cycle, in program order;
//   - at most one LSU (memory), one FPU, one BPU (branch/CR) instruction per
//     cycle; two IU instructions may pair only if the descriptor allows
//     pairing and the second is simple (single-cycle);
//   - results become available `latency` cycles after issue; consumers stall;
//   - all units are pipelined except the dividers (divw, fdiv block their
//     unit until complete);
//   - every control-transfer instruction (b, bc, blr) completes all in-flight
//     instructions before the next instruction issues, and a *taken* branch
//     additionally pays a fixed refill penalty.
//
// The last rule is the documented substitution for the real 755's more
// aggressive front end: it implements the "time-predictable execution mode"
// of Rochange & Sainrat (discussed in the PPES'11 proceedings that contain
// our paper), making basic-block execution times composable. That is what
// lets the WCET analyzer compute per-block costs that are safe regardless of
// pipeline history, at some cost in throughput for every configuration alike.
#pragma once

#include <array>
#include <cstdint>

#include "mach/isa.hpp"

namespace vc::mach {

struct TargetDesc;

/// L1 cache geometry (the MPC755 L1: 32 KiB, 8-way, 32-byte lines). The
/// replacement policy is LRU (documented substitution for the 755's PLRU).
struct CacheConfig {
  std::uint32_t sets = 128;
  std::uint32_t ways = 8;
  std::uint32_t line_bytes = 32;

  [[nodiscard]] std::uint32_t set_of(std::uint32_t addr) const {
    return (addr / line_bytes) % sets;
  }
  [[nodiscard]] std::uint32_t tag_of(std::uint32_t addr) const {
    return addr / line_bytes / sets;
  }
  [[nodiscard]] std::uint32_t line_addr(std::uint32_t addr) const {
    return addr / line_bytes * line_bytes;
  }
};

struct MachineConfig {
  CacheConfig icache;
  CacheConfig dcache;
  std::uint32_t miss_penalty = 30;         // cycles per line fill from memory
  // Front-end refill after a taken branch. Calibrated at the high end of the
  // 755's redirect cost: control transfers cost the same in every compiler
  // configuration (the CFG is identical), so this models the large
  // configuration-independent share of real WCETs (dispatch, redirects,
  // analysis pessimism at control joins).
  std::uint32_t taken_branch_penalty = 6;
};

enum class Unit : std::uint8_t { IU, LSU, FPU, BPU };

/// In-order issue bookkeeping over the descriptor's op table. Feed
/// instructions in program order via `issue`; query `current_cycle` at any
/// time. The same code runs in the simulator (with dynamically observed
/// cache outcomes) and in the WCET block timer (with statically classified
/// worst-case outcomes).
class IssueModel {
 public:
  /// Registers: 0..31 GPR, 32..63 FPR, 64..71 CR fields, 72 whole-CR.
  static constexpr int kCrBase = 64;
  static constexpr int kWholeCr = 72;
  static constexpr int kNumResources = 73;
  /// Upper bound on how many entries `resources` writes into either list.
  /// The current maximum is Mfcr (8 CR-field reads + 1 GPR write); callers
  /// size their stack buffers with this constant and `resources` asserts it.
  static constexpr int kMaxResourcesPerInstr = 9;

  explicit IssueModel(const TargetDesc& desc) : desc_(&desc) {}

  void reset();

  /// Accounts one instruction. `reads`/`writes` list resource indices;
  /// `extra_mem_cycles` extends the latency of a memory op by a cache-miss
  /// penalty; `fetch_stall` delays issue by an instruction-fetch stall.
  /// Returns the cycle at which the instruction issued.
  std::uint64_t issue(const MInstr& ins, const int* reads, int n_reads,
                      const int* writes, int n_writes,
                      std::uint32_t extra_mem_cycles,
                      std::uint32_t fetch_stall);

  /// Completes all in-flight work (executed after any branch instruction).
  void drain();

  /// Adds dead cycles (taken-branch refill).
  void add_stall(std::uint32_t cycles);

  [[nodiscard]] std::uint64_t current_cycle() const { return cycle_; }

  /// Resource read/write sets of an instruction, shared by both clients.
  /// Fills `reads`/`writes` (size >= kMaxResourcesPerInstr each) and returns
  /// the counts; overflow of either list is a checked internal error.
  static void resources(const MInstr& ins, int* reads, int* n_reads,
                        int* writes, int* n_writes);

 private:
  const TargetDesc* desc_;
  std::uint64_t cycle_ = 0;
  std::array<std::uint64_t, kNumResources> ready_{};
  // Issue-slot state for the cycle `slot_cycle_`.
  std::uint64_t slot_cycle_ = ~0ull;
  int slots_used_ = 0;
  bool unit_used_[4] = {false, false, false, false};
  bool second_iu_used_ = false;
  std::uint64_t unit_busy_until_[4] = {0, 0, 0, 0};  // divider blocking
};

}  // namespace vc::mach
