// The target descriptor: every machine fact the shared compiler, simulator,
// validator, and WCET layers need, packed into one value. The layers in
// src/mach, src/regalloc, src/validate, src/machine and src/wcet are
// target-neutral — they switch over the universal MOp enum and read register
// roles, op legality/latency tables, issue rules, cache geometry and
// peephole permissions from a TargetDesc. The concrete descriptors (and the
// per-target RTL lowering they point to) live in src/targets/<name>; the
// registry that maps `--target` names to descriptors is linked from there,
// so this layer never names a target.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mach/isa.hpp"
#include "mach/timing.hpp"

namespace vc::rtl {
struct Function;
}
namespace vc::regalloc {
struct Allocation;
}

namespace vc::mach {

struct AsmFunction;
class DataLayout;
struct EmitOptions;
struct TargetDesc;

/// Per-target RTL lowering entry point (defined in src/targets/<name>).
using LowerFn = AsmFunction (*)(const rtl::Function& fn,
                                const regalloc::Allocation& alloc,
                                DataLayout& layout, const TargetDesc& desc,
                                const EmitOptions& options);

/// Static facts about one universal op on a given target.
struct OpInfo {
  bool legal = false;        // may this target's code contain the op?
  Unit unit = Unit::IU;      // execution unit
  std::uint8_t latency = 1;  // result latency in cycles (memory: L1 hit)
  bool complex = false;      // cannot pair as the second op of its unit
  bool blocking = false;     // occupies its unit until the result is ready
};

/// Which machine-level peepholes the O2-full configuration may apply.
struct PeepholeRules {
  bool fuse_multiply_add = false;  // fmul+fadd/fsub -> fmadd/fmsub
  bool fold_cmp_imm = false;       // li+cmpw -> cmpwi (needs a CR file)
  bool fold_add_imm = false;       // li+add -> addi (within the imm range)
};

struct TargetDesc {
  std::string name;

  // --- Register roles (universal resource indices: GPR r, FPR 32+r) -------
  int zero_gpr = -1;  // hardwired-zero GPR, or -1 if the target has none
  int stack_ptr = 0;
  int data_base = 0;  // small-data base register
  int scratch_gpr0 = 0, scratch_gpr1 = 0;  // emission scratch, never allocated
  int scratch_fpr0 = 0, scratch_fpr1 = 0;
  std::vector<int> alloc_gprs;  // physical GPR per allocator color
  std::vector<int> alloc_fprs;  // physical FPR per allocator color
  int first_arg_gpr = 0;
  int n_arg_gprs = 0;
  int first_arg_fpr = 0;
  int n_arg_fprs = 0;
  int ret_gpr = 0;
  int ret_fpr = 0;
  bool has_cr = false;  // condition-register file (cmpw/bc route) present?

  // --- Op table and issue rules -------------------------------------------
  std::array<OpInfo, kNumOps> ops{};
  int issue_width = 1;
  bool iu_pairing = false;  // may a second *simple* IU op share the cycle?
  /// Declared cap on resource-list lengths for this target's legal ops.
  /// Validated at startup: every legal op must fit, and the cap must fit the
  /// compile-time buffer bound IssueModel::kMaxResourcesPerInstr.
  int max_resources_per_instr = 0;

  /// Immediate range of the short-immediate forms (li/addi and the d-form
  /// displacement). Codegen splits larger constants; the add-fold peephole
  /// refuses immediates outside this range.
  std::int32_t imm_min = 0;
  std::int32_t imm_max = 0;

  // --- Memory hierarchy and branch timing ---------------------------------
  MachineConfig machine;

  PeepholeRules peephole;

  LowerFn lower = nullptr;

  [[nodiscard]] const OpInfo& op(MOp o) const {
    return ops[static_cast<std::size_t>(o)];
  }
  [[nodiscard]] Unit unit(MOp o) const { return op(o).unit; }
  [[nodiscard]] std::uint32_t latency(MOp o) const { return op(o).latency; }
  [[nodiscard]] bool is_complex(MOp o) const { return op(o).complex; }
  [[nodiscard]] bool is_blocking(MOp o) const { return op(o).blocking; }
  [[nodiscard]] bool is_legal(MOp o) const { return op(o).legal; }
  [[nodiscard]] int n_int_colors() const {
    return static_cast<int>(alloc_gprs.size());
  }
  [[nodiscard]] int n_float_colors() const {
    return static_cast<int>(alloc_fprs.size());
  }
};

/// Checks a descriptor for internal consistency: register roles in range and
/// distinct from allocatable registers, issue width within the model's
/// limits, cache geometry power-of-two, CR-dependent peepholes only with a
/// CR file, and every legal op's resource lists within the declared
/// `max_resources_per_instr` (itself within the compile-time buffer bound).
/// Throws InternalError naming the offending field.
void validate_target(const TargetDesc& desc);

/// Registry lookup (linked from src/targets). Throws CompileError listing
/// the known names if `name` is unknown.
const TargetDesc& target_by_name(const std::string& name);

/// The registered target names, in registration order.
std::vector<std::string> target_names();

/// The first registered target's name — the default when no --target is
/// given and for images that predate self-describing target tags.
const std::string& default_target_name();

}  // namespace vc::mach
