#include "mach/timing.hpp"

#include <algorithm>

#include "mach/target.hpp"
#include "support/diagnostics.hpp"

namespace vc::mach {

void IssueModel::reset() {
  cycle_ = 0;
  ready_.fill(0);
  slot_cycle_ = ~0ull;
  slots_used_ = 0;
  second_iu_used_ = false;
  std::fill(std::begin(unit_used_), std::end(unit_used_), false);
  std::fill(std::begin(unit_busy_until_), std::end(unit_busy_until_), 0ull);
}

void IssueModel::resources(const MInstr& ins, int* reads, int* n_reads,
                           int* writes, int* n_writes) {
  *n_reads = 0;
  *n_writes = 0;
  auto R = [&](int r) {
    check(*n_reads < kMaxResourcesPerInstr, "resource read list overflow");
    reads[(*n_reads)++] = r;
  };
  auto W = [&](int r) {
    check(*n_writes < kMaxResourcesPerInstr, "resource write list overflow");
    writes[(*n_writes)++] = r;
  };
  constexpr int kFpr = 32;
  switch (ins.op) {
    case MOp::Li: case MOp::Lis:
      W(ins.rd);
      break;
    case MOp::Ori: case MOp::Xori: case MOp::Addi: case MOp::Mr:
    case MOp::Neg:
      R(ins.ra);
      W(ins.rd);
      break;
    case MOp::Add: case MOp::Subf: case MOp::Mullw: case MOp::Divw:
    case MOp::And: case MOp::Or: case MOp::Xor: case MOp::Nor:
    case MOp::Slw: case MOp::Sraw: case MOp::Srw:
      R(ins.ra);
      R(ins.rb);
      W(ins.rd);
      break;
    case MOp::Rlwinm:
      R(ins.ra);
      W(ins.rd);
      break;
    case MOp::Cmpw:
      R(ins.ra);
      R(ins.rb);
      W(kCrBase + ins.crf);
      break;
    case MOp::Cmpwi:
      R(ins.ra);
      W(kCrBase + ins.crf);
      break;
    case MOp::Fcmpu:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      W(kCrBase + ins.crf);
      break;
    case MOp::Cror:
      R(kCrBase + ins.crba / 4);
      R(kCrBase + ins.crbb / 4);
      W(kCrBase + ins.crbd / 4);
      break;
    case MOp::Mfcr:
      for (int f = 0; f < 8; ++f) R(kCrBase + f);
      W(ins.rd);
      break;
    case MOp::Fadd: case MOp::Fsub: case MOp::Fmul: case MOp::Fdiv:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      W(kFpr + ins.rd);
      break;
    case MOp::Fmadd: case MOp::Fmsub:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      R(kFpr + ins.rc);
      W(kFpr + ins.rd);
      break;
    case MOp::Fneg: case MOp::Fabs: case MOp::Fmr:
      R(kFpr + ins.ra);
      W(kFpr + ins.rd);
      break;
    case MOp::Fcti:
      R(kFpr + ins.ra);
      W(ins.rd);
      break;
    case MOp::Icvf:
      R(ins.ra);
      W(kFpr + ins.rd);
      break;
    case MOp::Lwz:
      R(ins.ra);
      W(ins.rd);
      break;
    case MOp::Stw:
      R(ins.ra);
      R(ins.rd);
      break;
    case MOp::Lwzx:
      R(ins.ra);
      R(ins.rb);
      W(ins.rd);
      break;
    case MOp::Stwx:
      R(ins.ra);
      R(ins.rb);
      R(ins.rd);
      break;
    case MOp::Lfd:
      R(ins.ra);
      W(kFpr + ins.rd);
      break;
    case MOp::Stfd:
      R(ins.ra);
      R(kFpr + ins.rd);
      break;
    case MOp::Lfdx:
      R(ins.ra);
      R(ins.rb);
      W(kFpr + ins.rd);
      break;
    case MOp::Stfdx:
      R(ins.ra);
      R(ins.rb);
      R(kFpr + ins.rd);
      break;
    case MOp::B: case MOp::Blr: case MOp::Nop:
      break;
    case MOp::Bc:
      R(kCrBase + ins.crbit / 4);
      break;
    case MOp::Lui:
      W(ins.rd);
      break;
    case MOp::Slli: case MOp::Sltiu:
      R(ins.ra);
      W(ins.rd);
      break;
    case MOp::Sll: case MOp::Srl: case MOp::Sra:
    case MOp::Slt: case MOp::Sltu: case MOp::Rem:
      R(ins.ra);
      R(ins.rb);
      W(ins.rd);
      break;
    case MOp::Feq: case MOp::Flt: case MOp::Fle:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      W(ins.rd);
      break;
    case MOp::Beq: case MOp::Bne: case MOp::Blt: case MOp::Bge:
      R(ins.ra);
      R(ins.rb);
      break;
  }
}

std::uint64_t IssueModel::issue(const MInstr& ins, const int* reads,
                                int n_reads, const int* writes, int n_writes,
                                std::uint32_t extra_mem_cycles,
                                std::uint32_t fetch_stall) {
  const Unit unit = desc_->unit(ins.op);
  const int u = static_cast<int>(unit);

  // Earliest cycle the instruction may issue: after the current in-order
  // point, any fetch stall, operand readiness, and a free (non-blocked) unit.
  std::uint64_t t = cycle_ + fetch_stall;
  for (int i = 0; i < n_reads; ++i) t = std::max(t, ready_[reads[i]]);
  t = std::max(t, unit_busy_until_[u]);

  // Find an issue slot at or after t respecting dual-issue constraints.
  for (;;) {
    if (t != slot_cycle_) {
      slot_cycle_ = t;
      slots_used_ = 0;
      second_iu_used_ = false;
      std::fill(std::begin(unit_used_), std::end(unit_used_), false);
    }
    if (slots_used_ >= desc_->issue_width) {
      ++t;
      continue;
    }
    if (unit == Unit::IU) {
      // Two IU instructions may pair if the target allows pairing and the
      // second one is simple.
      const bool first_iu = !unit_used_[u] && !second_iu_used_;
      const bool can_second = unit_used_[u] && !second_iu_used_ &&
                              desc_->iu_pairing &&
                              !desc_->is_complex(ins.op);
      if (!first_iu && !can_second) {
        ++t;
        continue;
      }
      if (unit_used_[u]) second_iu_used_ = true;
      unit_used_[u] = true;
    } else {
      if (unit_used_[u]) {
        ++t;
        continue;
      }
      unit_used_[u] = true;
    }
    ++slots_used_;
    break;
  }

  const std::uint32_t lat = desc_->latency(ins.op) + extra_mem_cycles;
  for (int i = 0; i < n_writes; ++i) ready_[writes[i]] = t + lat;

  // Blocking ops (the dividers) occupy their unit until the result is ready.
  if (desc_->is_blocking(ins.op)) unit_busy_until_[u] = t + lat;

  cycle_ = t;  // in-order issue point
  return t;
}

void IssueModel::drain() {
  std::uint64_t t = cycle_ + 1;  // the branch itself occupies its cycle
  for (std::uint64_t r : ready_) t = std::max(t, r);
  for (std::uint64_t r : unit_busy_until_) t = std::max(t, r);
  cycle_ = t;
  slot_cycle_ = ~0ull;
}

void IssueModel::add_stall(std::uint32_t cycles) {
  cycle_ += cycles;
  slot_cycle_ = ~0ull;
}

}  // namespace vc::mach
