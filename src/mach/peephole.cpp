// O2-full machine-level peepholes. These are exactly the optimizations the
// verified configuration does NOT perform (paper §3.3: CompCert 1.7 had no
// fused multiply-add generation or aggressive scheduling), giving the default
// compiler's full-opt configuration its extra edge over CompCert.
#include <algorithm>
#include <vector>

#include "mach/codegen.hpp"
#include "mach/liveness.hpp"
#include "mach/timing.hpp"

namespace vc::mach {
namespace {

/// Replaces fn.ops[i] with nothing by compacting, preserving labels/annots.
void compact(AsmFunction& fn, const std::vector<bool>& dead) {
  std::vector<AsmOp> kept;
  std::vector<std::size_t> new_index(fn.ops.size() + 1, 0);
  for (std::size_t i = 0; i < fn.ops.size(); ++i) {
    new_index[i] = kept.size();
    if (!dead[i]) kept.push_back(fn.ops[i]);
  }
  new_index[fn.ops.size()] = kept.size();
  for (auto& [label, pos] : fn.labels) pos = new_index[pos];
  for (auto& a : fn.annots)
    a.addr = static_cast<std::uint32_t>(new_index[a.addr]);
  fn.ops = std::move(kept);
}

}  // namespace

int peephole(AsmFunction& fn, const TargetDesc& desc) {
  int rewrites = 0;
  std::vector<bool> dead(fn.ops.size(), false);
  // Liveness is computed once per pass; rewrites only remove register reads,
  // so the (then stale) solution stays conservative for later sites.
  const MachineLiveness live(fn, desc);
  // "The value in `reg` produced by op i is dead once op i+1 executed":
  // either op i+1 overwrites reg, or reg is not live after op i+1.
  auto value_dead_after_pair = [&](std::size_t i, int reg, bool fpr,
                                   int overwrites_reg) {
    if (overwrites_reg == reg) return true;
    return !live.live_after(i + 1, (fpr ? 32 : 0) + reg);
  };

  // Adjacent-pair patterns. Pairs must not straddle a label boundary.
  auto label_at = [&](std::size_t pos) {
    for (const auto& [label, p] : fn.labels)
      if (p == pos) return true;
    return false;
  };
  auto annot_at = [&](std::size_t pos) {
    for (const auto& a : fn.annots)
      if (a.addr == pos) return true;
    return false;
  };

  for (std::size_t i = 0; i + 1 < fn.ops.size(); ++i) {
    if (dead[i] || dead[i + 1]) continue;
    if (label_at(i + 1) || annot_at(i + 1)) continue;
    MInstr& a = fn.ops[i].ins;
    MInstr& b = fn.ops[i + 1].ins;
    if (fn.ops[i].target_label >= 0 || fn.ops[i + 1].target_label >= 0)
      continue;
    if (!fn.ops[i].reloc_sym.empty()) continue;

    // fmul fT,x,y ; fadd/fsub fD,fT,c  ->  fmadd/fmsub fD,x,y,c.
    if (desc.peephole.fuse_multiply_add &&
        a.op == MOp::Fmul && (b.op == MOp::Fadd || b.op == MOp::Fsub) &&
        b.ra == a.rd && b.rb != a.rd &&
        value_dead_after_pair(i, a.rd, true, b.rd)) {
      MInstr fused;
      fused.op = b.op == MOp::Fadd ? MOp::Fmadd : MOp::Fmsub;
      fused.rd = b.rd;
      fused.ra = a.ra;
      fused.rb = a.rb;
      fused.rc = b.rb;
      b = fused;
      dead[i] = true;
      ++rewrites;
      continue;
    }
    // fmul fT,x,y ; fadd fD,c,fT  ->  fmadd fD,x,y,c (addition commutes).
    if (desc.peephole.fuse_multiply_add &&
        a.op == MOp::Fmul && b.op == MOp::Fadd && b.rb == a.rd &&
        b.ra != a.rd && value_dead_after_pair(i, a.rd, true, b.rd)) {
      MInstr fused;
      fused.op = MOp::Fmadd;
      fused.rd = b.rd;
      fused.ra = a.ra;
      fused.rb = a.rb;
      fused.rc = b.ra;
      b = fused;
      dead[i] = true;
      ++rewrites;
      continue;
    }
    // li rT,imm ; cmpw cr,rA,rT  ->  cmpwi cr,rA,imm.
    if (desc.peephole.fold_cmp_imm &&
        a.op == MOp::Li && b.op == MOp::Cmpw && b.rb == a.rd &&
        b.ra != a.rd && value_dead_after_pair(i, a.rd, false, -1)) {
      MInstr c;
      c.op = MOp::Cmpwi;
      c.crf = b.crf;
      c.ra = b.ra;
      c.imm = a.imm;
      b = c;
      dead[i] = true;
      ++rewrites;
      continue;
    }
    // li rT,imm ; add rD,rA,rT (or rT,rA)  ->  addi rD,rA,imm.
    if (desc.peephole.fold_add_imm &&
        a.op == MOp::Li && b.op == MOp::Add &&
        (b.rb == a.rd || b.ra == a.rd) && !(b.ra == a.rd && b.rb == a.rd) &&
        a.imm >= desc.imm_min && a.imm <= desc.imm_max &&
        value_dead_after_pair(i, a.rd, false, b.rd)) {
      const std::uint8_t other = b.rb == a.rd ? b.ra : b.rb;
      MInstr c;
      c.op = MOp::Addi;
      c.rd = b.rd;
      c.ra = other;
      c.imm = a.imm;
      b = c;
      dead[i] = true;
      ++rewrites;
      continue;
    }
  }

  if (rewrites > 0) compact(fn, dead);
  return rewrites;
}

}  // namespace vc::mach
