#include "mach/isa.hpp"

#include <array>

#include "support/strings.hpp"

namespace vc::mach {
namespace {

enum class Format {
  Reg3,        // rd, ra, rb, rc
  RegImm,      // rd, ra, imm16
  RegImmWide,  // rd, imm21 (lui's simm20 fits with a sign bit to spare)
  Rlwinm,      // rd, ra, sh, mb, me
  Cmp,         // crf, ra, rb
  CmpImm,      // crf, ra, imm16
  CmpBranch,   // ra, rb, disp16 (fused compare-and-branch)
  Cror,        // crbd, crba, crbb
  Mfcr,        // rd
  B,           // disp26
  Bc,          // crbit, expect, disp16
  None,        // blr, nop
};

Format format_of(MOp op) {
  switch (op) {
    case MOp::Li: case MOp::Lis: case MOp::Ori: case MOp::Xori:
    case MOp::Addi: case MOp::Mr:
    case MOp::Lwz: case MOp::Stw: case MOp::Lfd: case MOp::Stfd:
    case MOp::Slli: case MOp::Sltiu:
      return Format::RegImm;
    case MOp::Lui:
      return Format::RegImmWide;
    case MOp::Add: case MOp::Subf: case MOp::Mullw: case MOp::Divw:
    case MOp::And: case MOp::Or: case MOp::Xor: case MOp::Nor:
    case MOp::Neg: case MOp::Slw: case MOp::Sraw: case MOp::Srw:
    case MOp::Fadd: case MOp::Fsub: case MOp::Fmul: case MOp::Fdiv:
    case MOp::Fmadd: case MOp::Fmsub:
    case MOp::Fneg: case MOp::Fabs: case MOp::Fmr:
    case MOp::Fcti: case MOp::Icvf:
    case MOp::Lwzx: case MOp::Stwx: case MOp::Lfdx: case MOp::Stfdx:
    case MOp::Sll: case MOp::Srl: case MOp::Sra:
    case MOp::Slt: case MOp::Sltu: case MOp::Rem:
    case MOp::Feq: case MOp::Flt: case MOp::Fle:
      return Format::Reg3;
    case MOp::Rlwinm:
      return Format::Rlwinm;
    case MOp::Cmpw: case MOp::Fcmpu:
      return Format::Cmp;
    case MOp::Cmpwi:
      return Format::CmpImm;
    case MOp::Cror:
      return Format::Cror;
    case MOp::Mfcr:
      return Format::Mfcr;
    case MOp::B:
      return Format::B;
    case MOp::Bc:
      return Format::Bc;
    case MOp::Beq: case MOp::Bne: case MOp::Blt: case MOp::Bge:
      return Format::CmpBranch;
    case MOp::Blr: case MOp::Nop:
      return Format::None;
  }
  throw InternalError("bad MOp");
}

bool imm_is_signed(MOp op) {
  switch (op) {
    case MOp::Ori:
    case MOp::Xori:
      return false;
    default:
      return true;
  }
}

constexpr std::uint32_t kOpShift = 26;

void require_fits(bool ok, const char* what) {
  if (!ok) throw InternalError(std::string("encoding overflow: ") + what);
}

}  // namespace

bool MInstr::operator==(const MInstr& o) const {
  return op == o.op && rd == o.rd && ra == o.ra && rb == o.rb && rc == o.rc &&
         imm == o.imm && sh == o.sh && mb == o.mb && me == o.me &&
         crf == o.crf && crbd == o.crbd && crba == o.crba && crbb == o.crbb &&
         crbit == o.crbit && expect == o.expect && disp == o.disp;
}

std::string mnemonic(MOp op) {
  switch (op) {
    case MOp::Li: return "li";
    case MOp::Lis: return "lis";
    case MOp::Ori: return "ori";
    case MOp::Xori: return "xori";
    case MOp::Addi: return "addi";
    case MOp::Mr: return "mr";
    case MOp::Add: return "add";
    case MOp::Subf: return "subf";
    case MOp::Mullw: return "mullw";
    case MOp::Divw: return "divw";
    case MOp::And: return "and";
    case MOp::Or: return "or";
    case MOp::Xor: return "xor";
    case MOp::Nor: return "nor";
    case MOp::Neg: return "neg";
    case MOp::Slw: return "slw";
    case MOp::Sraw: return "sraw";
    case MOp::Srw: return "srw";
    case MOp::Rlwinm: return "rlwinm";
    case MOp::Cmpw: return "cmpw";
    case MOp::Cmpwi: return "cmpwi";
    case MOp::Fcmpu: return "fcmpu";
    case MOp::Cror: return "cror";
    case MOp::Mfcr: return "mfcr";
    case MOp::Fadd: return "fadd";
    case MOp::Fsub: return "fsub";
    case MOp::Fmul: return "fmul";
    case MOp::Fdiv: return "fdiv";
    case MOp::Fmadd: return "fmadd";
    case MOp::Fmsub: return "fmsub";
    case MOp::Fneg: return "fneg";
    case MOp::Fabs: return "fabs";
    case MOp::Fmr: return "fmr";
    case MOp::Fcti: return "fcti";
    case MOp::Icvf: return "icvf";
    case MOp::Lwz: return "lwz";
    case MOp::Stw: return "stw";
    case MOp::Lwzx: return "lwzx";
    case MOp::Stwx: return "stwx";
    case MOp::Lfd: return "lfd";
    case MOp::Stfd: return "stfd";
    case MOp::Lfdx: return "lfdx";
    case MOp::Stfdx: return "stfdx";
    case MOp::B: return "b";
    case MOp::Bc: return "bc";
    case MOp::Blr: return "blr";
    case MOp::Nop: return "nop";
    case MOp::Lui: return "lui";
    case MOp::Sll: return "sll";
    case MOp::Srl: return "srl";
    case MOp::Sra: return "sra";
    case MOp::Slli: return "slli";
    case MOp::Slt: return "slt";
    case MOp::Sltu: return "sltu";
    case MOp::Sltiu: return "sltiu";
    case MOp::Rem: return "rem";
    case MOp::Feq: return "feq.d";
    case MOp::Flt: return "flt.d";
    case MOp::Fle: return "fle.d";
    case MOp::Beq: return "beq";
    case MOp::Bne: return "bne";
    case MOp::Blt: return "blt";
    case MOp::Bge: return "bge";
  }
  throw InternalError("bad MOp");
}

std::string format_instr(const MInstr& ins, std::uint32_t addr) {
  const std::string m = mnemonic(ins.op);
  auto gpr = [](int r) { return "r" + std::to_string(r); };
  auto fpr = [](int r) { return "f" + std::to_string(r); };
  const bool fp = (ins.op >= MOp::Fadd && ins.op <= MOp::Fmr) ||
                  ins.op == MOp::Fcmpu;
  auto reg = [&](int r) { return fp ? fpr(r) : gpr(r); };

  switch (format_of(ins.op)) {
    case Format::RegImm:
      switch (ins.op) {
        case MOp::Li:
        case MOp::Lis:
          return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm);
        case MOp::Mr:
          return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra);
        case MOp::Lwz:
          return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        case MOp::Lfd:
          return m + " " + fpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        case MOp::Stw:
          return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        case MOp::Stfd:
          return m + " " + fpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        default:
          return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra) + ", " +
                 std::to_string(ins.imm);
      }
    case Format::Reg3:
      switch (ins.op) {
        case MOp::Neg: case MOp::Fneg: case MOp::Fabs: case MOp::Fmr:
          return m + " " + reg(ins.rd) + ", " + reg(ins.ra);
        case MOp::Fcti:
          return m + " " + gpr(ins.rd) + ", " + fpr(ins.ra);
        case MOp::Icvf:
          return m + " " + fpr(ins.rd) + ", " + gpr(ins.ra);
        case MOp::Fmadd: case MOp::Fmsub:
          return m + " " + fpr(ins.rd) + ", " + fpr(ins.ra) + ", " +
                 fpr(ins.rb) + ", " + fpr(ins.rc);
        case MOp::Lwzx: case MOp::Stwx:
          return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra) + ", " + gpr(ins.rb);
        case MOp::Feq: case MOp::Flt: case MOp::Fle:
          return m + " " + gpr(ins.rd) + ", " + fpr(ins.ra) + ", " + fpr(ins.rb);
        case MOp::Lfdx: case MOp::Stfdx:
          return m + " " + fpr(ins.rd) + ", " + gpr(ins.ra) + ", " + gpr(ins.rb);
        default:
          return m + " " + reg(ins.rd) + ", " + reg(ins.ra) + ", " + reg(ins.rb);
      }
    case Format::RegImmWide:
      return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm);
    case Format::Rlwinm:
      return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra) + ", " +
             std::to_string(ins.sh) + ", " + std::to_string(ins.mb) + ", " +
             std::to_string(ins.me);
    case Format::CmpBranch:
      return m + " " + gpr(ins.ra) + ", " + gpr(ins.rb) + ", " +
             hex32(addr + static_cast<std::uint32_t>(ins.disp) * 4);
    case Format::Cmp:
      return m + " cr" + std::to_string(ins.crf) + ", " + reg(ins.ra) + ", " +
             reg(ins.rb);
    case Format::CmpImm:
      return m + " cr" + std::to_string(ins.crf) + ", " + gpr(ins.ra) + ", " +
             std::to_string(ins.imm);
    case Format::Cror:
      return m + " " + std::to_string(ins.crbd) + ", " +
             std::to_string(ins.crba) + ", " + std::to_string(ins.crbb);
    case Format::Mfcr:
      return m + " " + gpr(ins.rd);
    case Format::B:
      return m + " " + hex32(addr + static_cast<std::uint32_t>(ins.disp) * 4);
    case Format::Bc: {
      static const char* names[4] = {"lt", "gt", "eq", "so"};
      const std::string cond = std::string(ins.expect ? "" : "!") + "cr" +
                               std::to_string(ins.crbit / 4) + "." +
                               names[ins.crbit % 4];
      return m + " " + cond + ", " +
             hex32(addr + static_cast<std::uint32_t>(ins.disp) * 4);
    }
    case Format::None:
      return m;
  }
  throw InternalError("bad format");
}

std::uint32_t encode(const MInstr& ins) {
  const auto opbits = static_cast<std::uint32_t>(ins.op);
  require_fits(opbits < 64, "opcode");
  std::uint32_t w = opbits << kOpShift;
  auto r5 = [&](std::uint32_t v, int shift, const char* what) {
    require_fits(v < 32, what);
    w |= v << shift;
  };
  switch (format_of(ins.op)) {
    case Format::RegImm: {
      r5(ins.rd, 21, "rd");
      r5(ins.ra, 16, "ra");
      if (imm_is_signed(ins.op))
        require_fits(ins.imm >= -32768 && ins.imm <= 32767, "simm16");
      else
        require_fits(ins.imm >= 0 && ins.imm <= 65535, "uimm16");
      w |= static_cast<std::uint32_t>(ins.imm) & 0xFFFF;
      break;
    }
    case Format::Reg3:
      r5(ins.rd, 21, "rd");
      r5(ins.ra, 16, "ra");
      r5(ins.rb, 11, "rb");
      r5(ins.rc, 6, "rc");
      break;
    case Format::RegImmWide:
      r5(ins.rd, 21, "rd");
      require_fits(ins.imm >= -(1 << 19) && ins.imm < (1 << 19), "simm20");
      w |= static_cast<std::uint32_t>(ins.imm) & 0x001FFFFF;
      break;
    case Format::Rlwinm:
      r5(ins.rd, 21, "rd");
      r5(ins.ra, 16, "ra");
      r5(ins.sh, 11, "sh");
      r5(ins.mb, 6, "mb");
      r5(ins.me, 1, "me");
      break;
    case Format::CmpBranch:
      r5(ins.ra, 21, "ra");
      r5(ins.rb, 16, "rb");
      require_fits(ins.disp >= -32768 && ins.disp <= 32767, "disp16");
      w |= static_cast<std::uint32_t>(ins.disp) & 0xFFFF;
      break;
    case Format::Cmp:
      require_fits(ins.crf < 8, "crf");
      w |= static_cast<std::uint32_t>(ins.crf) << 23;
      r5(ins.ra, 18, "ra");
      r5(ins.rb, 13, "rb");
      break;
    case Format::CmpImm:
      require_fits(ins.crf < 8, "crf");
      w |= static_cast<std::uint32_t>(ins.crf) << 23;
      r5(ins.ra, 18, "ra");
      require_fits(ins.imm >= -32768 && ins.imm <= 32767, "simm16");
      w |= static_cast<std::uint32_t>(ins.imm) & 0xFFFF;
      break;
    case Format::Cror:
      r5(ins.crbd, 21, "crbd");
      r5(ins.crba, 16, "crba");
      r5(ins.crbb, 11, "crbb");
      break;
    case Format::Mfcr:
      r5(ins.rd, 21, "rd");
      break;
    case Format::B:
      require_fits(ins.disp >= -(1 << 25) && ins.disp < (1 << 25), "disp26");
      w |= static_cast<std::uint32_t>(ins.disp) & 0x03FFFFFF;
      break;
    case Format::Bc:
      r5(ins.crbit, 21, "crbit");
      if (ins.expect) w |= 1u << 20;
      require_fits(ins.disp >= -32768 && ins.disp <= 32767, "disp16");
      w |= static_cast<std::uint32_t>(ins.disp) & 0xFFFF;
      break;
    case Format::None:
      break;
  }
  return w;
}

MInstr decode(std::uint32_t word) {
  const std::uint32_t opbits = word >> kOpShift;
  if (opbits >= kNumOps)
    throw CompileError("invalid opcode in instruction word " + hex32(word));
  MInstr ins;
  ins.op = static_cast<MOp>(opbits);
  auto sext16 = [](std::uint32_t v) {
    return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xFFFF));
  };
  switch (format_of(ins.op)) {
    case Format::RegImm:
      ins.rd = (word >> 21) & 31;
      ins.ra = (word >> 16) & 31;
      ins.imm = imm_is_signed(ins.op) ? sext16(word)
                                      : static_cast<std::int32_t>(word & 0xFFFF);
      break;
    case Format::Reg3:
      ins.rd = (word >> 21) & 31;
      ins.ra = (word >> 16) & 31;
      ins.rb = (word >> 11) & 31;
      ins.rc = (word >> 6) & 31;
      break;
    case Format::RegImmWide: {
      ins.rd = (word >> 21) & 31;
      std::uint32_t v = word & 0x001FFFFF;
      if (v & 0x00100000) v |= 0xFFE00000;  // sign-extend 21 bits
      ins.imm = static_cast<std::int32_t>(v);
      break;
    }
    case Format::Rlwinm:
      ins.rd = (word >> 21) & 31;
      ins.ra = (word >> 16) & 31;
      ins.sh = (word >> 11) & 31;
      ins.mb = (word >> 6) & 31;
      ins.me = (word >> 1) & 31;
      break;
    case Format::CmpBranch:
      ins.ra = (word >> 21) & 31;
      ins.rb = (word >> 16) & 31;
      ins.disp = sext16(word);
      break;
    case Format::Cmp:
      ins.crf = (word >> 23) & 7;
      ins.ra = (word >> 18) & 31;
      ins.rb = (word >> 13) & 31;
      break;
    case Format::CmpImm:
      ins.crf = (word >> 23) & 7;
      ins.ra = (word >> 18) & 31;
      ins.imm = sext16(word);
      break;
    case Format::Cror:
      ins.crbd = (word >> 21) & 31;
      ins.crba = (word >> 16) & 31;
      ins.crbb = (word >> 11) & 31;
      break;
    case Format::Mfcr:
      ins.rd = (word >> 21) & 31;
      break;
    case Format::B: {
      std::uint32_t d = word & 0x03FFFFFF;
      if (d & 0x02000000) d |= 0xFC000000;  // sign-extend 26 bits
      ins.disp = static_cast<std::int32_t>(d);
      break;
    }
    case Format::Bc:
      ins.crbit = (word >> 21) & 31;
      ins.expect = ((word >> 20) & 1) != 0;
      ins.disp = sext16(word);
      break;
    case Format::None:
      break;
  }
  return ins;
}

bool is_memory_op(MOp op) {
  switch (op) {
    case MOp::Lwz: case MOp::Stw: case MOp::Lwzx: case MOp::Stwx:
    case MOp::Lfd: case MOp::Stfd: case MOp::Lfdx: case MOp::Stfdx:
      return true;
    default:
      return false;
  }
}

bool is_branch(MOp op) {
  return op == MOp::B || op == MOp::Blr || is_cond_branch(op);
}

bool is_cond_branch(MOp op) {
  switch (op) {
    case MOp::Bc:
    case MOp::Beq: case MOp::Bne: case MOp::Blt: case MOp::Bge:
      return true;
    default:
      return false;
  }
}

std::optional<BranchCond> branch_condition(const MInstr& ins) {
  switch (ins.op) {
    case MOp::Bc:
      return BranchCond{ins.crbit % 4, ins.expect, false};
    case MOp::Beq:
      return BranchCond{kEq, true, true};
    case MOp::Bne:
      return BranchCond{kEq, false, true};
    case MOp::Blt:
      return BranchCond{kLt, true, true};
    case MOp::Bge:
      return BranchCond{kLt, false, true};
    default:
      return std::nullopt;
  }
}

}  // namespace vc::mach
