// RTL -> machine code generation, target-neutral half.
//
// Lowering produces an AsmFunction: machine instructions with symbolic branch
// labels and data relocations still attached, so that the optional machine
// level passes (peephole fusion, list scheduling — the O2-full extras) can
// transform the code before displacements are resolved. `finalize` turns an
// AsmFunction into a linkable MachineFunction.
//
// The instruction selection itself is per-target: `emit_function` dispatches
// to the descriptor's lowering hook (src/targets/<name>/lower.cpp), which
// maps allocator colors to machine registers and RTL operations to the
// target's legal subset of the universal op set.
#pragma once

#include "mach/program.hpp"
#include "mach/target.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/rtl.hpp"

namespace vc::mach {

/// One assembly-level operation with link-time attachments.
struct AsmOp {
  MInstr ins;
  int target_label = -1;    // branches: symbolic target (block id)
  std::string reloc_sym;    // non-empty: imm patched with sym+addend at link
  std::int32_t reloc_addend = 0;
  RelocKind reloc_kind = RelocKind::DataDisp;
};

/// Addressing discipline for globals and the constant pool.
/// The default compiler (all three configurations) uses small-data base
/// addressing; the verified configuration does not (paper §3.3: "CompCert's
/// recent support for small data areas was not used in the evaluation, while
/// it is used by the default compiler") and pays an absolute hi/lo pair per
/// access instead.
struct EmitOptions {
  bool small_data_area = true;
};

struct AsmFunction {
  std::string name;
  std::vector<AsmOp> ops;
  std::vector<std::pair<int, std::size_t>> labels;  // label id -> op index
  /// Annotation entries anchored to op indices (the op that follows the
  /// annotation point).
  std::vector<AnnotEntry> annots;
  std::uint32_t frame_bytes = 0;

  [[nodiscard]] std::size_t label_pos(int label) const;
};

/// Emits machine code for an allocated RTL function by dispatching to the
/// target's lowering hook. Constant-pool doubles are registered in `layout`.
AsmFunction emit_function(const rtl::Function& fn,
                          const regalloc::Allocation& alloc,
                          DataLayout& layout, const TargetDesc& desc,
                          const EmitOptions& options = {});

/// Resolves branch displacements and produces a linkable MachineFunction.
MachineFunction finalize(const AsmFunction& asm_fn);

/// Removes self-moves (mr rX,rX / fmr fX,fX). Applied in every configuration
/// (an assembler-level cleanup). Returns number removed.
int remove_self_moves(AsmFunction& fn);

/// O2-full peepholes, gated by the descriptor's rule set: multiply-add
/// fusion, li+cmpw -> cmpwi, li+add -> addi. Returns the number of rewrites.
int peephole(AsmFunction& fn, const TargetDesc& desc);

/// O2-full list scheduler: reorders instructions within branch/label-free
/// regions to hide latencies, using the descriptor's timing model. Returns
/// the number of ops whose position changed.
int schedule(AsmFunction& fn, const TargetDesc& desc);

}  // namespace vc::mach
