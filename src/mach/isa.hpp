// The universal machine instruction set: one op enumeration covering every
// operation any supported target can execute. Which subset is legal, and
// with what latencies, units, and registers, is a per-target fact carried by
// mach::TargetDesc (mach/target.hpp) — shared subsystems (simulator,
// validators, liveness, scheduling, WCET) switch over the universal op and
// never over a target name.
//
// The first block of ops models the paper's MPC755 (a PowerPC-G3-like
// 32-bit RISC with an 8-field condition register), with two documented
// substitutions (DESIGN.md §6): `fcti`/`icvf` perform f64<->i32 conversion
// directly, and encodings are vcflight's own fixed 32-bit formats (1:1 with
// the assembly, round-trip tested) rather than bit-exact PowerPC. The
// second block adds the RV32IMF-flavored operations (compare-and-branch,
// set-less-than, single-result FP compares writing a GPR) that have no
// CR-file counterpart. Universal op values are stable: the first block's
// values predate the multi-target refactor, so images and artifact-store
// payloads produced for the original target are byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace vc::mach {

/// Condition-register bit positions within a CR field (PowerPC numbering:
/// bit 0 of the field is LT). Bit index in the whole CR is crf*4 + bit.
enum CrBit : int { kLt = 0, kGt = 1, kEq = 2, kSo = 3 };  // kSo = FU for fcmpu

enum class MOp : std::uint8_t {
  // Integer immediates and moves
  Li,      // rd <- simm16 (sign-extended)
  Lis,     // rd <- simm16 << 16
  Ori,     // rd <- ra | uimm16
  Xori,    // rd <- ra ^ uimm16
  Addi,    // rd <- ra + simm16
  Mr,      // rd <- ra

  // Integer arithmetic / logic (register forms)
  Add, Subf,  // Subf: rd <- rb - ra (PowerPC convention)
  Mullw, Divw,
  And, Or, Xor, Nor,
  Neg,
  Slw, Sraw, Srw,
  Rlwinm,  // rd <- rotl32(ra, sh) & mask(mb, me)

  // Compares and CR manipulation
  Cmpw,    // crf <- compare(ra, rb) signed
  Cmpwi,   // crf <- compare(ra, simm16) signed
  Fcmpu,   // crf <- compare(fa, fb); FU (kSo) set if unordered
  Cror,    // CR[crbd] <- CR[crba] | CR[crbb]
  Mfcr,    // rd <- CR (bit 0 of CR is the MSB of rd)

  // Floating point
  Fadd, Fsub, Fmul, Fdiv,
  Fmadd,   // fd <- fa * fb + fc   (O2-full only)
  Fmsub,   // fd <- fa * fb - fc   (O2-full only)
  Fneg, Fabs, Fmr,
  Fcti,    // rd(GPR)  <- trunc-to-i32(fa), saturating (substitution)
  Icvf,    // fd(FPR)  <- (f64) ra(GPR)                (substitution)

  // Memory (d-form: displacement(base); x-form: base + index)
  Lwz, Stw, Lwzx, Stwx,    // 32-bit GPR loads/stores
  Lfd, Stfd, Lfdx, Stfdx,  // 64-bit FPR loads/stores

  // Control flow
  B,    // unconditional, pc-relative word displacement
  Bc,   // conditional on CR bit: branch if CR[crbit] == expect
  Blr,  // return (jump to link register; the harness seeds LR)

  Nop,

  // --- RV32IMF-flavored block (no CR file; boolean results land in GPRs,
  // --- conditional control flow is fused compare-and-branch) --------------
  Lui,    // rd <- simm20 << 12
  Sll,    // rd <- ra << (rb & 31)
  Srl,    // rd <- (u32)ra >> (rb & 31)
  Sra,    // rd <- (i32)ra >> (rb & 31)
  Slli,   // rd <- ra << uimm5
  Slt,    // rd <- (i32)ra < (i32)rb ? 1 : 0
  Sltu,   // rd <- (u32)ra < (u32)rb ? 1 : 0
  Sltiu,  // rd <- (u32)ra < (u32)sext(simm) ? 1 : 0
  Rem,    // rd <- ra rem rb (signed, sign of dividend)
  Feq,    // rd(GPR) <- fa == fb ? 1 : 0  (0 when unordered)
  Flt,    // rd(GPR) <- fa <  fb ? 1 : 0  (0 when unordered)
  Fle,    // rd(GPR) <- fa <= fb ? 1 : 0  (0 when unordered)
  Beq,    // branch if ra == rb
  Bne,    // branch if ra != rb
  Blt,    // branch if (i32)ra < (i32)rb
  Bge,    // branch if (i32)ra >= (i32)rb
};

/// Number of universal ops (array-table size for per-target op info).
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(MOp::Bge) + 1;

std::string mnemonic(MOp op);

/// One machine instruction. Fields are used according to the opcode; unused
/// fields are zero. `rd/ra/rb` index GPRs or FPRs depending on the opcode.
struct MInstr {
  MOp op = MOp::Nop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t rc = 0;        // fmadd/fmsub third operand
  std::int32_t imm = 0;       // simm16/uimm16/displacement
  std::uint8_t sh = 0, mb = 0, me = 0;  // rlwinm
  std::uint8_t crf = 0;       // cmpw/cmpwi/fcmpu
  std::uint8_t crbd = 0, crba = 0, crbb = 0;  // cror
  std::uint8_t crbit = 0;     // bc: absolute CR bit index 0..31
  bool expect = false;        // bc: branch when CR[crbit] == expect
  std::int32_t disp = 0;      // b/bc: signed word displacement from this instr

  bool operator==(const MInstr& o) const;
};

/// Assembly text for one instruction at `addr` (used in listings).
std::string format_instr(const MInstr& ins, std::uint32_t addr);

/// Encodes to the fixed 32-bit vcflight format. Throws InternalError if a
/// field does not fit (the code generator respects all field widths).
std::uint32_t encode(const MInstr& ins);

/// Decodes one word. Throws CompileError on an invalid encoding.
MInstr decode(std::uint32_t word);

/// True if the instruction reads or writes memory.
bool is_memory_op(MOp op);
/// True for any control-transfer instruction (b/bc/blr and the
/// compare-and-branch block).
bool is_branch(MOp op);
/// True for conditional branches only (bc, beq/bne/blt/bge).
bool is_cond_branch(MOp op);

/// The integer relation a conditional branch tests. `rel` is kLt/kGt/kEq;
/// the branch is taken exactly when (relation holds) == `when_true`. For Bc
/// the relation refers to the CR field written by the preceding compare (the
/// caller tracks that compare's operands); for the compare-and-branch ops it
/// refers to (ra, rb) directly, signalled by `has_operands`.
struct BranchCond {
  int rel = kEq;
  bool when_true = true;
  bool has_operands = false;
};
std::optional<BranchCond> branch_condition(const MInstr& ins);

}  // namespace vc::mach
