// Machine-level liveness over the AsmFunction CFG (blocks delimited by
// labels and branches), at the granularity of the shared IssueModel resource
// indices (GPRs, FPRs, CR fields). At a return, only the ABI-escaping
// registers are live-out: the stack pointer, the small-data base, and the
// two result registers — all read from the target descriptor.
//
// Shared by the peephole pass (is the intermediate register of a fused pair
// dead afterwards?) and the machine-level translation validators in
// src/validate (which resources must agree at a comparison point?).
#pragma once

#include <bitset>
#include <cstddef>
#include <vector>

#include "mach/codegen.hpp"
#include "mach/target.hpp"
#include "mach/timing.hpp"

namespace vc::mach {

class MachineLiveness {
 public:
  using LiveSet = std::bitset<IssueModel::kNumResources>;

  MachineLiveness(const AsmFunction& fn, const TargetDesc& desc);

  /// True if `resource` may be read after executing op `pos`.
  [[nodiscard]] bool live_after(std::size_t pos, int resource) const {
    return live_after_[pos].test(static_cast<std::size_t>(resource));
  }

  /// The full live-after set of op `pos`.
  [[nodiscard]] const LiveSet& live_after_set(std::size_t pos) const {
    return live_after_[pos];
  }

  /// The registers live across a return: stack pointer, small-data base,
  /// and the int/float result registers of `desc`.
  static LiveSet abi_escape(const TargetDesc& desc);

 private:
  std::vector<LiveSet> live_after_;
};

}  // namespace vc::mach
