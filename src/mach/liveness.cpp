#include "mach/liveness.hpp"

#include <algorithm>
#include <map>

namespace vc::mach {

MachineLiveness::LiveSet MachineLiveness::abi_escape(const TargetDesc& desc) {
  LiveSet escape;
  escape.set(static_cast<std::size_t>(desc.stack_ptr));
  escape.set(static_cast<std::size_t>(desc.data_base));
  escape.set(static_cast<std::size_t>(desc.ret_gpr));
  escape.set(static_cast<std::size_t>(32 + desc.ret_fpr));
  if (desc.zero_gpr >= 0) escape.set(static_cast<std::size_t>(desc.zero_gpr));
  return escape;
}

MachineLiveness::MachineLiveness(const AsmFunction& fn,
                                 const TargetDesc& desc) {
  const std::size_t n = fn.ops.size();
  live_after_.assign(n, LiveSet());

  // Block boundaries: labels and instructions after branches.
  std::vector<std::size_t> leaders{0};
  for (const auto& [label, pos] : fn.labels) leaders.push_back(pos);
  for (std::size_t i = 0; i < n; ++i)
    if (is_branch(fn.ops[i].ins.op)) leaders.push_back(i + 1);
  std::sort(leaders.begin(), leaders.end());
  leaders.erase(std::unique(leaders.begin(), leaders.end()), leaders.end());
  while (!leaders.empty() && leaders.back() >= n) leaders.pop_back();

  std::map<std::size_t, std::size_t> block_of_leader;
  for (std::size_t b = 0; b < leaders.size(); ++b)
    block_of_leader[leaders[b]] = b;
  auto block_end = [&](std::size_t b) {
    return b + 1 < leaders.size() ? leaders[b + 1] : n;
  };

  // Successor blocks.
  std::vector<std::vector<std::size_t>> succs(leaders.size());
  for (std::size_t b = 0; b < leaders.size(); ++b) {
    const std::size_t last = block_end(b) - 1;
    const AsmOp& op = fn.ops[last];
    if (op.ins.op == MOp::Blr) continue;
    if (op.target_label >= 0)
      succs[b].push_back(block_of_leader.at(fn.label_pos(op.target_label)));
    if (op.ins.op != MOp::B && block_end(b) < n)
      succs[b].push_back(block_of_leader.at(block_end(b)));
  }

  const LiveSet escape = abi_escape(desc);
  std::vector<LiveSet> live_in(leaders.size());
  int reads[IssueModel::kMaxResourcesPerInstr];
  int writes[IssueModel::kMaxResourcesPerInstr];
  int n_reads = 0;
  int n_writes = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = leaders.size(); b-- > 0;) {
      LiveSet live;
      const std::size_t last = block_end(b) - 1;
      if (fn.ops[last].ins.op == MOp::Blr) live = escape;
      for (std::size_t s : succs[b]) live |= live_in[s];
      for (std::size_t i = block_end(b); i-- > leaders[b];) {
        live_after_[i] = live;
        IssueModel::resources(fn.ops[i].ins, reads, &n_reads, writes,
                              &n_writes);
        for (int k = 0; k < n_writes; ++k)
          live.reset(static_cast<std::size_t>(writes[k]));
        for (int k = 0; k < n_reads; ++k)
          live.set(static_cast<std::size_t>(reads[k]));
      }
      if (live != live_in[b]) {
        live_in[b] = live;
        changed = true;
      }
    }
  }
}

}  // namespace vc::mach
