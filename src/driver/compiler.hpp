// The compiler driver: the four configurations of the paper's experiment.
//
//   O0Pattern    — the certified baseline: pattern/stack lowering, no RTL
//                  optimization. Every symbol compiles to its fixed pattern
//                  (paper §2.1, Listing 1).
//   O1NoRegalloc — the default compiler "optimized without register
//                  allocation" (§3.3): constprop/CSE/DCE over the pattern
//                  code, program variables stay in stack slots.
//   Verified     — the CompCert stand-in (§3.2): value lowering, constprop,
//                  CSE, DCE, graph-coloring register allocation; no machine
//                  level scheduling or fusion. Each RTL pass is checked by
//                  the translation validator when requested.
//   O2Full       — the default compiler fully optimized: Verified's pipeline
//                  plus fmadd fusion, immediate folding, list scheduling.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "minic/ast.hpp"
#include "opt/opt.hpp"
#include "ppc/codegen.hpp"
#include "ppc/program.hpp"
#include "rtl/rtl.hpp"

namespace vc::driver {

enum class Config { O0Pattern, O1NoRegalloc, Verified, O2Full };

std::string to_string(Config c);

/// The compiler identity baked into every artifact-store key (src/artifact):
/// bump it with any change that can alter generated code, annotations, or
/// WCET analysis results, so stale cached artifacts miss instead of
/// resurfacing output of an older toolchain.
inline constexpr const char kCompilerVersion[] = "vcflight-3";
inline constexpr Config kAllConfigs[] = {Config::O0Pattern,
                                         Config::O1NoRegalloc,
                                         Config::Verified, Config::O2Full};

/// Per-function intermediate artifacts kept for validation and inspection.
struct FunctionArtifact {
  rtl::Function rtl_lowered;    // right after AST -> RTL
  rtl::Function rtl_optimized;  // after the RTL pass pipeline (pre-regalloc)
  rtl::Function rtl_allocated;  // after spill rewriting (what codegen saw)
  std::vector<std::string> passes_applied;
  int spill_count = 0;
};

struct Compiled {
  Config config{};
  ppc::Image image;
  std::map<std::string, FunctionArtifact> artifacts;
};

/// Compiles every function of `program` under `config` and links the image.
/// The program must already type-check. `pass_hook`, when set, is invoked
/// after lowering ("lower"), after every applied RTL pass, and after
/// register allocation ("regalloc") — the attachment point for the
/// translation validator (src/validate). `pass_timings`, when set,
/// accumulates per-pass RTL optimization wall time over all functions (the
/// fleet runner surfaces it in the bench footers).
Compiled compile_program(const minic::Program& program, Config config,
                         const opt::PassHook& pass_hook = {},
                         opt::PassTimings* pass_timings = nullptr);

}  // namespace vc::driver
