// The compiler driver: the four configurations of the paper's experiment.
//
//   O0Pattern    — the certified baseline: pattern/stack lowering, no RTL
//                  optimization. Every symbol compiles to its fixed pattern
//                  (paper §2.1, Listing 1).
//   O1NoRegalloc — the default compiler "optimized without register
//                  allocation" (§3.3): constprop/CSE/DCE over the pattern
//                  code, program variables stay in stack slots.
//   Verified     — the CompCert stand-in (§3.2): value lowering, constprop,
//                  CSE, DCE, graph-coloring register allocation; no machine
//                  level scheduling or fusion. Each RTL pass is checked by
//                  the translation validator when requested.
//   O2Full       — the default compiler fully optimized: Verified's pipeline
//                  plus fmadd fusion, immediate folding, list scheduling.
//
// Each configuration is a named pass pipeline (`pipeline_names`) executed by
// the pass framework (src/pass); `compile_program` contains no hard-wired
// pass calls. `CompileOptions` exposes the pipeline surface: checker hooks,
// per-pass telemetry, pass selection/disabling, and dump-after.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minic/ast.hpp"
#include "pass/pass.hpp"
#include "mach/codegen.hpp"
#include "mach/program.hpp"
#include "rtl/rtl.hpp"

namespace vc::driver {

enum class Config { O0Pattern, O1NoRegalloc, Verified, O2Full };

/// The single source of truth for configuration names: `cli` is what
/// --config= accepts, `full` what to_string renders (reports, tables,
/// artifact keys). `parse_config` accepts either spelling, so the pair
/// round-trips by construction (tested over kAllConfigs).
struct ConfigName {
  Config config;
  const char* cli;
  const char* full;
};
inline constexpr ConfigName kConfigNames[] = {
    {Config::O0Pattern, "O0", "O0-pattern"},
    {Config::O1NoRegalloc, "O1", "O1-noregalloc"},
    {Config::Verified, "verified", "verified"},
    {Config::O2Full, "O2", "O2-full"},
};

std::string to_string(Config c);

/// Maps a configuration name (cli or full spelling) to the configuration;
/// nullopt for unknown names.
std::optional<Config> parse_config(const std::string& name);

/// How much of the pipeline the translation validator covers:
///   Off — no validation; Rtl — the RTL checkers (structure-preserving,
///   dead-store, differential) plus the end-to-end machine cross-check;
///   Full — Rtl plus the machine-level checkers (register allocation,
///   peephole/self-move equivalence, schedule validation).
enum class ValidateLevel { Off, Rtl, Full };

std::string to_string(ValidateLevel level);

/// The compiler identity baked into every artifact-store key (src/artifact):
/// bump it with any change that can alter generated code, annotations, or
/// WCET analysis results, so stale cached artifacts miss instead of
/// resurfacing output of an older toolchain.
inline constexpr const char kCompilerVersion[] = "vcflight-7";
inline constexpr Config kAllConfigs[] = {Config::O0Pattern,
                                         Config::O1NoRegalloc,
                                         Config::Verified, Config::O2Full};

/// The named pass pipeline of `config`, in execution order (the structural
/// steps lower/regalloc/emit included). This is the declarative description
/// the PassManager executes.
std::vector<std::string> pipeline_names(Config config);

/// Per-function intermediate artifacts kept for validation and inspection.
struct FunctionArtifact {
  rtl::Function rtl_lowered;    // right after AST -> RTL
  rtl::Function rtl_optimized;  // after the RTL pass pipeline (pre-regalloc)
  rtl::Function rtl_allocated;  // after spill rewriting (what codegen saw)
  std::vector<std::string> passes_applied;
  int spill_count = 0;
};

struct Compiled {
  Config config{};
  mach::Image image;
  std::map<std::string, FunctionArtifact> artifacts;
};

/// The pipeline surface of one compilation.
struct CompileOptions {
  /// Target to compile for (resolved against the registry in src/targets;
  /// CompileError on unknown names). The produced image is tagged with it.
  std::string target = "ppc";
  /// Fired after every applied step with before/after IR snapshots; the
  /// attachment point for the translation validator (src/validate). Returns
  /// the number of checks performed; may throw ValidationError.
  pass::StepHook hook;
  /// When set, accumulates per-pass telemetry over all functions.
  pass::PipelineStats* stats = nullptr;
  /// Enables the SSA mid-end (src/ssa) on the optimizing configurations
  /// (Verified and O2Full; ignored for the pattern configurations): the
  /// bracket ssa-build, ssa-gvn, ssa-licm, ssa-unroll, ssa-rotate, ssa-out
  /// is inserted after the scalar round group, followed by a second scalar
  /// cleanup round, all before regalloc. Off by default — the baseline
  /// pipelines stay byte-identical to the reference corpus.
  bool ssa = false;
  /// Optimization passes to remove from the configuration's pipeline.
  /// Disabling an unknown or structural pass is a CompileError.
  std::vector<std::string> disable_passes;
  /// When non-empty, replaces the configuration's optimization passes: RTL
  /// passes run between lower and regalloc, machine passes after selfmove,
  /// each set in the order given here. Structural passes cannot be listed.
  std::vector<std::string> passes;
  /// Dump attachment (--dump-after): after every applied execution of this
  /// pass, `dump` is called with the pass name and current function state.
  std::string dump_after;
  std::function<void(const std::string&, const pass::FunctionState&)> dump;
};

/// The pipeline of `config` with `options`' selection/disabling applied
/// (validated against the builtin registry; CompileError on bad names).
std::vector<std::string> resolve_pipeline(Config config,
                                          const CompileOptions& options);

/// Compiles every function of `program` under `config` and links the image.
/// The program must already type-check. The pipeline is built from
/// `pipeline_names(config)` and executed by the pass framework; `options`
/// attaches hooks, telemetry, and pipeline overrides.
Compiled compile_program(const minic::Program& program, Config config,
                         const CompileOptions& options = {});

}  // namespace vc::driver
