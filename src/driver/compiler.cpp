#include "driver/compiler.hpp"

#include "opt/opt.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/analysis.hpp"
#include "rtl/lower.hpp"

namespace vc::driver {

std::string to_string(Config c) {
  switch (c) {
    case Config::O0Pattern: return "O0-pattern";
    case Config::O1NoRegalloc: return "O1-noregalloc";
    case Config::Verified: return "verified";
    case Config::O2Full: return "O2-full";
  }
  throw InternalError("bad Config");
}

Compiled compile_program(const minic::Program& program, Config config,
                         const opt::PassHook& pass_hook,
                         opt::PassTimings* pass_timings) {
  Compiled out;
  out.config = config;

  const bool pattern_mode =
      config == Config::O0Pattern || config == Config::O1NoRegalloc;
  const bool optimize = config != Config::O0Pattern;
  const bool machine_opts = config == Config::O2Full;

  // The memory passes run only with value lowering: O1-noregalloc models the
  // paper's "optimized without register allocation" arm, whose pattern code
  // keeps its per-symbol memory discipline (§3.3).
  opt::PipelineOptions pipeline_options;
  pipeline_options.memory_opts = optimize && !pattern_mode;
  pipeline_options.timings = pass_timings;

  ppc::DataLayout layout(program);
  std::vector<ppc::MachineFunction> machine_fns;

  for (const auto& src_fn : program.functions) {
    FunctionArtifact art;

    rtl::Function fn = rtl::lower_function(
        program, src_fn,
        pattern_mode ? rtl::LowerMode::PatternStack : rtl::LowerMode::Value);
    rtl::remove_unreachable_blocks(fn);
    art.rtl_lowered = fn;
    if (pass_hook) pass_hook("lower", art.rtl_lowered, fn);

    if (optimize)
      opt::run_standard_pipeline(fn, &art.passes_applied, pass_hook,
                                 pipeline_options);
    art.rtl_optimized = fn;

    // O2-full allocates scheduling-aware (spread colors so the list
    // scheduler is not fenced in by recycled registers).
    const regalloc::Allocation alloc = regalloc::allocate_registers(
        fn, ppc::kAllocatableGprs, ppc::kAllocatableFprs,
        /*spread_colors=*/machine_opts);
    art.spill_count = alloc.spill_count;
    art.rtl_allocated = fn;
    if (pass_hook) pass_hook("regalloc", art.rtl_optimized, fn);

    // The default compiler uses r2-based small-data addressing in every
    // configuration; the verified compiler does not (paper §3.3).
    ppc::EmitOptions emit_options;
    emit_options.small_data_area = config != Config::Verified;
    ppc::AsmFunction asm_fn = ppc::emit_function(fn, alloc, layout, emit_options);
    ppc::remove_self_moves(asm_fn);
    if (machine_opts) {
      while (ppc::peephole(asm_fn) > 0) {
      }
      ppc::schedule(asm_fn);
    }
    machine_fns.push_back(ppc::finalize(asm_fn));
    out.artifacts.emplace(src_fn.name, std::move(art));
  }

  out.image = ppc::link(machine_fns, layout);
  return out;
}

}  // namespace vc::driver
