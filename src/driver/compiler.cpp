#include "driver/compiler.hpp"

#include <algorithm>

#include "mach/target.hpp"
#include "rtl/lower.hpp"
#include "support/diagnostics.hpp"

namespace vc::driver {

std::string to_string(Config c) {
  for (const ConfigName& n : kConfigNames)
    if (n.config == c) return n.full;
  throw InternalError("bad Config");
}

std::optional<Config> parse_config(const std::string& name) {
  for (const ConfigName& n : kConfigNames)
    if (name == n.cli || name == n.full) return n.config;
  return std::nullopt;
}

std::string to_string(ValidateLevel level) {
  switch (level) {
    case ValidateLevel::Off: return "off";
    case ValidateLevel::Rtl: return "rtl";
    case ValidateLevel::Full: return "full";
  }
  throw InternalError("bad ValidateLevel");
}

std::vector<std::string> pipeline_names(Config config) {
  switch (config) {
    case Config::O0Pattern:
      return {"lower", "regalloc", "emit", "selfmove"};
    case Config::O1NoRegalloc:
      // No memory passes: the paper's "optimized without register
      // allocation" arm keeps the pattern code's per-symbol memory
      // discipline (§3.3), which forwarding/dead-store would break up.
      return {"lower", "constprop", "cse", "dce", "tunnel",
              "regalloc", "emit", "selfmove"};
    case Config::Verified:
      return {"lower", "constprop", "cse", "forward", "dce", "deadstore",
              "tunnel", "regalloc", "emit", "selfmove"};
    case Config::O2Full:
      return {"lower", "constprop", "cse", "forward", "dce", "deadstore",
              "tunnel", "regalloc", "emit", "selfmove", "peephole",
              "schedule"};
  }
  throw InternalError("bad Config");
}

std::vector<std::string> resolve_pipeline(Config config,
                                          const CompileOptions& options) {
  const pass::Registry registry = pass::Registry::builtin();
  auto selectable_steps = [&] {
    std::string out;
    for (const std::string& n : registry.names()) {
      if (registry.find(n)->structural) continue;
      if (!out.empty()) out += ", ";
      out += n;
    }
    return out;
  };
  auto optional_step = [&](const std::string& name) -> const pass::StepDef& {
    const pass::StepDef* def = registry.find(name);
    if (def == nullptr)
      throw CompileError("unknown pass '" + name +
                         "'; registered steps: " + selectable_steps());
    if (def->structural)
      throw CompileError("pass '" + name +
                         "' is structural and cannot be selected or disabled");
    return *def;
  };

  std::vector<std::string> names;
  if (!options.passes.empty()) {
    std::vector<std::string> rtl_opts;
    std::vector<std::string> machine_opts;
    for (const std::string& name : options.passes) {
      const pass::StepDef& def = optional_step(name);
      (def.level == pass::Level::Rtl ? rtl_opts : machine_opts)
          .push_back(name);
    }
    names.push_back("lower");
    names.insert(names.end(), rtl_opts.begin(), rtl_opts.end());
    names.push_back("regalloc");
    names.push_back("emit");
    names.insert(names.end(), machine_opts.begin(), machine_opts.end());
  } else {
    names = pipeline_names(config);
    if (options.ssa &&
        (config == Config::Verified || config == Config::O2Full)) {
      // The SSA bracket after the scalar round group, plus a second scalar
      // cleanup round over the out-of-SSA copies it leaves behind.
      const std::vector<std::string> ssa_group = {
          "ssa-build", "ssa-gvn",    "ssa-licm", "ssa-unroll", "ssa-rotate",
          "ssa-out",   "constprop",  "cse",      "forward",    "dce",
          "deadstore", "tunnel"};
      const auto at = std::find(names.begin(), names.end(), "regalloc");
      names.insert(at, ssa_group.begin(), ssa_group.end());
    }
  }
  for (const std::string& name : options.disable_passes) {
    optional_step(name);  // known and non-structural, or CompileError
    names.erase(std::remove(names.begin(), names.end(), name), names.end());
  }
  // SSA bracket structure: the SSA optimizations only run between ssa-build
  // and ssa-out, nothing else runs inside the bracket, and an opened
  // bracket must close (regalloc and emission never see phis).
  bool in_ssa = false;
  for (const std::string& name : names) {
    const bool is_ssa = name.rfind("ssa-", 0) == 0;
    if (name == "ssa-build") {
      if (in_ssa) throw CompileError("nested ssa-build in pipeline");
      in_ssa = true;
    } else if (name == "ssa-out") {
      if (!in_ssa) throw CompileError("ssa-out without a preceding ssa-build");
      in_ssa = false;
    } else if (is_ssa && !in_ssa) {
      throw CompileError("pass '" + name +
                         "' requires the SSA bracket (ssa-build .. ssa-out)");
    } else if (!is_ssa && in_ssa) {
      throw CompileError("pass '" + name +
                         "' cannot run inside the SSA bracket");
    }
  }
  if (in_ssa) throw CompileError("ssa-build without a matching ssa-out");
  return names;
}

Compiled compile_program(const minic::Program& program, Config config,
                         const CompileOptions& options) {
  Compiled out;
  out.config = config;

  const bool pattern_mode =
      config == Config::O0Pattern || config == Config::O1NoRegalloc;
  const pass::Registry registry = pass::Registry::builtin();
  const std::vector<std::string> names = resolve_pipeline(config, options);
  const mach::TargetDesc& target = mach::target_by_name(options.target);

  mach::DataLayout layout(program);
  std::vector<mach::MachineFunction> machine_fns;

  for (const auto& src_fn : program.functions) {
    FunctionArtifact art;

    pass::FunctionState state;
    state.program = &program;
    state.source = &src_fn;
    state.layout = &layout;
    state.lower_mode = pattern_mode ? rtl::LowerMode::PatternStack
                                    : rtl::LowerMode::Value;
    // The default compiler uses r2-based small-data addressing in every
    // configuration; the verified compiler does not (paper §3.3).
    state.small_data_area = config != Config::Verified;
    // O2-full allocates scheduling-aware (spread colors so the list
    // scheduler is not fenced in by recycled registers).
    state.spread_colors = config == Config::O2Full;
    state.target = &target;

    pass::ManagerOptions manager_options;
    manager_options.stats = options.stats;
    manager_options.dump_after = options.dump_after;
    manager_options.dump = options.dump;
    // Before-IR snapshots cost a function copy per applied pass; take them
    // only when a checker is attached. The artifact capture below gets its
    // one pre-regalloc snapshot from FunctionState::rtl_pre_regalloc.
    manager_options.snapshots = static_cast<bool>(options.hook);
    manager_options.hook = [&](const pass::StepTrace& trace) {
      if (trace.pass == "lower") {
        art.rtl_lowered = trace.state->rtl;
      } else if (trace.pass == "regalloc") {
        art.rtl_optimized = trace.state->rtl_pre_regalloc;
        art.rtl_allocated = trace.state->rtl;
        art.spill_count = trace.state->alloc.spill_count;
      } else if (trace.level == pass::Level::Rtl) {
        art.passes_applied.push_back(trace.pass);
      }
      return options.hook ? options.hook(trace) : 0;
    };

    const pass::PassManager manager(registry, names,
                                    std::move(manager_options));
    manager.run(state);

    machine_fns.push_back(mach::finalize(state.machine));
    out.artifacts.emplace(src_fn.name, std::move(art));
  }

  out.image = mach::link(machine_fns, layout);
  out.image.target = target.name;
  return out;
}

}  // namespace vc::driver
