#include "driver/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>

#include "artifact/image_io.hpp"
#include "dataflow/acg.hpp"
#include "minic/printer.hpp"
#include "support/rng.hpp"
#include "support/threadpool.hpp"
#include "support/workspace.hpp"
#include "wcet/monitor_spec.hpp"
#include "wcet/wcet.hpp"

namespace vc::driver {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- stats.json schema -----------------------------------------------------
//
// One document per artifact:
//   { "entry": "...", "code_bytes": N,
//     "results": [ { "params": {...}, "exec": {...},
//                    "observed_max_cycles": N,
//                    "wcet_cycles": N, "wcet_nocache_cycles": N } ] }
// The compile is fully determined by the artifact key; the derived results
// additionally depend on run parameters, so each distinct parameter set gets
// its own stanza (bounded ring, oldest dropped).

constexpr std::size_t kMaxResultStanzas = 16;

json::Value params_json(std::uint64_t input_seed, const FleetOptions& options) {
  json::Value p;
  p["input_seed"] = json::Value(input_seed);
  p["exec_cycles"] = json::Value(static_cast<std::int64_t>(options.exec_cycles));
  p["cold_caches"] = json::Value(options.cold_caches);
  p["wcet"] = json::Value(options.wcet);
  p["wcet_nocache"] = json::Value(options.wcet_nocache);
  p["wcet_engine"] = json::Value(wcet::to_string(options.wcet_engine));
  p["monitor"] = json::Value(machine::to_string(options.monitor));
  return p;
}

bool params_match(const json::Value& p, std::uint64_t input_seed,
                  const FleetOptions& options) {
  if (p.at("exec_cycles").as_i64(-1) != options.exec_cycles) return false;
  if (p.at("cold_caches").as_bool() != options.cold_caches) return false;
  if (p.at("wcet").as_bool() != options.wcet) return false;
  if (p.at("wcet_nocache").as_bool() != options.wcet_nocache) return false;
  if (p.at("wcet_engine").as_string("") !=
      wcet::to_string(options.wcet_engine))
    return false;
  // Pre-monitor stanzas carry no "monitor" key; they only match unmonitored
  // runs, so a monitored campaign never replays an unchecked result.
  if (p.at("monitor").as_string("off") != machine::to_string(options.monitor))
    return false;
  // The input seed only shapes results when execution actually runs.
  if (options.exec_cycles > 0 && p.at("input_seed").as_u64() != input_seed)
    return false;
  return true;
}

json::Value exec_stats_json(const machine::ExecStats& s) {
  json::Value e;
  e["cycles"] = json::Value(s.cycles);
  e["instructions"] = json::Value(s.instructions);
  e["dcache_reads"] = json::Value(s.dcache_reads);
  e["dcache_writes"] = json::Value(s.dcache_writes);
  e["dcache_read_misses"] = json::Value(s.dcache_read_misses);
  e["dcache_write_misses"] = json::Value(s.dcache_write_misses);
  e["ifetch_line_misses"] = json::Value(s.ifetch_line_misses);
  e["taken_branches"] = json::Value(s.taken_branches);
  return e;
}

machine::ExecStats exec_stats_from_json(const json::Value& e) {
  machine::ExecStats s;
  s.cycles = e.at("cycles").as_u64();
  s.instructions = e.at("instructions").as_u64();
  s.dcache_reads = e.at("dcache_reads").as_u64();
  s.dcache_writes = e.at("dcache_writes").as_u64();
  s.dcache_read_misses = e.at("dcache_read_misses").as_u64();
  s.dcache_write_misses = e.at("dcache_write_misses").as_u64();
  s.ifetch_line_misses = e.at("ifetch_line_misses").as_u64();
  s.taken_branches = e.at("taken_branches").as_u64();
  return s;
}

json::Value stanza_from_record(const FleetRecord& record,
                               std::uint64_t input_seed,
                               const FleetOptions& options) {
  json::Value stanza;
  stanza["params"] = params_json(input_seed, options);
  stanza["exec"] = exec_stats_json(record.exec);
  stanza["observed_max_cycles"] = json::Value(record.observed_max_cycles);
  stanza["wcet_cycles"] = json::Value(record.wcet_cycles);
  stanza["wcet_nocache_cycles"] = json::Value(record.wcet_nocache_cycles);
  stanza["wcet_ipet_cycles"] = json::Value(record.wcet_ipet_cycles);
  stanza["wcet_ipet_capped_edges"] =
      json::Value(static_cast<std::int64_t>(record.wcet_ipet_capped_edges));
  stanza["wcet_ipet_certified"] = json::Value(record.wcet_ipet_certified);
  stanza["monitored_steps"] = json::Value(record.monitored_steps);
  return stanza;
}

void record_from_stanza(const json::Value& doc, const json::Value& stanza,
                        FleetRecord* record) {
  record->code_bytes =
      static_cast<std::uint32_t>(doc.at("code_bytes").as_u64());
  record->exec = exec_stats_from_json(stanza.at("exec"));
  record->observed_max_cycles = stanza.at("observed_max_cycles").as_u64();
  record->wcet_cycles = stanza.at("wcet_cycles").as_u64();
  record->wcet_nocache_cycles = stanza.at("wcet_nocache_cycles").as_u64();
  record->wcet_ipet_cycles = stanza.at("wcet_ipet_cycles").as_u64();
  record->wcet_ipet_capped_edges =
      static_cast<int>(stanza.at("wcet_ipet_capped_edges").as_i64());
  record->wcet_ipet_certified = stanza.at("wcet_ipet_certified").as_bool();
  // Only ok jobs publish, so a replayed stanza is always violation-free.
  record->monitored_steps = stanza.at("monitored_steps").as_u64(0);
}

/// Runs the execution phase against `image`, accumulating into `record`.
void run_exec_phase(const FleetUnit& unit, const mach::Image& image,
                    std::uint64_t input_seed, const FleetOptions& options,
                    FleetRecord* record) {
  const auto t_exec = Clock::now();
  const minic::Function* fn = unit.program->find_function(unit.entry);
  if (fn == nullptr)
    throw std::runtime_error("no function '" + unit.entry + "'");
  const bool has_io =
      unit.program->find_global(dataflow::kIoBusGlobal) != nullptr;
  Rng rng(input_seed);
  machine::Machine m(image);
  // The monitored fact base (CFG edges, annotation claims, loop-bound rows)
  // is per image+function; the armed monitor checks every step below.
  machine::MonitorSpec monitor_spec;
  if (options.monitor != machine::MonitorMode::Off) {
    wcet::WcetOptions wopts;
    wopts.use_annotations = options.use_annotations;
    monitor_spec = wcet::build_monitor_spec(image, unit.entry, options.monitor,
                                            wopts);
    m.arm_monitor(monitor_spec, options.monitor);
  }
  try {
    std::vector<minic::Value> args;  // hoisted: one buffer for every cycle
    args.reserve(fn->params.size());
    for (int c = 0; c < options.exec_cycles; ++c) {
      if (options.cold_caches) m.clear_caches();
      args.clear();
      for (const auto& p : fn->params) {
        if (p.type == minic::Type::F64)
          args.push_back(minic::Value::of_f64(rng.next_double(-20.0, 20.0)));
        else
          args.push_back(minic::Value::of_i32(
              static_cast<std::int32_t>(rng.next_range(-2, 2))));
      }
      if (has_io)
        m.write_global(dataflow::kIoBusGlobal, 0,
                       minic::Value::of_f64(rng.next_double(-3.0, 3.0)));
      m.call(unit.entry, args, minic::Type::I32);
      const machine::ExecStats& s = m.stats();
      record->exec.cycles += s.cycles;
      record->exec.instructions += s.instructions;
      record->exec.dcache_reads += s.dcache_reads;
      record->exec.dcache_writes += s.dcache_writes;
      record->exec.dcache_read_misses += s.dcache_read_misses;
      record->exec.dcache_write_misses += s.dcache_write_misses;
      record->exec.ifetch_line_misses += s.ifetch_line_misses;
      record->exec.taken_branches += s.taken_branches;
      record->observed_max_cycles =
          std::max(record->observed_max_cycles, s.cycles);
    }
  } catch (const machine::MonitorError&) {
    // A refuted static claim: account the violation (and the steps that
    // were checked up to it), then fail the job with the MonitorError text.
    record->monitor_violations += 1;
    if (m.monitor() != nullptr) record->monitored_steps = m.monitor()->steps();
    record->exec_seconds = seconds_since(t_exec);
    throw;
  }
  if (m.monitor() != nullptr) record->monitored_steps = m.monitor()->steps();
  record->exec_seconds = seconds_since(t_exec);
}

/// Runs the WCET phase against `image`, filling `record`'s bound fields.
void run_wcet_phase(const FleetUnit& unit, const mach::Image& image,
                    const FleetOptions& options, FleetRecord* record) {
  const auto t_wcet = Clock::now();
  wcet::WcetOptions wopts;
  wopts.use_annotations = options.use_annotations;
  if (options.wcet) {
    wopts.engine = options.wcet_engine;
    const wcet::WcetResult r = wcet::analyze_wcet(image, unit.entry, wopts);
    // wcet_cycles carries the engine the caller selected: structural when
    // it ran (back-compatible with every existing consumer), else IPET.
    record->wcet_cycles =
        r.structural_cycles ? *r.structural_cycles : r.wcet_cycles;
    if (r.ipet) {
      record->wcet_ipet_cycles = r.ipet->wcet_cycles;
      record->wcet_ipet_capped_edges = r.ipet->capped_edges;
      record->wcet_ipet_certified = r.ipet->certificate_verified;
    }
  }
  if (options.wcet_nocache) {
    wopts.cache_analysis = false;
    wopts.engine = wcet::WcetEngine::Structural;  // cache ablation only
    record->wcet_nocache_cycles =
        wcet::analyze_wcet(image, unit.entry, wopts).wcet_cycles;
  }
  record->wcet_seconds = seconds_since(t_wcet);
}

/// Executes one (unit, config) job into `record`. Never throws. `source` is
/// the unit's printed program text (only set when a store is attached).
void run_job(const FleetUnit& unit, Config config, std::uint64_t input_seed,
             const FleetOptions& options, const std::string* source,
             FleetRecord* record) {
  // One workspace per worker thread, rewound (not freed) per job: arena
  // chunks and pooled scratch reach steady-state capacity after the first
  // few jobs, and the rest of the campaign reuses them allocation-free.
  this_thread_workspace().reset();
  record->name = unit.name;
  record->config = config;
  try {
    // Overridden compiles (validated campaigns) never touch the cache: the
    // point is to run the checkers, not to replay a previous run's verdict.
    artifact::ArtifactStore* store =
        options.compile_override ? nullptr : options.store;
    Hash128 key;
    json::Value cached_doc;
    mach::Image cached_image;
    bool have_image = false;

    if (store != nullptr) {
      std::string config_key = to_string(config);
      if (options.ssa) config_key += "+ssa";
      for (const std::string& p : options.disable_passes)
        config_key += "-" + p;
      key = artifact::ArtifactStore::make_key(
          *source, unit.entry, config_key, options.target,
          options.use_annotations, kCompilerVersion);
      const auto t_lookup = Clock::now();
      auto loaded = store->lookup(key);
      record->cache_lookup_seconds = seconds_since(t_lookup);
      if (loaded) {
        for (const json::Value& stanza : loaded->stats.at("results").as_array())
          if (params_match(stanza.at("params"), input_seed, options)) {
            record_from_stanza(loaded->stats, stanza, record);
            record->cache_hit = true;
            record->ok = true;
            return;
          }
        // Same compile, different run parameters: reuse the executable,
        // recompute just the derived results. A cached image that fails to
        // deserialize is dropped and the job transparently compiles cold.
        artifact::ImageParse parsed =
            artifact::deserialize_image(loaded->image_bytes);
        if (parsed.ok()) {
          cached_image = std::move(parsed.image);
          cached_doc = std::move(loaded->stats);
          have_image = true;
          record->cache_image_hit = true;
        } else {
          store->invalidate(key);
        }
      }
    }

    Compiled compiled;
    if (!have_image) {
      const auto t_compile = Clock::now();
      CompileOptions copts;
      copts.target = options.target;
      copts.ssa = options.ssa;
      copts.disable_passes = options.disable_passes;
      copts.stats = &record->pass_stats;
      compiled = options.compile_override
                     ? options.compile_override(*unit.program, config, copts)
                     : compile_program(*unit.program, config, copts);
      record->compile_seconds = seconds_since(t_compile);
    }
    const mach::Image& image = have_image ? cached_image : compiled.image;
    // Compile-only units may carry no entry; the whole image size is the
    // meaningful code metric then.
    record->code_bytes =
        unit.entry.empty() ? image.code_size_bytes()
                           : image.code_size_of(unit.entry);

    if (options.exec_cycles > 0)
      run_exec_phase(unit, image, input_seed, options, record);
    if (options.wcet || options.wcet_nocache)
      run_wcet_phase(unit, image, options, record);
    record->ok = true;

    if (store != nullptr) {
      const auto t_publish = Clock::now();
      json::Value stanza = stanza_from_record(*record, input_seed, options);
      if (have_image) {
        // In-place append: copying the results array out and re-assigning
        // it cost one full deep copy of every cached stanza per publish.
        json::Array& results = cached_doc["results"].as_array_mut();
        results.push_back(std::move(stanza));
        while (results.size() > kMaxResultStanzas)
          results.erase(results.begin());
        store->update_stats(key, cached_doc);
      } else {
        json::Value doc;
        doc["entry"] = json::Value(unit.entry);
        doc["code_bytes"] = json::Value(record->code_bytes);
        json::Array results;
        results.push_back(std::move(stanza));
        doc["results"] = json::Value(std::move(results));
        json::Value info;
        info["unit"] = json::Value(unit.name);
        info["config"] = json::Value(to_string(config));
        info["target"] = json::Value(options.target);
        info["annotations"] = json::Value(options.use_annotations);
        info["compiler_version"] = json::Value(kCompilerVersion);
        info["source_bytes"] =
            json::Value(static_cast<std::uint64_t>(source->size()));
        store->publish(key, artifact::serialize_image(image),
                       artifact::annotation_text(image), doc, std::move(info));
      }
      record->cache_publish_seconds = seconds_since(t_publish);
    }
  } catch (const std::exception& e) {
    record->ok = false;
    record->error = e.what();
    // A failed job's partially accumulated execution results are not
    // observations: a truncated run (FuelExhausted) or an aborted one must
    // never contribute an observed_max_cycles baseline that makes the WCET
    // engines look sound against under-observed executions.
    record->exec = machine::ExecStats{};
    record->observed_max_cycles = 0;
  }
}

}  // namespace

std::uint64_t fleet_job_seed(std::uint64_t suite_seed, std::size_t index) {
  // One SplitMix64 step over (seed ^ index·golden-ratio): decorrelates the
  // per-unit streams while staying a pure function of (seed, index).
  std::uint64_t z = suite_seed ^
                    (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double FleetReport::nodes_per_second() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / wall_seconds;
}

std::string FleetReport::throughput_summary() const {
  char buf[384];
  std::snprintf(
      buf, sizeof buf,
      "fleet: %zu node(s) x %zu config(s) on %d worker(s): %.2fs wall, "
      "%.1f jobs/s\n"
      "fleet: phase time (summed over jobs): compile %.2fs, execute %.2fs, "
      "wcet %.2fs",
      units, configs, jobs, wall_seconds, nodes_per_second(), compile_seconds,
      exec_seconds, wcet_seconds);
  std::string out = buf;
  if (!pass_stats.passes.empty()) {
    // One entry per pass actually run, in pipeline order — the pipeline is
    // data now, so the footer follows it instead of a hard-wired pass list.
    out += "\nfleet: pass time:";
    bool first = true;
    std::uint64_t total_checks = 0;
    for (const pass::PassStat& p : pass_stats.passes) {
      std::snprintf(buf, sizeof buf, "%s %s %.3fs", first ? "" : ",",
                    p.name.c_str(), p.seconds);
      out += buf;
      first = false;
      total_checks += p.checks;
    }
    if (total_checks > 0) {
      std::snprintf(buf, sizeof buf,
                    "\nfleet: validation: %llu per-pass check(s) passed",
                    static_cast<unsigned long long>(total_checks));
      out += buf;
    }
  }
  if (ipet_records > 0) {
    std::snprintf(
        buf, sizeof buf,
        "\nfleet: wcet engine %s: %llu IPET bound(s), %llu certificate(s) "
        "verified, %llu with infeasible-edge cap(s)",
        wcet::to_string(wcet_engine).c_str(),
        static_cast<unsigned long long>(ipet_records),
        static_cast<unsigned long long>(ipet_certified),
        static_cast<unsigned long long>(ipet_capped_edge_records));
    out += buf;
    if (wcet_engine == wcet::WcetEngine::Both) {
      std::snprintf(
          buf, sizeof buf,
          "\nfleet: tightness: IPET strictly below structural on %llu/%llu, "
          "mean tightening %.3f%%",
          static_cast<unsigned long long>(ipet_tighter),
          static_cast<unsigned long long>(ipet_records),
          100.0 * ipet_tightening_sum /
              static_cast<double>(ipet_records));
      out += buf;
    }
  }
  if (monitor_mode != machine::MonitorMode::Off) {
    std::snprintf(
        buf, sizeof buf,
        "\nfleet: monitor (%s): %llu record(s) armed, %llu step(s) checked, "
        "%llu violation(s)%s",
        machine::to_string(monitor_mode).c_str(),
        static_cast<unsigned long long>(monitored_records),
        static_cast<unsigned long long>(monitored_steps),
        static_cast<unsigned long long>(monitor_violations),
        monitor_violations > 0 ? " <-- STATIC CLAIM REFUTED" : "");
    out += buf;
  }
  if (cache_enabled) {
    std::snprintf(
        buf, sizeof buf,
        "\nfleet: cache: %llu full hit(s), %llu image hit(s), %llu miss(es), "
        "lookup %.2fs, publish %.2fs\nfleet: %s",
        static_cast<unsigned long long>(cache_full_hits),
        static_cast<unsigned long long>(cache_image_hits),
        static_cast<unsigned long long>(cache_misses), cache_lookup_seconds,
        cache_publish_seconds, store_stats.summary().c_str());
    out += buf;
  }
  return out;
}

FleetReport run_fleet(const std::vector<FleetUnit>& units,
                      const FleetOptions& options) {
  if (options.jobs < 0)
    throw std::invalid_argument(
        "FleetOptions::jobs must be >= 0 (0 = one worker per hardware "
        "thread), got " + std::to_string(options.jobs));

  FleetReport report;
  report.units = units.size();
  report.configs = options.configs.size();
  report.jobs = options.jobs > 0
                    ? options.jobs
                    : static_cast<int>(ThreadPool::default_worker_count());
  report.records.resize(units.size() * options.configs.size());
  report.cache_enabled = options.store != nullptr;
  report.target = options.target;
  report.ssa = options.ssa;
  report.wcet_engine = options.wcet_engine;
  report.monitor_mode = options.monitor;

  // The artifact key hashes the unit's *source text*; print each program
  // once up front (cheap, serial) instead of once per (unit, config) job.
  std::vector<std::string> sources;
  if (options.store != nullptr) {
    sources.reserve(units.size());
    for (const FleetUnit& unit : units)
      sources.push_back(minic::print_program(*unit.program));
  }

  const auto t_start = Clock::now();
  // Job j = (unit j / nconfigs, config j % nconfigs); each writes slot j.
  parallel_for(report.records.size(), static_cast<std::size_t>(report.jobs),
               [&](std::size_t j) {
                 const std::size_t u = j / options.configs.size();
                 const std::size_t c = j % options.configs.size();
                 const std::uint64_t seed =
                     units[u].input_seed
                         ? *units[u].input_seed
                         : fleet_job_seed(options.suite_seed, u);
                 run_job(units[u], options.configs[c], seed, options,
                         sources.empty() ? nullptr : &sources[u],
                         &report.records[j]);
               });
  report.wall_seconds = seconds_since(t_start);

  for (const FleetRecord& r : report.records) {
    report.compile_seconds += r.compile_seconds;
    report.exec_seconds += r.exec_seconds;
    report.wcet_seconds += r.wcet_seconds;
    report.pass_stats += r.pass_stats;
    report.cache_lookup_seconds += r.cache_lookup_seconds;
    report.cache_publish_seconds += r.cache_publish_seconds;
    if (r.ok && r.wcet_ipet_cycles > 0) {
      ++report.ipet_records;
      if (r.wcet_ipet_certified) ++report.ipet_certified;
      if (r.wcet_ipet_capped_edges > 0) ++report.ipet_capped_edge_records;
      // Tightness vs structural is only meaningful when both engines ran
      // (engine Both leaves the structural bound in wcet_cycles).
      if (options.wcet_engine == wcet::WcetEngine::Both &&
          r.wcet_cycles > 0) {
        if (r.wcet_ipet_cycles < r.wcet_cycles) ++report.ipet_tighter;
        report.ipet_tightening_sum += (static_cast<double>(r.wcet_cycles) -
                                       static_cast<double>(r.wcet_ipet_cycles)) /
                                      static_cast<double>(r.wcet_cycles);
      }
    }
    if (options.monitor != machine::MonitorMode::Off) {
      if (r.monitored_steps > 0) ++report.monitored_records;
      report.monitored_steps += r.monitored_steps;
      report.monitor_violations += r.monitor_violations;
    }
    if (report.cache_enabled) {
      if (r.cache_hit)
        ++report.cache_full_hits;
      else if (r.cache_image_hit)
        ++report.cache_image_hits;
      else
        ++report.cache_misses;
    }
  }
  if (options.store != nullptr) report.store_stats = options.store->stats();
  return report;
}

}  // namespace vc::driver
