#include "driver/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

#include "dataflow/acg.hpp"
#include "support/rng.hpp"
#include "support/threadpool.hpp"
#include "wcet/wcet.hpp"

namespace vc::driver {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Executes one (unit, config) job into `record`. Never throws.
void run_job(const FleetUnit& unit, Config config, std::uint64_t input_seed,
             const FleetOptions& options, FleetRecord* record) {
  record->name = unit.name;
  record->config = config;
  try {
    const auto t_compile = Clock::now();
    const Compiled compiled =
        compile_program(*unit.program, config, {}, &record->pass_timings);
    record->compile_seconds = seconds_since(t_compile);
    record->code_bytes = compiled.image.code_size_of(unit.entry);

    if (options.exec_cycles > 0) {
      const auto t_exec = Clock::now();
      const minic::Function* fn = unit.program->find_function(unit.entry);
      if (fn == nullptr)
        throw std::runtime_error("no function '" + unit.entry + "'");
      const bool has_io =
          unit.program->find_global(dataflow::kIoBusGlobal) != nullptr;
      Rng rng(input_seed);
      machine::Machine m(compiled.image);
      for (int c = 0; c < options.exec_cycles; ++c) {
        if (options.cold_caches) m.clear_caches();
        std::vector<minic::Value> args;
        args.reserve(fn->params.size());
        for (const auto& p : fn->params) {
          if (p.type == minic::Type::F64)
            args.push_back(minic::Value::of_f64(rng.next_double(-20.0, 20.0)));
          else
            args.push_back(minic::Value::of_i32(
                static_cast<std::int32_t>(rng.next_range(-2, 2))));
        }
        if (has_io)
          m.write_global(dataflow::kIoBusGlobal, 0,
                         minic::Value::of_f64(rng.next_double(-3.0, 3.0)));
        m.call(unit.entry, args, minic::Type::I32);
        const machine::ExecStats& s = m.stats();
        record->exec.cycles += s.cycles;
        record->exec.instructions += s.instructions;
        record->exec.dcache_reads += s.dcache_reads;
        record->exec.dcache_writes += s.dcache_writes;
        record->exec.dcache_read_misses += s.dcache_read_misses;
        record->exec.dcache_write_misses += s.dcache_write_misses;
        record->exec.ifetch_line_misses += s.ifetch_line_misses;
        record->exec.taken_branches += s.taken_branches;
        record->observed_max_cycles =
            std::max(record->observed_max_cycles, s.cycles);
      }
      record->exec_seconds = seconds_since(t_exec);
    }

    if (options.wcet || options.wcet_nocache) {
      const auto t_wcet = Clock::now();
      wcet::WcetOptions wopts;
      wopts.use_annotations = options.use_annotations;
      if (options.wcet)
        record->wcet_cycles =
            wcet::analyze_wcet(compiled.image, unit.entry, wopts).wcet_cycles;
      if (options.wcet_nocache) {
        wopts.cache_analysis = false;
        record->wcet_nocache_cycles =
            wcet::analyze_wcet(compiled.image, unit.entry, wopts).wcet_cycles;
      }
      record->wcet_seconds = seconds_since(t_wcet);
    }
    record->ok = true;
  } catch (const std::exception& e) {
    record->ok = false;
    record->error = e.what();
  }
}

}  // namespace

std::uint64_t fleet_job_seed(std::uint64_t suite_seed, std::size_t index) {
  // One SplitMix64 step over (seed ^ index·golden-ratio): decorrelates the
  // per-unit streams while staying a pure function of (seed, index).
  std::uint64_t z = suite_seed ^
                    (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double FleetReport::nodes_per_second() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(records.size()) / wall_seconds;
}

std::string FleetReport::throughput_summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "fleet: %zu node(s) x %zu config(s) on %d worker(s): %.2fs wall, "
      "%.1f jobs/s\n"
      "fleet: phase time (summed over jobs): compile %.2fs, execute %.2fs, "
      "wcet %.2fs\n"
      "fleet: rtl pass time: constprop %.3fs, cse %.3fs, forward %.3fs, "
      "dce %.3fs, deadstore %.3fs, tunnel %.3fs",
      units, configs, jobs, wall_seconds, nodes_per_second(), compile_seconds,
      exec_seconds, wcet_seconds, pass_timings.constprop, pass_timings.cse,
      pass_timings.forward, pass_timings.dce, pass_timings.deadstore,
      pass_timings.tunnel);
  return buf;
}

FleetReport run_fleet(const std::vector<FleetUnit>& units,
                      const FleetOptions& options) {
  FleetReport report;
  report.units = units.size();
  report.configs = options.configs.size();
  report.jobs = options.jobs > 0
                    ? options.jobs
                    : static_cast<int>(ThreadPool::default_worker_count());
  report.records.resize(units.size() * options.configs.size());

  const auto t_start = Clock::now();
  // Job j = (unit j / nconfigs, config j % nconfigs); each writes slot j.
  parallel_for(report.records.size(), static_cast<std::size_t>(report.jobs),
               [&](std::size_t j) {
                 const std::size_t u = j / options.configs.size();
                 const std::size_t c = j % options.configs.size();
                 run_job(units[u], options.configs[c],
                         fleet_job_seed(options.suite_seed, u), options,
                         &report.records[j]);
               });
  report.wall_seconds = seconds_since(t_start);

  for (const FleetRecord& r : report.records) {
    report.compile_seconds += r.compile_seconds;
    report.exec_seconds += r.exec_seconds;
    report.wcet_seconds += r.wcet_seconds;
    report.pass_timings += r.pass_timings;
  }
  return report;
}

}  // namespace vc::driver
