// The fleet runner: batch compile / execute / WCET over many generated
// nodes, the reproduction's counterpart of running CompCert + aiT over the
// paper's ~2500 ACG files. Each (node, configuration) pair is an independent
// job — the per-file chain is embarrassingly parallel — so the fleet fans
// jobs out over a thread pool (support/threadpool.hpp) and collects results
// into deterministically ordered per-node records.
//
// Determinism contract: records are keyed by (unit index, config index) and
// each job writes only its own pre-assigned slot, so the report is
// bit-identical for any worker count. Pseudo-random execution inputs come
// from one Rng per job, seeded from (suite seed, unit index) only — never
// from scheduling order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "artifact/store.hpp"
#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/ast.hpp"
#include "support/json.hpp"
#include "wcet/wcet.hpp"

namespace vc::driver {

/// One unit of fleet work: a type-checked program plus its entry function
/// (for generated nodes, the node's step function). The program is
/// non-owning — mini-C programs are move-only (statement bodies are unique
/// pointers), so the caller keeps the suite alive across run_fleet.
struct FleetUnit {
  std::string name;
  const minic::Program* program = nullptr;
  std::string entry;
  /// Explicit input-stream seed for this unit. When unset, the job draws
  /// from fleet_job_seed(suite_seed, unit_index) — position-dependent, which
  /// is right for generated suites but wrong for a service batching jobs
  /// from many clients in arrival order: there the caller pins each job's
  /// seed so batching/sharding order can never change results.
  std::optional<std::uint64_t> input_seed;
};

struct FleetOptions {
  /// Target ISA every job compiles for (resolved against src/targets;
  /// CompileError on unknown names, recorded per job).
  std::string target = "ppc";
  /// Worker threads; 0 = one per hardware thread, 1 = serial on the caller.
  /// Negative values are rejected by run_fleet (std::invalid_argument).
  int jobs = 0;
  /// Configurations to run every unit under (defaults to all four).
  std::vector<Config> configs{std::begin(kAllConfigs), std::end(kAllConfigs)};
  /// Step invocations per job with pseudo-random inputs (0 = skip execution).
  int exec_cycles = 0;
  /// Clear caches before every invocation (unknown-initial-state runs, as in
  /// the WCET soundness sweeps).
  bool cold_caches = false;
  /// Compute the static WCET bound of the entry function.
  bool wcet = false;
  /// Additionally compute the bound with cache analysis disabled.
  bool wcet_nocache = false;
  /// Path-analysis backend(s) for the main bound. Structural fills only
  /// wcet_cycles; Ipet fills wcet_cycles (= the IPET bound) plus the
  /// per-engine record fields; Both records each bound so reports can
  /// quantify the tightness delta. The nocache ablation bound always uses
  /// the structural engine (it isolates the cache analysis, not the path
  /// analysis).
  wcet::WcetEngine wcet_engine = wcet::WcetEngine::Structural;
  bool use_annotations = true;
  /// Arm the runtime execution monitor on every simulated run: `Cfg` checks
  /// every control transfer against the reconstructed CFG, `Full` adds
  /// live-value annotation checks and per-entry loop-bound counting
  /// (machine/monitor.hpp). A violation fails the job (ok=false, the
  /// MonitorError text in `error`, monitor_violations set) — the campaign
  /// then carries a dynamically-refuted static claim, which reports must
  /// surface loudly.
  machine::MonitorMode monitor = machine::MonitorMode::Off;
  /// Enables the SSA mid-end for every job (CompileOptions::ssa: the
  /// bracket runs on the optimizing configurations, the pattern
  /// configurations ignore it). Part of the artifact-store key — SSA and
  /// non-SSA campaigns never share cached compiles.
  bool ssa = false;
  /// Optimization passes dropped from every job's pipeline
  /// (CompileOptions::disable_passes — the ablation-arm surface). Part of
  /// the artifact-store key like `ssa`.
  std::vector<std::string> disable_passes;
  /// Base seed for the per-job input streams; the job for unit i draws from
  /// Rng(seed_for(suite_seed, i)) regardless of config and worker count.
  std::uint64_t suite_seed = 7;
  /// Optional content-addressed artifact store. When set, every job first
  /// looks up its (source, entry, config, target, annotations,
  /// compiler-version)
  /// key: a full hit replays the cached results without compiling; an
  /// image-only hit (same compile, different run parameters) reuses the
  /// cached executable and recomputes just execution/WCET; a miss compiles
  /// cold and publishes. Corrupt entries fall back to a cold compile.
  /// The store must outlive the run_fleet call; it may be shared across
  /// runs and processes (that is what makes campaign restarts warm).
  artifact::ArtifactStore* store = nullptr;
  /// When set, replaces compile_program for every job — the attachment point
  /// for validated campaigns (validate::validated_compile cannot be named
  /// here: src/validate links against the driver). Jobs with an override
  /// bypass the artifact store entirely, so the override (and its checkers)
  /// actually runs instead of being replayed from cache.
  std::function<Compiled(const minic::Program&, Config,
                         const CompileOptions&)>
      compile_override;
};

/// The input stream seed for unit `index` (SplitMix64 golden-ratio mix, so
/// neighbouring units get uncorrelated streams).
std::uint64_t fleet_job_seed(std::uint64_t suite_seed, std::size_t index);

/// The outcome of one (unit, config) job.
struct FleetRecord {
  std::string name;
  Config config{};
  bool ok = false;
  std::string error;  // set when !ok (compile/exec/WCET failure)

  std::uint32_t code_bytes = 0;       // entry function code size
  machine::ExecStats exec;            // accumulated over exec_cycles
  std::uint64_t observed_max_cycles = 0;  // max single-invocation cycles
  /// The structural bound (engine structural/both) or the IPET bound
  /// (engine ipet) — existing consumers keep reading the engine they asked
  /// for here.
  std::uint64_t wcet_cycles = 0;
  std::uint64_t wcet_nocache_cycles = 0;
  /// IPET engine results; zero when the engine did not run.
  std::uint64_t wcet_ipet_cycles = 0;
  int wcet_ipet_capped_edges = 0;     // infeasible-edge constraints used
  bool wcet_ipet_certified = false;   // flow certificate independently checked

  /// Execution-monitor outcome (zero when the monitor was off). Steps are
  /// monitor-checked instructions summed over the job's exec cycles;
  /// violations count MonitorErrors (a violation also fails the job, so
  /// this is 0 or 1 per record — the first refuted fact aborts the run).
  std::uint64_t monitored_steps = 0;
  std::uint64_t monitor_violations = 0;

  // Artifact-cache outcome for this job (false/false when caching is off or
  // the job was a miss). `cache_hit` = full hit, results replayed from the
  // store; `cache_image_hit` = executable reused, results recomputed.
  bool cache_hit = false;
  bool cache_image_hit = false;

  // Per-job wall time, split by phase (observability layer).
  double compile_seconds = 0.0;
  double exec_seconds = 0.0;
  double wcet_seconds = 0.0;
  double cache_lookup_seconds = 0.0;
  double cache_publish_seconds = 0.0;
  // Per-pass pipeline telemetry for this job's compile: wall time, rewrite
  // counts, IR-size deltas, validator check counts (empty on cache hits).
  pass::PipelineStats pass_stats;
};

struct FleetReport {
  /// units.size() * configs.size() records, unit-major then config, in the
  /// order given to run_fleet.
  std::vector<FleetRecord> records;
  std::string target;  // the campaign's target ISA
  bool ssa = false;    // SSA mid-end enabled for the campaign's compiles
  std::size_t units = 0;
  std::size_t configs = 0;
  int jobs = 0;             // worker count actually used
  double wall_seconds = 0.0;
  // Aggregate phase times summed over jobs (> wall_seconds when parallel).
  double compile_seconds = 0.0;
  double exec_seconds = 0.0;
  double wcet_seconds = 0.0;
  // Aggregate per-pass pipeline telemetry summed over jobs.
  pass::PipelineStats pass_stats;

  // Cross-engine WCET aggregates (engine != structural; zero otherwise).
  wcet::WcetEngine wcet_engine = wcet::WcetEngine::Structural;
  std::uint64_t ipet_records = 0;    // ok records carrying an IPET bound
  std::uint64_t ipet_certified = 0;  // ... whose certificate verified
  std::uint64_t ipet_tighter = 0;    // ... strictly below structural (Both)
  std::uint64_t ipet_capped_edge_records = 0;  // ... with >= 1 capped edge
  double ipet_tightening_sum = 0.0;  // sum of (structural-ipet)/structural

  // Execution-monitor aggregates (mode Off => all zero).
  machine::MonitorMode monitor_mode = machine::MonitorMode::Off;
  std::uint64_t monitored_records = 0;  // records that ran armed
  std::uint64_t monitored_steps = 0;    // instructions checked, summed
  std::uint64_t monitor_violations = 0; // refuted static claims (must be 0)

  // Artifact-cache aggregates (all zero when no store was attached).
  bool cache_enabled = false;
  std::uint64_t cache_full_hits = 0;
  std::uint64_t cache_image_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_lookup_seconds = 0.0;
  double cache_publish_seconds = 0.0;
  artifact::StoreStats store_stats;  // store-lifetime counters snapshot

  /// Service-layer counters (vccd): zero/disabled for plain in-process
  /// campaigns. A report assembled from daemon replies sets `enabled` and
  /// the serving-side stats, which land in the schema-v6 "service" stanza.
  struct ServiceStats {
    bool enabled = false;
    int shards = 0;                      // 0 = single-process daemon
    std::uint64_t requests = 0;          // job requests served
    std::uint64_t incremental_hits = 0;  // in-memory dependency-hash hits
    std::uint64_t queue_peak = 0;        // deepest queue observed
    std::uint64_t shard_restarts = 0;    // dead shards respawned
  };
  ServiceStats service;

  [[nodiscard]] const FleetRecord& at(std::size_t unit,
                                      std::size_t config) const {
    return records[unit * configs + config];
  }
  /// Node-chains completed per wall-clock second (units * configs jobs).
  [[nodiscard]] double nodes_per_second() const;
  /// Human-readable throughput counters for the bench footers.
  [[nodiscard]] std::string throughput_summary() const;
};

/// Runs every unit under every configuration and returns the ordered report.
/// Individual job failures are recorded (ok=false), not thrown. Throws
/// std::invalid_argument for negative FleetOptions::jobs.
FleetReport run_fleet(const std::vector<FleetUnit>& units,
                      const FleetOptions& options = {});

/// The machine-readable campaign report (--report-json): the full record
/// array plus the aggregate header, as a JSON document. BENCH_*.json
/// trajectories come from this instead of scraped stdout.
json::Value to_json(const FleetReport& report);

/// The semantic (determinism-relevant) fields of one record as JSON: name,
/// config, outcome, code size, execution stats, bounds, monitor counters —
/// everything except wall-time and cache-provenance fields. Two runs of the
/// same job must dump byte-identical documents regardless of worker count,
/// batching, caching, or which daemon shard served them; the service reply
/// protocol and the determinism soaks compare exactly this.
json::Value record_core_json(const FleetRecord& record);

/// Serializes to_json(report) to `path` (pretty-printed, trailing newline).
/// Returns false if the file cannot be written.
bool write_report_json(const FleetReport& report, const std::string& path);

}  // namespace vc::driver
