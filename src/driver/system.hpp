// The "operational system" stand-in: a cyclic executive running many nodes
// in one image (the paper's flight software is thousands of ACG nodes
// dispatched by a static schedule each minor frame; §3.3 computes per-node
// WCETs precisely because nodes are scheduled as units).
//
// A FlightSystem owns a set of generated nodes, wires node outputs to other
// nodes' inputs through the global signal table, compiles everything into a
// single image per configuration, executes whole frames on the simulator,
// and budgets the frame WCET as the sum of per-node bounds (sound under the
// drain-at-branch machine: node boundaries are blr/call boundaries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dataflow/acg.hpp"
#include "dataflow/node.hpp"
#include "driver/compiler.hpp"
#include "machine/machine.hpp"

namespace vc::driver {

class FlightSystem {
 public:
  /// Adds a node to the schedule (executed in insertion order).
  void add_node(dataflow::Node node);

  /// Connects output `out_index` of `producer` to input `in_index` of
  /// `consumer` (by node name). The wiring is applied by the frame driver:
  /// after the producer steps, its output global feeds the consumer's input.
  void connect(const std::string& producer, int out_index,
               const std::string& consumer, int in_index);

  /// Generates the combined program (all nodes + signal globals).
  /// Must be called after all add_node/connect calls.
  void elaborate();

  [[nodiscard]] const minic::Program& program() const { return program_; }

  /// Compiles the whole system under `config`.
  [[nodiscard]] Compiled compile(Config config) const;

  /// Frame execution statistics.
  struct FrameStats {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
  };

  /// Runs one frame (every node once, in schedule order) on `machine`,
  /// feeding unconnected inputs from `external` (name -> values in input
  /// order) and routing connected signals. Returns accumulated stats.
  FrameStats run_frame(
      machine::Machine& machine,
      const std::map<std::string, std::vector<minic::Value>>& external) const;

  /// Frame WCET budget: the sum of per-node WCET bounds for `compiled`.
  /// Returns per-node bounds plus the total.
  struct FrameWcet {
    std::uint64_t total = 0;
    std::vector<std::pair<std::string, std::uint64_t>> per_node;
  };
  [[nodiscard]] FrameWcet frame_wcet(const Compiled& compiled) const;

  [[nodiscard]] const std::vector<dataflow::Node>& nodes() const {
    return nodes_;
  }

 private:
  struct Wire {
    std::string producer;
    int out_index = 0;
    std::string consumer;
    int in_index = 0;
  };

  std::vector<dataflow::Node> nodes_;
  std::vector<Wire> wires_;
  minic::Program program_;
  bool elaborated_ = false;
};

}  // namespace vc::driver
