#include "driver/system.hpp"

#include <algorithm>

#include "minic/typecheck.hpp"
#include "wcet/wcet.hpp"

namespace vc::driver {

void FlightSystem::add_node(dataflow::Node node) {
  check(!elaborated_, "add_node after elaborate");
  node.validate();
  for (const auto& existing : nodes_)
    check(existing.name() != node.name(), "duplicate node name");
  nodes_.push_back(std::move(node));
}

void FlightSystem::connect(const std::string& producer, int out_index,
                           const std::string& consumer, int in_index) {
  check(!elaborated_, "connect after elaborate");
  wires_.push_back(Wire{producer, out_index, consumer, in_index});
}

void FlightSystem::elaborate() {
  check(!elaborated_, "elaborate called twice");
  program_ = minic::Program{};
  program_.name = "flight_system";
  for (const auto& node : nodes_) dataflow::generate_node(node, &program_);
  minic::type_check(program_);

  // Validate wiring against the generated interfaces.
  for (const Wire& w : wires_) {
    const auto producer =
        std::find_if(nodes_.begin(), nodes_.end(),
                     [&](const auto& n) { return n.name() == w.producer; });
    const auto consumer =
        std::find_if(nodes_.begin(), nodes_.end(),
                     [&](const auto& n) { return n.name() == w.consumer; });
    check(producer != nodes_.end(), "unknown producer '" + w.producer + "'");
    check(consumer != nodes_.end(), "unknown consumer '" + w.consumer + "'");
    check(w.out_index >= 0 && w.out_index < producer->output_count(),
          "output index out of range on wire from '" + w.producer + "'");
    const minic::Function* fn = program_.find_function(
        dataflow::step_function_name(*consumer));
    check(fn != nullptr && w.in_index >= 0 &&
              static_cast<std::size_t>(w.in_index) < fn->params.size() &&
              fn->params[static_cast<std::size_t>(w.in_index)].type ==
                  minic::Type::F64,
          "input index out of range on wire into '" + w.consumer + "'");
  }
  elaborated_ = true;
}

Compiled FlightSystem::compile(Config config) const {
  check(elaborated_, "compile before elaborate");
  return compile_program(program_, config);
}

FlightSystem::FrameStats FlightSystem::run_frame(
    machine::Machine& machine,
    const std::map<std::string, std::vector<minic::Value>>& external) const {
  check(elaborated_, "run_frame before elaborate");
  FrameStats stats;
  // Latched signal values routed between nodes within the frame.
  std::map<std::pair<std::string, int>, minic::Value> latched;

  for (const auto& node : nodes_) {
    const std::string fn = dataflow::step_function_name(node);
    const minic::Function* decl = program_.find_function(fn);
    check(decl != nullptr, "missing step function");

    // Assemble this node's argument list: wired inputs take the producer's
    // latched output; the rest come from `external`.
    std::vector<minic::Value> args(decl->params.size());
    std::vector<bool> wired(decl->params.size(), false);
    for (const Wire& w : wires_) {
      if (w.consumer != node.name()) continue;
      auto it = latched.find({w.producer, w.out_index});
      check(it != latched.end(),
            "wire from '" + w.producer + "' consumed before production "
            "(schedule order)");
      args[static_cast<std::size_t>(w.in_index)] = it->second;
      wired[static_cast<std::size_t>(w.in_index)] = true;
    }
    auto ext = external.find(node.name());
    std::size_t next_ext = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (wired[i]) continue;
      if (ext != external.end() && next_ext < ext->second.size()) {
        args[i] = ext->second[next_ext++];
      } else {
        args[i] = decl->params[i].type == minic::Type::F64
                      ? minic::Value::of_f64(0.0)
                      : minic::Value::of_i32(0);
      }
      check(args[i].type == decl->params[i].type,
            "external input type mismatch for '" + node.name() + "'");
    }

    machine.call(fn, args, minic::Type::I32);
    stats.cycles += machine.stats().cycles;
    stats.instructions += machine.stats().instructions;

    for (int k = 0; k < node.output_count(); ++k) {
      latched[{node.name(), k}] = machine.read_global(
          dataflow::output_global(node, k), 0, minic::Type::F64);
    }
  }
  return stats;
}

FlightSystem::FrameWcet FlightSystem::frame_wcet(
    const Compiled& compiled) const {
  check(elaborated_, "frame_wcet before elaborate");
  FrameWcet out;
  for (const auto& node : nodes_) {
    const std::string fn = dataflow::step_function_name(node);
    const std::uint64_t bound =
        wcet::analyze_wcet(compiled.image, fn).wcet_cycles;
    out.per_node.emplace_back(node.name(), bound);
    out.total += bound;
  }
  return out;
}

}  // namespace vc::driver
