// Machine-readable campaign reports (--report-json): the full FleetReport —
// every record plus the aggregate header — as one JSON document, so
// BENCH_*.json trajectories come from the tool instead of scraped stdout.
#include <fstream>

#include "driver/fleet.hpp"

namespace vc::driver {

namespace {

json::Value pass_stats_json(const pass::PipelineStats& stats) {
  json::Array passes;
  passes.reserve(stats.passes.size());
  for (const pass::PassStat& p : stats.passes) {
    json::Value v;
    v["name"] = json::Value(p.name);
    v["seconds"] = json::Value(p.seconds);
    v["runs"] = json::Value(p.runs);
    v["applied"] = json::Value(p.applied);
    v["rewrites"] = json::Value(static_cast<std::int64_t>(p.rewrites));
    v["ir_delta"] = json::Value(static_cast<std::int64_t>(p.ir_delta));
    v["checks"] = json::Value(p.checks);
    passes.push_back(std::move(v));
  }
  return json::Value(std::move(passes));
}

json::Value exec_json(const machine::ExecStats& s) {
  json::Value e;
  e["cycles"] = json::Value(s.cycles);
  e["instructions"] = json::Value(s.instructions);
  e["dcache_reads"] = json::Value(s.dcache_reads);
  e["dcache_writes"] = json::Value(s.dcache_writes);
  e["dcache_read_misses"] = json::Value(s.dcache_read_misses);
  e["dcache_write_misses"] = json::Value(s.dcache_write_misses);
  e["ifetch_line_misses"] = json::Value(s.ifetch_line_misses);
  e["taken_branches"] = json::Value(s.taken_branches);
  return e;
}

json::Value record_json(const FleetRecord& r) {
  // Semantic core first, then the provenance/timing overlay — the overlay
  // is exactly what the determinism diffs strip.
  json::Value v = record_core_json(r);
  v["cache_hit"] = json::Value(r.cache_hit);
  v["cache_image_hit"] = json::Value(r.cache_image_hit);
  v["compile_seconds"] = json::Value(r.compile_seconds);
  v["exec_seconds"] = json::Value(r.exec_seconds);
  v["wcet_seconds"] = json::Value(r.wcet_seconds);
  v["cache_lookup_seconds"] = json::Value(r.cache_lookup_seconds);
  v["cache_publish_seconds"] = json::Value(r.cache_publish_seconds);
  return v;
}

}  // namespace

json::Value record_core_json(const FleetRecord& r) {
  json::Value v;
  v["name"] = json::Value(r.name);
  v["config"] = json::Value(to_string(r.config));
  v["ok"] = json::Value(r.ok);
  if (!r.ok) v["error"] = json::Value(r.error);
  v["code_bytes"] = json::Value(r.code_bytes);
  v["exec"] = exec_json(r.exec);
  v["observed_max_cycles"] = json::Value(r.observed_max_cycles);
  v["wcet_cycles"] = json::Value(r.wcet_cycles);
  v["wcet_nocache_cycles"] = json::Value(r.wcet_nocache_cycles);
  v["wcet_ipet_cycles"] = json::Value(r.wcet_ipet_cycles);
  v["wcet_ipet_capped_edges"] =
      json::Value(static_cast<std::int64_t>(r.wcet_ipet_capped_edges));
  v["wcet_ipet_certified"] = json::Value(r.wcet_ipet_certified);
  v["monitored_steps"] = json::Value(r.monitored_steps);
  v["monitor_violations"] = json::Value(r.monitor_violations);
  return v;
}

json::Value to_json(const FleetReport& report) {
  json::Value doc;
  // v2: "pass_timings" (fixed six-field RTL object) became "pass_stats", an
  // ordered per-pass array with wall time, run/applied/rewrite counts,
  // IR-size delta, and validator check counts for every pipeline step.
  // v3: per-record IPET fields (wcet_ipet_cycles / _capped_edges /
  // _certified) and the header's "wcet" engine/aggregate stanza.
  // v4: per-record execution-monitor fields (monitored_steps /
  // monitor_violations) and the header's "monitor" mode/aggregate stanza.
  // v5: the header's "service" stanza (vccd daemon campaigns: shard count,
  // request/queue counters, incremental-recompilation hits).
  // v6: the header's "target" field (the campaign's target ISA).
  // v7: the header's "ssa" field (SSA mid-end enabled for the campaign) and
  // the SSA bracket steps appearing in "pass_stats".
  doc["schema"] = json::Value("vcflight-fleet-report-v7");
  doc["compiler_version"] = json::Value(kCompilerVersion);
  doc["target"] = json::Value(report.target);
  doc["ssa"] = json::Value(report.ssa);
  doc["units"] = json::Value(static_cast<std::uint64_t>(report.units));
  doc["configs"] = json::Value(static_cast<std::uint64_t>(report.configs));
  doc["jobs"] = json::Value(static_cast<std::int64_t>(report.jobs));
  doc["wall_seconds"] = json::Value(report.wall_seconds);
  doc["nodes_per_second"] = json::Value(report.nodes_per_second());
  doc["compile_seconds"] = json::Value(report.compile_seconds);
  doc["exec_seconds"] = json::Value(report.exec_seconds);
  doc["wcet_seconds"] = json::Value(report.wcet_seconds);
  doc["pass_stats"] = pass_stats_json(report.pass_stats);

  json::Value wcet_doc;
  wcet_doc["engine"] = json::Value(wcet::to_string(report.wcet_engine));
  wcet_doc["ipet_records"] = json::Value(report.ipet_records);
  wcet_doc["ipet_certified"] = json::Value(report.ipet_certified);
  wcet_doc["ipet_tighter"] = json::Value(report.ipet_tighter);
  wcet_doc["ipet_capped_edge_records"] =
      json::Value(report.ipet_capped_edge_records);
  wcet_doc["ipet_tightening_sum"] = json::Value(report.ipet_tightening_sum);
  doc["wcet"] = std::move(wcet_doc);

  json::Value monitor;
  monitor["mode"] = json::Value(machine::to_string(report.monitor_mode));
  monitor["records"] = json::Value(report.monitored_records);
  monitor["steps"] = json::Value(report.monitored_steps);
  monitor["violations"] = json::Value(report.monitor_violations);
  doc["monitor"] = std::move(monitor);

  json::Value cache;
  cache["enabled"] = json::Value(report.cache_enabled);
  if (report.cache_enabled) {
    cache["full_hits"] = json::Value(report.cache_full_hits);
    cache["image_hits"] = json::Value(report.cache_image_hits);
    cache["misses"] = json::Value(report.cache_misses);
    cache["lookup_seconds"] = json::Value(report.cache_lookup_seconds);
    cache["publish_seconds"] = json::Value(report.cache_publish_seconds);
    json::Value store;
    store["lookups"] = json::Value(report.store_stats.lookups);
    store["hits"] = json::Value(report.store_stats.hits);
    store["misses"] = json::Value(report.store_stats.misses);
    store["publishes"] = json::Value(report.store_stats.publishes);
    store["publish_races"] = json::Value(report.store_stats.publish_races);
    store["stats_updates"] = json::Value(report.store_stats.stats_updates);
    store["corrupt_dropped"] = json::Value(report.store_stats.corrupt_dropped);
    store["evictions"] = json::Value(report.store_stats.evictions);
    store["resident_entries"] =
        json::Value(report.store_stats.resident_entries);
    store["resident_bytes"] = json::Value(report.store_stats.resident_bytes);
    cache["store"] = std::move(store);
  }
  doc["cache"] = std::move(cache);

  json::Value service;
  service["enabled"] = json::Value(report.service.enabled);
  if (report.service.enabled) {
    service["shards"] =
        json::Value(static_cast<std::int64_t>(report.service.shards));
    service["requests"] = json::Value(report.service.requests);
    service["incremental_hits"] = json::Value(report.service.incremental_hits);
    service["queue_peak"] = json::Value(report.service.queue_peak);
    service["shard_restarts"] = json::Value(report.service.shard_restarts);
  }
  doc["service"] = std::move(service);

  json::Array records;
  records.reserve(report.records.size());
  for (const FleetRecord& r : report.records) records.push_back(record_json(r));
  doc["records"] = json::Value(std::move(records));
  return doc;
}

bool write_report_json(const FleetReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json(report).dump(1) << "\n";
  return out.good();
}

}  // namespace vc::driver
