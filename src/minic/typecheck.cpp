#include "minic/typecheck.hpp"

#include <map>
#include <set>
#include <string>

namespace vc::minic {
namespace {

class Checker {
 public:
  Checker(const Program& program, const Function& fn)
      : program_(program), fn_(fn) {
    for (const auto& p : fn.params) {
      if (!vars_.emplace(p.name, p.type).second)
        fail("duplicate parameter '" + p.name + "'");
    }
    for (const auto& l : fn.locals) {
      if (!vars_.emplace(l.name, l.type).second)
        fail("duplicate local '" + l.name + "' in function '" + fn.name + "'");
    }
  }

  void run() { check_block(fn_.body); }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw CompileError("in function '" + fn_.name + "': " + message);
  }

  Type check_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        expect(e, Type::I32);
        return Type::I32;
      case ExprKind::FloatLit:
        expect(e, Type::F64);
        return Type::F64;
      case ExprKind::LocalRef: {
        auto it = vars_.find(e.name);
        if (it == vars_.end()) fail("unknown variable '" + e.name + "'");
        if (it->second != e.type)
          fail("variable '" + e.name + "' used with wrong type");
        return it->second;
      }
      case ExprKind::GlobalRef: {
        const Global* g = program_.find_global(e.name);
        if (g == nullptr) fail("unknown global '" + e.name + "'");
        if (g->count != 1) fail("array global '" + e.name + "' used as scalar");
        if (g->type != e.type)
          fail("global '" + e.name + "' used with wrong type");
        return g->type;
      }
      case ExprKind::Index: {
        const Global* g = program_.find_global(e.name);
        if (g == nullptr) fail("unknown global '" + e.name + "'");
        if (g->count == 1) fail("scalar global '" + e.name + "' indexed");
        require(e.args.size() == 1, "Index arity");
        if (check_expr(*e.args[0]) != Type::I32)
          fail("array index must be i32");
        if (g->type != e.type)
          fail("array '" + e.name + "' used with wrong element type");
        return g->type;
      }
      case ExprKind::Unary: {
        require(e.args.size() == 1, "Unary arity");
        if (check_expr(*e.args[0]) != operand_type(e.un_op))
          fail("operand type mismatch for unary " + to_string(e.un_op));
        if (e.type != result_type(e.un_op))
          fail("result type mismatch for unary " + to_string(e.un_op));
        return e.type;
      }
      case ExprKind::Binary: {
        require(e.args.size() == 2, "Binary arity");
        const Type want = operand_type(e.bin_op);
        if (check_expr(*e.args[0]) != want || check_expr(*e.args[1]) != want)
          fail("operand type mismatch for binary " + to_string(e.bin_op));
        if (e.type != result_type(e.bin_op))
          fail("result type mismatch for binary " + to_string(e.bin_op));
        return e.type;
      }
      case ExprKind::Select: {
        require(e.args.size() == 3, "Select arity");
        if (check_expr(*e.args[0]) != Type::I32)
          fail("select condition must be i32");
        const Type a = check_expr(*e.args[1]);
        const Type b = check_expr(*e.args[2]);
        if (a != b) fail("select arms have different types");
        if (e.type != a) fail("select result type mismatch");
        return a;
      }
    }
    fail("corrupt expression node");
  }

  void expect(const Expr& e, Type t) const {
    if (e.type != t) fail("literal with wrong type annotation");
  }

  void require(bool cond, const std::string& what) const {
    if (!cond) fail("malformed AST: " + what);
  }

  void check_block(const std::vector<StmtPtr>& block) {
    for (const auto& s : block) check_stmt(*s);
  }

  void check_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: {
        Type lhs_type;
        if (s.lhs_is_global) {
          const Global* g = program_.find_global(s.lhs_name);
          if (g == nullptr) fail("assignment to unknown global '" + s.lhs_name + "'");
          if (s.lhs_index != nullptr) {
            if (g->count == 1) fail("scalar global '" + s.lhs_name + "' indexed");
            if (check_expr(*s.lhs_index) != Type::I32)
              fail("array index must be i32");
          } else if (g->count != 1) {
            fail("array global '" + s.lhs_name + "' assigned as scalar");
          }
          lhs_type = g->type;
        } else {
          auto it = vars_.find(s.lhs_name);
          if (it == vars_.end())
            fail("assignment to unknown variable '" + s.lhs_name + "'");
          if (s.lhs_index != nullptr) fail("locals cannot be indexed");
          lhs_type = it->second;
        }
        if (check_expr(*s.value) != lhs_type)
          fail("assignment type mismatch for '" + s.lhs_name + "'");
        return;
      }
      case StmtKind::If: {
        if (check_expr(*s.value) != Type::I32) fail("if condition must be i32");
        check_block(s.body);
        check_block(s.else_body);
        return;
      }
      case StmtKind::For: {
        auto it = vars_.find(s.loop_var);
        if (it == vars_.end())
          fail("loop variable '" + s.loop_var + "' is not declared");
        if (it->second != Type::I32) fail("loop variable must be i32");
        if (check_expr(*s.value) != Type::I32) fail("loop init must be i32");
        if (check_expr(*s.loop_limit) != Type::I32)
          fail("loop limit must be i32");
        // MISRA 13.6-style rule: the loop counter must not be assigned in the
        // body (this is also what makes loop-bound analysis work, §4.2 of the
        // companion guideline paper).
        if (assigns_variable(s.body, s.loop_var))
          fail("loop variable '" + s.loop_var + "' modified in loop body");
        check_block(s.body);
        return;
      }
      case StmtKind::While: {
        if (check_expr(*s.value) != Type::I32)
          fail("while condition must be i32");
        check_block(s.body);
        return;
      }
      case StmtKind::Return: {
        if (fn_.has_return) {
          if (s.value == nullptr) fail("missing return value");
          if (check_expr(*s.value) != fn_.return_type)
            fail("return type mismatch");
        } else if (s.value != nullptr) {
          fail("void function returns a value");
        }
        return;
      }
      case StmtKind::Annot: {
        for (const auto& a : s.annot_args) {
          if (a->kind != ExprKind::LocalRef)
            fail("__annot arguments must be locals or parameters");
          check_expr(*a);
        }
        return;
      }
    }
    fail("corrupt statement node");
  }

  static bool assigns_variable(const std::vector<StmtPtr>& block,
                               const std::string& name) {
    for (const auto& s : block) {
      if (s->kind == StmtKind::Assign && !s->lhs_is_global &&
          s->lhs_name == name)
        return true;
      if ((s->kind == StmtKind::For || s->kind == StmtKind::While ||
           s->kind == StmtKind::If)) {
        if (s->kind == StmtKind::For && s->loop_var == name) return true;
        if (assigns_variable(s->body, name)) return true;
        if (assigns_variable(s->else_body, name)) return true;
      }
    }
    return false;
  }

  const Program& program_;
  const Function& fn_;
  std::map<std::string, Type> vars_;
};

}  // namespace

void type_check_function(const Program& program, const Function& fn) {
  Checker(program, fn).run();
}

void type_check(const Program& program) {
  std::set<std::string> global_names;
  for (const auto& g : program.globals) {
    if (!global_names.insert(g.name).second)
      throw CompileError("duplicate global '" + g.name + "'");
    if (g.count == 0) throw CompileError("zero-sized global '" + g.name + "'");
    if (!g.init.empty() && g.init.size() != g.count)
      throw CompileError("initializer size mismatch for '" + g.name + "'");
  }
  std::set<std::string> fn_names;
  for (const auto& f : program.functions) {
    if (!fn_names.insert(f.name).second)
      throw CompileError("duplicate function '" + f.name + "'");
    type_check_function(program, f);
  }
}

}  // namespace vc::minic
