// Pretty-printer for mini-C. The output is re-parseable by the mini-C parser
// (round-trip tested), which is how generated nodes are stored as source files.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace vc::minic {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_function(const Function& fn);
std::string print_program(const Program& program);

}  // namespace vc::minic
