// Recursive-descent parser for mini-C.
//
// Types are synthesized during parsing (the grammar is simple enough that
// every expression's type is determined by its leaves), so the parser both
// builds and type-annotates the AST; `type_check` re-verifies the result.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace vc::minic {

/// Parses a whole program. Throws CompileError with source locations.
Program parse_program(const std::string& source,
                      const std::string& program_name = "program");

}  // namespace vc::minic
