// Mini-C static checks: name resolution, typing, and MISRA-style structural
// constraints (cf. paper §2.1 and the coding-guideline discussion of the same
// proceedings: counted loops, no recursion, statically sized arrays).
#pragma once

#include "minic/ast.hpp"

namespace vc::minic {

/// Verifies a whole program. Throws CompileError on the first violation.
/// On success, every Expr::type field is consistent with its operands.
void type_check(const Program& program);

/// Verifies one function against the program's global environment.
void type_check_function(const Program& program, const Function& fn);

}  // namespace vc::minic
