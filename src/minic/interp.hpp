// Reference interpreter for mini-C.
//
// This is the semantic oracle of the whole reproduction: every compiler
// configuration is differential-tested against it (machine execution of the
// compiled binary must produce bit-identical results). Its arithmetic is
// therefore defined to match the target machine exactly:
//   - i32 ops wrap modulo 2^32; shifts follow PowerPC slw/sraw/srw semantics;
//   - idiv truncates toward zero; INT_MIN / -1 yields INT_MIN;
//   - f64 ops are host IEEE-754 doubles (the target FPU is IEEE too);
//   - f64 -> i32 conversion truncates toward zero and saturates (fctiwz).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace vc::minic {

/// A runtime scalar value.
struct Value {
  Type type = Type::I32;
  std::int32_t i = 0;
  double f = 0.0;

  static Value of_i32(std::int32_t v) { return Value{Type::I32, v, 0.0}; }
  static Value of_f64(double v) { return Value{Type::F64, 0, v}; }

  bool operator==(const Value& other) const;
  [[nodiscard]] std::string to_string() const;
};

/// A runtime error: division by zero, out-of-bounds index, fuel exhaustion.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& message)
      : std::runtime_error(message) {}
};

/// One `__annot` execution: the format string plus the argument values
/// observed at that moment (paper §3.4's "pro-forma effect" semantics).
struct AnnotEvent {
  std::string format;
  std::vector<Value> values;
};

// Exact operator semantics, shared with the machine simulator so both sides
// agree by construction.
std::int32_t eval_ibinop(BinOp op, std::int32_t a, std::int32_t b);
double eval_fbinop(BinOp op, double a, double b);       // arithmetic f64 ops
std::int32_t eval_fcmp(BinOp op, double a, double b);   // f64 comparisons
Value eval_unop(UnOp op, const Value& a);

class Interpreter {
 public:
  explicit Interpreter(const Program& program);

  /// Resets all globals to their declared initializers (zero by default).
  void reset_globals();

  /// Calls `fn_name` with `args`; returns the function result (an arbitrary
  /// i32 0 for void functions). Throws EvalError on runtime faults.
  Value call(const std::string& fn_name, const std::vector<Value>& args);

  [[nodiscard]] Value read_global(const std::string& name,
                                  std::size_t index = 0) const;
  void write_global(const std::string& name, std::size_t index, Value v);

  /// Annotation events observed during the most recent `call`.
  [[nodiscard]] const std::vector<AnnotEvent>& annotations() const {
    return annotations_;
  }

  /// Statements executed during the most recent `call`.
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

  /// Execution budget per call; guards against unbounded while loops.
  void set_fuel(std::uint64_t fuel) { fuel_ = fuel; }

 private:
  struct Frame {
    std::map<std::string, Value> vars;
  };

  enum class Flow { Normal, Returned };

  Value eval(const Expr& e, Frame& frame);
  Flow exec_block(const std::vector<StmtPtr>& block, Frame& frame);
  Flow exec_stmt(const Stmt& s, Frame& frame);
  void tick();

  const Program& program_;
  std::map<std::string, std::vector<Value>> globals_;
  std::vector<AnnotEvent> annotations_;
  Value return_value_ = Value::of_i32(0);
  std::uint64_t steps_ = 0;
  std::uint64_t fuel_ = 50'000'000;
};

}  // namespace vc::minic
