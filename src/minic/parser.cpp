#include "minic/parser.hpp"

#include <limits>
#include <map>

#include "minic/lexer.hpp"

namespace vc::minic {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string name)
      : tokens_(std::move(tokens)), name_(std::move(name)) {}

  Program run() {
    Program program;
    program.name = name_;
    program_ = &program;
    while (!at(TokKind::End)) {
      if (at_keyword("global")) {
        parse_global(program);
      } else if (at_keyword("func")) {
        parse_function(program);
      } else {
        fail("expected 'global' or 'func'");
      }
    }
    return program;
  }

 private:
  // --- token helpers -------------------------------------------------------

  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }

  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }

  [[nodiscard]] bool at_keyword(const std::string& kw) const {
    return cur().kind == TokKind::Keyword && cur().text == kw;
  }

  [[nodiscard]] bool at_punct(const std::string& p) const {
    return cur().kind == TokKind::Punct && cur().text == p;
  }

  Token take() { return tokens_[pos_++]; }

  void expect_punct(const std::string& p) {
    if (!at_punct(p)) fail("expected '" + p + "'");
    take();
  }

  void expect_keyword(const std::string& kw) {
    if (!at_keyword(kw)) fail("expected '" + kw + "'");
    take();
  }

  std::string expect_ident() {
    if (!at(TokKind::Ident)) fail("expected identifier");
    return take().text;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw CompileError(message + " (got '" + cur().text + "')", cur().loc);
  }

  Type parse_type() {
    if (at_keyword("i32")) {
      take();
      return Type::I32;
    }
    if (at_keyword("f64")) {
      take();
      return Type::F64;
    }
    fail("expected type 'i32' or 'f64'");
  }

  // --- declarations --------------------------------------------------------

  double parse_init_scalar(Type t) {
    bool negative = false;
    if (at_punct("-")) {
      take();
      negative = true;
    }
    double v = 0.0;
    if (at(TokKind::IntLit)) {
      v = static_cast<double>(take().int_value);
    } else if (at(TokKind::FloatLit)) {
      if (t == Type::I32) fail("float initializer for i32 global");
      v = take().float_value;
    } else if (at_keyword("inf")) {
      take();
      v = std::numeric_limits<double>::infinity();
    } else {
      fail("expected literal initializer");
    }
    return negative ? -v : v;
  }

  void parse_global(Program& program) {
    expect_keyword("global");
    Global g;
    g.type = parse_type();
    g.name = expect_ident();
    if (at_punct("[")) {
      take();
      if (!at(TokKind::IntLit)) fail("expected array size");
      g.count = static_cast<std::size_t>(take().int_value);
      expect_punct("]");
    }
    if (at_punct("=")) {
      take();
      if (at_punct("{")) {
        take();
        g.init.push_back(parse_init_scalar(g.type));
        while (at_punct(",")) {
          take();
          g.init.push_back(parse_init_scalar(g.type));
        }
        expect_punct("}");
      } else {
        g.init.push_back(parse_init_scalar(g.type));
      }
    }
    expect_punct(";");
    program.globals.push_back(std::move(g));
  }

  void parse_function(Program& program) {
    expect_keyword("func");
    Function fn;
    if (at_keyword("void")) {
      take();
      fn.has_return = false;
    } else {
      fn.has_return = true;
      fn.return_type = parse_type();
    }
    fn.name = expect_ident();
    expect_punct("(");
    if (!at_punct(")")) {
      for (;;) {
        Param p;
        p.type = parse_type();
        p.name = expect_ident();
        fn.params.push_back(p);
        if (!at_punct(",")) break;
        take();
      }
    }
    expect_punct(")");
    expect_punct("{");

    vars_.clear();
    for (const auto& p : fn.params) vars_[p.name] = p.type;
    while (at_keyword("local")) {
      take();
      Local l;
      l.type = parse_type();
      l.name = expect_ident();
      expect_punct(";");
      if (!vars_.emplace(l.name, l.type).second)
        fail("duplicate declaration of '" + l.name + "'");
      fn.locals.push_back(l);
    }
    while (!at_punct("}")) fn.body.push_back(parse_stmt());
    take();  // '}'
    program.functions.push_back(std::move(fn));
  }

  // --- statements ----------------------------------------------------------

  std::vector<StmtPtr> parse_block() {
    expect_punct("{");
    std::vector<StmtPtr> body;
    while (!at_punct("}")) body.push_back(parse_stmt());
    take();
    return body;
  }

  StmtPtr parse_stmt() {
    const SourceLoc loc = cur().loc;
    StmtPtr s;
    if (at_keyword("if")) {
      s = parse_if();
    } else if (at_keyword("for")) {
      s = parse_for();
    } else if (at_keyword("while")) {
      take();
      expect_punct("(");
      ExprPtr cond = parse_expr();
      expect_punct(")");
      s = while_stmt(std::move(cond), parse_block());
    } else if (at_keyword("return")) {
      take();
      ExprPtr value;
      if (!at_punct(";")) value = parse_expr();
      expect_punct(";");
      s = return_stmt(std::move(value));
    } else if (at_keyword("__annot")) {
      s = parse_annot();
    } else if (at(TokKind::Ident)) {
      s = parse_assign();
    } else {
      fail("expected statement");
    }
    s->loc = loc;
    return s;
  }

  StmtPtr parse_if() {
    expect_keyword("if");
    expect_punct("(");
    ExprPtr cond = parse_expr();
    if (cond->type != Type::I32) fail("if condition must be i32");
    expect_punct(")");
    std::vector<StmtPtr> then_body = parse_block();
    std::vector<StmtPtr> else_body;
    if (at_keyword("else")) {
      take();
      if (at_keyword("if")) {
        else_body.push_back(parse_if());
      } else {
        else_body = parse_block();
      }
    }
    return if_stmt(std::move(cond), std::move(then_body), std::move(else_body));
  }

  StmtPtr parse_for() {
    // Canonical form only: for (v = init; v < limit; v = v + 1) { ... }
    expect_keyword("for");
    expect_punct("(");
    const std::string var = expect_ident();
    expect_punct("=");
    ExprPtr init = parse_expr();
    expect_punct(";");
    if (expect_ident() != var) fail("loop condition must test the loop variable");
    expect_punct("<");
    ExprPtr limit = parse_expr();
    expect_punct(";");
    if (expect_ident() != var) fail("loop step must update the loop variable");
    expect_punct("=");
    if (expect_ident() != var) fail("loop step must be 'v = v + 1'");
    expect_punct("+");
    if (!at(TokKind::IntLit) || cur().int_value != 1)
      fail("loop step must be 'v = v + 1'");
    take();
    expect_punct(")");
    return for_stmt(var, std::move(init), std::move(limit), parse_block());
  }

  StmtPtr parse_annot() {
    expect_keyword("__annot");
    expect_punct("(");
    if (!at(TokKind::StringLit)) fail("expected annotation format string");
    const std::string format = take().text;
    std::vector<ExprPtr> args;
    while (at_punct(",")) {
      take();
      args.push_back(parse_expr());
    }
    expect_punct(")");
    expect_punct(";");
    return annot_stmt(format, std::move(args));
  }

  StmtPtr parse_assign() {
    const std::string name = expect_ident();
    ExprPtr index;
    if (at_punct("[")) {
      take();
      index = parse_expr();
      expect_punct("]");
    }
    expect_punct("=");
    ExprPtr value = parse_expr();
    expect_punct(";");
    if (vars_.count(name) != 0 && index == nullptr)
      return assign_local(name, std::move(value));
    if (index != nullptr)
      return assign_element(name, std::move(index), std::move(value));
    return assign_global(name, std::move(value));
  }

  // --- expressions (precedence climbing) -----------------------------------

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!at_punct("?")) return cond;
    take();
    ExprPtr if_true = parse_expr();
    expect_punct(":");
    ExprPtr if_false = parse_ternary();
    if (if_true->type != if_false->type) fail("ternary arms differ in type");
    return select(std::move(cond), std::move(if_true), std::move(if_false));
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at_punct("||")) {
      take();
      lhs = make_binary(BinOp::IOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_bitor();
    while (at_punct("&&")) {
      take();
      lhs = make_binary(BinOp::IAnd, std::move(lhs), parse_bitor());
    }
    return lhs;
  }

  ExprPtr parse_bitor() {
    ExprPtr lhs = parse_bitxor();
    while (at_punct("|")) {
      take();
      lhs = make_binary(BinOp::IOr, std::move(lhs), parse_bitxor());
    }
    return lhs;
  }

  ExprPtr parse_bitxor() {
    ExprPtr lhs = parse_bitand();
    while (at_punct("^")) {
      take();
      lhs = make_binary(BinOp::IXor, std::move(lhs), parse_bitand());
    }
    return lhs;
  }

  ExprPtr parse_bitand() {
    ExprPtr lhs = parse_equality();
    while (at_punct("&")) {
      take();
      lhs = make_binary(BinOp::IAnd, std::move(lhs), parse_equality());
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    for (;;) {
      BinOp op;
      if (at_punct("==")) op = BinOp::ICmpEq;
      else if (at_punct("!=")) op = BinOp::ICmpNe;
      else return lhs;
      take();
      ExprPtr rhs = parse_relational();
      op = float_variant_if_needed(op, *lhs, *rhs);
      lhs = make_binary(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_shift();
    for (;;) {
      BinOp op;
      if (at_punct("<")) op = BinOp::ICmpLt;
      else if (at_punct("<=")) op = BinOp::ICmpLe;
      else if (at_punct(">")) op = BinOp::ICmpGt;
      else if (at_punct(">=")) op = BinOp::ICmpGe;
      else return lhs;
      take();
      ExprPtr rhs = parse_shift();
      op = float_variant_if_needed(op, *lhs, *rhs);
      lhs = make_binary(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_shift() {
    ExprPtr lhs = parse_additive();
    for (;;) {
      BinOp op;
      if (at_punct("<<")) op = BinOp::IShl;
      else if (at_punct(">>")) op = BinOp::IShr;
      else return lhs;
      take();
      lhs = make_binary(op, std::move(lhs), parse_additive());
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    for (;;) {
      bool add;
      if (at_punct("+")) add = true;
      else if (at_punct("-")) add = false;
      else return lhs;
      take();
      ExprPtr rhs = parse_multiplicative();
      const bool is_float = lhs->type == Type::F64;
      const BinOp op = add ? (is_float ? BinOp::FAdd : BinOp::IAdd)
                           : (is_float ? BinOp::FSub : BinOp::ISub);
      lhs = make_binary(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      int which;
      if (at_punct("*")) which = 0;
      else if (at_punct("/")) which = 1;
      else if (at_punct("%")) which = 2;
      else return lhs;
      take();
      ExprPtr rhs = parse_unary();
      const bool is_float = lhs->type == Type::F64;
      BinOp op;
      if (which == 0) op = is_float ? BinOp::FMul : BinOp::IMul;
      else if (which == 1) op = is_float ? BinOp::FDiv : BinOp::IDiv;
      else op = BinOp::IRem;
      lhs = make_binary(op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_unary() {
    if (at_punct("-")) {
      take();
      ExprPtr operand = parse_unary();
      // Constant-fold negative literals for readability of printed code.
      if (operand->kind == ExprKind::IntLit)
        return int_lit(static_cast<std::int32_t>(
            0u - static_cast<std::uint32_t>(operand->int_value)));
      if (operand->kind == ExprKind::FloatLit)
        return float_lit(-operand->float_value);
      const UnOp op = operand->type == Type::F64 ? UnOp::FNeg : UnOp::INeg;
      return unary(op, std::move(operand));
    }
    if (at_punct("~")) {
      take();
      return unary(UnOp::INot, parse_unary());
    }
    if (at_punct("!")) {
      take();
      return unary(UnOp::LNot, parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(TokKind::IntLit))
      return int_lit(static_cast<std::int32_t>(take().int_value));
    if (at(TokKind::FloatLit)) return float_lit(take().float_value);
    if (at_keyword("inf")) {
      take();
      return float_lit(std::numeric_limits<double>::infinity());
    }
    if (at_keyword("nan")) {
      take();
      return float_lit(std::numeric_limits<double>::quiet_NaN());
    }
    if (at_keyword("fabs")) {
      take();
      expect_punct("(");
      ExprPtr a = parse_expr();
      expect_punct(")");
      return unary(UnOp::FAbs, std::move(a));
    }
    if (at_keyword("fmin") || at_keyword("fmax")) {
      const BinOp op = cur().text == "fmin" ? BinOp::FMin : BinOp::FMax;
      take();
      expect_punct("(");
      ExprPtr a = parse_expr();
      expect_punct(",");
      ExprPtr b = parse_expr();
      expect_punct(")");
      return make_binary(op, std::move(a), std::move(b));
    }
    if (at_punct("(")) {
      // Either a cast "(f64)(e)" / "(i32)(e)" or a parenthesized expression.
      if (tokens_[pos_ + 1].kind == TokKind::Keyword &&
          (tokens_[pos_ + 1].text == "f64" || tokens_[pos_ + 1].text == "i32")) {
        take();
        const bool to_float = take().text == "f64";
        expect_punct(")");
        expect_punct("(");
        ExprPtr a = parse_expr();
        expect_punct(")");
        return unary(to_float ? UnOp::I2F : UnOp::F2I, std::move(a));
      }
      take();
      ExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (at(TokKind::Ident)) {
      const std::string name = take().text;
      if (at_punct("[")) {
        take();
        ExprPtr idx = parse_expr();
        expect_punct("]");
        const Global* g = program_->find_global(name);
        if (g == nullptr) fail("unknown array '" + name + "'");
        return index_ref(name, std::move(idx), g->type);
      }
      auto it = vars_.find(name);
      if (it != vars_.end()) return local_ref(name, it->second);
      const Global* g = program_->find_global(name);
      if (g == nullptr) fail("unknown variable '" + name + "'");
      return global_ref(name, g->type);
    }
    fail("expected expression");
  }

  ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    if (lhs->type != rhs->type) fail("operand types differ");
    if (lhs->type != operand_type(op))
      fail("operand type mismatch for operator " + to_string(op));
    return binary(op, std::move(lhs), std::move(rhs));
  }

  static BinOp float_variant_if_needed(BinOp op, const Expr& lhs,
                                       const Expr& rhs) {
    if (lhs.type != Type::F64 && rhs.type != Type::F64) return op;
    switch (op) {
      case BinOp::ICmpEq: return BinOp::FCmpEq;
      case BinOp::ICmpNe: return BinOp::FCmpNe;
      case BinOp::ICmpLt: return BinOp::FCmpLt;
      case BinOp::ICmpLe: return BinOp::FCmpLe;
      case BinOp::ICmpGt: return BinOp::FCmpGt;
      case BinOp::ICmpGe: return BinOp::FCmpGe;
      default: return op;
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string name_;
  Program* program_ = nullptr;
  std::map<std::string, Type> vars_;
};

}  // namespace

Program parse_program(const std::string& source, const std::string& program_name) {
  return Parser(lex(source), program_name).run();
}

}  // namespace vc::minic
