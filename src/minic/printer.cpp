#include "minic/printer.hpp"

#include "support/strings.hpp"

namespace vc::minic {
namespace {

std::string indent_str(int indent) { return std::string(indent * 2, ' '); }

bool is_prefix_unop(UnOp op) {
  return op == UnOp::INeg || op == UnOp::INot || op == UnOp::LNot ||
         op == UnOp::FNeg;
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return std::to_string(e.int_value);
    case ExprKind::FloatLit: {
      std::string s = format_double(e.float_value);
      // Ensure the literal re-parses as f64 (needs '.', 'e', or specials).
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
        s += ".0";
      return s;
    }
    case ExprKind::LocalRef:
    case ExprKind::GlobalRef:
      return e.name;
    case ExprKind::Index:
      return e.name + "[" + print_expr(*e.args[0]) + "]";
    case ExprKind::Unary:
      if (is_prefix_unop(e.un_op))
        return to_string(e.un_op) + "(" + print_expr(*e.args[0]) + ")";
      if (e.un_op == UnOp::FAbs)
        return "fabs(" + print_expr(*e.args[0]) + ")";
      if (e.un_op == UnOp::I2F)
        return "(f64)(" + print_expr(*e.args[0]) + ")";
      return "(i32)(" + print_expr(*e.args[0]) + ")";
    case ExprKind::Binary:
      if (e.bin_op == BinOp::FMin || e.bin_op == BinOp::FMax)
        return to_string(e.bin_op) + "(" + print_expr(*e.args[0]) + ", " +
               print_expr(*e.args[1]) + ")";
      return "(" + print_expr(*e.args[0]) + " " + to_string(e.bin_op) + " " +
             print_expr(*e.args[1]) + ")";
    case ExprKind::Select:
      return "(" + print_expr(*e.args[0]) + " ? " + print_expr(*e.args[1]) +
             " : " + print_expr(*e.args[2]) + ")";
  }
  throw InternalError("bad expr kind in printer");
}

std::string print_stmt(const Stmt& s, int indent) {
  const std::string pad = indent_str(indent);
  switch (s.kind) {
    case StmtKind::Assign: {
      std::string lhs = s.lhs_name;
      if (s.lhs_index) lhs += "[" + print_expr(*s.lhs_index) + "]";
      return pad + lhs + " = " + print_expr(*s.value) + ";\n";
    }
    case StmtKind::If: {
      std::string out = pad + "if (" + print_expr(*s.value) + ") {\n";
      for (const auto& b : s.body) out += print_stmt(*b, indent + 1);
      out += pad + "}";
      if (!s.else_body.empty()) {
        out += " else {\n";
        for (const auto& b : s.else_body) out += print_stmt(*b, indent + 1);
        out += pad + "}";
      }
      return out + "\n";
    }
    case StmtKind::For: {
      std::string out = pad + "for (" + s.loop_var + " = " +
                        print_expr(*s.value) + "; " + s.loop_var + " < " +
                        print_expr(*s.loop_limit) + "; " + s.loop_var + " = " +
                        s.loop_var + " + 1) {\n";
      for (const auto& b : s.body) out += print_stmt(*b, indent + 1);
      return out + pad + "}\n";
    }
    case StmtKind::While: {
      std::string out = pad + "while (" + print_expr(*s.value) + ") {\n";
      for (const auto& b : s.body) out += print_stmt(*b, indent + 1);
      return out + pad + "}\n";
    }
    case StmtKind::Return:
      if (s.value) return pad + "return " + print_expr(*s.value) + ";\n";
      return pad + "return;\n";
    case StmtKind::Annot: {
      std::string out = pad + "__annot(\"" + s.annot_format + "\"";
      for (const auto& a : s.annot_args) out += ", " + print_expr(*a);
      return out + ");\n";
    }
  }
  throw InternalError("bad stmt kind in printer");
}

std::string print_function(const Function& fn) {
  std::string out = "func ";
  out += fn.has_return ? to_string(fn.return_type) : std::string("void");
  out += " " + fn.name + "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i != 0) out += ", ";
    out += to_string(fn.params[i].type) + " " + fn.params[i].name;
  }
  out += ") {\n";
  for (const auto& l : fn.locals)
    out += "  local " + to_string(l.type) + " " + l.name + ";\n";
  for (const auto& s : fn.body) out += print_stmt(*s, 1);
  out += "}\n";
  return out;
}

std::string print_program(const Program& program) {
  std::string out;
  for (const auto& g : program.globals) {
    out += "global " + to_string(g.type) + " " + g.name;
    if (g.count != 1) out += "[" + std::to_string(g.count) + "]";
    if (!g.init.empty()) {
      out += " = ";
      if (g.count == 1) {
        out += g.type == Type::I32
                   ? std::to_string(static_cast<std::int32_t>(g.init[0]))
                   : print_expr(*float_lit(g.init[0]));
      } else {
        out += "{";
        for (std::size_t i = 0; i < g.init.size(); ++i) {
          if (i != 0) out += ", ";
          out += g.type == Type::I32
                     ? std::to_string(static_cast<std::int32_t>(g.init[i]))
                     : print_expr(*float_lit(g.init[i]));
        }
        out += "}";
      }
    }
    out += ";\n";
  }
  if (!program.globals.empty()) out += "\n";
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    if (i != 0) out += "\n";
    out += print_function(program.functions[i]);
  }
  return out;
}

}  // namespace vc::minic
