#include "minic/ast.hpp"

namespace vc::minic {

std::string to_string(Type t) { return t == Type::I32 ? "i32" : "f64"; }

std::string to_string(UnOp op) {
  switch (op) {
    case UnOp::INeg: return "-";
    case UnOp::INot: return "~";
    case UnOp::LNot: return "!";
    case UnOp::FNeg: return "-";
    case UnOp::FAbs: return "fabs";
    case UnOp::I2F: return "(f64)";
    case UnOp::F2I: return "(i32)";
  }
  throw InternalError("bad UnOp");
}

std::string to_string(BinOp op) {
  switch (op) {
    case BinOp::IAdd: case BinOp::FAdd: return "+";
    case BinOp::ISub: case BinOp::FSub: return "-";
    case BinOp::IMul: case BinOp::FMul: return "*";
    case BinOp::IDiv: case BinOp::FDiv: return "/";
    case BinOp::IRem: return "%";
    case BinOp::IAnd: return "&";
    case BinOp::IOr: return "|";
    case BinOp::IXor: return "^";
    case BinOp::IShl: return "<<";
    case BinOp::IShr: return ">>";
    case BinOp::ICmpEq: case BinOp::FCmpEq: return "==";
    case BinOp::ICmpNe: case BinOp::FCmpNe: return "!=";
    case BinOp::ICmpLt: case BinOp::FCmpLt: return "<";
    case BinOp::ICmpLe: case BinOp::FCmpLe: return "<=";
    case BinOp::ICmpGt: case BinOp::FCmpGt: return ">";
    case BinOp::ICmpGe: case BinOp::FCmpGe: return ">=";
    case BinOp::FMin: return "fmin";
    case BinOp::FMax: return "fmax";
  }
  throw InternalError("bad BinOp");
}

Type result_type(UnOp op) {
  switch (op) {
    case UnOp::INeg:
    case UnOp::INot:
    case UnOp::LNot:
    case UnOp::F2I:
      return Type::I32;
    case UnOp::FNeg:
    case UnOp::FAbs:
    case UnOp::I2F:
      return Type::F64;
  }
  throw InternalError("bad UnOp");
}

Type operand_type(UnOp op) {
  switch (op) {
    case UnOp::INeg:
    case UnOp::INot:
    case UnOp::LNot:
    case UnOp::I2F:
      return Type::I32;
    case UnOp::FNeg:
    case UnOp::FAbs:
    case UnOp::F2I:
      return Type::F64;
  }
  throw InternalError("bad UnOp");
}

Type result_type(BinOp op) {
  switch (op) {
    case BinOp::FAdd:
    case BinOp::FSub:
    case BinOp::FMul:
    case BinOp::FDiv:
    case BinOp::FMin:
    case BinOp::FMax:
      return Type::F64;
    default:
      return Type::I32;
  }
}

Type operand_type(BinOp op) {
  switch (op) {
    case BinOp::FAdd:
    case BinOp::FSub:
    case BinOp::FMul:
    case BinOp::FDiv:
    case BinOp::FMin:
    case BinOp::FMax:
    case BinOp::FCmpEq:
    case BinOp::FCmpNe:
    case BinOp::FCmpLt:
    case BinOp::FCmpLe:
    case BinOp::FCmpGt:
    case BinOp::FCmpGe:
      return Type::F64;
    default:
      return Type::I32;
  }
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->type = type;
  e->int_value = int_value;
  e->float_value = float_value;
  e->name = name;
  e->un_op = un_op;
  e->bin_op = bin_op;
  e->loc = loc;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  s->lhs_name = lhs_name;
  s->lhs_is_global = lhs_is_global;
  if (lhs_index) s->lhs_index = lhs_index->clone();
  if (value) s->value = value->clone();
  for (const auto& b : body) s->body.push_back(b->clone());
  for (const auto& b : else_body) s->else_body.push_back(b->clone());
  s->loop_var = loop_var;
  if (loop_limit) s->loop_limit = loop_limit->clone();
  s->annot_format = annot_format;
  for (const auto& a : annot_args) s->annot_args.push_back(a->clone());
  return s;
}

const Function* Program::find_function(const std::string& fn_name) const {
  for (const auto& f : functions)
    if (f.name == fn_name) return &f;
  return nullptr;
}

const Global* Program::find_global(const std::string& global_name) const {
  for (const auto& g : globals)
    if (g.name == global_name) return &g;
  return nullptr;
}

ExprPtr int_lit(std::int32_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->type = Type::I32;
  e->int_value = v;
  return e;
}

ExprPtr float_lit(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::FloatLit;
  e->type = Type::F64;
  e->float_value = v;
  return e;
}

ExprPtr local_ref(const std::string& name, Type t) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::LocalRef;
  e->type = t;
  e->name = name;
  return e;
}

ExprPtr global_ref(const std::string& name, Type t) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::GlobalRef;
  e->type = t;
  e->name = name;
  return e;
}

ExprPtr index_ref(const std::string& array, ExprPtr idx, Type elem_type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Index;
  e->type = elem_type;
  e->name = array;
  e->args.push_back(std::move(idx));
  return e;
}

ExprPtr unary(UnOp op, ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->un_op = op;
  e->type = result_type(op);
  e->args.push_back(std::move(a));
  return e;
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->bin_op = op;
  e->type = result_type(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr select(ExprPtr cond, ExprPtr if_true, ExprPtr if_false) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Select;
  e->type = if_true->type;
  e->args.push_back(std::move(cond));
  e->args.push_back(std::move(if_true));
  e->args.push_back(std::move(if_false));
  return e;
}

StmtPtr assign_local(const std::string& name, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->lhs_name = name;
  s->lhs_is_global = false;
  s->value = std::move(value);
  return s;
}

StmtPtr assign_global(const std::string& name, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->lhs_name = name;
  s->lhs_is_global = true;
  s->value = std::move(value);
  return s;
}

StmtPtr assign_element(const std::string& array, ExprPtr idx, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->lhs_name = array;
  s->lhs_is_global = true;
  s->lhs_index = std::move(idx);
  s->value = std::move(value);
  return s;
}

StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  s->value = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr for_stmt(const std::string& var, ExprPtr init, ExprPtr limit,
                 std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::For;
  s->loop_var = var;
  s->value = std::move(init);
  s->loop_limit = std::move(limit);
  s->body = std::move(body);
  return s;
}

StmtPtr while_stmt(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::While;
  s->value = std::move(cond);
  s->body = std::move(body);
  return s;
}

StmtPtr return_stmt(ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Return;
  s->value = std::move(value);
  return s;
}

StmtPtr annot_stmt(const std::string& format, std::vector<ExprPtr> args) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Annot;
  s->annot_format = format;
  s->annot_args = std::move(args);
  return s;
}

}  // namespace vc::minic
