// Mini-C: the "algorithmic language" of the reproduction.
//
// This is the restricted C subset that the automatic code generator emits
// (cf. paper §2.1): scalar i32/f64 locals and parameters, scalar/array global
// state, straight-line symbol patterns, counted loops with static bounds,
// if/else, and the `__annot` builtin of paper §3.4. MISRA-style restrictions
// apply by construction: no pointers, no recursion, no unstructured control
// flow, no dynamic allocation.
//
// The AST is a plain tagged tree (one node struct per syntactic class) so the
// lowering and analysis code can switch on kinds without visitor scaffolding.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace vc::minic {

/// Scalar types. Booleans are represented as I32 with values {0, 1}.
enum class Type { I32, F64 };

std::string to_string(Type t);

enum class UnOp {
  INeg,   // i32 two's complement negate
  INot,   // bitwise complement
  LNot,   // logical not: x == 0 ? 1 : 0
  FNeg,   // IEEE negate
  FAbs,   // IEEE absolute value
  I2F,    // exact i32 -> f64 conversion
  F2I,    // f64 -> i32, truncation toward zero, saturating at i32 bounds
};

enum class BinOp {
  // i32 arithmetic (wrap-around two's complement, like the target machine).
  IAdd, ISub, IMul, IDiv, IRem,
  IAnd, IOr, IXor, IShl, IShr,
  // i32 comparisons, result is i32 in {0, 1}.
  ICmpEq, ICmpNe, ICmpLt, ICmpLe, ICmpGt, ICmpGe,
  // f64 IEEE arithmetic.
  FAdd, FSub, FMul, FDiv, FMin, FMax,
  // f64 comparisons, result is i32 in {0, 1}. NaN compares false except Ne.
  FCmpEq, FCmpNe, FCmpLt, FCmpLe, FCmpGt, FCmpGe,
};

std::string to_string(UnOp op);
std::string to_string(BinOp op);

/// Result type of an operator.
Type result_type(UnOp op);
Type result_type(BinOp op);
/// Operand type expected by an operator.
Type operand_type(UnOp op);
Type operand_type(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  IntLit,     // int_value
  FloatLit,   // float_value
  LocalRef,   // name (local variable or parameter)
  GlobalRef,  // name (scalar global)
  Index,      // name (array global), args[0] = index expression (i32)
  Unary,      // un_op, args[0]
  Binary,     // bin_op, args[0], args[1]
  Select,     // args[0] = condition (i32), args[1], args[2]; strict evaluation
};

struct Expr {
  ExprKind kind{};
  Type type = Type::I32;  // filled in by the builder / type checker
  std::int32_t int_value = 0;
  double float_value = 0.0;
  std::string name;
  UnOp un_op{};
  BinOp bin_op{};
  std::vector<ExprPtr> args;
  SourceLoc loc;

  [[nodiscard]] ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  Assign,  // lhs (local/global/array-element) = value
  If,      // cond, then_body, else_body
  For,     // canonical counted loop: for (v = init; v < limit; v = v + 1)
  While,   // guard, body  (requires an annotation for WCET analysis)
  Return,  // value (may be null for void functions)
  Annot,   // __annot(format, args...): pro-forma effect, paper §3.4
};

struct Stmt {
  StmtKind kind{};
  SourceLoc loc;

  // Assign
  std::string lhs_name;
  bool lhs_is_global = false;
  ExprPtr lhs_index;  // non-null for array-element assignment
  ExprPtr value;      // Assign value / If & While condition / Return value / For init

  // If / While / For
  std::vector<StmtPtr> body;       // If: then branch; For/While: loop body
  std::vector<StmtPtr> else_body;  // If only

  // For
  std::string loop_var;  // must be a declared i32 local
  ExprPtr loop_limit;    // i32 expression, evaluated once before the loop

  // Annot
  std::string annot_format;        // e.g. "0 <= %1 <= %2 < 360"
  std::vector<ExprPtr> annot_args; // the %i operands (locals/params only)

  [[nodiscard]] StmtPtr clone() const;
};

struct Param {
  std::string name;
  Type type{};
};

struct Local {
  std::string name;
  Type type{};
};

struct Function {
  std::string name;
  std::vector<Param> params;
  std::vector<Local> locals;
  bool has_return = false;
  Type return_type = Type::F64;
  std::vector<StmtPtr> body;
};

/// A global variable: scalar when `count == 1`, array otherwise. Arrays are
/// always statically sized; `init` holds one value per element (f64 storage,
/// bit-exact for i32 values too since |i32| < 2^53).
struct Global {
  std::string name;
  Type type{};
  std::size_t count = 1;
  std::vector<double> init;
};

struct Program {
  std::string name = "program";
  std::vector<Global> globals;
  std::vector<Function> functions;

  [[nodiscard]] const Function* find_function(const std::string& fn_name) const;
  [[nodiscard]] const Global* find_global(const std::string& global_name) const;
};

// ---------------------------------------------------------------------------
// Builder helpers: a terse factory API used by the ACG and by tests.
// ---------------------------------------------------------------------------

ExprPtr int_lit(std::int32_t v);
ExprPtr float_lit(double v);
ExprPtr local_ref(const std::string& name, Type t);
ExprPtr global_ref(const std::string& name, Type t);
ExprPtr index_ref(const std::string& array, ExprPtr idx, Type elem_type);
ExprPtr unary(UnOp op, ExprPtr a);
ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr select(ExprPtr cond, ExprPtr if_true, ExprPtr if_false);

StmtPtr assign_local(const std::string& name, ExprPtr value);
StmtPtr assign_global(const std::string& name, ExprPtr value);
StmtPtr assign_element(const std::string& array, ExprPtr idx, ExprPtr value);
StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body = {});
StmtPtr for_stmt(const std::string& var, ExprPtr init, ExprPtr limit,
                 std::vector<StmtPtr> body);
StmtPtr while_stmt(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr return_stmt(ExprPtr value);
StmtPtr annot_stmt(const std::string& format, std::vector<ExprPtr> args);

}  // namespace vc::minic
