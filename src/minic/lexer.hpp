// Hand-written lexer for mini-C source text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace vc::minic {

enum class TokKind {
  End,
  Ident,      // text
  Keyword,    // text: global func local if else for while return void i32 f64
              //       fabs fmin fmax __annot inf nan
  IntLit,     // int_value
  FloatLit,   // float_value
  StringLit,  // text (unescaped)
  Punct,      // text: one of ( ) { } [ ] , ; = == != < <= > >= + - * / %
              //       & | ^ ~ ! << >> && || ? :
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;
};

/// Tokenizes `source`; throws CompileError on malformed input.
/// `//` line comments and `/* */` block comments are skipped.
std::vector<Token> lex(const std::string& source);

/// True when `word` is a reserved keyword — i.e. not usable as an
/// identifier. Code generators that synthesize identifier names must
/// check this, or the printed program will not re-parse.
bool is_keyword(const std::string& word);

}  // namespace vc::minic
