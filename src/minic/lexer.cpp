#include "minic/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

namespace vc::minic {
namespace {

const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "global", "func", "local", "if", "else", "for", "while", "return",
      "void", "i32", "f64", "fabs", "fmin", "fmax", "__annot", "inf", "nan"};
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_space_and_comments();
      if (at_end()) break;
      out.push_back(next_token());
    }
    Token end;
    end.kind = TokKind::End;
    end.loc = loc();
    out.push_back(end);
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] SourceLoc loc() const { return SourceLoc{line_, column_}; }

  void skip_space_and_comments() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
        advance();
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        const SourceLoc start = loc();
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (at_end()) throw CompileError("unterminated block comment", start);
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token next_token() {
    const SourceLoc start = loc();
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
      return ident_or_keyword(start);
    if (std::isdigit(static_cast<unsigned char>(c))) return number(start);
    if (c == '"') return string_lit(start);
    return punct(start);
  }

  Token ident_or_keyword(SourceLoc start) {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      text += advance();
    Token t;
    t.kind = keywords().count(text) != 0 ? TokKind::Keyword : TokKind::Ident;
    t.text = text;
    t.loc = start;
    return t;
  }

  Token number(SourceLoc start) {
    std::string text;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    if (peek() == '.') {
      is_float = true;
      text += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      text += advance();
      if (peek() == '+' || peek() == '-') text += advance();
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        throw CompileError("malformed exponent", start);
      while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    Token t;
    t.loc = start;
    t.text = text;
    if (is_float) {
      t.kind = TokKind::FloatLit;
      t.float_value = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokKind::IntLit;
      t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (t.int_value > 2147483648LL)  // 2^31 allowed for `-2147483648`
        throw CompileError("integer literal out of i32 range", start);
    }
    return t;
  }

  Token string_lit(SourceLoc start) {
    advance();  // opening quote
    std::string text;
    while (peek() != '"') {
      if (at_end() || peek() == '\n')
        throw CompileError("unterminated string literal", start);
      if (peek() == '\\') {
        advance();
        const char esc = advance();
        switch (esc) {
          case 'n': text += '\n'; break;
          case 't': text += '\t'; break;
          case '"': text += '"'; break;
          case '\\': text += '\\'; break;
          default:
            throw CompileError("unknown escape sequence", start);
        }
      } else {
        text += advance();
      }
    }
    advance();  // closing quote
    Token t;
    t.kind = TokKind::StringLit;
    t.text = text;
    t.loc = start;
    return t;
  }

  Token punct(SourceLoc start) {
    static const char* two_char[] = {"==", "!=", "<=", ">=", "<<", ">>",
                                     "&&", "||"};
    Token t;
    t.kind = TokKind::Punct;
    t.loc = start;
    const std::string pair{peek(), peek(1)};
    for (const char* p : two_char) {
      if (pair == p) {
        advance();
        advance();
        t.text = pair;
        return t;
      }
    }
    const char c = advance();
    static const std::string singles = "(){}[],;=<>+-*/%&|^~!?:";
    if (singles.find(c) == std::string::npos)
      throw CompileError(std::string("unexpected character '") + c + "'", start);
    t.text = std::string(1, c);
    return t;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) { return Lexer(source).run(); }

bool is_keyword(const std::string& word) {
  return keywords().count(word) != 0;
}

}  // namespace vc::minic
