#include "minic/interp.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "support/strings.hpp"

namespace vc::minic {
namespace {

std::uint32_t as_u32(std::int32_t v) { return static_cast<std::uint32_t>(v); }
std::int32_t as_i32(std::uint32_t v) { return static_cast<std::int32_t>(v); }

}  // namespace

bool Value::operator==(const Value& other) const {
  if (type != other.type) return false;
  if (type == Type::I32) return i == other.i;
  // Bit-exact comparison so that -0.0 != 0.0 mismatches: differential
  // testing needs bit fidelity. NaNs are the one exception — all NaNs
  // compare equal, because their sign/payload comes from the *host* FPU
  // (every execution engine here evaluates f64 ops in host arithmetic) and
  // varies with the host compiler's FP code generation, e.g. between the
  // release and sanitizer builds.
  if (std::isnan(f) || std::isnan(other.f))
    return std::isnan(f) && std::isnan(other.f);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::memcpy(&a, &f, sizeof a);
  std::memcpy(&b, &other.f, sizeof b);
  return a == b;
}

std::string Value::to_string() const {
  if (type == Type::I32) return std::to_string(i);
  return format_double(f);
}

std::int32_t eval_ibinop(BinOp op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case BinOp::IAdd: return as_i32(as_u32(a) + as_u32(b));
    case BinOp::ISub: return as_i32(as_u32(a) - as_u32(b));
    case BinOp::IMul: return as_i32(as_u32(a) * as_u32(b));
    case BinOp::IDiv:
      if (b == 0) throw EvalError("integer division by zero");
      if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
        return a;  // divw wraps on overflow
      return a / b;
    case BinOp::IRem:
      if (b == 0) throw EvalError("integer remainder by zero");
      if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
      return a % b;
    case BinOp::IAnd: return a & b;
    case BinOp::IOr: return a | b;
    case BinOp::IXor: return a ^ b;
    case BinOp::IShl: {
      // PowerPC slw: a 6-bit shift amount; >= 32 produces 0.
      const std::uint32_t sh = as_u32(b) & 0x3F;
      if (sh >= 32) return 0;
      return as_i32(as_u32(a) << sh);
    }
    case BinOp::IShr: {
      // PowerPC sraw: arithmetic shift; >= 32 fills with the sign bit.
      const std::uint32_t sh = as_u32(b) & 0x3F;
      if (sh >= 32) return a < 0 ? -1 : 0;
      return a >> sh;  // implementation-defined pre-C++20; arithmetic in C++20
    }
    case BinOp::ICmpEq: return a == b ? 1 : 0;
    case BinOp::ICmpNe: return a != b ? 1 : 0;
    case BinOp::ICmpLt: return a < b ? 1 : 0;
    case BinOp::ICmpLe: return a <= b ? 1 : 0;
    case BinOp::ICmpGt: return a > b ? 1 : 0;
    case BinOp::ICmpGe: return a >= b ? 1 : 0;
    default:
      throw InternalError("eval_ibinop: not an i32 op");
  }
}

double eval_fbinop(BinOp op, double a, double b) {
  switch (op) {
    case BinOp::FAdd: return a + b;
    case BinOp::FSub: return a - b;
    case BinOp::FMul: return a * b;
    case BinOp::FDiv: return a / b;
    // fmin/fmax are defined via compare-and-select (this is also how they are
    // lowered on the target, so NaN behaviour matches by construction).
    case BinOp::FMin: return a < b ? a : b;
    case BinOp::FMax: return a > b ? a : b;
    default:
      throw InternalError("eval_fbinop: not an f64 arithmetic op");
  }
}

std::int32_t eval_fcmp(BinOp op, double a, double b) {
  switch (op) {
    case BinOp::FCmpEq: return a == b ? 1 : 0;
    case BinOp::FCmpNe: return a != b ? 1 : 0;
    case BinOp::FCmpLt: return a < b ? 1 : 0;
    case BinOp::FCmpLe: return a <= b ? 1 : 0;
    case BinOp::FCmpGt: return a > b ? 1 : 0;
    case BinOp::FCmpGe: return a >= b ? 1 : 0;
    default:
      throw InternalError("eval_fcmp: not an f64 comparison");
  }
}

Value eval_unop(UnOp op, const Value& a) {
  switch (op) {
    case UnOp::INeg: return Value::of_i32(as_i32(0u - as_u32(a.i)));
    case UnOp::INot: return Value::of_i32(~a.i);
    case UnOp::LNot: return Value::of_i32(a.i == 0 ? 1 : 0);
    case UnOp::FNeg: return Value::of_f64(-a.f);
    case UnOp::FAbs: return Value::of_f64(std::fabs(a.f));
    case UnOp::I2F: return Value::of_f64(static_cast<double>(a.i));
    case UnOp::F2I: {
      // fctiwz semantics: truncate toward zero, saturate, NaN -> INT32_MIN.
      const double v = a.f;
      if (std::isnan(v)) return Value::of_i32(std::numeric_limits<std::int32_t>::min());
      if (v >= 2147483648.0) return Value::of_i32(std::numeric_limits<std::int32_t>::max());
      if (v <= -2147483649.0) return Value::of_i32(std::numeric_limits<std::int32_t>::min());
      return Value::of_i32(static_cast<std::int32_t>(std::trunc(v)));
    }
  }
  throw InternalError("bad UnOp in eval_unop");
}

Interpreter::Interpreter(const Program& program) : program_(program) {
  reset_globals();
}

void Interpreter::reset_globals() {
  globals_.clear();
  for (const auto& g : program_.globals) {
    std::vector<Value> cells(g.count, g.type == Type::I32
                                          ? Value::of_i32(0)
                                          : Value::of_f64(0.0));
    for (std::size_t i = 0; i < g.init.size(); ++i) {
      cells[i] = g.type == Type::I32
                     ? Value::of_i32(static_cast<std::int32_t>(g.init[i]))
                     : Value::of_f64(g.init[i]);
    }
    globals_.emplace(g.name, std::move(cells));
  }
}

Value Interpreter::call(const std::string& fn_name,
                        const std::vector<Value>& args) {
  const Function* fn = program_.find_function(fn_name);
  if (fn == nullptr) throw EvalError("unknown function '" + fn_name + "'");
  if (args.size() != fn->params.size())
    throw EvalError("argument count mismatch calling '" + fn_name + "'");

  Frame frame;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != fn->params[i].type)
      throw EvalError("argument type mismatch for '" + fn->params[i].name + "'");
    frame.vars[fn->params[i].name] = args[i];
  }
  for (const auto& l : fn->locals) {
    frame.vars[l.name] =
        l.type == Type::I32 ? Value::of_i32(0) : Value::of_f64(0.0);
  }

  annotations_.clear();
  steps_ = 0;
  return_value_ =
      fn->has_return && fn->return_type == Type::F64 ? Value::of_f64(0.0)
                                                     : Value::of_i32(0);
  exec_block(fn->body, frame);
  return return_value_;
}

Value Interpreter::read_global(const std::string& name,
                               std::size_t index) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) throw EvalError("unknown global '" + name + "'");
  if (index >= it->second.size())
    throw EvalError("global index out of range for '" + name + "'");
  return it->second[index];
}

void Interpreter::write_global(const std::string& name, std::size_t index,
                               Value v) {
  auto it = globals_.find(name);
  if (it == globals_.end()) throw EvalError("unknown global '" + name + "'");
  if (index >= it->second.size())
    throw EvalError("global index out of range for '" + name + "'");
  if (it->second[index].type != v.type)
    throw EvalError("global type mismatch for '" + name + "'");
  it->second[index] = v;
}

void Interpreter::tick() {
  if (++steps_ > fuel_) throw EvalError("execution fuel exhausted");
}

Value Interpreter::eval(const Expr& e, Frame& frame) {
  switch (e.kind) {
    case ExprKind::IntLit: return Value::of_i32(e.int_value);
    case ExprKind::FloatLit: return Value::of_f64(e.float_value);
    case ExprKind::LocalRef: {
      auto it = frame.vars.find(e.name);
      if (it == frame.vars.end())
        throw EvalError("unbound variable '" + e.name + "'");
      return it->second;
    }
    case ExprKind::GlobalRef: return read_global(e.name, 0);
    case ExprKind::Index: {
      const Value idx = eval(*e.args[0], frame);
      if (idx.i < 0) throw EvalError("negative array index");
      return read_global(e.name, static_cast<std::size_t>(idx.i));
    }
    case ExprKind::Unary: return eval_unop(e.un_op, eval(*e.args[0], frame));
    case ExprKind::Binary: {
      const Value a = eval(*e.args[0], frame);
      const Value b = eval(*e.args[1], frame);
      if (operand_type(e.bin_op) == Type::I32)
        return Value::of_i32(eval_ibinop(e.bin_op, a.i, b.i));
      if (result_type(e.bin_op) == Type::F64)
        return Value::of_f64(eval_fbinop(e.bin_op, a.f, b.f));
      return Value::of_i32(eval_fcmp(e.bin_op, a.f, b.f));
    }
    case ExprKind::Select: {
      // Strict evaluation of both arms, matching the compiled select.
      const Value c = eval(*e.args[0], frame);
      const Value t = eval(*e.args[1], frame);
      const Value f = eval(*e.args[2], frame);
      return c.i != 0 ? t : f;
    }
  }
  throw InternalError("bad expr kind in interpreter");
}

Interpreter::Flow Interpreter::exec_block(const std::vector<StmtPtr>& block,
                                          Frame& frame) {
  for (const auto& s : block) {
    if (exec_stmt(*s, frame) == Flow::Returned) return Flow::Returned;
  }
  return Flow::Normal;
}

Interpreter::Flow Interpreter::exec_stmt(const Stmt& s, Frame& frame) {
  tick();
  switch (s.kind) {
    case StmtKind::Assign: {
      const Value v = eval(*s.value, frame);
      if (s.lhs_is_global) {
        std::size_t index = 0;
        if (s.lhs_index) {
          const Value idx = eval(*s.lhs_index, frame);
          if (idx.i < 0) throw EvalError("negative array index");
          index = static_cast<std::size_t>(idx.i);
        }
        write_global(s.lhs_name, index, v);
      } else {
        frame.vars[s.lhs_name] = v;
      }
      return Flow::Normal;
    }
    case StmtKind::If: {
      const Value c = eval(*s.value, frame);
      return exec_block(c.i != 0 ? s.body : s.else_body, frame);
    }
    case StmtKind::For: {
      const Value init = eval(*s.value, frame);
      const Value limit = eval(*s.loop_limit, frame);
      for (std::int32_t i = init.i; i < limit.i; ++i) {
        tick();
        frame.vars[s.loop_var] = Value::of_i32(i);
        if (exec_block(s.body, frame) == Flow::Returned) return Flow::Returned;
      }
      // As in C, the loop variable retains its final value.
      if (init.i < limit.i) frame.vars[s.loop_var] = Value::of_i32(limit.i);
      else frame.vars[s.loop_var] = init;
      return Flow::Normal;
    }
    case StmtKind::While: {
      while (eval(*s.value, frame).i != 0) {
        tick();
        if (exec_block(s.body, frame) == Flow::Returned) return Flow::Returned;
      }
      return Flow::Normal;
    }
    case StmtKind::Return:
      if (s.value) return_value_ = eval(*s.value, frame);
      return Flow::Returned;
    case StmtKind::Annot: {
      AnnotEvent ev;
      ev.format = s.annot_format;
      for (const auto& a : s.annot_args) ev.values.push_back(eval(*a, frame));
      annotations_.push_back(std::move(ev));
      return Flow::Normal;
    }
  }
  throw InternalError("bad stmt kind in interpreter");
}

}  // namespace vc::minic
