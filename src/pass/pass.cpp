#include "pass/pass.hpp"

#include <algorithm>
#include <chrono>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"
#include "ssa/ssa.hpp"
#include "support/diagnostics.hpp"

namespace vc::pass {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ir_size(const FunctionState& state, Level level) {
  if (level == Level::Rtl)
    return static_cast<std::int64_t>(state.rtl.instruction_count());
  return static_cast<std::int64_t>(state.machine.ops.size());
}

/// An RTL optimization step: a bool-returning rewrite joined into the
/// bounded round group (rewrite counts are 0/1 per execution).
StepDef rtl_opt_step(const char* name, bool (*fn)(rtl::Function&)) {
  StepDef d;
  d.name = name;
  d.level = Level::Rtl;
  d.fixpoint = true;
  d.run = [fn](FunctionState& s) { return fn(s.rtl) ? 1 : 0; };
  return d;
}

/// An SSA-bracket step: runs exactly once at its pipeline position (no round
/// group — the bracket order ssa-build .. ssa-out is semantic), and the IR
/// is re-validated right after it (PassManager::run).
StepDef ssa_step(const char* name, bool (*fn)(rtl::Function&)) {
  StepDef d;
  d.name = name;
  d.level = Level::Rtl;
  d.fixpoint = false;
  d.run = [fn](FunctionState& s) { return fn(s.rtl) ? 1 : 0; };
  return d;
}

}  // namespace

std::string to_string(Level level) {
  return level == Level::Rtl ? "rtl" : "machine";
}

PassStat& PipelineStats::at(const std::string& name) {
  for (PassStat& p : passes)
    if (p.name == name) return p;
  passes.push_back(PassStat{name, 0.0, 0, 0, 0, 0, 0});
  return passes.back();
}

const PassStat* PipelineStats::find(const std::string& name) const {
  for (const PassStat& p : passes)
    if (p.name == name) return &p;
  return nullptr;
}

PipelineStats& PipelineStats::operator+=(const PipelineStats& o) {
  for (const PassStat& p : o.passes) {
    PassStat& mine = at(p.name);
    mine.seconds += p.seconds;
    mine.runs += p.runs;
    mine.applied += p.applied;
    mine.rewrites += p.rewrites;
    mine.ir_delta += p.ir_delta;
    mine.checks += p.checks;
  }
  return *this;
}

double PipelineStats::total_seconds() const {
  double total = 0.0;
  for (const PassStat& p : passes) total += p.seconds;
  return total;
}

Registry Registry::builtin() {
  Registry r;

  StepDef lower;
  lower.name = "lower";
  lower.level = Level::Rtl;
  lower.structural = true;
  lower.run = [](FunctionState& s) {
    s.rtl = rtl::lower_function(*s.program, *s.source, s.lower_mode);
    rtl::remove_unreachable_blocks(s.rtl);
    return 0;
  };
  r.add(std::move(lower));

  r.add(rtl_opt_step("constprop", opt::constant_propagation));
  r.add(rtl_opt_step("cse", opt::common_subexpression_elimination));
  r.add(rtl_opt_step("forward", opt::memory_forwarding));
  r.add(rtl_opt_step("dce", opt::dead_code_elimination));
  r.add(rtl_opt_step("deadstore", opt::dead_store_elimination));
  r.add(rtl_opt_step("tunnel", opt::branch_tunneling));

  // The SSA bracket (src/ssa): construction, the loop optimizations, and
  // out-of-SSA lowering. Selected by CompileOptions::ssa or an explicit
  // --passes list; resolve_pipeline enforces the bracket structure.
  r.add(ssa_step("ssa-build", ssa::build_ssa));
  r.add(ssa_step("ssa-gvn", ssa::global_value_numbering));
  r.add(ssa_step("ssa-licm", ssa::loop_invariant_code_motion));
  StepDef unroll;
  unroll.name = "ssa-unroll";
  unroll.level = Level::Rtl;
  unroll.run = [](FunctionState& s) {
    s.unroll_cert = {};
    return ssa::loop_unrolling(s.rtl, &s.unroll_cert) ? 1 : 0;
  };
  r.add(std::move(unroll));
  r.add(ssa_step("ssa-rotate", ssa::loop_rotation));
  r.add(ssa_step("ssa-out", ssa::destroy_ssa));

  StepDef regalloc;
  regalloc.name = "regalloc";
  regalloc.level = Level::Rtl;
  regalloc.structural = true;
  regalloc.run = [](FunctionState& s) {
    s.rtl_pre_regalloc = s.rtl;
    check(s.target != nullptr, "no target descriptor in pipeline state");
    // Resolve the class sizes against the target so downstream consumers
    // (the register-allocation checker) see the actual bounds used.
    if (s.k_int <= 0) s.k_int = s.target->n_int_colors();
    if (s.k_float <= 0) s.k_float = s.target->n_float_colors();
    s.alloc = regalloc::allocate_registers(s.rtl, s.k_int, s.k_float,
                                           s.spread_colors);
    return s.alloc.spill_count;
  };
  r.add(std::move(regalloc));

  StepDef emit;
  emit.name = "emit";
  emit.level = Level::Machine;
  emit.structural = true;
  emit.run = [](FunctionState& s) {
    mach::EmitOptions options;
    options.small_data_area = s.small_data_area;
    check(s.target != nullptr, "no target descriptor in pipeline state");
    s.machine =
        mach::emit_function(s.rtl, s.alloc, *s.layout, *s.target, options);
    s.emitted = true;
    return 0;
  };
  r.add(std::move(emit));

  StepDef selfmove;
  selfmove.name = "selfmove";
  selfmove.level = Level::Machine;
  selfmove.run = [](FunctionState& s) {
    return mach::remove_self_moves(s.machine);
  };
  r.add(std::move(selfmove));

  StepDef peephole;
  peephole.name = "peephole";
  peephole.level = Level::Machine;
  peephole.fixpoint = true;
  peephole.run = [](FunctionState& s) {
    return mach::peephole(s.machine, *s.target);
  };
  r.add(std::move(peephole));

  StepDef schedule;
  schedule.name = "schedule";
  schedule.level = Level::Machine;
  schedule.run = [](FunctionState& s) {
    return mach::schedule(s.machine, *s.target);
  };
  r.add(std::move(schedule));

  return r;
}

void Registry::add(StepDef def) {
  for (StepDef& d : defs_)
    if (d.name == def.name) {
      d = std::move(def);
      return;
    }
  defs_.push_back(std::move(def));
}

const StepDef* Registry::find(const std::string& name) const {
  for (const StepDef& d : defs_)
    if (d.name == name) return &d;
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const StepDef& d : defs_) out.push_back(d.name);
  return out;
}

PassManager::PassManager(const Registry& registry,
                         const std::vector<std::string>& names,
                         ManagerOptions options)
    : names_(names), options_(std::move(options)) {
  steps_.reserve(names_.size());
  for (const std::string& name : names_) {
    const StepDef* def = registry.find(name);
    if (def == nullptr) throw CompileError("unknown pass '" + name + "'");
    steps_.push_back(*def);
  }
}

void PassManager::run(FunctionState& state) const {
  std::size_t i = 0;
  while (i < steps_.size()) {
    const StepDef& def = steps_[i];
    if (def.level == Level::Rtl && def.fixpoint && !def.structural) {
      // A maximal run of RTL fixpoint steps is iterated as one round group:
      // constant propagation exposes CSE opportunities, forwarding turns
      // loads into moves that CSE and DCE collapse, and dead stores surface
      // once reloads are gone.
      std::size_t j = i;
      while (j < steps_.size() && steps_[j].level == Level::Rtl &&
             steps_[j].fixpoint && !steps_[j].structural)
        ++j;
      for (int round = 0; round < options_.rtl_rounds; ++round) {
        bool changed = false;
        for (std::size_t s = i; s < j; ++s)
          changed |= execute(state, steps_[s]) > 0;
        if (!changed) break;
      }
      state.rtl.validate();
      i = j;
    } else {
      run_step(state, def);
      // Run-once RTL rewrites (the SSA bracket) are re-validated
      // immediately: each changes the IR shape substantially and the next
      // step depends on its invariants.
      if (def.level == Level::Rtl && !def.structural && !def.fixpoint)
        state.rtl.validate();
      ++i;
    }
  }
}

void PassManager::run_step(FunctionState& state, const StepDef& def) const {
  execute(state, def);
}

int PassManager::execute(FunctionState& state, const StepDef& def) const {
  rtl::Function rtl_before;
  mach::AsmFunction machine_before;
  const bool snapshot = options_.hook && options_.snapshots;
  if (snapshot) {
    if (def.level == Level::Rtl)
      rtl_before = state.rtl;
    else
      machine_before = state.machine;
  }

  const std::int64_t size_before = ir_size(state, def.level);
  const auto t0 = Clock::now();
  int rewrites = 0;
  if (def.level == Level::Machine && def.fixpoint) {
    for (int iter = 0;; ++iter) {
      if (iter >= options_.machine_fixpoint_cap)
        throw InternalError(
            def.name + " fixpoint did not converge after " +
            std::to_string(options_.machine_fixpoint_cap) +
            " iterations in function '" + state.name() + "'");
      const int n = def.run(state);
      if (n == 0) break;
      rewrites += n;
    }
  } else {
    rewrites = def.run(state);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const bool applied = rewrites > 0 || def.structural;
  std::uint64_t checks = 0;
  if (applied) {
    if (options_.hook) {
      StepTrace trace;
      trace.pass = def.name;
      trace.level = def.level;
      trace.state = &state;
      trace.rewrites = rewrites;
      if (snapshot) {
        if (def.level == Level::Rtl)
          trace.rtl_before = &rtl_before;
        else
          trace.machine_before = &machine_before;
      }
      checks = static_cast<std::uint64_t>(std::max(0, options_.hook(trace)));
    }
    if (options_.dump && def.name == options_.dump_after)
      options_.dump(def.name, state);
  }

  if (options_.stats != nullptr) {
    PassStat& stat = options_.stats->at(def.name);
    stat.seconds += seconds;
    ++stat.runs;
    if (applied) ++stat.applied;
    stat.rewrites += rewrites;
    stat.ir_delta += ir_size(state, def.level) - size_before;
    stat.checks += checks;
  }
  return rewrites;
}

}  // namespace vc::pass
