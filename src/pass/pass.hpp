// The pass framework: the compile path as data instead of a call sequence.
//
// A `PassManager` owns an ordered pipeline of named steps over both IR
// levels — RTL function passes (constprop, cse, ...) and machine passes
// (selfmove, peephole, schedule) — plus the structural skeleton steps that
// change representation (lower, regalloc, emit). The driver builds one
// pipeline per `driver::Config` from the step `Registry`; nothing in
// `compile_program` is hard-wired anymore.
//
// Every step execution carries two attachments, mirroring how CompCert earns
// certification credit per pass (paper §3.2; Rideau & Leroy's a-posteriori
// checkers):
//
//   * a checker hook (`StepHook`): fired with the step name and before/after
//     IR snapshots. The translation validator (src/validate) hangs its
//     per-pass checkers here and throws ValidationError on rejection; the
//     hook's return value counts the checks it performed, which flows into
//     the telemetry below.
//   * structured telemetry (`PassStat`): wall time, run/applied counts,
//     rewrite counts, IR-size delta, and validator check counts per pass,
//     aggregated across functions (and across fleet jobs by driver/fleet).
//
// Execution semantics:
//   * consecutive RTL fixpoint steps form a round group iterated until no
//     step changes anything (bounded by ManagerOptions::rtl_rounds), exactly
//     the old opt::run_standard_pipeline behaviour;
//   * a machine fixpoint step (peephole) iterates until it reports zero
//     rewrites, bounded by ManagerOptions::machine_fixpoint_cap — exceeding
//     the cap is an InternalError naming the function (a diverging rewrite
//     system is a compiler bug, not an input error);
//   * structural steps always run and always fire the hook; optimization
//     steps fire it only when they changed something.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "minic/ast.hpp"
#include "mach/codegen.hpp"
#include "mach/program.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/lower.hpp"
#include "rtl/rtl.hpp"
#include "ssa/ssa.hpp"

namespace vc::pass {

/// Which IR a step reads and rewrites (and therefore which before-snapshot
/// its hook receives).
enum class Level { Rtl, Machine };

std::string to_string(Level level);

/// The per-function compilation state threaded through a pipeline. The
/// structural steps move it forward: `lower` fills `rtl`, `regalloc` fills
/// `alloc` (rewriting `rtl` with spill code), `emit` fills `machine`.
struct FunctionState {
  const minic::Program* program = nullptr;
  const minic::Function* source = nullptr;
  mach::DataLayout* layout = nullptr;

  rtl::Function rtl;
  /// Snapshot taken by the regalloc step just before allocation — the
  /// optimized-but-unspilled RTL (driver keeps it as FunctionArtifact::
  /// rtl_optimized without forcing per-pass snapshots on).
  rtl::Function rtl_pre_regalloc;
  regalloc::Allocation alloc;
  mach::AsmFunction machine;
  bool emitted = false;  // `machine` holds valid code
  /// Annotation-rewrite certificate of the last ssa-unroll execution on this
  /// function (reset by the step each run; consumed by the
  /// check_unroll_certificate hook in src/validate).
  ssa::UnrollCertificate unroll_cert;

  // Per-configuration knobs consumed by the structural steps.
  rtl::LowerMode lower_mode = rtl::LowerMode::Value;
  bool small_data_area = true;
  bool spread_colors = false;
  /// The target being compiled for; the driver sets it before running any
  /// pipeline (regalloc reads register-class sizes from it, emit/peephole/
  /// schedule pass it to the machine layer).
  const mach::TargetDesc* target = nullptr;
  /// Register-class sizes for the allocator; 0 = take them from `target`.
  int k_int = 0;
  int k_float = 0;

  [[nodiscard]] const std::string& name() const { return source->name; }
};

/// One pipeline step definition. `run` performs the rewrite and returns its
/// rewrite count (0 = nothing changed); for structural steps the count is
/// informational (regalloc returns its spill count).
struct StepDef {
  std::string name;
  Level level = Level::Rtl;
  /// Pipeline skeleton (lower/regalloc/emit): always runs, cannot be
  /// selected by --passes or removed by --disable-pass.
  bool structural = false;
  /// RTL: joins the bounded round group. Machine: iterated to fixpoint.
  bool fixpoint = false;
  std::function<int(FunctionState&)> run;
};

/// What a hook sees after a step executed. Snapshot pointers are null when
/// no hook is attached (snapshots are skipped) or the level does not apply:
/// Rtl steps set `rtl_before`, Machine steps set `machine_before`. For the
/// `lower` and `emit` steps the before-IR is the empty function.
struct StepTrace {
  std::string pass;
  Level level = Level::Rtl;
  const FunctionState* state = nullptr;           // after the step
  const rtl::Function* rtl_before = nullptr;      // Level::Rtl steps
  const mach::AsmFunction* machine_before = nullptr;  // Level::Machine steps
  int rewrites = 0;
};

/// Fired after each executed step (see class comment for when). Returns the
/// number of validation checks it performed (telemetry); throws
/// ValidationError to reject the step and abort compilation.
using StepHook = std::function<int(const StepTrace&)>;

/// Per-pass telemetry, aggregated over every execution of the pass.
struct PassStat {
  std::string name;
  double seconds = 0.0;        // wall time inside the pass
  std::uint64_t runs = 0;      // executions (fixpoint loop = one run)
  std::uint64_t applied = 0;   // executions that changed the IR
  std::int64_t rewrites = 0;   // rewrite count reported by the pass
  std::int64_t ir_delta = 0;   // IR-size change (instructions / machine ops)
  std::uint64_t checks = 0;    // validator checks performed by hooks
};

/// Ordered per-pass stats for one pipeline (or an aggregate of many runs —
/// the fleet runner sums one PipelineStats per job into the campaign total).
struct PipelineStats {
  std::vector<PassStat> passes;  // ordered by first appearance

  /// The stat slot for `name`, appended on first use.
  PassStat& at(const std::string& name);
  [[nodiscard]] const PassStat* find(const std::string& name) const;
  PipelineStats& operator+=(const PipelineStats& o);
  [[nodiscard]] double total_seconds() const;
};

/// The step registry: name -> definition. Copyable so tests can extend it
/// with custom steps without mutating global state.
class Registry {
 public:
  /// All built-in steps: lower, constprop, cse, forward, dce, deadstore,
  /// tunnel, regalloc, emit, selfmove, peephole, schedule.
  static Registry builtin();

  /// Registers `def` (replaces an existing step of the same name).
  void add(StepDef def);
  [[nodiscard]] const StepDef* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<StepDef> defs_;
};

struct ManagerOptions {
  StepHook hook;
  /// Provide before-IR copies to the hook (StepTrace::rtl_before /
  /// machine_before). Snapshots cost a function copy per applied pass, so
  /// bookkeeping-only hooks can turn them off; the trace pointers are then
  /// null.
  bool snapshots = true;
  PipelineStats* stats = nullptr;
  /// Dump attachment: after every applied execution of the step named
  /// `dump_after`, `dump` is called with the step name and current state.
  std::string dump_after;
  std::function<void(const std::string& pass, const FunctionState&)> dump;
  /// Bound on the RTL round-group iteration (the old standard-pipeline 4).
  int rtl_rounds = 4;
  /// Bound on any machine fixpoint step; exceeding it throws InternalError.
  int machine_fixpoint_cap = 64;
};

/// An ordered pipeline of steps resolved against a registry. Construction
/// throws CompileError for unknown step names.
class PassManager {
 public:
  PassManager(const Registry& registry, const std::vector<std::string>& names,
              ManagerOptions options = {});

  /// Runs the pipeline over `state`. RTL fixpoint groups are iterated and
  /// re-validated (rtl::Function::validate) after convergence.
  void run(FunctionState& state) const;

  [[nodiscard]] const std::vector<std::string>& pipeline() const {
    return names_;
  }

 private:
  void run_step(FunctionState& state, const StepDef& def) const;
  int execute(FunctionState& state, const StepDef& def) const;

  std::vector<std::string> names_;
  std::vector<StepDef> steps_;
  ManagerOptions options_;
};

}  // namespace vc::pass
