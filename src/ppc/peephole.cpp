// O2-full machine-level peepholes. These are exactly the optimizations the
// verified configuration does NOT perform (paper §3.3: CompCert 1.7 had no
// fused multiply-add generation or aggressive scheduling), giving the default
// compiler's full-opt configuration its extra edge over CompCert.
#include <algorithm>
#include <bitset>
#include <map>
#include <vector>

#include "ppc/codegen.hpp"
#include "ppc/timing.hpp"

namespace vc::ppc {
namespace {

using LiveSet = std::bitset<IssueModel::kNumResources>;

/// Machine-level liveness over the AsmFunction CFG (blocks delimited by
/// labels and branches). At `blr`, only the ABI-escaping registers are
/// live-out: r1 (stack), r2 (data base), r3 and f1 (results). Used to decide
/// whether a peephole's intermediate register is dead after the pair.
class MachineLiveness {
 public:
  explicit MachineLiveness(const AsmFunction& fn) : fn_(fn) { compute(); }

  /// True if `resource` may be read after executing op `pos`.
  [[nodiscard]] bool live_after(std::size_t pos, int resource) const {
    return live_after_[pos].test(static_cast<std::size_t>(resource));
  }

 private:
  void compute() {
    const std::size_t n = fn_.ops.size();
    live_after_.assign(n, LiveSet());

    // Block boundaries: labels and instructions after branches.
    std::vector<std::size_t> leaders{0};
    for (const auto& [label, pos] : fn_.labels) leaders.push_back(pos);
    for (std::size_t i = 0; i < n; ++i)
      if (is_branch(fn_.ops[i].ins.op)) leaders.push_back(i + 1);
    std::sort(leaders.begin(), leaders.end());
    leaders.erase(std::unique(leaders.begin(), leaders.end()), leaders.end());
    while (!leaders.empty() && leaders.back() >= n) leaders.pop_back();

    std::map<std::size_t, std::size_t> block_of_leader;
    for (std::size_t b = 0; b < leaders.size(); ++b)
      block_of_leader[leaders[b]] = b;
    auto block_end = [&](std::size_t b) {
      return b + 1 < leaders.size() ? leaders[b + 1] : n;
    };

    // Successor blocks.
    std::vector<std::vector<std::size_t>> succs(leaders.size());
    for (std::size_t b = 0; b < leaders.size(); ++b) {
      const std::size_t last = block_end(b) - 1;
      const AsmOp& op = fn_.ops[last];
      if (op.ins.op == POp::Blr) continue;
      if (op.target_label >= 0)
        succs[b].push_back(block_of_leader.at(fn_.label_pos(op.target_label)));
      if (op.ins.op != POp::B && block_end(b) < n)
        succs[b].push_back(block_of_leader.at(block_end(b)));
    }

    LiveSet abi_escape;
    abi_escape.set(1);       // r1
    abi_escape.set(2);       // r2
    abi_escape.set(3);       // r3 (int result)
    abi_escape.set(32 + 1);  // f1 (float result)

    std::vector<LiveSet> live_in(leaders.size());
    int reads[16];
    int writes[16];
    int n_reads = 0;
    int n_writes = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = leaders.size(); b-- > 0;) {
        LiveSet live;
        const std::size_t last = block_end(b) - 1;
        if (fn_.ops[last].ins.op == POp::Blr) live = abi_escape;
        for (std::size_t s : succs[b]) live |= live_in[s];
        for (std::size_t i = block_end(b); i-- > leaders[b];) {
          live_after_[i] = live;
          IssueModel::resources(fn_.ops[i].ins, reads, &n_reads, writes,
                                &n_writes);
          for (int k = 0; k < n_writes; ++k)
            live.reset(static_cast<std::size_t>(writes[k]));
          for (int k = 0; k < n_reads; ++k)
            live.set(static_cast<std::size_t>(reads[k]));
        }
        if (live != live_in[b]) {
          live_in[b] = live;
          changed = true;
        }
      }
    }
  }

  const AsmFunction& fn_;
  std::vector<LiveSet> live_after_;
};

/// Replaces fn.ops[i] with nothing by compacting, preserving labels/annots.
void compact(AsmFunction& fn, const std::vector<bool>& dead) {
  std::vector<AsmOp> kept;
  std::vector<std::size_t> new_index(fn.ops.size() + 1, 0);
  for (std::size_t i = 0; i < fn.ops.size(); ++i) {
    new_index[i] = kept.size();
    if (!dead[i]) kept.push_back(fn.ops[i]);
  }
  new_index[fn.ops.size()] = kept.size();
  for (auto& [label, pos] : fn.labels) pos = new_index[pos];
  for (auto& a : fn.annots)
    a.addr = static_cast<std::uint32_t>(new_index[a.addr]);
  fn.ops = std::move(kept);
}

}  // namespace

int peephole(AsmFunction& fn) {
  int rewrites = 0;
  std::vector<bool> dead(fn.ops.size(), false);
  // Liveness is computed once per pass; rewrites only remove register reads,
  // so the (then stale) solution stays conservative for later sites.
  const MachineLiveness live(fn);
  // "The value in `reg` produced by op i is dead once op i+1 executed":
  // either op i+1 overwrites reg, or reg is not live after op i+1.
  auto value_dead_after_pair = [&](std::size_t i, int reg, bool fpr,
                                   int overwrites_reg) {
    if (overwrites_reg == reg) return true;
    return !live.live_after(i + 1, (fpr ? 32 : 0) + reg);
  };

  // Adjacent-pair patterns. Pairs must not straddle a label boundary.
  auto label_at = [&](std::size_t pos) {
    for (const auto& [label, p] : fn.labels)
      if (p == pos) return true;
    return false;
  };
  auto annot_at = [&](std::size_t pos) {
    for (const auto& a : fn.annots)
      if (a.addr == pos) return true;
    return false;
  };

  for (std::size_t i = 0; i + 1 < fn.ops.size(); ++i) {
    if (dead[i] || dead[i + 1]) continue;
    if (label_at(i + 1) || annot_at(i + 1)) continue;
    MInstr& a = fn.ops[i].ins;
    MInstr& b = fn.ops[i + 1].ins;
    if (fn.ops[i].target_label >= 0 || fn.ops[i + 1].target_label >= 0)
      continue;
    if (!fn.ops[i].reloc_sym.empty()) continue;

    // fmul fT,x,y ; fadd/fsub fD,fT,c  ->  fmadd/fmsub fD,x,y,c.
    if (a.op == POp::Fmul && (b.op == POp::Fadd || b.op == POp::Fsub) &&
        b.ra == a.rd && b.rb != a.rd &&
        value_dead_after_pair(i, a.rd, true, b.rd)) {
      MInstr fused;
      fused.op = b.op == POp::Fadd ? POp::Fmadd : POp::Fmsub;
      fused.rd = b.rd;
      fused.ra = a.ra;
      fused.rb = a.rb;
      fused.rc = b.rb;
      b = fused;
      dead[i] = true;
      ++rewrites;
      continue;
    }
    // fmul fT,x,y ; fadd fD,c,fT  ->  fmadd fD,x,y,c (addition commutes).
    if (a.op == POp::Fmul && b.op == POp::Fadd && b.rb == a.rd &&
        b.ra != a.rd && value_dead_after_pair(i, a.rd, true, b.rd)) {
      MInstr fused;
      fused.op = POp::Fmadd;
      fused.rd = b.rd;
      fused.ra = a.ra;
      fused.rb = a.rb;
      fused.rc = b.ra;
      b = fused;
      dead[i] = true;
      ++rewrites;
      continue;
    }
    // li rT,imm ; cmpw cr,rA,rT  ->  cmpwi cr,rA,imm.
    if (a.op == POp::Li && b.op == POp::Cmpw && b.rb == a.rd &&
        b.ra != a.rd && value_dead_after_pair(i, a.rd, false, -1)) {
      MInstr c;
      c.op = POp::Cmpwi;
      c.crf = b.crf;
      c.ra = b.ra;
      c.imm = a.imm;
      b = c;
      dead[i] = true;
      ++rewrites;
      continue;
    }
    // li rT,imm ; add rD,rA,rT (or rT,rA)  ->  addi rD,rA,imm.
    if (a.op == POp::Li && b.op == POp::Add &&
        (b.rb == a.rd || b.ra == a.rd) && !(b.ra == a.rd && b.rb == a.rd) &&
        value_dead_after_pair(i, a.rd, false, b.rd)) {
      const std::uint8_t other = b.rb == a.rd ? b.ra : b.rb;
      MInstr c;
      c.op = POp::Addi;
      c.rd = b.rd;
      c.ra = other;
      c.imm = a.imm;
      b = c;
      dead[i] = true;
      ++rewrites;
      continue;
    }
  }

  if (rewrites > 0) compact(fn, dead);
  return rewrites;
}

}  // namespace vc::ppc
