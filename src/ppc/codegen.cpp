#include "ppc/codegen.hpp"

#include <algorithm>

namespace vc::ppc {
namespace {

using minic::BinOp;
using minic::UnOp;
using rtl::Opcode;
using rtl::RegClass;
using rtl::VReg;

/// CR bit indices (whole-CR numbering): integer compares use cr0, float
/// compares cr1; cr1's FU bit doubles as the cror scratch bit.
constexpr int kCr0Lt = 0, kCr0Gt = 1, kCr0Eq = 2;
constexpr int kCr1Lt = 4, kCr1Gt = 5, kCr1Eq = 6, kCr1Scratch = 7;

struct CmpPlan {
  bool is_float = false;
  int bit = 0;        // CR bit to test after the compare (and optional cror)
  bool expect = true; // branch/set when CR[bit] == expect
  bool need_cror = false;
  int cror_a = 0, cror_b = 0;  // OR'ed into kCr1Scratch when need_cror
};

CmpPlan plan_compare(BinOp op) {
  CmpPlan p;
  switch (op) {
    case BinOp::ICmpEq: p.bit = kCr0Eq; p.expect = true; break;
    case BinOp::ICmpNe: p.bit = kCr0Eq; p.expect = false; break;
    case BinOp::ICmpLt: p.bit = kCr0Lt; p.expect = true; break;
    case BinOp::ICmpGe: p.bit = kCr0Lt; p.expect = false; break;
    case BinOp::ICmpGt: p.bit = kCr0Gt; p.expect = true; break;
    case BinOp::ICmpLe: p.bit = kCr0Gt; p.expect = false; break;
    case BinOp::FCmpEq: p.is_float = true; p.bit = kCr1Eq; p.expect = true; break;
    case BinOp::FCmpNe: p.is_float = true; p.bit = kCr1Eq; p.expect = false; break;
    case BinOp::FCmpLt: p.is_float = true; p.bit = kCr1Lt; p.expect = true; break;
    case BinOp::FCmpGt: p.is_float = true; p.bit = kCr1Gt; p.expect = true; break;
    case BinOp::FCmpLe:
      p.is_float = true; p.need_cror = true;
      p.cror_a = kCr1Lt; p.cror_b = kCr1Eq;
      p.bit = kCr1Scratch; p.expect = true;
      break;
    case BinOp::FCmpGe:
      p.is_float = true; p.need_cror = true;
      p.cror_a = kCr1Gt; p.cror_b = kCr1Eq;
      p.bit = kCr1Scratch; p.expect = true;
      break;
    default:
      throw InternalError("plan_compare on non-comparison");
  }
  return p;
}

class Emitter {
 public:
  Emitter(const rtl::Function& fn, const regalloc::Allocation& alloc,
          DataLayout& layout, EmitOptions options)
      : fn_(fn), alloc_(alloc), layout_(layout), options_(options) {}

  AsmFunction run() {
    out_.name = fn_.name;
    const std::size_t n_slots = fn_.slots.size();
    out_.frame_bytes =
        n_slots == 0
            ? 0
            : static_cast<std::uint32_t>((8 + 8 * n_slots + 15) / 16 * 16);

    // Prologue.
    if (out_.frame_bytes != 0)
      push(make_regimm(POp::Addi, kStackPtr, kStackPtr,
                       -static_cast<std::int32_t>(out_.frame_bytes)));

    for (rtl::BlockId b = 0; b < fn_.blocks.size(); ++b) {
      out_.labels.emplace_back(static_cast<int>(b), out_.ops.size());
      for (const rtl::Instr& ins : fn_.blocks[b].instrs) emit(ins);
    }
    return std::move(out_);
  }

 private:
  // --- helpers --------------------------------------------------------------

  [[nodiscard]] int gpr_of(VReg v) const {
    const auto& loc = alloc_.locs[v];
    check(loc.in_reg && fn_.vregs[v] == RegClass::I32,
          "expected an allocated GPR vreg");
    check(loc.color < kAllocatableGprs, "GPR color out of range");
    return kFirstAllocGpr + loc.color;
  }

  [[nodiscard]] int fpr_of(VReg v) const {
    const auto& loc = alloc_.locs[v];
    check(loc.in_reg && fn_.vregs[v] == RegClass::F64,
          "expected an allocated FPR vreg");
    check(loc.color < kAllocatableFprs, "FPR color out of range");
    return kFirstAllocFpr + loc.color;
  }

  [[nodiscard]] int reg_of(VReg v) const {
    return fn_.vregs[v] == RegClass::I32 ? gpr_of(v) : fpr_of(v);
  }

  [[nodiscard]] std::int32_t slot_offset(rtl::Slot s) const {
    return 8 + 8 * static_cast<std::int32_t>(s);
  }

  static MInstr make_regimm(POp op, int rd, int ra, std::int32_t imm) {
    MInstr m;
    m.op = op;
    m.rd = static_cast<std::uint8_t>(rd);
    m.ra = static_cast<std::uint8_t>(ra);
    m.imm = imm;
    return m;
  }

  static MInstr make_reg3(POp op, int rd, int ra, int rb, int rc = 0) {
    MInstr m;
    m.op = op;
    m.rd = static_cast<std::uint8_t>(rd);
    m.ra = static_cast<std::uint8_t>(ra);
    m.rb = static_cast<std::uint8_t>(rb);
    m.rc = static_cast<std::uint8_t>(rc);
    return m;
  }

  void push(MInstr ins) {
    AsmOp op;
    op.ins = ins;
    out_.ops.push_back(std::move(op));
  }

  void push_reloc(MInstr ins, const std::string& sym, std::int32_t addend,
                  RelocKind kind = RelocKind::DataDisp) {
    AsmOp op;
    op.ins = ins;
    op.reloc_sym = sym;
    op.reloc_addend = addend;
    op.reloc_kind = kind;
    out_.ops.push_back(std::move(op));
  }

  /// Emits a d-form global/constant-pool access. With small-data addressing
  /// this is one instruction off r2; without it, a lis @ha / d-form @l pair
  /// through the scratch register.
  void access_global(POp dform, int value_reg, const std::string& sym,
                     std::int32_t addend) {
    if (options_.small_data_area) {
      push_reloc(make_regimm(dform, value_reg, kDataBasePtr, 0), sym, addend);
      return;
    }
    push_reloc(make_regimm(POp::Lis, kScratchGpr0, 0, 0), sym, addend,
               RelocKind::AbsHa);
    push_reloc(make_regimm(dform, value_reg, kScratchGpr0, 0), sym, addend,
               RelocKind::AbsLo);
  }

  /// Materializes the address of sym+addend into `reg`.
  void load_global_address(int reg, const std::string& sym,
                           std::int32_t addend) {
    if (options_.small_data_area) {
      push_reloc(make_regimm(POp::Addi, reg, kDataBasePtr, 0), sym, addend);
      return;
    }
    push_reloc(make_regimm(POp::Lis, reg, 0, 0), sym, addend, RelocKind::AbsHa);
    push_reloc(make_regimm(POp::Addi, reg, reg, 0), sym, addend,
               RelocKind::AbsLo);
  }

  void push_branch(MInstr ins, int label) {
    AsmOp op;
    op.ins = ins;
    op.target_label = label;
    out_.ops.push_back(std::move(op));
  }

  void load_imm(int rd, std::int32_t value) {
    if (value >= -32768 && value <= 32767) {
      push(make_regimm(POp::Li, rd, 0, value));
    } else {
      push(make_regimm(POp::Lis, rd, 0, value >> 16));
      const std::int32_t lo = value & 0xFFFF;
      if (lo != 0) push(make_regimm(POp::Ori, rd, rd, lo));
    }
  }

  /// Emits cmpw/fcmpu (+ cror) for `op` on vregs a, b; returns the plan.
  CmpPlan emit_compare(BinOp op, VReg a, VReg b) {
    const CmpPlan p = plan_compare(op);
    if (p.is_float) {
      MInstr c;
      c.op = POp::Fcmpu;
      c.crf = 1;
      c.ra = static_cast<std::uint8_t>(fpr_of(a));
      c.rb = static_cast<std::uint8_t>(fpr_of(b));
      push(c);
      if (p.need_cror) {
        MInstr r;
        r.op = POp::Cror;
        r.crbd = kCr1Scratch;
        r.crba = static_cast<std::uint8_t>(p.cror_a);
        r.crbb = static_cast<std::uint8_t>(p.cror_b);
        push(r);
      }
    } else {
      MInstr c;
      c.op = POp::Cmpw;
      c.crf = 0;
      c.ra = static_cast<std::uint8_t>(gpr_of(a));
      c.rb = static_cast<std::uint8_t>(gpr_of(b));
      push(c);
    }
    return p;
  }

  /// Materializes CR[bit]==expect into rd as 0/1 (mfcr + rlwinm [+ xori]).
  void materialize_crbit(int rd, int bit, bool expect) {
    push(make_regimm(POp::Mfcr, kScratchGpr0, 0, 0));
    MInstr rl;
    rl.op = POp::Rlwinm;
    rl.rd = static_cast<std::uint8_t>(rd);
    rl.ra = kScratchGpr0;
    rl.sh = static_cast<std::uint8_t>(bit + 1);
    rl.mb = 31;
    rl.me = 31;
    push(rl);
    if (!expect) push(make_regimm(POp::Xori, rd, rd, 1));
  }

  [[nodiscard]] int param_reg(int index) const {
    // The index-th parameter gets the next argument register of its class.
    int gpr = kFirstArgGpr;
    int fpr = kFirstArgFpr;
    for (int i = 0; i < index; ++i) {
      if (fn_.params[static_cast<std::size_t>(i)].cls == RegClass::I32)
        ++gpr;
      else
        ++fpr;
    }
    const bool is_int =
        fn_.params[static_cast<std::size_t>(index)].cls == RegClass::I32;
    const int reg = is_int ? gpr : fpr;
    check(is_int ? reg <= 10 : reg <= 8, "too many parameters for registers");
    return reg;
  }

  // --- main dispatcher ------------------------------------------------------

  void emit(const rtl::Instr& ins) {
    switch (ins.op) {
      case Opcode::LdI:
        load_imm(gpr_of(ins.dst), ins.int_imm);
        return;
      case Opcode::LdF: {
        const std::uint32_t off = layout_.add_const(ins.f64_imm);
        access_global(POp::Lfd, fpr_of(ins.dst), "$cpool",
                      static_cast<std::int32_t>(off));
        return;
      }
      case Opcode::Mov: {
        if (fn_.vregs[ins.dst] == RegClass::I32)
          push(make_regimm(POp::Mr, gpr_of(ins.dst), gpr_of(ins.src1), 0));
        else
          push(make_reg3(POp::Fmr, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      }
      case Opcode::Un:
        emit_unary(ins);
        return;
      case Opcode::Bin:
        emit_binary(ins);
        return;
      case Opcode::LoadGlobal: {
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        const std::int32_t addend = static_cast<std::int32_t>(esz) * ins.elem;
        if (esz == 8)
          access_global(POp::Lfd, fpr_of(ins.dst), ins.sym, addend);
        else
          access_global(POp::Lwz, gpr_of(ins.dst), ins.sym, addend);
        return;
      }
      case Opcode::StoreGlobal: {
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        const std::int32_t addend = static_cast<std::int32_t>(esz) * ins.elem;
        if (esz == 8)
          access_global(POp::Stfd, fpr_of(ins.src1), ins.sym, addend);
        else
          access_global(POp::Stw, gpr_of(ins.src1), ins.sym, addend);
        return;
      }
      case Opcode::LoadGlobalIdx:
      case Opcode::StoreGlobalIdx: {
        const bool is_store = ins.op == Opcode::StoreGlobalIdx;
        const VReg idx = is_store ? ins.src2 : ins.src1;
        const std::uint32_t esz = layout_.elem_size(ins.sym);
        // r11 <- idx * esz, then an x-form access against the array base.
        MInstr sl;
        sl.op = POp::Rlwinm;
        sl.rd = kScratchGpr0;
        sl.ra = static_cast<std::uint8_t>(gpr_of(idx));
        sl.sh = esz == 8 ? 3 : 2;
        sl.mb = 0;
        sl.me = esz == 8 ? 28 : 29;
        push(sl);
        int base_reg;
        if (options_.small_data_area) {
          // Fold the array offset into the index register, base off r2.
          push_reloc(make_regimm(POp::Addi, kScratchGpr0, kScratchGpr0, 0),
                     ins.sym, 0);
          base_reg = kDataBasePtr;
        } else {
          load_global_address(kScratchGpr1, ins.sym, 0);
          base_reg = kScratchGpr1;
        }
        if (is_store) {
          if (esz == 8)
            push(make_reg3(POp::Stfdx, fpr_of(ins.src1), base_reg,
                           kScratchGpr0));
          else
            push(make_reg3(POp::Stwx, gpr_of(ins.src1), base_reg,
                           kScratchGpr0));
        } else {
          if (esz == 8)
            push(make_reg3(POp::Lfdx, fpr_of(ins.dst), base_reg,
                           kScratchGpr0));
          else
            push(make_reg3(POp::Lwzx, gpr_of(ins.dst), base_reg,
                           kScratchGpr0));
        }
        return;
      }
      case Opcode::LoadStack: {
        const std::int32_t off = slot_offset(ins.slot);
        if (fn_.slots[ins.slot] == RegClass::F64)
          push(make_regimm(POp::Lfd, fpr_of(ins.dst), kStackPtr, off));
        else
          push(make_regimm(POp::Lwz, gpr_of(ins.dst), kStackPtr, off));
        return;
      }
      case Opcode::StoreStack: {
        const std::int32_t off = slot_offset(ins.slot);
        if (fn_.slots[ins.slot] == RegClass::F64)
          push(make_regimm(POp::Stfd, fpr_of(ins.src1), kStackPtr, off));
        else
          push(make_regimm(POp::Stw, gpr_of(ins.src1), kStackPtr, off));
        return;
      }
      case Opcode::GetParam: {
        const int src = param_reg(ins.param_index);
        if (fn_.vregs[ins.dst] == RegClass::I32)
          push(make_regimm(POp::Mr, gpr_of(ins.dst), src, 0));
        else
          push(make_reg3(POp::Fmr, fpr_of(ins.dst), src, 0));
        return;
      }
      case Opcode::Jump: {
        MInstr b;
        b.op = POp::B;
        push_branch(b, static_cast<int>(ins.target));
        return;
      }
      case Opcode::Branch: {
        MInstr c;
        c.op = POp::Cmpwi;
        c.crf = 0;
        c.ra = static_cast<std::uint8_t>(gpr_of(ins.src1));
        c.imm = 0;
        push(c);
        MInstr bc;
        bc.op = POp::Bc;
        bc.crbit = kCr0Eq;
        bc.expect = false;  // branch if src != 0
        push_branch(bc, static_cast<int>(ins.target));
        MInstr b;
        b.op = POp::B;
        push_branch(b, static_cast<int>(ins.target2));
        return;
      }
      case Opcode::BranchCmp: {
        const CmpPlan p = emit_compare(ins.bin_op, ins.src1, ins.src2);
        MInstr bc;
        bc.op = POp::Bc;
        bc.crbit = static_cast<std::uint8_t>(p.bit);
        bc.expect = p.expect;
        push_branch(bc, static_cast<int>(ins.target));
        MInstr b;
        b.op = POp::B;
        push_branch(b, static_cast<int>(ins.target2));
        return;
      }
      case Opcode::Ret: {
        if (ins.src1 != rtl::kNoVReg) {
          if (fn_.vregs[ins.src1] == RegClass::I32) {
            if (gpr_of(ins.src1) != kRetGpr)
              push(make_regimm(POp::Mr, kRetGpr, gpr_of(ins.src1), 0));
          } else if (fpr_of(ins.src1) != kRetFpr) {
            push(make_reg3(POp::Fmr, kRetFpr, fpr_of(ins.src1), 0));
          }
        }
        if (out_.frame_bytes != 0)
          push(make_regimm(POp::Addi, kStackPtr, kStackPtr,
                           static_cast<std::int32_t>(out_.frame_bytes)));
        MInstr blr;
        blr.op = POp::Blr;
        push(blr);
        return;
      }
      case Opcode::Annot: {
        AnnotEntry entry;
        entry.addr = static_cast<std::uint32_t>(out_.ops.size());
        entry.format = ins.annot_format;
        for (const rtl::AnnotOperand& a : ins.annot_args) {
          MLoc loc;
          if (a.is_slot) {
            loc.kind = MLoc::Kind::StackSlot;
            loc.offset = slot_offset(a.slot) -
                         static_cast<std::int32_t>(out_.frame_bytes);
            loc.is_f64 = fn_.slots[a.slot] == RegClass::F64;
          } else if (fn_.vregs[a.vreg] == RegClass::I32) {
            loc.kind = MLoc::Kind::Gpr;
            loc.index = gpr_of(a.vreg);
          } else {
            loc.kind = MLoc::Kind::Fpr;
            loc.index = fpr_of(a.vreg);
          }
          entry.operands.push_back(loc);
        }
        out_.annots.push_back(std::move(entry));
        return;
      }
    }
    throw InternalError("bad RTL opcode in codegen");
  }

  void emit_unary(const rtl::Instr& ins) {
    switch (ins.un_op) {
      case UnOp::INeg:
        push(make_regimm(POp::Neg, gpr_of(ins.dst), gpr_of(ins.src1), 0));
        return;
      case UnOp::INot:
        push(make_reg3(POp::Nor, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src1)));
        return;
      case UnOp::FNeg:
        push(make_reg3(POp::Fneg, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::FAbs:
        push(make_reg3(POp::Fabs, fpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::I2F:
        push(make_reg3(POp::Icvf, fpr_of(ins.dst), gpr_of(ins.src1), 0));
        return;
      case UnOp::F2I:
        push(make_reg3(POp::Fcti, gpr_of(ins.dst), fpr_of(ins.src1), 0));
        return;
      case UnOp::LNot:
        throw InternalError("LNot must be expanded during lowering");
    }
    throw InternalError("bad UnOp in codegen");
  }

  void emit_binary(const rtl::Instr& ins) {
    switch (ins.bin_op) {
      case BinOp::IAdd:
        push(make_reg3(POp::Add, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::ISub:
        // subf rd, ra, rb computes rb - ra.
        push(make_reg3(POp::Subf, gpr_of(ins.dst), gpr_of(ins.src2),
                       gpr_of(ins.src1)));
        return;
      case BinOp::IMul:
        push(make_reg3(POp::Mullw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IDiv:
        push(make_reg3(POp::Divw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IRem: {
        // r11 = a / b ; r11 = r11 * b ; rd = a - r11.
        const int a = gpr_of(ins.src1);
        const int b = gpr_of(ins.src2);
        push(make_reg3(POp::Divw, kScratchGpr0, a, b));
        push(make_reg3(POp::Mullw, kScratchGpr0, kScratchGpr0, b));
        push(make_reg3(POp::Subf, gpr_of(ins.dst), kScratchGpr0, a));
        return;
      }
      case BinOp::IAnd:
        push(make_reg3(POp::And, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IOr:
        push(make_reg3(POp::Or, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IXor:
        push(make_reg3(POp::Xor, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IShl:
        push(make_reg3(POp::Slw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::IShr:
        push(make_reg3(POp::Sraw, gpr_of(ins.dst), gpr_of(ins.src1),
                       gpr_of(ins.src2)));
        return;
      case BinOp::FAdd:
        push(make_reg3(POp::Fadd, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FSub:
        push(make_reg3(POp::Fsub, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FMul:
        push(make_reg3(POp::Fmul, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::FDiv:
        push(make_reg3(POp::Fdiv, fpr_of(ins.dst), fpr_of(ins.src1),
                       fpr_of(ins.src2)));
        return;
      case BinOp::ICmpEq: case BinOp::ICmpNe: case BinOp::ICmpLt:
      case BinOp::ICmpLe: case BinOp::ICmpGt: case BinOp::ICmpGe:
      case BinOp::FCmpEq: case BinOp::FCmpNe: case BinOp::FCmpLt:
      case BinOp::FCmpLe: case BinOp::FCmpGt: case BinOp::FCmpGe: {
        const CmpPlan p = emit_compare(ins.bin_op, ins.src1, ins.src2);
        materialize_crbit(gpr_of(ins.dst), p.bit, p.expect);
        return;
      }
      case BinOp::FMin:
      case BinOp::FMax:
        throw InternalError("fmin/fmax must be expanded during lowering");
    }
    throw InternalError("bad BinOp in codegen");
  }

  const rtl::Function& fn_;
  const regalloc::Allocation& alloc_;
  DataLayout& layout_;
  EmitOptions options_;
  AsmFunction out_;
};

}  // namespace

std::size_t AsmFunction::label_pos(int label) const {
  for (const auto& [l, pos] : labels)
    if (l == label) return pos;
  throw InternalError("unknown label");
}

AsmFunction emit_function(const rtl::Function& fn,
                          const regalloc::Allocation& alloc,
                          DataLayout& layout, EmitOptions options) {
  return Emitter(fn, alloc, layout, options).run();
}

MachineFunction finalize(const AsmFunction& asm_fn) {
  MachineFunction out;
  out.name = asm_fn.name;
  out.frame_bytes = asm_fn.frame_bytes;
  out.code.reserve(asm_fn.ops.size());
  for (std::size_t i = 0; i < asm_fn.ops.size(); ++i) {
    const AsmOp& op = asm_fn.ops[i];
    MInstr ins = op.ins;
    if (op.target_label >= 0) {
      const std::size_t target = asm_fn.label_pos(op.target_label);
      ins.disp = static_cast<std::int32_t>(target) -
                 static_cast<std::int32_t>(i);
    }
    if (!op.reloc_sym.empty())
      out.relocs.push_back(
          Reloc{i, op.reloc_sym, op.reloc_addend, op.reloc_kind});
    out.code.push_back(ins);
  }
  for (const AnnotEntry& a : asm_fn.annots) {
    AnnotEntry e = a;
    // Clamp annotations that fall at the very end of the function.
    if (e.addr >= out.code.size() && !out.code.empty())
      e.addr = static_cast<std::uint32_t>(out.code.size() - 1);
    out.annots.push_back(std::move(e));
  }
  return out;
}

int remove_self_moves(AsmFunction& fn) {
  std::vector<AsmOp> kept;
  std::vector<std::size_t> new_index(fn.ops.size() + 1, 0);
  int removed = 0;
  for (std::size_t i = 0; i < fn.ops.size(); ++i) {
    new_index[i] = kept.size();
    const MInstr& m = fn.ops[i].ins;
    const bool self_move = (m.op == POp::Mr || m.op == POp::Fmr) &&
                           m.rd == m.ra && fn.ops[i].target_label < 0;
    if (self_move) {
      ++removed;
      continue;
    }
    kept.push_back(fn.ops[i]);
  }
  new_index[fn.ops.size()] = kept.size();
  if (removed == 0) return 0;
  for (auto& [label, pos] : fn.labels) pos = new_index[pos];
  for (auto& a : fn.annots) a.addr = static_cast<std::uint32_t>(new_index[a.addr]);
  fn.ops = std::move(kept);
  return removed;
}

}  // namespace vc::ppc
