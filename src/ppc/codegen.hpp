// RTL -> machine code generation.
//
// Emission produces an AsmFunction: machine instructions with symbolic branch
// labels and data relocations still attached, so that the optional machine
// level passes (peephole fusion, list scheduling — the O2-full extras) can
// transform the code before displacements are resolved. `finalize` turns an
// AsmFunction into a linkable MachineFunction.
//
// Register convention (see isa.hpp): colors map to r14..r31 / f14..f31;
// r11/r12 and f12/f13 are emission scratch; r3../f1.. carry arguments;
// results return in r3 / f1; r1 is the stack pointer, r2 the data base.
#pragma once

#include "ppc/program.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/rtl.hpp"

namespace vc::ppc {

constexpr int kFirstAllocGpr = 14;
constexpr int kFirstAllocFpr = 14;
constexpr int kAllocatableGprs = 18;  // r14..r31
constexpr int kAllocatableFprs = 18;  // f14..f31
constexpr int kScratchGpr0 = 11;
constexpr int kScratchGpr1 = 12;
constexpr int kScratchFpr0 = 12;
constexpr int kScratchFpr1 = 13;
constexpr int kStackPtr = 1;
constexpr int kDataBasePtr = 2;
constexpr int kFirstArgGpr = 3;   // r3..r10
constexpr int kFirstArgFpr = 1;   // f1..f8
constexpr int kRetGpr = 3;
constexpr int kRetFpr = 1;

/// One assembly-level operation with link-time attachments.
struct AsmOp {
  MInstr ins;
  int target_label = -1;    // B/Bc: symbolic target (block id)
  std::string reloc_sym;    // non-empty: imm patched with sym+addend at link
  std::int32_t reloc_addend = 0;
  RelocKind reloc_kind = RelocKind::DataDisp;
};

/// Addressing discipline for globals and the constant pool.
/// The default compiler (all three configurations) uses r2-based small-data
/// addressing; the verified configuration does not (paper §3.3: "CompCert's
/// recent support for small data areas was not used in the evaluation, while
/// it is used by the default compiler") and pays a lis/@ha + @l pair per
/// access instead.
struct EmitOptions {
  bool small_data_area = true;
};

struct AsmFunction {
  std::string name;
  std::vector<AsmOp> ops;
  std::vector<std::pair<int, std::size_t>> labels;  // label id -> op index
  /// Annotation entries anchored to op indices (the op that follows the
  /// annotation point).
  std::vector<AnnotEntry> annots;
  std::uint32_t frame_bytes = 0;

  [[nodiscard]] std::size_t label_pos(int label) const;
};

/// Emits machine code for an allocated RTL function. Constant-pool doubles
/// are registered in `layout`.
AsmFunction emit_function(const rtl::Function& fn,
                          const regalloc::Allocation& alloc,
                          DataLayout& layout, EmitOptions options = {});

/// Resolves branch displacements and produces a linkable MachineFunction.
MachineFunction finalize(const AsmFunction& asm_fn);

/// Removes self-moves (mr rX,rX / fmr fX,fX). Applied in every configuration
/// (an assembler-level cleanup). Returns number removed.
int remove_self_moves(AsmFunction& fn);

/// O2-full peepholes: fmadd/fmsub fusion, li+cmpw -> cmpwi, li+add -> addi.
/// Returns the number of rewrites.
int peephole(AsmFunction& fn);

/// O2-full list scheduler: reorders instructions within branch/label-free
/// regions to hide latencies, using the shared timing model. Returns the
/// number of ops whose position changed.
int schedule(AsmFunction& fn);

}  // namespace vc::ppc
