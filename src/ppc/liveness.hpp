// Machine-level liveness over the AsmFunction CFG (blocks delimited by
// labels and branches), at the granularity of the shared IssueModel resource
// indices (GPRs, FPRs, CR fields). At `blr`, only the ABI-escaping registers
// are live-out: r1 (stack), r2 (data base), r3 and f1 (results).
//
// Shared by the peephole pass (is the intermediate register of a fused pair
// dead afterwards?) and the machine-level translation validators in
// src/validate (which resources must agree at a comparison point?).
#pragma once

#include <bitset>
#include <cstddef>
#include <vector>

#include "ppc/codegen.hpp"
#include "ppc/timing.hpp"

namespace vc::ppc {

class MachineLiveness {
 public:
  using LiveSet = std::bitset<IssueModel::kNumResources>;

  explicit MachineLiveness(const AsmFunction& fn);

  /// True if `resource` may be read after executing op `pos`.
  [[nodiscard]] bool live_after(std::size_t pos, int resource) const {
    return live_after_[pos].test(static_cast<std::size_t>(resource));
  }

  /// The full live-after set of op `pos`.
  [[nodiscard]] const LiveSet& live_after_set(std::size_t pos) const {
    return live_after_[pos];
  }

  /// The registers live across a `blr`: r1, r2, r3, f1.
  static LiveSet abi_escape();

 private:
  std::vector<LiveSet> live_after_;
};

}  // namespace vc::ppc
