#include "ppc/isa.hpp"

#include <array>

#include "support/strings.hpp"

namespace vc::ppc {
namespace {

enum class Format {
  Reg3,    // rd, ra, rb, rc
  RegImm,  // rd, ra, imm16
  Rlwinm,  // rd, ra, sh, mb, me
  Cmp,     // crf, ra, rb
  CmpImm,  // crf, ra, imm16
  Cror,    // crbd, crba, crbb
  Mfcr,    // rd
  B,       // disp26
  Bc,      // crbit, expect, disp16
  None,    // blr, nop
};

Format format_of(POp op) {
  switch (op) {
    case POp::Li: case POp::Lis: case POp::Ori: case POp::Xori:
    case POp::Addi: case POp::Mr:
    case POp::Lwz: case POp::Stw: case POp::Lfd: case POp::Stfd:
      return Format::RegImm;
    case POp::Add: case POp::Subf: case POp::Mullw: case POp::Divw:
    case POp::And: case POp::Or: case POp::Xor: case POp::Nor:
    case POp::Neg: case POp::Slw: case POp::Sraw: case POp::Srw:
    case POp::Fadd: case POp::Fsub: case POp::Fmul: case POp::Fdiv:
    case POp::Fmadd: case POp::Fmsub:
    case POp::Fneg: case POp::Fabs: case POp::Fmr:
    case POp::Fcti: case POp::Icvf:
    case POp::Lwzx: case POp::Stwx: case POp::Lfdx: case POp::Stfdx:
      return Format::Reg3;
    case POp::Rlwinm:
      return Format::Rlwinm;
    case POp::Cmpw: case POp::Fcmpu:
      return Format::Cmp;
    case POp::Cmpwi:
      return Format::CmpImm;
    case POp::Cror:
      return Format::Cror;
    case POp::Mfcr:
      return Format::Mfcr;
    case POp::B:
      return Format::B;
    case POp::Bc:
      return Format::Bc;
    case POp::Blr: case POp::Nop:
      return Format::None;
  }
  throw InternalError("bad POp");
}

bool imm_is_signed(POp op) {
  switch (op) {
    case POp::Ori:
    case POp::Xori:
      return false;
    default:
      return true;
  }
}

constexpr std::uint32_t kOpShift = 26;

void require_fits(bool ok, const char* what) {
  if (!ok) throw InternalError(std::string("encoding overflow: ") + what);
}

}  // namespace

bool MInstr::operator==(const MInstr& o) const {
  return op == o.op && rd == o.rd && ra == o.ra && rb == o.rb && rc == o.rc &&
         imm == o.imm && sh == o.sh && mb == o.mb && me == o.me &&
         crf == o.crf && crbd == o.crbd && crba == o.crba && crbb == o.crbb &&
         crbit == o.crbit && expect == o.expect && disp == o.disp;
}

std::string mnemonic(POp op) {
  switch (op) {
    case POp::Li: return "li";
    case POp::Lis: return "lis";
    case POp::Ori: return "ori";
    case POp::Xori: return "xori";
    case POp::Addi: return "addi";
    case POp::Mr: return "mr";
    case POp::Add: return "add";
    case POp::Subf: return "subf";
    case POp::Mullw: return "mullw";
    case POp::Divw: return "divw";
    case POp::And: return "and";
    case POp::Or: return "or";
    case POp::Xor: return "xor";
    case POp::Nor: return "nor";
    case POp::Neg: return "neg";
    case POp::Slw: return "slw";
    case POp::Sraw: return "sraw";
    case POp::Srw: return "srw";
    case POp::Rlwinm: return "rlwinm";
    case POp::Cmpw: return "cmpw";
    case POp::Cmpwi: return "cmpwi";
    case POp::Fcmpu: return "fcmpu";
    case POp::Cror: return "cror";
    case POp::Mfcr: return "mfcr";
    case POp::Fadd: return "fadd";
    case POp::Fsub: return "fsub";
    case POp::Fmul: return "fmul";
    case POp::Fdiv: return "fdiv";
    case POp::Fmadd: return "fmadd";
    case POp::Fmsub: return "fmsub";
    case POp::Fneg: return "fneg";
    case POp::Fabs: return "fabs";
    case POp::Fmr: return "fmr";
    case POp::Fcti: return "fcti";
    case POp::Icvf: return "icvf";
    case POp::Lwz: return "lwz";
    case POp::Stw: return "stw";
    case POp::Lwzx: return "lwzx";
    case POp::Stwx: return "stwx";
    case POp::Lfd: return "lfd";
    case POp::Stfd: return "stfd";
    case POp::Lfdx: return "lfdx";
    case POp::Stfdx: return "stfdx";
    case POp::B: return "b";
    case POp::Bc: return "bc";
    case POp::Blr: return "blr";
    case POp::Nop: return "nop";
  }
  throw InternalError("bad POp");
}

std::string format_instr(const MInstr& ins, std::uint32_t addr) {
  const std::string m = mnemonic(ins.op);
  auto gpr = [](int r) { return "r" + std::to_string(r); };
  auto fpr = [](int r) { return "f" + std::to_string(r); };
  const bool fp = (ins.op >= POp::Fadd && ins.op <= POp::Fmr) ||
                  ins.op == POp::Fcmpu;
  auto reg = [&](int r) { return fp ? fpr(r) : gpr(r); };

  switch (format_of(ins.op)) {
    case Format::RegImm:
      switch (ins.op) {
        case POp::Li:
        case POp::Lis:
          return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm);
        case POp::Mr:
          return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra);
        case POp::Lwz:
          return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        case POp::Lfd:
          return m + " " + fpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        case POp::Stw:
          return m + " " + gpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        case POp::Stfd:
          return m + " " + fpr(ins.rd) + ", " + std::to_string(ins.imm) + "(" +
                 gpr(ins.ra) + ")";
        default:
          return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra) + ", " +
                 std::to_string(ins.imm);
      }
    case Format::Reg3:
      switch (ins.op) {
        case POp::Neg: case POp::Fneg: case POp::Fabs: case POp::Fmr:
          return m + " " + reg(ins.rd) + ", " + reg(ins.ra);
        case POp::Fcti:
          return m + " " + gpr(ins.rd) + ", " + fpr(ins.ra);
        case POp::Icvf:
          return m + " " + fpr(ins.rd) + ", " + gpr(ins.ra);
        case POp::Fmadd: case POp::Fmsub:
          return m + " " + fpr(ins.rd) + ", " + fpr(ins.ra) + ", " +
                 fpr(ins.rb) + ", " + fpr(ins.rc);
        case POp::Lwzx: case POp::Stwx:
          return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra) + ", " + gpr(ins.rb);
        case POp::Lfdx: case POp::Stfdx:
          return m + " " + fpr(ins.rd) + ", " + gpr(ins.ra) + ", " + gpr(ins.rb);
        default:
          return m + " " + reg(ins.rd) + ", " + reg(ins.ra) + ", " + reg(ins.rb);
      }
    case Format::Rlwinm:
      return m + " " + gpr(ins.rd) + ", " + gpr(ins.ra) + ", " +
             std::to_string(ins.sh) + ", " + std::to_string(ins.mb) + ", " +
             std::to_string(ins.me);
    case Format::Cmp:
      return m + " cr" + std::to_string(ins.crf) + ", " + reg(ins.ra) + ", " +
             reg(ins.rb);
    case Format::CmpImm:
      return m + " cr" + std::to_string(ins.crf) + ", " + gpr(ins.ra) + ", " +
             std::to_string(ins.imm);
    case Format::Cror:
      return m + " " + std::to_string(ins.crbd) + ", " +
             std::to_string(ins.crba) + ", " + std::to_string(ins.crbb);
    case Format::Mfcr:
      return m + " " + gpr(ins.rd);
    case Format::B:
      return m + " " + hex32(addr + static_cast<std::uint32_t>(ins.disp) * 4);
    case Format::Bc: {
      static const char* names[4] = {"lt", "gt", "eq", "so"};
      const std::string cond = std::string(ins.expect ? "" : "!") + "cr" +
                               std::to_string(ins.crbit / 4) + "." +
                               names[ins.crbit % 4];
      return m + " " + cond + ", " +
             hex32(addr + static_cast<std::uint32_t>(ins.disp) * 4);
    }
    case Format::None:
      return m;
  }
  throw InternalError("bad format");
}

std::uint32_t encode(const MInstr& ins) {
  const auto opbits = static_cast<std::uint32_t>(ins.op);
  require_fits(opbits < 64, "opcode");
  std::uint32_t w = opbits << kOpShift;
  auto r5 = [&](std::uint32_t v, int shift, const char* what) {
    require_fits(v < 32, what);
    w |= v << shift;
  };
  switch (format_of(ins.op)) {
    case Format::RegImm: {
      r5(ins.rd, 21, "rd");
      r5(ins.ra, 16, "ra");
      if (imm_is_signed(ins.op))
        require_fits(ins.imm >= -32768 && ins.imm <= 32767, "simm16");
      else
        require_fits(ins.imm >= 0 && ins.imm <= 65535, "uimm16");
      w |= static_cast<std::uint32_t>(ins.imm) & 0xFFFF;
      break;
    }
    case Format::Reg3:
      r5(ins.rd, 21, "rd");
      r5(ins.ra, 16, "ra");
      r5(ins.rb, 11, "rb");
      r5(ins.rc, 6, "rc");
      break;
    case Format::Rlwinm:
      r5(ins.rd, 21, "rd");
      r5(ins.ra, 16, "ra");
      r5(ins.sh, 11, "sh");
      r5(ins.mb, 6, "mb");
      r5(ins.me, 1, "me");
      break;
    case Format::Cmp:
      require_fits(ins.crf < 8, "crf");
      w |= static_cast<std::uint32_t>(ins.crf) << 23;
      r5(ins.ra, 18, "ra");
      r5(ins.rb, 13, "rb");
      break;
    case Format::CmpImm:
      require_fits(ins.crf < 8, "crf");
      w |= static_cast<std::uint32_t>(ins.crf) << 23;
      r5(ins.ra, 18, "ra");
      require_fits(ins.imm >= -32768 && ins.imm <= 32767, "simm16");
      w |= static_cast<std::uint32_t>(ins.imm) & 0xFFFF;
      break;
    case Format::Cror:
      r5(ins.crbd, 21, "crbd");
      r5(ins.crba, 16, "crba");
      r5(ins.crbb, 11, "crbb");
      break;
    case Format::Mfcr:
      r5(ins.rd, 21, "rd");
      break;
    case Format::B:
      require_fits(ins.disp >= -(1 << 25) && ins.disp < (1 << 25), "disp26");
      w |= static_cast<std::uint32_t>(ins.disp) & 0x03FFFFFF;
      break;
    case Format::Bc:
      r5(ins.crbit, 21, "crbit");
      if (ins.expect) w |= 1u << 20;
      require_fits(ins.disp >= -32768 && ins.disp <= 32767, "disp16");
      w |= static_cast<std::uint32_t>(ins.disp) & 0xFFFF;
      break;
    case Format::None:
      break;
  }
  return w;
}

MInstr decode(std::uint32_t word) {
  const std::uint32_t opbits = word >> kOpShift;
  if (opbits > static_cast<std::uint32_t>(POp::Nop))
    throw CompileError("invalid opcode in instruction word " + hex32(word));
  MInstr ins;
  ins.op = static_cast<POp>(opbits);
  auto sext16 = [](std::uint32_t v) {
    return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xFFFF));
  };
  switch (format_of(ins.op)) {
    case Format::RegImm:
      ins.rd = (word >> 21) & 31;
      ins.ra = (word >> 16) & 31;
      ins.imm = imm_is_signed(ins.op) ? sext16(word)
                                      : static_cast<std::int32_t>(word & 0xFFFF);
      break;
    case Format::Reg3:
      ins.rd = (word >> 21) & 31;
      ins.ra = (word >> 16) & 31;
      ins.rb = (word >> 11) & 31;
      ins.rc = (word >> 6) & 31;
      break;
    case Format::Rlwinm:
      ins.rd = (word >> 21) & 31;
      ins.ra = (word >> 16) & 31;
      ins.sh = (word >> 11) & 31;
      ins.mb = (word >> 6) & 31;
      ins.me = (word >> 1) & 31;
      break;
    case Format::Cmp:
      ins.crf = (word >> 23) & 7;
      ins.ra = (word >> 18) & 31;
      ins.rb = (word >> 13) & 31;
      break;
    case Format::CmpImm:
      ins.crf = (word >> 23) & 7;
      ins.ra = (word >> 18) & 31;
      ins.imm = sext16(word);
      break;
    case Format::Cror:
      ins.crbd = (word >> 21) & 31;
      ins.crba = (word >> 16) & 31;
      ins.crbb = (word >> 11) & 31;
      break;
    case Format::Mfcr:
      ins.rd = (word >> 21) & 31;
      break;
    case Format::B: {
      std::uint32_t d = word & 0x03FFFFFF;
      if (d & 0x02000000) d |= 0xFC000000;  // sign-extend 26 bits
      ins.disp = static_cast<std::int32_t>(d);
      break;
    }
    case Format::Bc:
      ins.crbit = (word >> 21) & 31;
      ins.expect = ((word >> 20) & 1) != 0;
      ins.disp = sext16(word);
      break;
    case Format::None:
      break;
  }
  return ins;
}

bool is_memory_op(POp op) {
  switch (op) {
    case POp::Lwz: case POp::Stw: case POp::Lwzx: case POp::Stwx:
    case POp::Lfd: case POp::Stfd: case POp::Lfdx: case POp::Stfdx:
      return true;
    default:
      return false;
  }
}

bool is_branch(POp op) {
  return op == POp::B || op == POp::Bc || op == POp::Blr;
}

}  // namespace vc::ppc
