#include "ppc/timing.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace vc::ppc {

Unit unit_of(POp op) {
  if (is_memory_op(op)) return Unit::LSU;
  if (is_branch(op)) return Unit::BPU;
  switch (op) {
    case POp::Fadd: case POp::Fsub: case POp::Fmul: case POp::Fdiv:
    case POp::Fmadd: case POp::Fmsub: case POp::Fneg: case POp::Fabs:
    case POp::Fmr: case POp::Fcmpu: case POp::Fcti: case POp::Icvf:
      return Unit::FPU;
    case POp::Cror:
      return Unit::BPU;  // CR logical unit shares the branch unit
    default:
      return Unit::IU;
  }
}

std::uint32_t latency_of(POp op) {
  switch (op) {
    case POp::Mullw: return 3;
    case POp::Divw: return 19;
    case POp::Mfcr: return 2;
    case POp::Fadd: case POp::Fsub: case POp::Fmul: return 4;
    case POp::Fmadd: case POp::Fmsub: return 4;
    case POp::Fdiv: return 31;
    case POp::Fcmpu: return 4;
    case POp::Fcti: case POp::Icvf: return 4;
    case POp::Fneg: case POp::Fabs: case POp::Fmr: return 2;
    // L1 hits are single-cycle: the 755 overlaps load-to-use latency with
    // its store queue and forwarding; our in-order model compensates by a
    // cheap hit so that stack traffic is not over-weighted (calibration,
    // see EXPERIMENTS.md).
    case POp::Lwz: case POp::Lwzx: case POp::Lfd: case POp::Lfdx: return 1;
    case POp::Stw: case POp::Stwx: case POp::Stfd: case POp::Stfdx: return 1;
    default: return 1;
  }
}

bool is_complex_iu(POp op) {
  return op == POp::Mullw || op == POp::Divw || op == POp::Mfcr;
}

void IssueModel::reset() {
  cycle_ = 0;
  ready_.fill(0);
  slot_cycle_ = ~0ull;
  slots_used_ = 0;
  second_iu_used_ = false;
  std::fill(std::begin(unit_used_), std::end(unit_used_), false);
  std::fill(std::begin(unit_busy_until_), std::end(unit_busy_until_), 0ull);
}

void IssueModel::resources(const MInstr& ins, int* reads, int* n_reads,
                           int* writes, int* n_writes) {
  *n_reads = 0;
  *n_writes = 0;
  auto R = [&](int r) {
    check(*n_reads < kMaxResourcesPerInstr, "resource read list overflow");
    reads[(*n_reads)++] = r;
  };
  auto W = [&](int r) {
    check(*n_writes < kMaxResourcesPerInstr, "resource write list overflow");
    writes[(*n_writes)++] = r;
  };
  constexpr int kFpr = 32;
  switch (ins.op) {
    case POp::Li: case POp::Lis:
      W(ins.rd);
      break;
    case POp::Ori: case POp::Xori: case POp::Addi: case POp::Mr:
    case POp::Neg:
      R(ins.ra);
      W(ins.rd);
      break;
    case POp::Add: case POp::Subf: case POp::Mullw: case POp::Divw:
    case POp::And: case POp::Or: case POp::Xor: case POp::Nor:
    case POp::Slw: case POp::Sraw: case POp::Srw:
      R(ins.ra);
      R(ins.rb);
      W(ins.rd);
      break;
    case POp::Rlwinm:
      R(ins.ra);
      W(ins.rd);
      break;
    case POp::Cmpw:
      R(ins.ra);
      R(ins.rb);
      W(kCrBase + ins.crf);
      break;
    case POp::Cmpwi:
      R(ins.ra);
      W(kCrBase + ins.crf);
      break;
    case POp::Fcmpu:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      W(kCrBase + ins.crf);
      break;
    case POp::Cror:
      R(kCrBase + ins.crba / 4);
      R(kCrBase + ins.crbb / 4);
      W(kCrBase + ins.crbd / 4);
      break;
    case POp::Mfcr:
      for (int f = 0; f < 8; ++f) R(kCrBase + f);
      W(ins.rd);
      break;
    case POp::Fadd: case POp::Fsub: case POp::Fmul: case POp::Fdiv:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      W(kFpr + ins.rd);
      break;
    case POp::Fmadd: case POp::Fmsub:
      R(kFpr + ins.ra);
      R(kFpr + ins.rb);
      R(kFpr + ins.rc);
      W(kFpr + ins.rd);
      break;
    case POp::Fneg: case POp::Fabs: case POp::Fmr:
      R(kFpr + ins.ra);
      W(kFpr + ins.rd);
      break;
    case POp::Fcti:
      R(kFpr + ins.ra);
      W(ins.rd);
      break;
    case POp::Icvf:
      R(ins.ra);
      W(kFpr + ins.rd);
      break;
    case POp::Lwz:
      R(ins.ra);
      W(ins.rd);
      break;
    case POp::Stw:
      R(ins.ra);
      R(ins.rd);
      break;
    case POp::Lwzx:
      R(ins.ra);
      R(ins.rb);
      W(ins.rd);
      break;
    case POp::Stwx:
      R(ins.ra);
      R(ins.rb);
      R(ins.rd);
      break;
    case POp::Lfd:
      R(ins.ra);
      W(kFpr + ins.rd);
      break;
    case POp::Stfd:
      R(ins.ra);
      R(kFpr + ins.rd);
      break;
    case POp::Lfdx:
      R(ins.ra);
      R(ins.rb);
      W(kFpr + ins.rd);
      break;
    case POp::Stfdx:
      R(ins.ra);
      R(ins.rb);
      R(kFpr + ins.rd);
      break;
    case POp::B: case POp::Blr: case POp::Nop:
      break;
    case POp::Bc:
      R(kCrBase + ins.crbit / 4);
      break;
  }
}

std::uint64_t IssueModel::issue(const MInstr& ins, const int* reads,
                                int n_reads, const int* writes, int n_writes,
                                std::uint32_t extra_mem_cycles,
                                std::uint32_t fetch_stall) {
  const Unit unit = unit_of(ins.op);
  const int u = static_cast<int>(unit);

  // Earliest cycle the instruction may issue: after the current in-order
  // point, any fetch stall, operand readiness, and a free (non-blocked) unit.
  std::uint64_t t = cycle_ + fetch_stall;
  for (int i = 0; i < n_reads; ++i) t = std::max(t, ready_[reads[i]]);
  t = std::max(t, unit_busy_until_[u]);

  // Find an issue slot at or after t respecting dual-issue constraints.
  for (;;) {
    if (t != slot_cycle_) {
      slot_cycle_ = t;
      slots_used_ = 0;
      second_iu_used_ = false;
      std::fill(std::begin(unit_used_), std::end(unit_used_), false);
    }
    if (slots_used_ >= 2) {
      ++t;
      continue;
    }
    if (unit == Unit::IU) {
      // Two IU instructions may pair if the second one is simple.
      const bool first_iu = !unit_used_[u] && !second_iu_used_;
      const bool can_second =
          unit_used_[u] && !second_iu_used_ && !is_complex_iu(ins.op);
      if (!first_iu && !can_second) {
        ++t;
        continue;
      }
      if (unit_used_[u]) second_iu_used_ = true;
      unit_used_[u] = true;
    } else {
      if (unit_used_[u]) {
        ++t;
        continue;
      }
      unit_used_[u] = true;
    }
    ++slots_used_;
    break;
  }

  const std::uint32_t lat = latency_of(ins.op) + extra_mem_cycles;
  for (int i = 0; i < n_writes; ++i) ready_[writes[i]] = t + lat;

  // Dividers block their unit until the result is ready.
  if (ins.op == POp::Divw || ins.op == POp::Fdiv)
    unit_busy_until_[u] = t + lat;

  cycle_ = t;  // in-order issue point
  return t;
}

void IssueModel::drain() {
  std::uint64_t t = cycle_ + 1;  // the branch itself occupies its cycle
  for (std::uint64_t r : ready_) t = std::max(t, r);
  for (std::uint64_t r : unit_busy_until_) t = std::max(t, r);
  cycle_ = t;
  slot_cycle_ = ~0ull;
}

void IssueModel::add_stall(std::uint32_t cycles) {
  cycle_ += cycles;
  slot_cycle_ = ~0ull;
}

}  // namespace vc::ppc
