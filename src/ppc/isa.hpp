// The target instruction set: a PowerPC-G3-like 32-bit RISC ISA.
//
// The MPC755 of the paper is modelled by a subset of the PowerPC user ISA
// plus two documented substitutions (DESIGN.md §6): `fcti`/`icvf` perform
// f64<->i32 conversion directly (the real chip needs an fctiwz/store/reload
// dance), and instruction encodings are vcflight's own fixed 32-bit formats
// (1:1 with the assembly, round-trip tested) rather than bit-exact PowerPC.
//
// Registers: 32 GPRs (r0; r1 = stack pointer; r2 = data-segment base "TOC";
// r3..r10 integer arguments; r11/r12 emission scratch; r14..r31 allocatable),
// 32 FPRs (f1..f8 float arguments; f12/f13 scratch; f14..f31 allocatable),
// an 8-field condition register CR (cr0 used by integer compares, cr1 by
// float compares), and the program counter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace vc::ppc {

/// Condition-register bit positions within a CR field (PowerPC numbering:
/// bit 0 of the field is LT). Bit index in the whole CR is crf*4 + bit.
enum CrBit : int { kLt = 0, kGt = 1, kEq = 2, kSo = 3 };  // kSo = FU for fcmpu

enum class POp : std::uint8_t {
  // Integer immediates and moves
  Li,      // rd <- simm16 (sign-extended)
  Lis,     // rd <- simm16 << 16
  Ori,     // rd <- ra | uimm16
  Xori,    // rd <- ra ^ uimm16
  Addi,    // rd <- ra + simm16
  Mr,      // rd <- ra

  // Integer arithmetic / logic (register forms)
  Add, Subf,  // Subf: rd <- rb - ra (PowerPC convention)
  Mullw, Divw,
  And, Or, Xor, Nor,
  Neg,
  Slw, Sraw, Srw,
  Rlwinm,  // rd <- rotl32(ra, sh) & mask(mb, me)

  // Compares and CR manipulation
  Cmpw,    // crf <- compare(ra, rb) signed
  Cmpwi,   // crf <- compare(ra, simm16) signed
  Fcmpu,   // crf <- compare(fa, fb); FU (kSo) set if unordered
  Cror,    // CR[crbd] <- CR[crba] | CR[crbb]
  Mfcr,    // rd <- CR (bit 0 of CR is the MSB of rd)

  // Floating point
  Fadd, Fsub, Fmul, Fdiv,
  Fmadd,   // fd <- fa * fb + fc   (O2-full only)
  Fmsub,   // fd <- fa * fb - fc   (O2-full only)
  Fneg, Fabs, Fmr,
  Fcti,    // rd(GPR)  <- trunc-to-i32(fa), saturating (substitution)
  Icvf,    // fd(FPR)  <- (f64) ra(GPR)                (substitution)

  // Memory (d-form: displacement(base); x-form: base + index)
  Lwz, Stw, Lwzx, Stwx,    // 32-bit GPR loads/stores
  Lfd, Stfd, Lfdx, Stfdx,  // 64-bit FPR loads/stores

  // Control flow
  B,    // unconditional, pc-relative word displacement
  Bc,   // conditional on CR bit: branch if CR[crbit] == expect
  Blr,  // return (jump to link register; the harness seeds LR)

  Nop,
};

std::string mnemonic(POp op);

/// One machine instruction. Fields are used according to the opcode; unused
/// fields are zero. `rd/ra/rb` index GPRs or FPRs depending on the opcode.
struct MInstr {
  POp op = POp::Nop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t rc = 0;        // fmadd/fmsub third operand
  std::int32_t imm = 0;       // simm16/uimm16/displacement
  std::uint8_t sh = 0, mb = 0, me = 0;  // rlwinm
  std::uint8_t crf = 0;       // cmpw/cmpwi/fcmpu
  std::uint8_t crbd = 0, crba = 0, crbb = 0;  // cror
  std::uint8_t crbit = 0;     // bc: absolute CR bit index 0..31
  bool expect = false;        // bc: branch when CR[crbit] == expect
  std::int32_t disp = 0;      // b/bc: signed word displacement from this instr

  bool operator==(const MInstr& o) const;
};

/// Assembly text for one instruction at `addr` (used in listings).
std::string format_instr(const MInstr& ins, std::uint32_t addr);

/// Encodes to the fixed 32-bit vcflight format. Throws InternalError if a
/// field does not fit (the code generator respects all field widths).
std::uint32_t encode(const MInstr& ins);

/// Decodes one word. Throws CompileError on an invalid encoding.
MInstr decode(std::uint32_t word);

/// True if the instruction reads or writes memory.
bool is_memory_op(POp op);
/// True for b/bc/blr.
bool is_branch(POp op);

}  // namespace vc::ppc
