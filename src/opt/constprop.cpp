#include <cstring>
#include <map>

#include "minic/interp.hpp"
#include "opt/opt.hpp"
#include "rtl/analysis.hpp"

namespace vc::opt {
namespace {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

/// Flat constant lattice: Undef < {ConstI, ConstF} < Varying.
struct AbsVal {
  enum class Kind { Undef, ConstI, ConstF, Varying };
  Kind kind = Kind::Undef;
  std::int32_t i = 0;
  double f = 0.0;

  static AbsVal undef() { return {}; }
  static AbsVal varying() { return {Kind::Varying, 0, 0.0}; }
  static AbsVal of_i32(std::int32_t v) { return {Kind::ConstI, v, 0.0}; }
  static AbsVal of_f64(double v) { return {Kind::ConstF, 0, v}; }

  bool operator==(const AbsVal& o) const {
    if (kind != o.kind) return false;
    if (kind == Kind::ConstI) return i == o.i;
    if (kind == Kind::ConstF) {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      std::memcpy(&a, &f, sizeof a);
      std::memcpy(&b, &o.f, sizeof b);
      return a == b;
    }
    return true;
  }
};

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::Kind::Undef) return b;
  if (b.kind == AbsVal::Kind::Undef) return a;
  if (a == b) return a;
  return AbsVal::varying();
}

using State = std::vector<AbsVal>;

bool join_into(State& dst, const State& src) {
  bool changed = false;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const AbsVal j = join(dst[i], src[i]);
    if (!(j == dst[i])) {
      dst[i] = j;
      changed = true;
    }
  }
  return changed;
}

/// Attempts to fold a pure operation; Varying on failure.
AbsVal eval_instr(const Instr& ins, const State& s) {
  switch (ins.op) {
    case Opcode::LdI:
      return AbsVal::of_i32(ins.int_imm);
    case Opcode::LdF:
      return AbsVal::of_f64(ins.f64_imm);
    case Opcode::Mov:
      return s[ins.src1];
    case Opcode::Un: {
      const AbsVal& a = s[ins.src1];
      if (a.kind == AbsVal::Kind::ConstI) {
        const minic::Value r =
            minic::eval_unop(ins.un_op, minic::Value::of_i32(a.i));
        return r.type == minic::Type::I32 ? AbsVal::of_i32(r.i)
                                          : AbsVal::of_f64(r.f);
      }
      if (a.kind == AbsVal::Kind::ConstF) {
        const minic::Value r =
            minic::eval_unop(ins.un_op, minic::Value::of_f64(a.f));
        return r.type == minic::Type::I32 ? AbsVal::of_i32(r.i)
                                          : AbsVal::of_f64(r.f);
      }
      if (a.kind == AbsVal::Kind::Undef) return AbsVal::undef();
      return AbsVal::varying();
    }
    case Opcode::Bin: {
      const AbsVal& a = s[ins.src1];
      const AbsVal& b = s[ins.src2];
      if (a.kind == AbsVal::Kind::Undef || b.kind == AbsVal::Kind::Undef)
        return AbsVal::undef();
      if (minic::operand_type(ins.bin_op) == minic::Type::I32) {
        if (a.kind != AbsVal::Kind::ConstI || b.kind != AbsVal::Kind::ConstI)
          return AbsVal::varying();
        // Never fold a division/remainder by zero: keep the trapping
        // instruction in place so run-time behaviour is preserved.
        if ((ins.bin_op == minic::BinOp::IDiv ||
             ins.bin_op == minic::BinOp::IRem) &&
            b.i == 0)
          return AbsVal::varying();
        return AbsVal::of_i32(minic::eval_ibinop(ins.bin_op, a.i, b.i));
      }
      if (a.kind != AbsVal::Kind::ConstF || b.kind != AbsVal::Kind::ConstF)
        return AbsVal::varying();
      if (minic::result_type(ins.bin_op) == minic::Type::F64)
        return AbsVal::of_f64(minic::eval_fbinop(ins.bin_op, a.f, b.f));
      return AbsVal::of_i32(minic::eval_fcmp(ins.bin_op, a.f, b.f));
    }
    default:
      return AbsVal::varying();
  }
}

void transfer(const Instr& ins, State& s) {
  if (auto d = ins.def()) {
    if (ins.is_pure())
      s[*d] = eval_instr(ins, s);
    else
      s[*d] = AbsVal::varying();
  }
}

}  // namespace

bool constant_propagation(rtl::Function& fn) {
  const std::size_t n_blocks = fn.blocks.size();
  const State initial(fn.vregs.size(), AbsVal::undef());

  std::vector<State> in(n_blocks, initial);
  // Entry state: everything undef (GetParam makes parameters varying).
  CompileWorkspace& ws = this_thread_workspace();
  auto rpo_lease = ws.u32_pool.lease();
  rtl::reverse_postorder(fn, ws, &*rpo_lease);
  const std::vector<BlockId>& rpo = *rpo_lease;
  std::vector<bool> seen(n_blocks, false);
  seen[0] = true;

  bool changed_state = true;
  while (changed_state) {
    changed_state = false;
    for (BlockId b : rpo) {
      State s = in[b];
      for (const Instr& ins : fn.blocks[b].instrs) transfer(ins, s);
      for (BlockId succ : fn.blocks[b].successors()) {
        if (!seen[succ]) {
          seen[succ] = true;
          in[succ] = s;
          changed_state = true;
        } else if (join_into(in[succ], s)) {
          changed_state = true;
        }
      }
    }
  }

  // Rewrite phase: walk each block with the running abstract state.
  bool changed = false;
  for (BlockId b : rpo) {
    State s = in[b];
    for (Instr& ins : fn.blocks[b].instrs) {
      if (ins.is_pure() && ins.op != Opcode::LdI && ins.op != Opcode::LdF) {
        const AbsVal v = eval_instr(ins, s);
        if (v.kind == AbsVal::Kind::ConstI || v.kind == AbsVal::Kind::ConstF) {
          const VReg dst = ins.dst;
          transfer(ins, s);
          Instr folded;
          folded.op =
              v.kind == AbsVal::Kind::ConstI ? Opcode::LdI : Opcode::LdF;
          folded.dst = dst;
          folded.int_imm = v.i;
          folded.f64_imm = v.f;
          ins = folded;
          changed = true;
          continue;
        }
      }
      // Fold constant-condition branches into jumps.
      if (ins.op == Opcode::Branch &&
          s[ins.src1].kind == AbsVal::Kind::ConstI) {
        const BlockId target =
            s[ins.src1].i != 0 ? ins.target : ins.target2;
        Instr j;
        j.op = Opcode::Jump;
        j.target = target;
        ins = j;
        changed = true;
        continue;
      }
      if (ins.op == Opcode::BranchCmp) {
        const AbsVal& a = s[ins.src1];
        const AbsVal& b2 = s[ins.src2];
        bool known = false;
        bool taken = false;
        if (minic::operand_type(ins.bin_op) == minic::Type::I32) {
          if (a.kind == AbsVal::Kind::ConstI &&
              b2.kind == AbsVal::Kind::ConstI) {
            known = true;
            taken = minic::eval_ibinop(ins.bin_op, a.i, b2.i) != 0;
          }
        } else if (a.kind == AbsVal::Kind::ConstF &&
                   b2.kind == AbsVal::Kind::ConstF) {
          known = true;
          taken = minic::eval_fcmp(ins.bin_op, a.f, b2.f) != 0;
        }
        if (known) {
          Instr j;
          j.op = Opcode::Jump;
          j.target = taken ? ins.target : ins.target2;
          ins = j;
          changed = true;
          continue;
        }
      }
      transfer(ins, s);
    }
  }

  if (changed) rtl::remove_unreachable_blocks(fn);
  return changed;
}

}  // namespace vc::opt
