// Branch tunneling: redirects edges that target empty forwarding blocks
// (blocks consisting of a single jump) to their final destination, then
// removes the now-unreachable forwarders. This is CompCert's `Tunneling`
// pass (it sits between register allocation and linearization there; here it
// runs on RTL, which is equivalent for our structured CFGs).
//
// Lowering produces many such forwarders: the join blocks of if/select
// diamonds whose arms are single moves, and loop exit trampolines.
#include <vector>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"

namespace vc::opt {

namespace {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;

/// Final target of a jump chain starting at `b` (with cycle protection:
/// an empty infinite loop tunnels to itself).
BlockId resolve(const Function& fn, BlockId b) {
  std::vector<bool> seen(fn.blocks.size(), false);
  while (!seen[b]) {
    seen[b] = true;
    const auto& instrs = fn.blocks[b].instrs;
    if (instrs.size() != 1 || instrs[0].op != Opcode::Jump) break;
    b = instrs[0].target;
  }
  return b;
}

}  // namespace

bool branch_tunneling(rtl::Function& fn) {
  bool changed = false;
  for (auto& bb : fn.blocks) {
    Instr& t = bb.instrs.back();
    switch (t.op) {
      case Opcode::Jump: {
        const BlockId target = resolve(fn, t.target);
        // Do not tunnel a forwarder onto itself (empty infinite loop).
        if (target != t.target && &fn.blocks[target] != &bb) {
          t.target = target;
          changed = true;
        }
        break;
      }
      case Opcode::Branch:
      case Opcode::BranchCmp: {
        const BlockId taken = resolve(fn, t.target);
        const BlockId fall = resolve(fn, t.target2);
        if (taken != t.target) {
          t.target = taken;
          changed = true;
        }
        if (fall != t.target2) {
          t.target2 = fall;
          changed = true;
        }
        break;
      }
      default:
        break;
    }
  }
  if (changed) rtl::remove_unreachable_blocks(fn);
  return changed;
}

}  // namespace vc::opt
