// Dead store elimination: after forwarding has rewritten reloads into moves,
// many stores write locations that are never read again. A backward
// location-liveness fixpoint (dense bitsets over the function's location
// universe) finds them:
//
//   - at Ret, every global location is live (callers observe globals) and
//     every stack slot is dead (slots are function-local, reset per call);
//   - LoadStack/LoadGlobal make their location live; a dynamically indexed
//     LoadGlobalIdx makes every element of its symbol live;
//   - annotation slot operands read their slots (the pro-forma effect emits
//     the slot's value, paper §3.4);
//   - StoreStack/StoreGlobal kill their location's liveness upward; when the
//     location is dead below the store, the store itself is removed;
//   - StoreGlobalIdx writes an unknown element: it kills nothing (not a
//     must-write to any one element) and is never removed.
//
// Removing a store can only drop a vreg use, so DCE runs after this pass in
// the pipeline to collect the newly dead producers.
#include <algorithm>
#include <map>
#include <vector>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"
#include "support/bitset.hpp"

namespace vc::opt {
namespace {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;

/// Location indexing: slot ids first, then one index per distinct
/// (symbol, element) address; by_sym groups the global indices.
struct StoreLocs {
  std::size_t nslots = 0;
  std::map<std::pair<std::string, std::int32_t>, std::size_t> global_index;
  std::map<std::string, std::vector<std::size_t>> by_sym;
  std::size_t nlocs = 0;

  explicit StoreLocs(const Function& fn) : nslots(fn.slots.size()) {
    nlocs = nslots;
    for (const auto& bb : fn.blocks)
      for (const Instr& ins : bb.instrs)
        if (ins.op == Opcode::LoadGlobal || ins.op == Opcode::StoreGlobal) {
          const auto key = std::make_pair(ins.sym, ins.elem);
          if (global_index.emplace(key, nlocs).second) {
            by_sym[ins.sym].push_back(nlocs);
            ++nlocs;
          }
        }
  }

  [[nodiscard]] std::size_t global_loc(const std::string& sym,
                                       std::int32_t elem) const {
    return global_index.at({sym, elem});
  }
};

/// Backward transfer of one instruction over the live-location set.
/// Returns true if `ins` is a store whose location is dead below it.
bool transfer(const Instr& ins, const StoreLocs& locs, DenseBitset& live) {
  switch (ins.op) {
    case Opcode::Ret:
      // Nothing in this function executes after Ret: globals become
      // observable, slots die with the frame.
      live.clear();
      for (const auto& [sym, indices] : locs.by_sym)
        for (std::size_t loc : indices) live.set(loc);
      return false;
    case Opcode::LoadStack:
      live.set(ins.slot);
      return false;
    case Opcode::LoadGlobal:
      live.set(locs.global_loc(ins.sym, ins.elem));
      return false;
    case Opcode::LoadGlobalIdx: {
      auto it = locs.by_sym.find(ins.sym);
      if (it != locs.by_sym.end())
        for (std::size_t loc : it->second) live.set(loc);
      return false;
    }
    case Opcode::Annot:
      for (const auto& a : ins.annot_args)
        if (a.is_slot) live.set(a.slot);
      return false;
    case Opcode::StoreStack: {
      const bool dead = !live.test(ins.slot);
      live.reset(ins.slot);
      return dead;
    }
    case Opcode::StoreGlobal: {
      const std::size_t loc = locs.global_loc(ins.sym, ins.elem);
      const bool dead = !live.test(loc);
      live.reset(loc);
      return dead;
    }
    default:
      return false;  // StoreGlobalIdx included: may-write kills nothing
  }
}

}  // namespace

bool dead_store_elimination(rtl::Function& fn) {
  const StoreLocs locs(fn);
  if (locs.nlocs == 0) return false;
  CompileWorkspace& ws = this_thread_workspace();
  auto rpo_lease = ws.u32_pool.lease();
  rtl::reverse_postorder(fn, ws, &*rpo_lease);
  const std::vector<BlockId>& rpo = *rpo_lease;

  std::vector<DenseBitset> live_in(fn.blocks.size(), DenseBitset(locs.nlocs));
  std::vector<DenseBitset> live_out(fn.blocks.size(), DenseBitset(locs.nlocs));

  bool changed = true;
  DenseBitset live(locs.nlocs);
  while (changed) {
    changed = false;
    for (std::size_t i = rpo.size(); i-- > 0;) {  // postorder: succs first
      const BlockId b = rpo[i];
      for (BlockId s : fn.blocks[b].successors())
        live_out[b].union_with(live_in[s]);
      live = live_out[b];
      const auto& instrs = fn.blocks[b].instrs;
      for (std::size_t j = instrs.size(); j-- > 0;)
        transfer(instrs[j], locs, live);
      if (live != live_in[b]) {
        live_in[b] = live;
        changed = true;
      }
    }
  }

  // Removal walk over reachable blocks (unreachable ones are left untouched
  // so the validator can hold them to literal equality).
  bool removed = false;
  for (BlockId b : rpo) {
    live = live_out[b];
    auto& instrs = fn.blocks[b].instrs;
    std::vector<Instr> kept;
    kept.reserve(instrs.size());
    for (std::size_t j = instrs.size(); j-- > 0;) {
      if (transfer(instrs[j], locs, live)) {
        removed = true;
        continue;  // dead store: drop
      }
      kept.push_back(std::move(instrs[j]));
    }
    std::reverse(kept.begin(), kept.end());
    instrs = std::move(kept);
  }
  return removed;
}

}  // namespace vc::opt
