// RTL optimization passes.
//
// The pass list matches what the paper reports CompCert 1.7 performs (§3.2):
// "basic optimizations such as constant propagation, common subexpression
// elimination and register allocation by graph coloring, but no loop
// optimizations". Register allocation lives in src/regalloc; everything here
// is a semantics-preserving RTL->RTL rewrite, each of which can be checked by
// the translation validator (src/validate).
// Each pass is a bool-returning rewrite; sequencing, fixpoint iteration,
// checker hooks, and per-pass telemetry live in the pass framework
// (src/pass), which registers every pass here as a pipeline step.
#pragma once

#include "rtl/rtl.hpp"

namespace vc::opt {

/// Global (whole-CFG) conditional constant propagation and folding.
/// Folds pure integer and IEEE f64 operations on known constants, rewrites
/// constant-condition branches into jumps. Integer division by a constant
/// zero is never folded (the runtime trap is preserved).
/// Returns true if anything changed.
bool constant_propagation(rtl::Function& fn);

/// Dominator-scoped common subexpression elimination by value numbering,
/// with integrated copy propagation: an expression computed in a block is
/// available in every block it dominates (scoped hash tables with an undo
/// log, per CompCert's beyond-basic-block CSE). RTL is not SSA, so an
/// inherited equivalence about vreg v is trusted only when it cannot be
/// stale: v has no definition at all, or exactly one and the binding was
/// made at that definition. Only pure instructions participate; memory is
/// handled by the separate forwarding pass below.
bool common_subexpression_elimination(rtl::Function& fn);

/// Alias-aware store-to-load forwarding over stack slots and statically
/// addressed globals. A forward must-available dataflow (intersection at
/// joins) tracks which vreg holds the current value of each location; a
/// LoadStack/LoadGlobal whose location has a known holder becomes a Mov.
/// Facts die when the holding vreg is redefined, when the location is
/// overwritten, or — for globals of a symbol — when a dynamically indexed
/// StoreGlobalIdx to that symbol might alias. Stack slots never alias
/// globals. Returns true if anything changed.
bool memory_forwarding(rtl::Function& fn);

/// Dead store elimination: removes StoreStack/StoreGlobal whose location is
/// provably never read afterwards, by a backward location-liveness fixpoint.
/// Stack slots are function-local (dead at Ret); globals survive the function
/// (all live at Ret). A dynamically indexed LoadGlobalIdx keeps every element
/// of its symbol live; annotation slot operands keep their slots live.
/// StoreGlobalIdx is never removed. Returns true if anything changed.
bool dead_store_elimination(rtl::Function& fn);

/// Liveness-based dead code elimination of pure instructions.
/// Annotation operands count as uses (an __annot keeps its operands alive,
/// as in CompCert). Returns true if anything changed.
bool dead_code_elimination(rtl::Function& fn);

/// Branch tunneling (CompCert's `Tunneling` pass): branches targeting blocks
/// that consist of a single jump are redirected to the final destination;
/// orphaned forwarders are removed. Returns true if anything changed.
bool branch_tunneling(rtl::Function& fn);

}  // namespace vc::opt
