// RTL optimization passes.
//
// The pass list matches what the paper reports CompCert 1.7 performs (§3.2):
// "basic optimizations such as constant propagation, common subexpression
// elimination and register allocation by graph coloring, but no loop
// optimizations". Register allocation lives in src/regalloc; everything here
// is a semantics-preserving RTL->RTL rewrite, each of which can be checked by
// the translation validator (src/validate).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rtl/rtl.hpp"

namespace vc::opt {

/// Called after each applied pass with the pass name, a snapshot of the
/// function before the pass, and the function after it. Used by the
/// translation validator; may throw ValidationError to abort compilation.
using PassHook = std::function<void(const std::string& pass,
                                    const rtl::Function& before,
                                    const rtl::Function& after)>;

/// Global (whole-CFG) conditional constant propagation and folding.
/// Folds pure integer and IEEE f64 operations on known constants, rewrites
/// constant-condition branches into jumps. Integer division by a constant
/// zero is never folded (the runtime trap is preserved).
/// Returns true if anything changed.
bool constant_propagation(rtl::Function& fn);

/// Local common subexpression elimination by value numbering, with integrated
/// copy propagation. Works block-locally; only pure instructions participate
/// (memory is never promoted to registers here — that distinction is exactly
/// the paper's "optimization without register allocation" configuration).
bool common_subexpression_elimination(rtl::Function& fn);

/// Liveness-based dead code elimination of pure instructions.
/// Annotation operands count as uses (an __annot keeps its operands alive,
/// as in CompCert). Returns true if anything changed.
bool dead_code_elimination(rtl::Function& fn);

/// Branch tunneling (CompCert's `Tunneling` pass): branches targeting blocks
/// that consist of a single jump are redirected to the final destination;
/// orphaned forwarders are removed. Returns true if anything changed.
bool branch_tunneling(rtl::Function& fn);

/// The fixed pass pipeline of the verified configuration: constprop, CSE,
/// DCE, iterated until fixpoint (bounded). Each applied pass name is appended
/// to `applied`; `hook`, when set, is invoked after every applied pass.
void run_standard_pipeline(rtl::Function& fn,
                           std::vector<std::string>* applied,
                           const PassHook& hook = {});

}  // namespace vc::opt
