// RTL optimization passes.
//
// The pass list matches what the paper reports CompCert 1.7 performs (§3.2):
// "basic optimizations such as constant propagation, common subexpression
// elimination and register allocation by graph coloring, but no loop
// optimizations". Register allocation lives in src/regalloc; everything here
// is a semantics-preserving RTL->RTL rewrite, each of which can be checked by
// the translation validator (src/validate).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rtl/rtl.hpp"

namespace vc::opt {

/// Called after each applied pass with the pass name, a snapshot of the
/// function before the pass, and the function after it. Used by the
/// translation validator; may throw ValidationError to abort compilation.
using PassHook = std::function<void(const std::string& pass,
                                    const rtl::Function& before,
                                    const rtl::Function& after)>;

/// Global (whole-CFG) conditional constant propagation and folding.
/// Folds pure integer and IEEE f64 operations on known constants, rewrites
/// constant-condition branches into jumps. Integer division by a constant
/// zero is never folded (the runtime trap is preserved).
/// Returns true if anything changed.
bool constant_propagation(rtl::Function& fn);

/// Dominator-scoped common subexpression elimination by value numbering,
/// with integrated copy propagation: an expression computed in a block is
/// available in every block it dominates (scoped hash tables with an undo
/// log, per CompCert's beyond-basic-block CSE). RTL is not SSA, so an
/// inherited equivalence about vreg v is trusted only when it cannot be
/// stale: v has no definition at all, or exactly one and the binding was
/// made at that definition. Only pure instructions participate; memory is
/// handled by the separate forwarding pass below.
bool common_subexpression_elimination(rtl::Function& fn);

/// Alias-aware store-to-load forwarding over stack slots and statically
/// addressed globals. A forward must-available dataflow (intersection at
/// joins) tracks which vreg holds the current value of each location; a
/// LoadStack/LoadGlobal whose location has a known holder becomes a Mov.
/// Facts die when the holding vreg is redefined, when the location is
/// overwritten, or — for globals of a symbol — when a dynamically indexed
/// StoreGlobalIdx to that symbol might alias. Stack slots never alias
/// globals. Returns true if anything changed.
bool memory_forwarding(rtl::Function& fn);

/// Dead store elimination: removes StoreStack/StoreGlobal whose location is
/// provably never read afterwards, by a backward location-liveness fixpoint.
/// Stack slots are function-local (dead at Ret); globals survive the function
/// (all live at Ret). A dynamically indexed LoadGlobalIdx keeps every element
/// of its symbol live; annotation slot operands keep their slots live.
/// StoreGlobalIdx is never removed. Returns true if anything changed.
bool dead_store_elimination(rtl::Function& fn);

/// Liveness-based dead code elimination of pure instructions.
/// Annotation operands count as uses (an __annot keeps its operands alive,
/// as in CompCert). Returns true if anything changed.
bool dead_code_elimination(rtl::Function& fn);

/// Branch tunneling (CompCert's `Tunneling` pass): branches targeting blocks
/// that consist of a single jump are redirected to the final destination;
/// orphaned forwarders are removed. Returns true if anything changed.
bool branch_tunneling(rtl::Function& fn);

/// Wall-clock seconds spent in each RTL pass (and in the liveness analysis
/// driving DCE), accumulated across pipeline rounds. Surfaced per fleet job
/// so `bench_table1 --jobs=N` reports where compile time goes.
struct PassTimings {
  double constprop = 0.0;
  double cse = 0.0;
  double forward = 0.0;
  double dce = 0.0;
  double deadstore = 0.0;
  double tunnel = 0.0;

  PassTimings& operator+=(const PassTimings& o) {
    constprop += o.constprop;
    cse += o.cse;
    forward += o.forward;
    dce += o.dce;
    deadstore += o.deadstore;
    tunnel += o.tunnel;
    return *this;
  }
  [[nodiscard]] double total() const {
    return constprop + cse + forward + dce + deadstore + tunnel;
  }
};

struct PipelineOptions {
  /// Enables the memory passes (forwarding + dead store elimination). Off in
  /// the "optimization without register allocation" configuration, which by
  /// construction keeps the pattern code's memory discipline (paper §3.3).
  bool memory_opts = false;
  /// When set, per-pass wall time is accumulated here.
  PassTimings* timings = nullptr;
};

/// The fixed pass pipeline of the verified configuration: constprop, CSE,
/// [forwarding,] DCE, [dead-store,] tunneling, iterated until fixpoint
/// (bounded). Each applied pass name is appended to `applied`; `hook`, when
/// set, is invoked after every applied pass.
void run_standard_pipeline(rtl::Function& fn,
                           std::vector<std::string>* applied,
                           const PassHook& hook = {},
                           const PipelineOptions& options = {});

}  // namespace vc::opt
