#include <algorithm>
#include <set>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"

namespace vc::opt {

bool dead_code_elimination(rtl::Function& fn) {
  bool any_change = false;
  bool changed = true;
  while (changed) {
    changed = false;
    const rtl::Liveness lv = rtl::compute_liveness(fn);
    for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b) {
      std::set<rtl::VReg> live = lv.live_out[b];
      auto& instrs = fn.blocks[b].instrs;
      std::vector<rtl::Instr> kept;
      kept.reserve(instrs.size());
      for (std::size_t i = instrs.size(); i-- > 0;) {
        const rtl::Instr& ins = instrs[i];
        const auto d = ins.def();
        if (ins.is_pure() && d && live.count(*d) == 0) {
          changed = true;
          any_change = true;
          continue;  // dead: drop
        }
        if (d) live.erase(*d);
        for (rtl::VReg u : ins.uses()) live.insert(u);
        kept.push_back(ins);
      }
      std::reverse(kept.begin(), kept.end());
      instrs = std::move(kept);
    }
  }
  return any_change;
}

void run_standard_pipeline(rtl::Function& fn,
                           std::vector<std::string>* applied,
                           const PassHook& hook) {
  // Iterate the pass sequence to a (bounded) fixpoint: constant propagation
  // exposes CSE opportunities and vice versa.
  auto run_pass = [&](const char* name, auto pass) {
    rtl::Function before;
    if (hook) before = fn;  // snapshot only when a validator is attached
    if (!pass(fn)) return false;
    if (applied) applied->push_back(name);
    if (hook) hook(name, before, fn);
    return true;
  };
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    changed |= run_pass("constprop", constant_propagation);
    changed |= run_pass("cse", common_subexpression_elimination);
    changed |= run_pass("dce", dead_code_elimination);
    changed |= run_pass("tunnel", branch_tunneling);
    if (!changed) break;
  }
  fn.validate();
}

}  // namespace vc::opt
