#include <algorithm>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"
#include "support/bitset.hpp"

namespace vc::opt {

bool dead_code_elimination(rtl::Function& fn) {
  bool any_change = false;
  bool changed = true;
  DenseBitset live(fn.vregs.size());
  // Pass runs once per function per round; the liveness result buffers are
  // per-thread so their capacity carries across functions and fleet jobs.
  CompileWorkspace& ws = this_thread_workspace();
  thread_local rtl::Liveness lv;
  while (changed) {
    changed = false;
    rtl::compute_liveness(fn, ws, &lv);
    for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b) {
      live = lv.live_out[b];
      auto& instrs = fn.blocks[b].instrs;
      std::vector<rtl::Instr> kept;
      kept.reserve(instrs.size());
      for (std::size_t i = instrs.size(); i-- > 0;) {
        const rtl::Instr& ins = instrs[i];
        const auto d = ins.def();
        if (ins.is_pure() && d && !live.test(*d)) {
          changed = true;
          any_change = true;
          continue;  // dead: drop
        }
        if (d) live.reset(*d);
        for (rtl::VReg u : ins.uses()) live.set(u);
        kept.push_back(ins);
      }
      std::reverse(kept.begin(), kept.end());
      instrs = std::move(kept);
    }
  }
  return any_change;
}

}  // namespace vc::opt
