#include <algorithm>
#include <chrono>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"
#include "support/bitset.hpp"

namespace vc::opt {

bool dead_code_elimination(rtl::Function& fn) {
  bool any_change = false;
  bool changed = true;
  DenseBitset live(fn.vregs.size());
  while (changed) {
    changed = false;
    const rtl::Liveness lv = rtl::compute_liveness(fn);
    for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b) {
      live = lv.live_out[b];
      auto& instrs = fn.blocks[b].instrs;
      std::vector<rtl::Instr> kept;
      kept.reserve(instrs.size());
      for (std::size_t i = instrs.size(); i-- > 0;) {
        const rtl::Instr& ins = instrs[i];
        const auto d = ins.def();
        if (ins.is_pure() && d && !live.test(*d)) {
          changed = true;
          any_change = true;
          continue;  // dead: drop
        }
        if (d) live.reset(*d);
        for (rtl::VReg u : ins.uses()) live.set(u);
        kept.push_back(ins);
      }
      std::reverse(kept.begin(), kept.end());
      instrs = std::move(kept);
    }
  }
  return any_change;
}

void run_standard_pipeline(rtl::Function& fn,
                           std::vector<std::string>* applied,
                           const PassHook& hook,
                           const PipelineOptions& options) {
  using Clock = std::chrono::steady_clock;
  // Iterate the pass sequence to a (bounded) fixpoint: constant propagation
  // exposes CSE opportunities, forwarding turns loads into moves that CSE
  // and DCE then collapse, and dead stores surface once reloads are gone.
  auto run_pass = [&](const char* name, auto pass, double* bucket) {
    rtl::Function before;
    if (hook) before = fn;  // snapshot only when a validator is attached
    const auto t0 = Clock::now();
    const bool pass_changed = pass(fn);
    if (bucket)
      *bucket += std::chrono::duration<double>(Clock::now() - t0).count();
    if (!pass_changed) return false;
    if (applied) applied->push_back(name);
    if (hook) hook(name, before, fn);
    return true;
  };
  PassTimings* t = options.timings;
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    changed |= run_pass("constprop", constant_propagation,
                        t ? &t->constprop : nullptr);
    changed |= run_pass("cse", common_subexpression_elimination,
                        t ? &t->cse : nullptr);
    if (options.memory_opts)
      changed |=
          run_pass("forward", memory_forwarding, t ? &t->forward : nullptr);
    changed |= run_pass("dce", dead_code_elimination, t ? &t->dce : nullptr);
    if (options.memory_opts)
      changed |= run_pass("deadstore", dead_store_elimination,
                          t ? &t->deadstore : nullptr);
    changed |= run_pass("tunnel", branch_tunneling, t ? &t->tunnel : nullptr);
    if (!changed) break;
  }
  fn.validate();
}

}  // namespace vc::opt
