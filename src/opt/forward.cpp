// Store-to-load forwarding over stack slots and statically addressed
// globals: the pass that attacks the paper's central observation — pattern
// code is dominated by redundant stack/global memory traffic that CompCert's
// load-aware CSE removes (§2.2, §3.2).
//
// A forward "must-available" dataflow computes, at every point, which vreg is
// known to hold the current value of each memory location. Facts meet by
// intersection at joins, so a fact survives only when every incoming path
// agrees — in particular a store on a non-dominating side path correctly
// kills forwarding (plain dominator scoping would miss that). A load whose
// location has a known holder of the same register class is rewritten to a
// Mov; the dead-store pass then sweeps stores whose slot is never reloaded.
//
// Alias model (exact, because RTL addresses are structured):
//   - stack slots never alias globals or each other (distinct slot ids);
//   - global elements alias iff same (symbol, element);
//   - a dynamically indexed StoreGlobalIdx may write any element of its
//     symbol: it kills every fact for that symbol (and only that symbol —
//     out-of-range indices trap rather than spill into neighbours);
//   - LoadGlobalIdx only reads: it kills nothing but its own dst facts.
//
// This runs pre-regalloc only. After spill rewriting, forwarding a reload to
// the stored vreg would extend a spilled value's live range across a
// physical-register reuse, which is unsound.
#include <map>
#include <vector>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"

namespace vc::opt {
namespace {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

/// The location universe of one function: slot ids first, then one index per
/// distinct (symbol, element) constant address appearing in the code.
struct LocUniverse {
  std::size_t nslots = 0;
  std::vector<std::pair<std::string, std::int32_t>> globals;
  std::map<std::pair<std::string, std::int32_t>, std::size_t> global_index;
  std::map<std::string, std::vector<std::size_t>> by_sym;

  explicit LocUniverse(const Function& fn) : nslots(fn.slots.size()) {
    for (const auto& bb : fn.blocks)
      for (const Instr& ins : bb.instrs)
        if (ins.op == Opcode::LoadGlobal || ins.op == Opcode::StoreGlobal)
          add_global(ins.sym, ins.elem);
  }

  void add_global(const std::string& sym, std::int32_t elem) {
    const auto key = std::make_pair(sym, elem);
    if (global_index.count(key)) return;
    const std::size_t idx = nslots + globals.size();
    global_index.emplace(key, idx);
    globals.push_back(key);
    by_sym[sym].push_back(idx);
  }

  [[nodiscard]] std::size_t size() const { return nslots + globals.size(); }
  [[nodiscard]] std::size_t slot_loc(rtl::Slot s) const { return s; }
  [[nodiscard]] std::size_t global_loc(const std::string& sym,
                                       std::int32_t elem) const {
    return global_index.at({sym, elem});
  }
};

/// Per-point facts: loc -> vreg known to hold the location's current value
/// (kNoVReg = unknown). `top` marks the optimistic initial state of blocks
/// not yet reached by the fixpoint.
struct AvailState {
  bool top = true;
  std::vector<VReg> fact;
};

class Forwarder {
 public:
  explicit Forwarder(Function& fn) : fn_(fn), locs_(fn) {}

  bool run() {
    CompileWorkspace& ws = this_thread_workspace();
    auto rpo_lease = ws.u32_pool.lease();
    rtl::reverse_postorder(fn_, ws, &*rpo_lease);
    const std::vector<BlockId>& rpo = *rpo_lease;
    out_.assign(fn_.blocks.size(), AvailState{});

    bool changed = true;
    while (changed) {
      changed = false;
      for (BlockId b : rpo) {
        AvailState in = entry_state(b, rpo);
        if (in.top) continue;
        for (const Instr& ins : fn_.blocks[b].instrs) apply(ins, in);
        if (out_[b].top || out_[b].fact != in.fact) {
          out_[b] = std::move(in);
          changed = true;
        }
      }
    }

    // Rewrite walk: replay each block from its entry facts and turn loads
    // with a known same-class holder into moves. Transfers use the original
    // instruction, so the replayed states match the fixpoint exactly (a
    // rewritten Mov has the same effect on facts as the load it replaces).
    bool rewrote = false;
    for (BlockId b : rpo) {
      AvailState state = entry_state(b, rpo);
      if (state.top) continue;  // unreachable; never the case for rpo blocks
      for (Instr& ins : fn_.blocks[b].instrs) {
        const Instr orig = ins;
        if (ins.op == Opcode::LoadStack || ins.op == Opcode::LoadGlobal) {
          const std::size_t loc = ins.op == Opcode::LoadStack
                                      ? locs_.slot_loc(ins.slot)
                                      : locs_.global_loc(ins.sym, ins.elem);
          const VReg holder = state.fact[loc];
          if (holder != rtl::kNoVReg &&
              fn_.vregs[holder] == fn_.vregs[ins.dst]) {
            Instr mv;
            mv.op = Opcode::Mov;
            mv.dst = ins.dst;
            mv.src1 = holder;
            ins = mv;
            rewrote = true;
          }
        }
        apply(orig, state);
      }
    }
    return rewrote;
  }

 private:
  /// Meet (intersection) of predecessor exit states; entry starts empty.
  AvailState entry_state(BlockId b, const std::vector<BlockId>& rpo) {
    if (preds_.empty())
      rtl::predecessors(fn_, this_thread_workspace(), &preds_);
    AvailState in;
    if (b == rpo.front()) {
      in.top = false;
      in.fact.assign(locs_.size(), rtl::kNoVReg);
      return in;
    }
    for (BlockId p : preds_[b]) {
      if (out_[p].top) continue;  // unprocessed (back edge) or unreachable
      if (in.top) {
        in = out_[p];
      } else {
        for (std::size_t i = 0; i < in.fact.size(); ++i)
          if (in.fact[i] != out_[p].fact[i]) in.fact[i] = rtl::kNoVReg;
      }
    }
    return in;
  }

  void kill_holder(AvailState& s, VReg v) {
    for (VReg& f : s.fact)
      if (f == v) f = rtl::kNoVReg;
  }

  void apply(const Instr& ins, AvailState& s) {
    switch (ins.op) {
      case Opcode::StoreStack:
        s.fact[locs_.slot_loc(ins.slot)] = ins.src1;
        return;
      case Opcode::StoreGlobal:
        s.fact[locs_.global_loc(ins.sym, ins.elem)] = ins.src1;
        return;
      case Opcode::StoreGlobalIdx: {
        auto it = locs_.by_sym.find(ins.sym);
        if (it != locs_.by_sym.end())
          for (std::size_t loc : it->second) s.fact[loc] = rtl::kNoVReg;
        return;
      }
      case Opcode::LoadStack: {
        kill_holder(s, ins.dst);
        std::size_t loc = locs_.slot_loc(ins.slot);
        if (s.fact[loc] == rtl::kNoVReg) s.fact[loc] = ins.dst;
        return;
      }
      case Opcode::LoadGlobal: {
        kill_holder(s, ins.dst);
        std::size_t loc = locs_.global_loc(ins.sym, ins.elem);
        if (s.fact[loc] == rtl::kNoVReg) s.fact[loc] = ins.dst;
        return;
      }
      default:
        if (auto d = ins.def()) kill_holder(s, *d);
        return;
    }
  }

  Function& fn_;
  LocUniverse locs_;
  std::vector<std::vector<BlockId>> preds_;
  std::vector<AvailState> out_;
};

}  // namespace

bool memory_forwarding(rtl::Function& fn) {
  // Unreachable blocks are left untouched (the RPO never visits them), so
  // the validator can hold them to literal equality.
  return Forwarder(fn).run();
}

}  // namespace vc::opt
