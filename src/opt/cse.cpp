#include <cstring>
#include <vector>

#include "opt/opt.hpp"
#include "rtl/analysis.hpp"

namespace vc::opt {
namespace {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

using ValueNumber = std::uint32_t;
constexpr ValueNumber kNoVn = 0xFFFFFFFF;

/// Hashable key describing a pure computation over value numbers.
struct ExprKey {
  Opcode op{};
  int sub_op = 0;  // un_op or bin_op ordinal
  std::uint64_t imm = 0;
  ValueNumber a = 0;
  ValueNumber b = 0;

  bool operator==(const ExprKey& o) const {
    return op == o.op && sub_op == o.sub_op && imm == o.imm && a == o.a &&
           b == o.b;
  }
};

std::uint64_t hash_key(const ExprKey& k) {
  // FNV-1a over the key fields, finished with a SplitMix64 avalanche so the
  // open-addressing probe sequence spreads even for near-identical keys.
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ull;
  };
  mix(static_cast<std::uint64_t>(k.op));
  mix(static_cast<std::uint64_t>(static_cast<unsigned>(k.sub_op)));
  mix(k.imm);
  mix(k.a);
  mix(k.b);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

bool is_commutative(minic::BinOp op) {
  switch (op) {
    case minic::BinOp::IAdd:
    case minic::BinOp::IMul:
    case minic::BinOp::IAnd:
    case minic::BinOp::IOr:
    case minic::BinOp::IXor:
    case minic::BinOp::ICmpEq:
    case minic::BinOp::ICmpNe:
    case minic::BinOp::FAdd:
    case minic::BinOp::FMul:
    case minic::BinOp::FCmpEq:
    case minic::BinOp::FCmpNe:
      return true;
    default:
      return false;
  }
}

/// Dominator-scoped value numbering with copy propagation.
///
/// The function's dominator tree is walked in preorder; every table entry
/// made while visiting a block is popped from an undo log when its subtree
/// is done, so a block sees exactly the equivalences established on its
/// dominator chain (a scoped hash table, as in CompCert's CSE).
///
/// RTL is not SSA, so an equivalence inherited from a dominator can be stale:
/// a vreg may be redefined on a path between the dominator and the current
/// block (e.g. around a loop). An inherited binding for v is therefore
/// trusted only when it provably still holds:
///   - v has no definition anywhere (it always holds its initial value), or
///   - v has exactly one definition site and the binding was made there
///     (`from_def`); any path to the current block runs through the same
///     single def, so the binding describes the value the block observes.
/// Bindings made in the current block are always valid (the walk within a
/// block is sequential). Everything else gets a fresh number on use.
class ScopedVN {
 public:
  explicit ScopedVN(Function& fn) : fn_(fn) {
    def_count_.assign(fn.vregs.size(), 0);
    std::size_t pure_instrs = 0;
    for (const auto& bb : fn.blocks)
      for (const Instr& ins : bb.instrs) {
        if (auto d = ins.def()) ++def_count_[*d];
        if (ins.is_pure()) ++pure_instrs;
      }
    bindings_.assign(fn.vregs.size(), Binding{});
    // The expression table never rehashes: capacity covers every possible
    // insertion (at most one per pure instruction, twice for overwrites),
    // so undo-log slot indices stay stable for the whole walk.
    std::size_t cap = 16;
    while (cap < 4 * (pure_instrs + 1)) cap <<= 1;
    slots_.assign(cap, Slot{});
  }

  bool run() {
    CompileWorkspace& ws = this_thread_workspace();
    auto idom_lease = ws.u32_pool.lease();
    rtl::immediate_dominators(fn_, ws, &*idom_lease);
    const std::vector<BlockId>& idom = *idom_lease;
    const auto children = rtl::dominator_children(idom);
    bool changed = false;
    // Iterative preorder DFS; frame second = undo-log marks at block entry.
    struct Frame {
      BlockId block;
      std::size_t next_child = 0;
      Marks marks;
    };
    std::vector<Frame> stack;
    stack.push_back({0, 0, marks()});
    changed |= visit_block(0);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_child < children[f.block].size()) {
        const BlockId c = children[f.block][f.next_child++];
        stack.push_back({c, 0, marks()});
        changed |= visit_block(c);
      } else {
        rollback(f.marks);
        stack.pop_back();
      }
    }
    return changed;
  }

 private:
  struct Binding {
    ValueNumber vn = kNoVn;
    BlockId block = 0;
    bool live = false;
    bool from_def = false;
  };
  struct Slot {
    ExprKey key{};
    VReg rep = rtl::kNoVReg;
    ValueNumber rep_vn = kNoVn;
    bool used = false;
  };
  struct Marks {
    std::size_t bind = 0, canon = 0, expr = 0;
  };

  Marks marks() const {
    return {bind_log_.size(), canon_log_.size(), expr_log_.size()};
  }

  void rollback(const Marks& m) {
    while (bind_log_.size() > m.bind) {
      bindings_[bind_log_.back().first] = bind_log_.back().second;
      bind_log_.pop_back();
    }
    while (canon_log_.size() > m.canon) {
      canon_[canon_log_.back().first] = canon_log_.back().second;
      canon_log_.pop_back();
    }
    while (expr_log_.size() > m.expr) {
      slots_[expr_log_.back().first] = expr_log_.back().second;
      expr_log_.pop_back();
    }
  }

  bool visit_block(BlockId b) {
    cur_block_ = b;
    bool changed = false;
    for (Instr& ins : fn_.blocks[b].instrs) {
      // Copy-propagate every register use to the canonical holder of its
      // value number (if that holder is still current).
      changed |= rewrite_uses(ins);

      if (!ins.is_pure()) {
        if (auto d = ins.def()) define_fresh(*d);
        continue;
      }

      const ExprKey key = make_key(ins);
      const std::size_t slot = find_slot(key);
      if (slots_[slot].used) {
        const VReg rep = slots_[slot].rep;
        const ValueNumber rep_vn = slots_[slot].rep_vn;
        if (rep != ins.dst && vn(rep) == rep_vn &&
            fn_.vregs[rep] == fn_.vregs[ins.dst]) {
          // Same value already available in `rep`: replace with a move.
          const VReg dst = ins.dst;
          Instr mv;
          mv.op = Opcode::Mov;
          mv.dst = dst;
          mv.src1 = rep;
          ins = mv;
          set_vn(dst, rep_vn);
          changed = true;
          continue;
        }
      }

      if (ins.op == Opcode::Mov) {
        set_vn(ins.dst, vn(ins.src1));
      } else {
        define_fresh(ins.dst);
        put_expr(slot, key, ins.dst, bindings_[ins.dst].vn);
      }
    }
    return changed;
  }

  /// True if v's current binding may be used at this point of the walk.
  bool binding_valid(VReg v) const {
    const Binding& b = bindings_[v];
    if (!b.live) return false;
    if (b.block == cur_block_) return true;
    if (def_count_[v] == 0) return true;
    return def_count_[v] == 1 && b.from_def;
  }

  ValueNumber vn(VReg v) {
    if (binding_valid(v)) return bindings_[v].vn;
    // First (trustworthy) reference to this value here: fresh number, this
    // vreg is its canonical holder. Not a def-site binding.
    const ValueNumber n = next_vn_++;
    set_binding(v, {n, cur_block_, true, false});
    set_canon(n, v);
    return n;
  }

  void set_vn(VReg v, ValueNumber n) {
    set_binding(v, {n, cur_block_, true, true});
    if (canon_of(n) == rtl::kNoVReg) set_canon(n, v);
  }

  void define_fresh(VReg v) {
    const ValueNumber n = next_vn_++;
    set_binding(v, {n, cur_block_, true, true});
    set_canon(n, v);
  }

  void set_binding(VReg v, Binding b) {
    bind_log_.emplace_back(v, bindings_[v]);
    bindings_[v] = b;
  }

  VReg canon_of(ValueNumber n) const {
    return n < canon_.size() ? canon_[n] : rtl::kNoVReg;
  }

  void set_canon(ValueNumber n, VReg v) {
    if (n >= canon_.size()) canon_.resize(n + 1, rtl::kNoVReg);
    canon_log_.emplace_back(n, canon_[n]);
    canon_[n] = v;
  }

  /// Returns the canonical vreg currently holding the same value as `u`,
  /// or `u` itself.
  VReg canonical(VReg u) {
    const ValueNumber n = vn(u);
    const VReg c = canon_of(n);
    if (c == rtl::kNoVReg || c == u) return u;
    if (!binding_valid(c) || bindings_[c].vn != n) return u;  // holder stale
    if (fn_.vregs[c] != fn_.vregs[u]) return u;
    return c;
  }

  bool rewrite_uses(Instr& ins) {
    bool changed = false;
    auto rw = [&](VReg& r) {
      if (r == rtl::kNoVReg) return;
      const VReg c = canonical(r);
      if (c != r) {
        r = c;
        changed = true;
      }
    };
    switch (ins.op) {
      case Opcode::Mov:
      case Opcode::Un:
      case Opcode::Branch:
      case Opcode::StoreGlobal:
      case Opcode::StoreStack:
        rw(ins.src1);
        break;
      case Opcode::Bin:
      case Opcode::BranchCmp:
      case Opcode::StoreGlobalIdx:
        rw(ins.src1);
        rw(ins.src2);
        break;
      case Opcode::LoadGlobalIdx:
        rw(ins.src1);
        break;
      case Opcode::Ret:
        if (ins.src1 != rtl::kNoVReg) rw(ins.src1);
        break;
      case Opcode::Annot:
        for (auto& a : ins.annot_args)
          if (!a.is_slot) rw(a.vreg);
        break;
      default:
        break;
    }
    return changed;
  }

  ExprKey make_key(const Instr& ins) {
    ExprKey key;
    key.op = ins.op;
    switch (ins.op) {
      case Opcode::LdI:
        key.imm = static_cast<std::uint32_t>(ins.int_imm);
        break;
      case Opcode::LdF:
        std::memcpy(&key.imm, &ins.f64_imm, sizeof key.imm);
        break;
      case Opcode::Mov:
        key.a = vn(ins.src1);
        break;
      case Opcode::Un:
        key.sub_op = static_cast<int>(ins.un_op);
        key.a = vn(ins.src1);
        break;
      case Opcode::Bin: {
        key.sub_op = static_cast<int>(ins.bin_op);
        key.a = vn(ins.src1);
        key.b = vn(ins.src2);
        if (is_commutative(ins.bin_op) && key.b < key.a)
          std::swap(key.a, key.b);
        break;
      }
      case Opcode::GetParam:
        key.imm = static_cast<std::uint32_t>(ins.param_index);
        break;
      default:
        throw InternalError("make_key on impure instruction");
    }
    return key;
  }

  /// Linear-probe lookup: the slot holding `key`, or the empty slot where it
  /// would be inserted. Capacity is fixed and oversized, so this terminates.
  std::size_t find_slot(const ExprKey& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_key(key) & mask;
    while (slots_[i].used && !(slots_[i].key == key)) i = (i + 1) & mask;
    return i;
  }

  void put_expr(std::size_t slot, const ExprKey& key, VReg rep,
                ValueNumber rep_vn) {
    expr_log_.emplace_back(slot, slots_[slot]);
    slots_[slot] = {key, rep, rep_vn, true};
  }

  Function& fn_;
  BlockId cur_block_ = 0;
  std::vector<int> def_count_;
  std::vector<Binding> bindings_;      // indexed by vreg
  std::vector<VReg> canon_;            // indexed by value number
  std::vector<Slot> slots_;            // open-addressing expression table
  std::vector<std::pair<VReg, Binding>> bind_log_;
  std::vector<std::pair<ValueNumber, VReg>> canon_log_;
  std::vector<std::pair<std::size_t, Slot>> expr_log_;
  ValueNumber next_vn_ = 0;
};

}  // namespace

bool common_subexpression_elimination(rtl::Function& fn) {
  // Unreachable blocks are left untouched: the dominator tree only spans
  // blocks reachable from entry, and the validator walks the same tree.
  return ScopedVN(fn).run();
}

}  // namespace vc::opt
