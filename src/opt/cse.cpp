#include <cstring>
#include <map>
#include <tuple>

#include "opt/opt.hpp"

namespace vc::opt {
namespace {

using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::VReg;

using ValueNumber = std::uint32_t;

/// Hashable key describing a pure computation over value numbers.
struct ExprKey {
  Opcode op{};
  int sub_op = 0;  // un_op or bin_op ordinal
  std::uint64_t imm = 0;
  ValueNumber a = 0;
  ValueNumber b = 0;

  bool operator<(const ExprKey& o) const {
    return std::tie(op, sub_op, imm, a, b) <
           std::tie(o.op, o.sub_op, o.imm, o.a, o.b);
  }
};

bool is_commutative(minic::BinOp op) {
  switch (op) {
    case minic::BinOp::IAdd:
    case minic::BinOp::IMul:
    case minic::BinOp::IAnd:
    case minic::BinOp::IOr:
    case minic::BinOp::IXor:
    case minic::BinOp::ICmpEq:
    case minic::BinOp::ICmpNe:
    case minic::BinOp::FAdd:
    case minic::BinOp::FMul:
    case minic::BinOp::FCmpEq:
    case minic::BinOp::FCmpNe:
      return true;
    default:
      return false;
  }
}

/// Block-local value numbering with copy propagation.
class LocalVN {
 public:
  explicit LocalVN(Function& fn) : fn_(fn) {}

  bool run_block(rtl::BasicBlock& bb) {
    bool changed = false;
    vn_of_.clear();
    canon_.clear();
    exprs_.clear();
    next_vn_ = 0;

    for (Instr& ins : bb.instrs) {
      // Copy-propagate every register use to the canonical holder of its
      // value number (if that holder is still current).
      changed |= rewrite_uses(ins);

      if (!ins.is_pure()) {
        if (auto d = ins.def()) define_fresh(*d);
        continue;
      }

      const ExprKey key = make_key(ins);
      auto it = exprs_.find(key);
      if (it != exprs_.end()) {
        const auto [rep, rep_vn] = it->second;
        if (rep != ins.dst && vn(rep) == rep_vn &&
            fn_.vregs[rep] == fn_.vregs[ins.dst]) {
          // Same value already available in `rep`: replace with a move.
          const VReg dst = ins.dst;
          Instr mv;
          mv.op = Opcode::Mov;
          mv.dst = dst;
          mv.src1 = rep;
          ins = mv;
          set_vn(dst, rep_vn);
          changed = true;
          continue;
        }
      }

      if (ins.op == Opcode::Mov) {
        set_vn(ins.dst, vn(ins.src1));
      } else {
        define_fresh(ins.dst);
        exprs_[key] = {ins.dst, vn(ins.dst)};
      }
    }
    return changed;
  }

 private:
  ValueNumber vn(VReg v) {
    auto it = vn_of_.find(v);
    if (it != vn_of_.end()) return it->second;
    // First reference to a block-entry value: give it a fresh number and make
    // this vreg its canonical holder.
    const ValueNumber n = next_vn_++;
    vn_of_[v] = n;
    canon_[n] = v;
    return n;
  }

  void set_vn(VReg v, ValueNumber n) {
    vn_of_[v] = n;
    if (canon_.find(n) == canon_.end()) canon_[n] = v;
  }

  void define_fresh(VReg v) {
    const ValueNumber n = next_vn_++;
    vn_of_[v] = n;
    canon_[n] = v;
  }

  /// Returns the canonical vreg currently holding the same value as `u`,
  /// or `u` itself.
  VReg canonical(VReg u) {
    const ValueNumber n = vn(u);
    auto it = canon_.find(n);
    if (it == canon_.end()) return u;
    const VReg c = it->second;
    if (c == u) return u;
    auto cvn = vn_of_.find(c);
    if (cvn == vn_of_.end() || cvn->second != n) return u;  // holder stale
    if (fn_.vregs[c] != fn_.vregs[u]) return u;
    return c;
  }

  bool rewrite_uses(Instr& ins) {
    bool changed = false;
    auto rw = [&](VReg& r) {
      if (r == rtl::kNoVReg) return;
      const VReg c = canonical(r);
      if (c != r) {
        r = c;
        changed = true;
      }
    };
    switch (ins.op) {
      case Opcode::Mov:
      case Opcode::Un:
      case Opcode::Branch:
      case Opcode::StoreGlobal:
      case Opcode::StoreStack:
        rw(ins.src1);
        break;
      case Opcode::Bin:
      case Opcode::BranchCmp:
      case Opcode::StoreGlobalIdx:
        rw(ins.src1);
        rw(ins.src2);
        break;
      case Opcode::LoadGlobalIdx:
        rw(ins.src1);
        break;
      case Opcode::Ret:
        if (ins.src1 != rtl::kNoVReg) rw(ins.src1);
        break;
      case Opcode::Annot:
        for (auto& a : ins.annot_args)
          if (!a.is_slot) rw(a.vreg);
        break;
      default:
        break;
    }
    return changed;
  }

  ExprKey make_key(const Instr& ins) {
    ExprKey key;
    key.op = ins.op;
    switch (ins.op) {
      case Opcode::LdI:
        key.imm = static_cast<std::uint32_t>(ins.int_imm);
        break;
      case Opcode::LdF:
        std::memcpy(&key.imm, &ins.f64_imm, sizeof key.imm);
        break;
      case Opcode::Mov:
        key.a = vn(ins.src1);
        break;
      case Opcode::Un:
        key.sub_op = static_cast<int>(ins.un_op);
        key.a = vn(ins.src1);
        break;
      case Opcode::Bin: {
        key.sub_op = static_cast<int>(ins.bin_op);
        key.a = vn(ins.src1);
        key.b = vn(ins.src2);
        if (is_commutative(ins.bin_op) && key.b < key.a)
          std::swap(key.a, key.b);
        break;
      }
      case Opcode::GetParam:
        key.imm = static_cast<std::uint32_t>(ins.param_index);
        break;
      default:
        throw InternalError("make_key on impure instruction");
    }
    return key;
  }

  Function& fn_;
  std::map<VReg, ValueNumber> vn_of_;
  std::map<ValueNumber, VReg> canon_;
  std::map<ExprKey, std::pair<VReg, ValueNumber>> exprs_;
  ValueNumber next_vn_ = 0;
};

}  // namespace

bool common_subexpression_elimination(rtl::Function& fn) {
  LocalVN vn(fn);
  bool changed = false;
  for (auto& bb : fn.blocks) changed |= vn.run_block(bb);
  return changed;
}

}  // namespace vc::opt
