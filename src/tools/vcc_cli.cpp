#include "tools/vcc_cli.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "artifact/image_io.hpp"
#include "artifact/store.hpp"
#include "mach/target.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/threadpool.hpp"
#include "validate/validate.hpp"

namespace vc::tools {

namespace {

/// Splits on ',' keeping empty items ("1,,2" -> {"1", "", "2"}); an empty
/// spec yields no items.
std::vector<std::string> split_commas(const std::string& spec) {
  std::vector<std::string> items;
  if (spec.empty()) return items;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      items.push_back(spec.substr(start));
      return items;
    }
    items.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
}

bool parse_f64(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_i32(const std::string& text, std::int32_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max())
    return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

/// Human name for what a path turned out to be, for "not a directory"
/// diagnostics.
const char* file_type_name(std::filesystem::file_type t) {
  switch (t) {
    case std::filesystem::file_type::regular: return "regular file";
    case std::filesystem::file_type::symlink: return "symlink";
    case std::filesystem::file_type::block: return "block device";
    case std::filesystem::file_type::character: return "character device";
    case std::filesystem::file_type::fifo: return "fifo";
    case std::filesystem::file_type::socket: return "socket";
    default: return "non-directory";
  }
}

}  // namespace

std::optional<driver::Config> parse_config_name(const std::string& name) {
  return driver::parse_config(name);
}

std::optional<std::string> parse_target_name(const std::string& name) {
  const std::vector<std::string> known = mach::target_names();
  if (std::find(known.begin(), known.end(), name) != known.end()) return name;
  return std::nullopt;
}

std::optional<std::string> check_pass_names(
    const std::vector<std::string>& names) {
  const pass::Registry registry = pass::Registry::builtin();
  std::string selectable;
  for (const std::string& n : registry.names()) {
    if (registry.find(n)->structural) continue;
    if (!selectable.empty()) selectable += ", ";
    selectable += n;
  }
  for (const std::string& name : names) {
    const pass::StepDef* def = registry.find(name);
    if (def == nullptr)
      return "unknown pass '" + name +
             "'; registered steps: " + selectable;
    if (def->structural)
      return "pass '" + name +
             "' is structural and cannot be selected or disabled";
  }
  return std::nullopt;
}

std::optional<driver::ValidateLevel> parse_validate_level(
    const std::string& name) {
  if (name == "off") return driver::ValidateLevel::Off;
  if (name == "rtl") return driver::ValidateLevel::Rtl;
  if (name == "full") return driver::ValidateLevel::Full;
  return std::nullopt;
}

std::optional<wcet::WcetEngine> parse_wcet_engine_name(
    const std::string& name) {
  return wcet::parse_wcet_engine(name);
}

CallArgs parse_call_args(const minic::Function& fn, const std::string& spec) {
  CallArgs out;
  const std::vector<std::string> items = split_commas(spec);
  if (items.size() != fn.params.size()) {
    out.error = "function '" + fn.name + "' expects " +
                std::to_string(fn.params.size()) + " argument(s), got " +
                std::to_string(items.size());
    return out;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    const minic::Param& p = fn.params[i];
    if (p.type == minic::Type::F64) {
      double v = 0.0;
      if (!parse_f64(items[i], &v)) {
        out.error = "invalid f64 literal '" + items[i] + "' for parameter '" +
                    p.name + "' of '" + fn.name + "'";
        return out;
      }
      out.values.push_back(minic::Value::of_f64(v));
    } else {
      std::int32_t v = 0;
      if (!parse_i32(items[i], &v)) {
        out.error = "invalid i32 literal '" + items[i] + "' for parameter '" +
                    p.name + "' of '" + fn.name + "'";
        return out;
      }
      out.values.push_back(minic::Value::of_i32(v));
    }
  }
  return out;
}

BatchResult run_batch(const std::string& dir, const BatchOptions& options) {
  namespace fs = std::filesystem;
  BatchResult result;
  // Path-class problems are usage errors (exit 2), and the diagnostic names
  // the path plus the precise reason: "exists but is a regular file" is a
  // different operator mistake than "does not exist".
  std::error_code ec;
  const fs::file_status st = fs::status(dir, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    result.exit_code = 2;
    result.summary = "not a directory: " + dir + " (" +
                     (ec ? ec.message() : "no such file or directory") + ")";
    return result;
  }
  if (st.type() != fs::file_type::directory) {
    result.exit_code = 2;
    result.summary = "not a directory: " + dir + " (exists but is a " +
                     file_type_name(st.type()) + ")";
    return result;
  }
  if (options.jobs < 0) {
    result.exit_code = 2;
    result.summary = "--jobs must be >= 0, got " +
                     std::to_string(options.jobs);
    return result;
  }
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec))
    if (entry.is_regular_file() && entry.path().extension() == ".mc")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    result.summary = "no .mc files under " + dir;
    return result;
  }
  result.total = files.size();

  // Validated runs re-check every compile by design; caching would skip the
  // very work the flag requests.
  std::unique_ptr<artifact::ArtifactStore> store;
  if (!options.cache_dir.empty() &&
      options.validate == driver::ValidateLevel::Off)
    store = std::make_unique<artifact::ArtifactStore>(
        artifact::ArtifactStore::Options{options.cache_dir,
                                         options.cache_budget_bytes});

  struct FileResult {
    bool ok = false;
    bool cached = false;
    bool io_error = false;
    std::string line;
  };
  std::vector<FileResult> results(files.size());

  const auto t_start = std::chrono::steady_clock::now();
  parallel_for(
      files.size(),
      options.jobs > 0 ? static_cast<std::size_t>(options.jobs)
                       : ThreadPool::default_worker_count(),
      [&](std::size_t i) {
        FileResult& r = results[i];
        char buf[512];
        try {
          std::ifstream in(files[i]);
          if (!in) {
            // An unreadable file is an environment problem, not a compile
            // failure: name the file and the errno reason, and classify it
            // so the batch exits 2 rather than 1.
            std::snprintf(buf, sizeof buf, "%s: error: cannot open file (%s)",
                          files[i].c_str(), std::strerror(errno));
            r.io_error = true;
            r.line = buf;
            return;
          }
          std::stringstream buffer;
          buffer << in.rdbuf();
          const std::string source = buffer.str();

          // Whole-file compiles have no entry function; "" keys the image.
          // The config string carries the SSA salt (same convention as the
          // fleet runner): SSA and non-SSA compiles never share an entry.
          Hash128 key;
          if (store != nullptr) {
            key = artifact::ArtifactStore::make_key(
                source, "",
                driver::to_string(options.config) +
                    (options.ssa ? "+ssa" : ""),
                options.target,
                /*annotations=*/true, driver::kCompilerVersion);
            if (const auto loaded = store->lookup(key)) {
              std::snprintf(buf, sizeof buf,
                            "%s: ok — %llu function(s), %llu bytes (cached)",
                            files[i].c_str(),
                            static_cast<unsigned long long>(
                                loaded->stats.at("functions").as_u64()),
                            static_cast<unsigned long long>(
                                loaded->stats.at("code_bytes").as_u64()));
              r.ok = true;
              r.cached = true;
              r.line = buf;
              return;
            }
          }

          minic::Program program = minic::parse_program(source, files[i]);
          minic::type_check(program);
          driver::CompileOptions copts;
          copts.target = options.target;
          copts.ssa = options.ssa;
          const driver::Compiled compiled =
              options.validate != driver::ValidateLevel::Off
                  ? validate::validated_compile(program, options.config,
                                                /*n_tests=*/12, /*seed=*/1,
                                                options.validate, copts)
                  : driver::compile_program(program, options.config, copts);
          if (store != nullptr) {
            json::Value doc;
            doc["functions"] = json::Value(
                static_cast<std::uint64_t>(program.functions.size()));
            doc["code_bytes"] =
                json::Value(compiled.image.code_size_bytes());
            doc["results"] = json::Value(json::Array{});
            json::Value info;
            info["file"] = json::Value(files[i]);
            info["config"] = json::Value(driver::to_string(options.config));
            info["target"] = json::Value(options.target);
            info["compiler_version"] = json::Value(driver::kCompilerVersion);
            store->publish(key, artifact::serialize_image(compiled.image),
                           artifact::annotation_text(compiled.image), doc,
                           std::move(info));
          }
          std::snprintf(buf, sizeof buf, "%s: ok — %zu function(s), %u bytes",
                        files[i].c_str(), program.functions.size(),
                        compiled.image.code_size_bytes());
          r.ok = true;
        } catch (const std::exception& e) {
          std::snprintf(buf, sizeof buf, "%s: error: %s", files[i].c_str(),
                        e.what());
        }
        r.line = buf;
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();

  for (std::size_t i = 0; i < results.size(); ++i) {
    result.lines.push_back(results[i].line);
    if (results[i].ok) {
      ++result.compiled;
      if (results[i].cached) ++result.cache_hits;
    } else {
      result.failures.push_back(files[i]);
      if (results[i].io_error) ++result.io_errors;
    }
  }

  char buf[512];
  std::snprintf(buf, sizeof buf,
                "batch: %zu/%zu file(s) ok, %zu failed under %s in %.2fs "
                "(%.1f files/s)",
                result.compiled, result.total, result.failures.size(),
                driver::to_string(options.config).c_str(), wall,
                wall > 0.0 ? static_cast<double>(result.total) / wall : 0.0);
  result.summary = buf;
  if (store != nullptr) result.summary += "\n" + store->stats().summary();
  result.exit_code =
      result.io_errors > 0 ? 2 : (result.failures.empty() ? 0 : 1);
  return result;
}

std::optional<int> parse_count_flag(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE || v < 0 ||
      v > 1000000)
    return std::nullopt;
  return static_cast<int>(v);
}

std::string format_profile(const std::vector<ProfilePhase>& phases,
                           const pass::PipelineStats& passes) {
  std::string out = "== profile ==\n";
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-12s %12s %12s %14s\n", "phase",
                "seconds", "allocs", "bytes");
  out += buf;
  double total_s = 0.0;
  std::uint64_t total_a = 0;
  std::uint64_t total_b = 0;
  for (const ProfilePhase& p : phases) {
    std::snprintf(buf, sizeof buf, "%-12s %12.6f %12llu %14llu\n",
                  p.name.c_str(), p.seconds,
                  static_cast<unsigned long long>(p.allocations),
                  static_cast<unsigned long long>(p.alloc_bytes));
    out += buf;
    total_s += p.seconds;
    total_a += p.allocations;
    total_b += p.alloc_bytes;
  }
  std::snprintf(buf, sizeof buf, "%-12s %12.6f %12llu %14llu\n", "(total)",
                total_s, static_cast<unsigned long long>(total_a),
                static_cast<unsigned long long>(total_b));
  out += buf;
  if (passes.passes.empty()) return out;
  std::snprintf(buf, sizeof buf, "%-12s %12s %8s %8s %10s %8s\n", "pass",
                "seconds", "runs", "applied", "rewrites", "checks");
  out += buf;
  for (const pass::PassStat& s : passes.passes) {
    std::snprintf(buf, sizeof buf,
                  "%-12s %12.6f %8llu %8llu %10lld %8llu\n", s.name.c_str(),
                  s.seconds, static_cast<unsigned long long>(s.runs),
                  static_cast<unsigned long long>(s.applied),
                  static_cast<long long>(s.rewrites),
                  static_cast<unsigned long long>(s.checks));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%-12s %12.6f\n", "(passes)",
                passes.total_seconds());
  out += buf;
  return out;
}

}  // namespace vc::tools
