#include "tools/vcc_cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace vc::tools {

namespace {

/// Splits on ',' keeping empty items ("1,,2" -> {"1", "", "2"}); an empty
/// spec yields no items.
std::vector<std::string> split_commas(const std::string& spec) {
  std::vector<std::string> items;
  if (spec.empty()) return items;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) {
      items.push_back(spec.substr(start));
      return items;
    }
    items.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
}

bool parse_f64(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_i32(const std::string& text, std::int32_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      v < std::numeric_limits<std::int32_t>::min() ||
      v > std::numeric_limits<std::int32_t>::max())
    return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

}  // namespace

std::optional<driver::Config> parse_config_name(const std::string& name) {
  if (name == "O0") return driver::Config::O0Pattern;
  if (name == "O1") return driver::Config::O1NoRegalloc;
  if (name == "verified") return driver::Config::Verified;
  if (name == "O2") return driver::Config::O2Full;
  return std::nullopt;
}

CallArgs parse_call_args(const minic::Function& fn, const std::string& spec) {
  CallArgs out;
  const std::vector<std::string> items = split_commas(spec);
  if (items.size() != fn.params.size()) {
    out.error = "function '" + fn.name + "' expects " +
                std::to_string(fn.params.size()) + " argument(s), got " +
                std::to_string(items.size());
    return out;
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    const minic::Param& p = fn.params[i];
    if (p.type == minic::Type::F64) {
      double v = 0.0;
      if (!parse_f64(items[i], &v)) {
        out.error = "invalid f64 literal '" + items[i] + "' for parameter '" +
                    p.name + "' of '" + fn.name + "'";
        return out;
      }
      out.values.push_back(minic::Value::of_f64(v));
    } else {
      std::int32_t v = 0;
      if (!parse_i32(items[i], &v)) {
        out.error = "invalid i32 literal '" + items[i] + "' for parameter '" +
                    p.name + "' of '" + fn.name + "'";
        return out;
      }
      out.values.push_back(minic::Value::of_i32(v));
    }
  }
  return out;
}

std::optional<int> parse_count_flag(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE || v < 0 ||
      v > 1000000)
    return std::nullopt;
  return static_cast<int>(v);
}

}  // namespace vc::tools
