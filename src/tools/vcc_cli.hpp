// Argument parsing for the vcc driver, split out so the strict-parsing
// rules are unit-testable (tests/vcc_cli_test.cpp) without spawning the
// binary. Policy: malformed or wrong-arity argument lists are diagnosed,
// never silently truncated or zero-filled — vcc exits 2 on any of these.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "minic/ast.hpp"
#include "minic/interp.hpp"
#include "wcet/wcet.hpp"

namespace vc::tools {

/// Maps a --config= name to a configuration; nullopt for unknown names.
/// Accepts both the cli ("O2") and full ("O2-full") spellings — this is a
/// thin wrapper over driver::parse_config, kept so the CLI surface stays
/// unit-testable in one place.
std::optional<driver::Config> parse_config_name(const std::string& name);

/// Maps a --validate= level name ("off", "rtl", "full") to the level;
/// nullopt for unknown names. A bare --validate (no value) means Rtl, but
/// that defaulting lives in the flag loop, not here.
std::optional<driver::ValidateLevel> parse_validate_level(
    const std::string& name);

/// Maps a --wcet-engine= name ("structural", "ipet", "both") to the engine;
/// nullopt for unknown names. Thin wrapper over wcet::parse_wcet_engine so
/// the value round-trips through the one kWcetEngineNames table.
std::optional<wcet::WcetEngine> parse_wcet_engine_name(
    const std::string& name);

/// Result of parsing a --run=FN[:a,b,...] argument list against a function
/// signature: the marshalled values, or a diagnostic.
struct CallArgs {
  std::vector<minic::Value> values;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Strictly parses `spec` (empty, or "a,b,c") against `fn`'s parameters:
/// exactly one well-formed literal per parameter — extra, missing, or
/// malformed arguments produce an error instead of truncation or zero-fill.
/// i32 literals must be decimal integers in range; f64 literals anything
/// strtod fully consumes.
CallArgs parse_call_args(const minic::Function& fn, const std::string& spec);

/// Parses a decimal unsigned integer flag value ("--jobs=N"); nullopt on
/// malformed input or values outside [0, 1000000]. Negative values are
/// malformed by policy: they must never reach the thread pool.
std::optional<int> parse_count_flag(const std::string& text);

/// Batch compilation (vcc --batch): every .mc file under a directory,
/// compiled in parallel, with optional artifact caching. Lives here (not in
/// the vcc binary) so the exit-code and summary policy is unit-testable:
/// any per-file failure must yield a non-zero exit code and an explicit
/// per-file pass/fail summary — a batch must never "exit 0 with errors in
/// the scrollback".
struct BatchOptions {
  driver::Config config = driver::Config::Verified;
  /// Translation-validation level (off / rtl / full). Validated runs bypass
  /// the artifact cache: re-checking the compilation is the point of the run.
  driver::ValidateLevel validate = driver::ValidateLevel::Off;
  int jobs = 0;  // 0 = one worker per hardware thread
  /// Artifact-store directory; empty disables caching.
  std::string cache_dir;
  std::uint64_t cache_budget_bytes = 0;  // 0 = unlimited
};

struct BatchResult {
  int exit_code = 1;               // 0 only when every file compiled
  std::size_t total = 0;
  std::size_t compiled = 0;
  std::size_t cache_hits = 0;
  std::vector<std::string> lines;     // per-file results, sorted-path order
  std::vector<std::string> failures;  // paths of the files that failed
  std::string summary;                // human footer (throughput + cache)
};

BatchResult run_batch(const std::string& dir, const BatchOptions& options);

}  // namespace vc::tools
