// Argument parsing for the vcc driver, split out so the strict-parsing
// rules are unit-testable (tests/vcc_cli_test.cpp) without spawning the
// binary. Policy: malformed or wrong-arity argument lists are diagnosed,
// never silently truncated or zero-filled — vcc exits 2 on any of these.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "minic/ast.hpp"
#include "minic/interp.hpp"
#include "pass/pass.hpp"
#include "wcet/wcet.hpp"

namespace vc::tools {

/// Detects repeated contradictory occurrences of single-valued flags.
/// A flag repeated with the *same* value is tolerated (harmless, common in
/// generated command lines); a repeat with a different value is a conflict:
/// silently letting the last occurrence win hides operator errors like
/// `--wcet-engine=ipet ... --wcet-engine=structural`, so strict CLIs
/// diagnose it and exit 2. Header-only so the fleet benches share the exact
/// same policy without linking the vcc driver library.
class FlagConflicts {
 public:
  /// Records `flag` (e.g. "--jobs") seen with `value`. Returns a diagnostic
  /// if the flag was already seen with a different value, nullopt otherwise.
  std::optional<std::string> note(const std::string& flag,
                                  const std::string& value) {
    const auto [it, inserted] = seen_.emplace(flag, value);
    if (inserted || it->second == value) return std::nullopt;
    return "conflicting values for " + flag + ": '" + it->second +
           "' then '" + value + "' (remove one; repeated flags must agree)";
  }

 private:
  std::map<std::string, std::string> seen_;
};

/// Splits "--name=value" into its flag name (nullopt for non-flag words).
/// Bare boolean flags ("--emit-asm") yield an empty value. The conflict
/// guard treats a bare `--validate` as `--validate=rtl`, its documented
/// meaning, so `--validate --validate=rtl` is a tolerated repeat.
struct SplitFlag {
  std::string name;
  std::string value;
};

inline std::optional<SplitFlag> split_flag(const std::string& arg) {
  if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') return std::nullopt;
  const std::size_t eq = arg.find('=');
  SplitFlag f;
  f.name = arg.substr(0, eq);
  if (eq != std::string::npos) f.value = arg.substr(eq + 1);
  if (arg == "--validate") f.value = "rtl";
  return f;
}

/// Maps a --config= name to a configuration; nullopt for unknown names.
/// Accepts both the cli ("O2") and full ("O2-full") spellings — this is a
/// thin wrapper over driver::parse_config, kept so the CLI surface stays
/// unit-testable in one place.
std::optional<driver::Config> parse_config_name(const std::string& name);

/// Maps a --target= name to a registered target name ("ppc", "rv32");
/// nullopt for unknown or empty names — strict CLIs diagnose and exit 2
/// instead of silently compiling for the default ISA.
std::optional<std::string> parse_target_name(const std::string& name);

/// Validates --passes= / --disable-pass= step names against the built-in
/// step registry at argument-parse time. Returns the diagnostic for the
/// first unknown or structural name ("unknown pass 'x'; registered steps:
/// ..."), nullopt when every name is selectable. vcc and the bench binaries
/// share this so a typo'd step name is a usage error (exit 2) listing the
/// registered steps, never a mid-compile exception (exit 1).
std::optional<std::string> check_pass_names(
    const std::vector<std::string>& names);

/// Maps a --validate= level name ("off", "rtl", "full") to the level;
/// nullopt for unknown names. A bare --validate (no value) means Rtl, but
/// that defaulting lives in the flag loop, not here.
std::optional<driver::ValidateLevel> parse_validate_level(
    const std::string& name);

/// Maps a --wcet-engine= name ("structural", "ipet", "both") to the engine;
/// nullopt for unknown names. Thin wrapper over wcet::parse_wcet_engine so
/// the value round-trips through the one kWcetEngineNames table.
std::optional<wcet::WcetEngine> parse_wcet_engine_name(
    const std::string& name);

/// Result of parsing a --run=FN[:a,b,...] argument list against a function
/// signature: the marshalled values, or a diagnostic.
struct CallArgs {
  std::vector<minic::Value> values;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Strictly parses `spec` (empty, or "a,b,c") against `fn`'s parameters:
/// exactly one well-formed literal per parameter — extra, missing, or
/// malformed arguments produce an error instead of truncation or zero-fill.
/// i32 literals must be decimal integers in range; f64 literals anything
/// strtod fully consumes.
CallArgs parse_call_args(const minic::Function& fn, const std::string& spec);

/// Parses a decimal unsigned integer flag value ("--jobs=N"); nullopt on
/// malformed input or values outside [0, 1000000]. Negative values are
/// malformed by policy: they must never reach the thread pool.
std::optional<int> parse_count_flag(const std::string& text);

/// One measured phase of a vcc invocation (compile / wcet / exec): wall time
/// plus the heap traffic the phase performed on the calling thread
/// (support/alloccount counters).
struct ProfilePhase {
  std::string name;
  double seconds = 0.0;
  std::uint64_t allocations = 0;
  std::uint64_t alloc_bytes = 0;
};

/// Renders the --profile report: a phase table (seconds, allocations,
/// bytes) followed by the per-pass breakdown from the pass-manager
/// telemetry (omitted when `passes` is empty — e.g. a cache-served
/// compile). Pure string formatting, so the exact layout is unit-testable
/// without spawning the vcc binary.
[[nodiscard]] std::string format_profile(
    const std::vector<ProfilePhase>& phases,
    const pass::PipelineStats& passes);

/// Batch compilation (vcc --batch): every .mc file under a directory,
/// compiled in parallel, with optional artifact caching. Lives here (not in
/// the vcc binary) so the exit-code and summary policy is unit-testable:
/// any per-file failure must yield a non-zero exit code and an explicit
/// per-file pass/fail summary — a batch must never "exit 0 with errors in
/// the scrollback".
struct BatchOptions {
  driver::Config config = driver::Config::Verified;
  /// Target ISA every file compiles for (a registered src/targets name).
  std::string target = "ppc";
  /// Translation-validation level (off / rtl / full). Validated runs bypass
  /// the artifact cache: re-checking the compilation is the point of the run.
  driver::ValidateLevel validate = driver::ValidateLevel::Off;
  /// Enable the SSA mid-end bracket for every file (CompileOptions::ssa).
  /// Part of the cache key: SSA and non-SSA batches never share entries.
  bool ssa = false;
  int jobs = 0;  // 0 = one worker per hardware thread
  /// Artifact-store directory; empty disables caching.
  std::string cache_dir;
  std::uint64_t cache_budget_bytes = 0;  // 0 = unlimited
};

/// Exit-code policy: 0 = every file compiled; 1 = at least one compile
/// failed; 2 = usage/environment error (path missing or not a directory,
/// bad --jobs, or an unreadable file) — the diagnostic always names the
/// offending path and the reason.
struct BatchResult {
  int exit_code = 1;               // 0 only when every file compiled
  std::size_t total = 0;
  std::size_t compiled = 0;
  std::size_t cache_hits = 0;
  std::size_t io_errors = 0;          // unreadable files (exit-2 class)
  std::vector<std::string> lines;     // per-file results, sorted-path order
  std::vector<std::string> failures;  // paths of the files that failed
  std::string summary;                // human footer (throughput + cache)
};

BatchResult run_batch(const std::string& dir, const BatchOptions& options);

}  // namespace vc::tools
