// Argument parsing for the vcc driver, split out so the strict-parsing
// rules are unit-testable (tests/vcc_cli_test.cpp) without spawning the
// binary. Policy: malformed or wrong-arity argument lists are diagnosed,
// never silently truncated or zero-filled — vcc exits 2 on any of these.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "minic/ast.hpp"
#include "minic/interp.hpp"

namespace vc::tools {

/// Maps a --config= name to a configuration; nullopt for unknown names.
std::optional<driver::Config> parse_config_name(const std::string& name);

/// Result of parsing a --run=FN[:a,b,...] argument list against a function
/// signature: the marshalled values, or a diagnostic.
struct CallArgs {
  std::vector<minic::Value> values;
  std::string error;  // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Strictly parses `spec` (empty, or "a,b,c") against `fn`'s parameters:
/// exactly one well-formed literal per parameter — extra, missing, or
/// malformed arguments produce an error instead of truncation or zero-fill.
/// i32 literals must be decimal integers in range; f64 literals anything
/// strtod fully consumes.
CallArgs parse_call_args(const minic::Function& fn, const std::string& spec);

/// Parses a decimal unsigned integer flag value ("--jobs=N"); nullopt on
/// malformed input or values outside [0, 1000000].
std::optional<int> parse_count_flag(const std::string& text);

}  // namespace vc::tools
