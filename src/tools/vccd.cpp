// vccd — the long-running compile/WCET service daemon.
//
//   vccd --socket=PATH [--jobs=N] [--shards=N] [--cache-dir=DIR]
//        [--cache-budget-mb=N] [--shard-index=I]
//
// Single-process mode (the default) serves the framed protocol directly;
// --shards=N forks N worker vccd processes behind a supervisor that owns
// the public socket and restarts dead shards. SIGTERM/SIGINT drain
// gracefully: in-flight jobs finish, stats flush to stderr, exit 0.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/server.hpp"
#include "service/supervisor.hpp"

namespace {

vc::service::ServiceServer* g_server = nullptr;
vc::service::ShardSupervisor* g_supervisor = nullptr;

void handle_terminate(int) {
  // Async-signal-safe: both paths only write one byte to a wake pipe.
  if (g_server != nullptr) g_server->request_drain();
  if (g_supervisor != nullptr) g_supervisor->request_drain();
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_terminate;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--jobs=N] [--shards=N]\n"
               "          [--cache-dir=DIR] [--cache-budget-mb=N]\n"
               "          [--shard-index=I]\n",
               argv0);
  return 2;
}

bool parse_int(const std::string& text, long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

std::string self_exe_path(const char* argv0) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  long jobs = 0;
  long shards = 0;
  long shard_index = -1;
  std::string cache_dir;
  long cache_budget_mb = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = value_of("--socket=");
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!parse_int(value_of("--jobs="), &jobs) || jobs < 0) {
        std::fprintf(stderr, "vccd: error: bad --jobs value: %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!parse_int(value_of("--shards="), &shards) || shards < 0 ||
          shards > 64) {
        std::fprintf(stderr, "vccd: error: bad --shards value: %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--shard-index=", 0) == 0) {
      if (!parse_int(value_of("--shard-index="), &shard_index) ||
          shard_index < 0) {
        std::fprintf(stderr, "vccd: error: bad --shard-index value: %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = value_of("--cache-dir=");
    } else if (arg.rfind("--cache-budget-mb=", 0) == 0) {
      if (!parse_int(value_of("--cache-budget-mb="), &cache_budget_mb) ||
          cache_budget_mb < 0) {
        std::fprintf(stderr,
                     "vccd: error: bad --cache-budget-mb value: %s\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "vccd: error: unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "vccd: error: --socket=PATH is required\n");
    return usage(argv[0]);
  }
  if (shards > 0 && shard_index >= 0) {
    std::fprintf(stderr,
                 "vccd: error: --shards and --shard-index are exclusive\n");
    return 2;
  }

  if (shards > 0) {
    vc::service::SupervisorOptions options;
    options.socket_path = socket_path;
    options.shards = static_cast<int>(shards);
    options.vccd_path = self_exe_path(argv[0]);
    if (jobs > 0) {
      options.shard_args.push_back("--jobs=" + std::to_string(jobs));
    }
    if (!cache_dir.empty()) {
      options.shard_args.push_back("--cache-dir=" + cache_dir);
    }
    if (cache_budget_mb > 0) {
      options.shard_args.push_back("--cache-budget-mb=" +
                                   std::to_string(cache_budget_mb));
    }
    vc::service::ShardSupervisor supervisor(options);
    std::string error;
    if (!supervisor.start(&error)) {
      std::fprintf(stderr, "vccd: error: %s\n", error.c_str());
      return 1;
    }
    g_supervisor = &supervisor;
    install_signal_handlers();
    std::fprintf(stderr, "vccd: supervising %ld shards on %s\n", shards,
                 socket_path.c_str());
    const int code = supervisor.serve();
    g_supervisor = nullptr;
    return code;
  }

  vc::service::ServerOptions options;
  options.socket_path = socket_path;
  options.jobs = static_cast<int>(jobs);
  options.cache_dir = cache_dir;
  options.cache_budget_bytes =
      static_cast<std::uint64_t>(cache_budget_mb) * 1024 * 1024;
  options.shard_index = static_cast<int>(shard_index);
  vc::service::ServiceServer server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "vccd: error: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  install_signal_handlers();
  if (shard_index < 0) {
    std::fprintf(stderr, "vccd: serving on %s\n", socket_path.c_str());
  }
  const int code = server.serve();
  g_server = nullptr;
  return code;
}
