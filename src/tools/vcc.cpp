// vcc — the vcflight command-line driver.
//
// Compiles a mini-C source file under a chosen configuration and, on demand,
// prints the disassembly listing, runs a function on the machine simulator,
// computes its WCET bound, or performs validated compilation. Batch mode
// compiles every .mc file of a directory in parallel over a thread pool.
//
// Usage:
//   vcc [options] file.mc
//   vcc [options] --batch dir
//     --config=<O0|O1|verified|O2>   compiler configuration (default verified)
//     --target=<ppc|rv32>            target ISA (default ppc); strict: an
//                                    unknown or empty name is a usage error
//     --emit-asm                     print the disassembly listing
//     --wcet=<function>              print the WCET bound of <function>
//     --wcet-engine=<structural|ipet|both>
//                                    path-analysis backend for --wcet:
//                                    structural longest-path (default), the
//                                    LP-based IPET engine with certificate
//                                    checking, or both (prints each bound
//                                    and the tightness delta)
//     --no-annotations               ignore the annotation table in WCET
//     --run=<function>[:a,b,...]     simulate <function> with f64/i32 args
//     --monitor=<off|cfg|full>       arm the runtime execution monitor on
//                                    --run: cfg checks every control
//                                    transfer against the reconstructed CFG,
//                                    full adds live annotation-interval and
//                                    loop-bound checks; a violation aborts
//                                    with the refuted fact (exit 1)
//     --validate[=off|rtl|full]      translation-validate every pass; bare
//                                    --validate means rtl, full adds the
//                                    machine-level checkers
//     --ssa                          enable the SSA mid-end bracket
//                                    (ssa-build .. ssa-out) on the verified
//                                    and O2 configurations; conflicts with
//                                    --passes (an explicit list already
//                                    decides the pipeline)
//     --passes=a,b,c                 replace the config's optimization passes
//     --disable-pass=NAME            drop one pass (repeatable)
//     Unknown step names in --passes / --disable-pass are usage errors
//     (exit 2) listing the registered steps.
//     --dump-after=PASS              print the IR after every applied run
//     --stats                        print per-function code sizes
//     --profile                      print the per-phase breakdown (compile /
//                                    wcet / exec wall time with heap
//                                    allocation counts) and the per-pass
//                                    telemetry table after the run
//     --batch                        compile every .mc file under <dir>
//     --jobs=N                       batch worker threads (0 = all cores)
//     --cache-dir=DIR                batch: content-addressed artifact cache
//     --cache-budget-mb=N            batch: cache LRU budget (0 = unlimited)
//     --connect=SOCK                 submit to a running vccd daemon on the
//                                    Unix socket SOCK instead of compiling
//                                    in-process (single file or --batch);
//                                    --wcet=auto resolves the entry on the
//                                    daemon, --exec-cycles=N steps the entry
//                                    with pseudo-random inputs, and --run is
//                                    local-only (rejected)
//     --exec-cycles=N                connect mode: step invocations per job
//                                    with pseudo-random inputs (0 = skip)
//
// Batch mode exits non-zero if any file fails, and lists the failing files
// in a per-file pass/fail summary on stderr.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/fleet.hpp"
#include "service/client.hpp"
#include "support/alloccount.hpp"
#include "machine/machine.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "mach/isa.hpp"
#include "rtl/rtl.hpp"
#include "support/strings.hpp"
#include "support/workspace.hpp"
#include "tools/vcc_cli.hpp"
#include "validate/validate.hpp"
#include "wcet/monitor_spec.hpp"
#include "wcet/report.hpp"
#include "wcet/wcet.hpp"

namespace {

using namespace vc;

[[noreturn]] void usage() {
  std::fputs(
      "usage: vcc [--config=O0|O1|verified|O2] [--target=ppc|rv32]\n"
      "           [--emit-asm]\n"
      "           [--wcet=FN] [--wcet-engine=structural|ipet|both]\n"
      "           [--no-annotations] [--run=FN[:args]]\n"
      "           [--monitor=off|cfg|full]\n"
      "           [--validate[=off|rtl|full]] [--ssa] [--passes=a,b,c]\n"
      "           [--disable-pass=NAME] [--dump-after=PASS]\n"
      "           [--stats] [--profile] file.mc\n"
      "       vcc [--config=...] [--validate[=off|rtl|full]] [--jobs=N]\n"
      "           [--cache-dir=DIR] [--cache-budget-mb=N] --batch dir\n"
      "       vcc --connect=SOCK [--config=...] [--wcet=FN|auto]\n"
      "           [--wcet-engine=...] [--validate[=...]] [--monitor=...]\n"
      "           [--exec-cycles=N] (file.mc | --batch dir)\n",
      stderr);
  std::exit(2);
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "vcc: %s\n", message.c_str());
  std::exit(2);
}

/// Parses + type-checks + compiles one source string.
driver::Compiled compile_source(const std::string& source,
                                const std::string& path, driver::Config config,
                                driver::ValidateLevel validate_level,
                                driver::CompileOptions copts,
                                minic::Program* program_out) {
  minic::Program program = minic::parse_program(source, path);
  minic::type_check(program);
  driver::Compiled compiled =
      validate_level != driver::ValidateLevel::Off
          ? validate::validated_compile(program, config, /*n_tests=*/12,
                                        /*seed=*/1, validate_level,
                                        std::move(copts))
          : driver::compile_program(program, config, copts);
  *program_out = std::move(program);
  return compiled;
}

/// --dump-after printer: RTL as the pretty-printed function, machine code as
/// one formatted instruction per op (labels interleaved at their positions).
void dump_state(const std::string& pass, const pass::FunctionState& s) {
  std::printf("== %s after %s ==\n", s.name().c_str(), pass.c_str());
  if (!s.emitted) {
    std::fputs(rtl::print_function(s.rtl).c_str(), stdout);
    return;
  }
  for (std::size_t i = 0; i < s.machine.ops.size(); ++i) {
    for (const auto& [label, pos] : s.machine.labels)
      if (pos == i) std::printf("L%d:\n", label);
    std::printf("  %s\n",
                mach::format_instr(s.machine.ops[i].ins,
                                  static_cast<std::uint32_t>(i * 4))
                    .c_str());
  }
  for (const auto& [label, pos] : s.machine.labels)
    if (pos == s.machine.ops.size()) std::printf("L%d:\n", label);
}

/// Splits a non-empty comma-separated --passes= list ("a,b,c").
std::vector<std::string> split_pass_list(const std::string& spec) {
  std::vector<std::string> items;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', start);
    items.push_back(spec.substr(start, comma - start));
    if (comma == std::string::npos) return items;
    start = comma + 1;
  }
}

std::string read_file_or_die(const std::string& path, int exit_code = 1) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "vcc: cannot open %s\n", path.c_str());
    std::exit(exit_code);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Batch mode front-end: the policy (parallel compile, per-file summary,
/// non-zero exit on any failure, optional artifact cache) lives in
/// tools::run_batch so it is unit-testable; this just prints.
int run_batch_cli(const std::string& dir, const tools::BatchOptions& options) {
  const tools::BatchResult result = tools::run_batch(dir, options);
  for (const std::string& line : result.lines) std::puts(line.c_str());
  if (result.total == 0) {
    std::fprintf(stderr, "vcc: %s\n", result.summary.c_str());
    return result.exit_code;
  }
  std::fprintf(stderr, "vcc: %s\n", result.summary.c_str());
  for (const std::string& path : result.failures)
    std::fprintf(stderr, "vcc: FAILED: %s\n", path.c_str());
  return result.exit_code;
}

/// Everything one daemon-submitted job inherits from the command line.
struct ConnectParams {
  driver::Config config = driver::Config::Verified;
  std::string target = "ppc";
  driver::ValidateLevel validate = driver::ValidateLevel::Off;
  std::string wcet_fn;  // empty = no WCET phase; "auto" resolves remotely
  wcet::WcetEngine wcet_engine = wcet::WcetEngine::Structural;
  bool use_annotations = true;
  machine::MonitorMode monitor = machine::MonitorMode::Off;
  bool ssa = false;
  int exec_cycles = 0;
};

/// --connect mode: pipeline every file as one "job" request over the daemon
/// socket, then collect the replies (which may arrive out of order) and
/// print a per-file summary. Exit 0 = all ok, 1 = a job failed or the
/// daemon dropped us, 2 = usage/environment.
int run_connect(const std::string& socket_path, const std::string& path,
                bool batch, const ConnectParams& params) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  if (batch) {
    std::error_code ec;
    if (!fs::is_directory(fs::status(path, ec))) {
      std::fprintf(stderr, "vcc: not a directory: %s\n", path.c_str());
      return 2;
    }
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".mc")
        files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "vcc: no .mc files under %s\n", path.c_str());
      return 0;
    }
  } else {
    files.push_back(path);
  }

  service::ServiceClient client;
  if (!client.connect(socket_path)) {
    std::fprintf(stderr, "vcc: cannot connect to daemon socket %s\n",
                 socket_path.c_str());
    return 2;
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    service::JobRequest job;
    job.id = static_cast<std::int64_t>(i);
    job.name = fs::path(files[i]).stem().string();
    job.source = read_file_or_die(files[i], /*exit_code=*/2);
    job.entry = params.wcet_fn.empty() ? "auto" : params.wcet_fn;
    job.config = params.config;
    job.target = params.target;
    job.validate = params.validate;
    job.wcet = !params.wcet_fn.empty();
    job.wcet_engine = params.wcet_engine;
    job.use_annotations = params.use_annotations;
    job.monitor = params.monitor;
    job.ssa = params.ssa;
    job.exec_cycles = params.exec_cycles;
    // Deterministic per-file seed, independent of reply order and shard
    // placement: the same derivation the fleet uses, keyed by sorted index.
    job.input_seed = driver::fleet_job_seed(7, i);
    if (!client.send(service::job_to_json(job))) {
      std::fprintf(stderr, "vcc: daemon connection died mid-submit\n");
      return 1;
    }
  }

  std::map<std::int64_t, json::Value> replies;
  while (replies.size() < files.size()) {
    const auto reply = client.recv();
    if (!reply) {
      std::fprintf(stderr, "vcc: daemon connection died (%zu/%zu replies)\n",
                   replies.size(), files.size());
      return 1;
    }
    replies[reply->at("id").as_i64(-1)] = *reply;
  }

  int failures = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto it = replies.find(static_cast<std::int64_t>(i));
    if (it == replies.end()) {
      std::fprintf(stderr, "vcc: FAILED: %s (no reply)\n", files[i].c_str());
      ++failures;
      continue;
    }
    const json::Value& doc = it->second;
    if (!doc.at("ok").as_bool(false)) {
      std::fprintf(stderr, "vcc: FAILED: %s (%s)\n", files[i].c_str(),
                   doc.at("error").as_string("unknown error").c_str());
      ++failures;
      continue;
    }
    const json::Value& record = doc.at("record");
    std::string line = files[i] + ": ok";
    line += " cache=" + doc.at("cache").as_string("miss");
    line += " bytes=" + std::to_string(record.at("code_bytes").as_u64());
    if (!record.at("wcet_cycles").is_null())
      line += " wcet=" + std::to_string(record.at("wcet_cycles").as_u64());
    if (record.at("wcet_ipet_cycles").as_u64() > 0)
      line +=
          " ipet=" + std::to_string(record.at("wcet_ipet_cycles").as_u64());
    std::puts(line.c_str());
  }
  if (failures > 0)
    std::fprintf(stderr, "vcc: %d of %zu daemon job(s) failed\n", failures,
                 files.size());
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  driver::Config config = driver::Config::Verified;
  bool emit_asm = false;
  driver::ValidateLevel validate_level = driver::ValidateLevel::Off;
  driver::CompileOptions copts;
  bool stats = false;
  bool profile = false;
  bool use_annotations = true;
  bool batch = false;
  int jobs = 0;
  std::string cache_dir;
  std::uint64_t cache_budget_bytes = 0;
  std::string wcet_fn;
  wcet::WcetEngine wcet_engine = wcet::WcetEngine::Structural;
  std::string run_spec;
  machine::MonitorMode monitor_mode = machine::MonitorMode::Off;
  std::string connect_sock;
  int exec_cycles = 0;

  tools::FlagConflicts conflicts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Contradictory repeats of single-valued flags are operator errors, not
    // a last-one-wins shadowing. --disable-pass is the one repeatable flag.
    if (const auto flag = tools::split_flag(arg);
        flag && flag->name != "--disable-pass") {
      if (const auto conflict = conflicts.note(flag->name, flag->value))
        die(*conflict);
    }
    if (starts_with(arg, "--config=")) {
      const auto parsed = tools::parse_config_name(arg.substr(9));
      if (!parsed) die("unknown config '" + arg.substr(9) + "'");
      config = *parsed;
    } else if (starts_with(arg, "--target=")) {
      const auto parsed = tools::parse_target_name(arg.substr(9));
      if (!parsed) die("unknown target '" + arg.substr(9) + "'");
      copts.target = *parsed;
    } else if (arg == "--emit-asm") {
      emit_asm = true;
    } else if (arg == "--validate") {
      validate_level = driver::ValidateLevel::Rtl;
    } else if (starts_with(arg, "--validate=")) {
      const auto parsed = tools::parse_validate_level(arg.substr(11));
      if (!parsed) die("unknown validate level '" + arg.substr(11) + "'");
      validate_level = *parsed;
    } else if (arg == "--ssa") {
      copts.ssa = true;
    } else if (starts_with(arg, "--passes=")) {
      if (arg.size() == 9) die("empty --passes value");
      copts.passes = split_pass_list(arg.substr(9));
    } else if (starts_with(arg, "--disable-pass=")) {
      if (arg.size() == 15) die("empty --disable-pass value");
      copts.disable_passes.push_back(arg.substr(15));
    } else if (starts_with(arg, "--dump-after=")) {
      if (arg.size() == 13) die("empty --dump-after value");
      copts.dump_after = arg.substr(13);
      copts.dump = dump_state;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--no-annotations") {
      use_annotations = false;
    } else if (arg == "--batch") {
      batch = true;
    } else if (starts_with(arg, "--jobs=")) {
      const auto parsed = tools::parse_count_flag(arg.substr(7));
      if (!parsed) die("bad --jobs value '" + arg.substr(7) + "'");
      jobs = *parsed;
    } else if (starts_with(arg, "--cache-dir=")) {
      cache_dir = arg.substr(12);
      if (cache_dir.empty()) die("empty --cache-dir value");
    } else if (starts_with(arg, "--cache-budget-mb=")) {
      const auto parsed = tools::parse_count_flag(arg.substr(18));
      if (!parsed) die("bad --cache-budget-mb value '" + arg.substr(18) + "'");
      cache_budget_bytes = static_cast<std::uint64_t>(*parsed) * 1024 * 1024;
    } else if (starts_with(arg, "--wcet=")) {
      wcet_fn = arg.substr(7);
    } else if (starts_with(arg, "--wcet-engine=")) {
      const auto parsed = tools::parse_wcet_engine_name(arg.substr(14));
      if (!parsed) die("unknown wcet engine '" + arg.substr(14) + "'");
      wcet_engine = *parsed;
    } else if (starts_with(arg, "--run=")) {
      run_spec = arg.substr(6);
    } else if (starts_with(arg, "--monitor=")) {
      const auto parsed = machine::parse_monitor_mode(arg.substr(10));
      if (!parsed) die("unknown monitor mode '" + arg.substr(10) + "'");
      monitor_mode = *parsed;
    } else if (starts_with(arg, "--connect=")) {
      connect_sock = arg.substr(10);
      if (connect_sock.empty()) die("empty --connect value");
    } else if (starts_with(arg, "--exec-cycles=")) {
      const auto parsed = tools::parse_count_flag(arg.substr(14));
      if (!parsed) die("bad --exec-cycles value '" + arg.substr(14) + "'");
      exec_cycles = *parsed;
    } else if (!starts_with(arg, "--") && path.empty()) {
      path = arg;
    } else {
      usage();
    }
  }
  if (path.empty()) usage();
  // Pass-name problems are usage errors: diagnose them here at parse time
  // (exit 2, listing the registered steps) instead of letting the pipeline
  // resolver throw mid-compile (exit 1).
  if (const auto bad = tools::check_pass_names(copts.passes)) die(*bad);
  if (const auto bad = tools::check_pass_names(copts.disable_passes))
    die(*bad);
  if (copts.ssa && !copts.passes.empty())
    die("--ssa conflicts with --passes (an explicit pass list already "
        "decides the pipeline; include the ssa-build .. ssa-out bracket "
        "there instead)");

  if (!connect_sock.empty()) {
    if (!run_spec.empty())
      die("--run is local-only; use --exec-cycles=N with --connect");
    ConnectParams params;
    params.config = config;
    params.target = copts.target;
    params.validate = validate_level;
    params.wcet_fn = wcet_fn;
    params.wcet_engine = wcet_engine;
    params.use_annotations = use_annotations;
    params.monitor = monitor_mode;
    params.ssa = copts.ssa;
    params.exec_cycles = exec_cycles;
    return run_connect(connect_sock, path, batch, params);
  }

  if (batch) {
    tools::BatchOptions batch_options;
    batch_options.config = config;
    batch_options.target = copts.target;
    batch_options.validate = validate_level;
    batch_options.ssa = copts.ssa;
    batch_options.jobs = jobs;
    batch_options.cache_dir = cache_dir;
    batch_options.cache_budget_bytes = cache_budget_bytes;
    return run_batch_cli(path, batch_options);
  }

  const std::string source = read_file_or_die(path);

  try {
    // --profile instrumentation: wall time + this thread's heap traffic per
    // phase, and the pass manager's per-pass telemetry for the compile.
    pass::PipelineStats pipeline_stats;
    std::vector<tools::ProfilePhase> phases;
    const auto measure = [&](const char* name, auto&& body) {
      if (!profile) {
        body();
        return;
      }
      const vc::alloc::Scope scope;
      const auto start = std::chrono::steady_clock::now();
      body();
      tools::ProfilePhase phase;
      phase.name = name;
      phase.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const vc::alloc::Counters delta = scope.delta();
      phase.allocations = delta.allocations;
      phase.alloc_bytes = delta.bytes;
      phases.push_back(std::move(phase));
    };
    if (profile) copts.stats = &pipeline_stats;

    minic::Program program;
    driver::Compiled compiled;
    measure("compile", [&] {
      compiled = compile_source(source, path, config, validate_level,
                                std::move(copts), &program);
    });
    std::fprintf(
        stderr, "vcc: compiled %zu function(s) under %s%s\n",
        program.functions.size(), driver::to_string(config).c_str(),
        validate_level != driver::ValidateLevel::Off
            ? (" (validated: " + driver::to_string(validate_level) + ")")
                  .c_str()
            : "");

    if (stats) {
      for (const auto& fn : program.functions)
        std::printf("%-32s %6u bytes\n", fn.name.c_str(),
                    compiled.image.code_size_of(fn.name));
      std::printf("%-32s %6u bytes\n", "(total code)",
                  compiled.image.code_size_bytes());
    }

    if (emit_asm) std::fputs(compiled.image.disassemble().c_str(), stdout);

    if (!wcet_fn.empty()) {
      wcet::WcetOptions options;
      options.use_annotations = use_annotations;
      options.engine = wcet_engine;
      wcet::WcetResult r;
      measure("wcet", [&] {
        r = wcet::analyze_wcet(compiled.image, wcet_fn, options);
      });
      std::fputs(wcet::format_report(compiled.image, wcet_fn, r).c_str(),
                 stdout);
    }

    if (!run_spec.empty()) {
      std::string fn_name = run_spec;
      std::string arg_spec;
      const std::size_t colon = run_spec.find(':');
      if (colon != std::string::npos) {
        fn_name = run_spec.substr(0, colon);
        arg_spec = run_spec.substr(colon + 1);
      }
      const minic::Function* fn = program.find_function(fn_name);
      if (fn == nullptr) {
        std::fprintf(stderr, "vcc: unknown function '%s'\n", fn_name.c_str());
        return 1;
      }
      const tools::CallArgs call = tools::parse_call_args(*fn, arg_spec);
      if (!call.ok()) die(call.error);
      machine::MonitorSpec monitor_spec;  // outlives the machine's monitor
      machine::Machine m(compiled.image);
      if (monitor_mode != machine::MonitorMode::Off) {
        wcet::WcetOptions wopts;
        wopts.use_annotations = use_annotations;
        monitor_spec =
            wcet::build_monitor_spec(compiled.image, fn_name, monitor_mode,
                                     wopts);
        m.arm_monitor(monitor_spec, monitor_mode);
      }
      minic::Value result;
      measure("exec", [&] {
        result = m.call(fn_name, call.values,
                        fn->has_return ? fn->return_type : minic::Type::I32);
      });
      if (fn->has_return)
        std::printf("%s(...) = %s\n", fn_name.c_str(),
                    result.to_string().c_str());
      std::printf("cycles=%llu instructions=%llu dreads=%llu dwrites=%llu\n",
                  static_cast<unsigned long long>(m.stats().cycles),
                  static_cast<unsigned long long>(m.stats().instructions),
                  static_cast<unsigned long long>(m.stats().dcache_reads),
                  static_cast<unsigned long long>(m.stats().dcache_writes));
      if (m.monitor() != nullptr)
        std::printf("monitor=%s checked=%llu violations=0\n",
                    machine::to_string(m.monitor()->mode()).c_str(),
                    static_cast<unsigned long long>(m.monitor()->steps()));
    }

    if (profile) {
      std::fputs(tools::format_profile(phases, pipeline_stats).c_str(),
                 stdout);
      // The workspace arena the pipeline's pooled scratch bumps into —
      // peak is the high-water mark of live arena bytes for this job.
      const CompileWorkspace& ws = this_thread_workspace();
      std::printf("%-12s %12s %12llu %14llu (peak %llu, %zu chunk(s))\n",
                  "(arena)", "-",
                  static_cast<unsigned long long>(ws.arena.allocations()),
                  static_cast<unsigned long long>(ws.arena.bytes_allocated()),
                  static_cast<unsigned long long>(ws.arena.peak_bytes()),
                  ws.arena.chunk_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcc: %s\n", e.what());
    return 1;
  }
  return 0;
}
