// vcc — the vcflight command-line driver.
//
// Compiles a mini-C source file under a chosen configuration and, on demand,
// prints the disassembly listing, runs a function on the machine simulator,
// computes its WCET bound, or performs validated compilation.
//
// Usage:
//   vcc [options] file.mc
//     --config=<O0|O1|verified|O2>   compiler configuration (default verified)
//     --emit-asm                     print the disassembly listing
//     --wcet=<function>              print the WCET bound of <function>
//     --no-annotations               ignore the annotation table in WCET
//     --run=<function>[:a,b,...]     simulate <function> with f64/i32 args
//     --validate                     translation-validate every pass
//     --stats                        print per-function code sizes
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/strings.hpp"
#include "validate/validate.hpp"
#include "wcet/report.hpp"
#include "wcet/wcet.hpp"

namespace {

using namespace vc;

[[noreturn]] void usage() {
  std::fputs(
      "usage: vcc [--config=O0|O1|verified|O2] [--emit-asm]\n"
      "           [--wcet=FN] [--no-annotations] [--run=FN[:args]]\n"
      "           [--validate] [--stats] file.mc\n",
      stderr);
  std::exit(2);
}

driver::Config parse_config(const std::string& name) {
  if (name == "O0") return driver::Config::O0Pattern;
  if (name == "O1") return driver::Config::O1NoRegalloc;
  if (name == "verified") return driver::Config::Verified;
  if (name == "O2") return driver::Config::O2Full;
  std::fprintf(stderr, "vcc: unknown config '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<minic::Value> parse_args(const minic::Function& fn,
                                     const std::string& spec) {
  std::vector<minic::Value> out;
  std::stringstream ss(spec);
  std::string item;
  std::size_t i = 0;
  while (std::getline(ss, item, ',')) {
    if (i >= fn.params.size()) break;
    if (fn.params[i].type == minic::Type::F64)
      out.push_back(minic::Value::of_f64(std::stod(item)));
    else
      out.push_back(minic::Value::of_i32(std::stoi(item)));
    ++i;
  }
  while (out.size() < fn.params.size()) {
    out.push_back(fn.params[out.size()].type == minic::Type::F64
                      ? minic::Value::of_f64(0.0)
                      : minic::Value::of_i32(0));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  driver::Config config = driver::Config::Verified;
  bool emit_asm = false;
  bool do_validate = false;
  bool stats = false;
  bool use_annotations = true;
  std::string wcet_fn;
  std::string run_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--config="))
      config = parse_config(arg.substr(9));
    else if (arg == "--emit-asm")
      emit_asm = true;
    else if (arg == "--validate")
      do_validate = true;
    else if (arg == "--stats")
      stats = true;
    else if (arg == "--no-annotations")
      use_annotations = false;
    else if (starts_with(arg, "--wcet="))
      wcet_fn = arg.substr(7);
    else if (starts_with(arg, "--run="))
      run_spec = arg.substr(6);
    else if (!starts_with(arg, "--") && path.empty())
      path = arg;
    else
      usage();
  }
  if (path.empty()) usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "vcc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    minic::Program program = minic::parse_program(buffer.str(), path);
    minic::type_check(program);

    const driver::Compiled compiled =
        do_validate ? validate::validated_compile(program, config)
                    : driver::compile_program(program, config);
    std::fprintf(stderr, "vcc: compiled %zu function(s) under %s%s\n",
                 program.functions.size(),
                 driver::to_string(config).c_str(),
                 do_validate ? " (validated)" : "");

    if (stats) {
      for (const auto& fn : program.functions)
        std::printf("%-32s %6u bytes\n", fn.name.c_str(),
                    compiled.image.code_size_of(fn.name));
      std::printf("%-32s %6u bytes\n", "(total code)",
                  compiled.image.code_size_bytes());
    }

    if (emit_asm) std::fputs(compiled.image.disassemble().c_str(), stdout);

    if (!wcet_fn.empty()) {
      wcet::WcetOptions options;
      options.use_annotations = use_annotations;
      const wcet::WcetResult r =
          wcet::analyze_wcet(compiled.image, wcet_fn, options);
      std::fputs(wcet::format_report(compiled.image, wcet_fn, r).c_str(),
                 stdout);
    }

    if (!run_spec.empty()) {
      std::string fn_name = run_spec;
      std::string arg_spec;
      const std::size_t colon = run_spec.find(':');
      if (colon != std::string::npos) {
        fn_name = run_spec.substr(0, colon);
        arg_spec = run_spec.substr(colon + 1);
      }
      const minic::Function* fn = program.find_function(fn_name);
      if (fn == nullptr) {
        std::fprintf(stderr, "vcc: unknown function '%s'\n", fn_name.c_str());
        return 1;
      }
      machine::Machine m(compiled.image);
      const minic::Value result =
          m.call(fn_name, parse_args(*fn, arg_spec),
                 fn->has_return ? fn->return_type : minic::Type::I32);
      if (fn->has_return)
        std::printf("%s(...) = %s\n", fn_name.c_str(),
                    result.to_string().c_str());
      std::printf("cycles=%llu instructions=%llu dreads=%llu dwrites=%llu\n",
                  static_cast<unsigned long long>(m.stats().cycles),
                  static_cast<unsigned long long>(m.stats().instructions),
                  static_cast<unsigned long long>(m.stats().dcache_reads),
                  static_cast<unsigned long long>(m.stats().dcache_writes));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcc: %s\n", e.what());
    return 1;
  }
  return 0;
}
