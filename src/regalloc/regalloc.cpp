#include "regalloc/regalloc.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "rtl/analysis.hpp"
#include "support/bitset.hpp"

namespace vc::regalloc {
namespace {

using rtl::BlockId;
using rtl::Function;
using rtl::Instr;
using rtl::Opcode;
using rtl::RegClass;
using rtl::VReg;

/// Interference graph over virtual registers (same-class edges only) plus
/// move-affinity edges used for biased coloring.
struct Graph {
  std::vector<std::set<VReg>> adj;
  std::vector<std::set<VReg>> moves;
  std::vector<std::uint32_t> use_count;
  std::vector<bool> present;  // vreg occurs in the function
};

Graph build_graph(const Function& fn) {
  Graph g;
  g.adj.assign(fn.vregs.size(), {});
  g.moves.assign(fn.vregs.size(), {});
  g.use_count.assign(fn.vregs.size(), 0);
  g.present.assign(fn.vregs.size(), false);

  thread_local rtl::Liveness lv;
  rtl::compute_liveness(fn, this_thread_workspace(), &lv);

  auto add_edge = [&](VReg a, VReg b) {
    if (a == b) return;
    if (fn.vregs[a] != fn.vregs[b]) return;  // different register files
    g.adj[a].insert(b);
    g.adj[b].insert(a);
  };

  DenseBitset live(fn.vregs.size());
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    live = lv.live_out[b];
    const auto& instrs = fn.blocks[b].instrs;
    for (std::size_t i = instrs.size(); i-- > 0;) {
      const Instr& ins = instrs[i];
      const auto d = ins.def();
      if (d) {
        g.present[*d] = true;
        live.for_each([&](std::size_t l) {
          // A move's source does not interfere with its destination.
          if (ins.op == Opcode::Mov && static_cast<VReg>(l) == ins.src1)
            return;
          add_edge(*d, static_cast<VReg>(l));
        });
        live.reset(*d);
        if (ins.op == Opcode::Mov) {
          g.moves[*d].insert(ins.src1);
          g.moves[ins.src1].insert(*d);
        }
      }
      for (VReg u : ins.uses()) {
        g.present[u] = true;
        ++g.use_count[u];
        live.set(u);
      }
    }
  }
  return g;
}

/// One Chaitin-Briggs coloring attempt. On success fills `colors`; on
/// failure returns the chosen spill candidate.
std::optional<VReg> try_color(const Function& fn, const Graph& g, int k_int,
                              int k_float, bool spread_colors,
                              const std::set<VReg>& no_spill,
                              std::vector<int>* colors) {
  const std::size_t n = fn.vregs.size();
  auto k_of = [&](VReg v) {
    return fn.vregs[v] == RegClass::I32 ? k_int : k_float;
  };

  std::vector<std::size_t> degree(n, 0);
  std::vector<bool> removed(n, true);
  std::vector<VReg> work;
  for (VReg v = 0; v < n; ++v) {
    if (!g.present[v]) continue;
    removed[v] = false;
    degree[v] = g.adj[v].size();
    work.push_back(v);
  }

  std::vector<VReg> stack;
  std::size_t remaining = work.size();
  while (remaining > 0) {
    // Simplify: remove a node with degree < K.
    VReg pick = rtl::kNoVReg;
    for (VReg v : work) {
      if (removed[v]) continue;
      if (degree[v] < static_cast<std::size_t>(k_of(v))) {
        pick = v;
        break;
      }
    }
    if (pick == rtl::kNoVReg) {
      // Blocked: choose a spill candidate — maximize degree / (uses + 1),
      // skipping registers that must not spill (spill temporaries).
      VReg best = rtl::kNoVReg;
      double best_score = -1.0;
      for (VReg v : work) {
        if (removed[v] || no_spill.count(v) != 0) continue;
        const double score = static_cast<double>(degree[v]) /
                             (static_cast<double>(g.use_count[v]) + 1.0);
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      check(best != rtl::kNoVReg, "register allocator wedged: nothing to spill");
      return best;
    }
    removed[pick] = true;
    --remaining;
    for (VReg w : g.adj[pick])
      if (!removed[w] && degree[w] > 0) --degree[w];
    stack.push_back(pick);
  }

  // Select phase: pop and color, biased toward move partners' colors.
  colors->assign(n, -1);
  int rotate[2] = {0, 0};  // per-class round-robin start (spread mode)
  while (!stack.empty()) {
    const VReg v = stack.back();
    stack.pop_back();
    std::set<int> forbidden;
    for (VReg w : g.adj[v])
      if ((*colors)[w] >= 0) forbidden.insert((*colors)[w]);
    int chosen = -1;
    for (VReg m : g.moves[v]) {
      const int c = (*colors)[m];
      if (c >= 0 && fn.vregs[m] == fn.vregs[v] && forbidden.count(c) == 0) {
        chosen = c;
        break;
      }
    }
    if (chosen < 0) {
      const int k = k_of(v);
      const int cls = fn.vregs[v] == RegClass::I32 ? 0 : 1;
      const int start = spread_colors ? rotate[cls] % k : 0;
      for (int i = 0; i < k; ++i) {
        const int c = (start + i) % k;
        if (forbidden.count(c) == 0) {
          chosen = c;
          if (spread_colors) rotate[cls] = c + 1;
          break;
        }
      }
    }
    check(chosen >= 0, "coloring select phase failed");
    (*colors)[v] = chosen;
  }
  return std::nullopt;
}

/// Rewrites `fn` so that vreg `v` lives in a fresh stack slot: every use
/// reloads into a fresh temp, every def stores from a fresh temp.
/// The introduced temporaries are added to `no_spill`.
void spill_everywhere(Function& fn, VReg v, std::set<VReg>& no_spill,
                      std::map<VReg, rtl::Slot>* spill_slot_of) {
  const RegClass cls = fn.vregs[v];
  const rtl::Slot slot = fn.new_slot(cls);
  (*spill_slot_of)[v] = slot;

  for (auto& bb : fn.blocks) {
    std::vector<Instr> out;
    out.reserve(bb.instrs.size() * 2);
    for (Instr& ins : bb.instrs) {
      // Reload before uses.
      bool uses_v = false;
      for (VReg u : ins.uses()) uses_v |= (u == v);
      VReg reload = rtl::kNoVReg;
      if (uses_v) {
        reload = fn.new_vreg(cls);
        no_spill.insert(reload);
        Instr ld;
        ld.op = Opcode::LoadStack;
        ld.dst = reload;
        ld.slot = slot;
        out.push_back(ld);
        auto replace = [&](VReg& r) {
          if (r == v) r = reload;
        };
        replace(ins.src1);
        replace(ins.src2);
        for (auto& a : ins.annot_args)
          if (!a.is_slot && a.vreg == v) {
            // Annotation operands reference the spill slot directly: the
            // value's home location (no reload needed for a pro-forma use).
            a = rtl::AnnotOperand::of_slot(slot);
          }
      }
      const auto d = ins.def();
      if (d && *d == v) {
        const VReg tmp = fn.new_vreg(cls);
        no_spill.insert(tmp);
        ins.dst = tmp;
        out.push_back(ins);
        Instr st;
        st.op = Opcode::StoreStack;
        st.slot = slot;
        st.src1 = tmp;
        out.push_back(st);
      } else {
        out.push_back(ins);
      }
    }
    bb.instrs = std::move(out);
  }
}

}  // namespace

Allocation allocate_registers(Function& fn, int k_int, int k_float,
                              bool spread_colors) {
  std::set<VReg> no_spill;
  std::map<VReg, rtl::Slot> spill_slot_of;
  std::vector<int> colors;

  int rounds = 0;
  for (;;) {
    check(++rounds < 64, "register allocation did not converge");
    const Graph g = build_graph(fn);
    const auto spill =
        try_color(fn, g, k_int, k_float, spread_colors, no_spill, &colors);
    if (!spill) break;
    spill_everywhere(fn, *spill, no_spill, &spill_slot_of);
  }

  Allocation alloc;
  alloc.spill_count = static_cast<int>(spill_slot_of.size());
  alloc.locs.resize(fn.vregs.size());
  for (VReg v = 0; v < fn.vregs.size(); ++v) {
    auto it = spill_slot_of.find(v);
    if (it != spill_slot_of.end()) {
      alloc.locs[v] = Loc{false, -1, it->second};
    } else {
      alloc.locs[v] = Loc{colors[v] >= 0, colors[v], 0};
    }
  }
  fn.validate();
  return alloc;
}

}  // namespace vc::regalloc
