// Register allocation: Chaitin–Briggs graph coloring with iterated
// spill-everywhere and move-biased color choice — the "register allocation by
// graph coloring" CompCert performs (paper §3.2). Colors are abstract indices
// 0..K-1 per class; the backend maps them to machine registers.
//
// The paper's "optimized without register allocation" configuration needs no
// separate allocator: it lowers in pattern/stack mode, where program
// variables already live in stack slots, and only the short-lived expression
// temporaries are colored here — exactly the discipline of a COTS compiler
// run with register allocation disabled.
#pragma once

#include <vector>

#include "rtl/rtl.hpp"

namespace vc::regalloc {

struct Loc {
  bool in_reg = false;
  int color = -1;        // valid when in_reg
  rtl::Slot slot = 0;    // valid when !in_reg (only used for annotations)
};

struct Allocation {
  /// Location of each virtual register (indexed by vreg id). After
  /// allocation every vreg that appears in the function is `in_reg`; spilled
  /// values were rewritten to short-lived temporaries around stack accesses.
  std::vector<Loc> locs;
  int spill_count = 0;  // number of vregs that were spilled to stack slots
};

/// Colors `fn`'s virtual registers with at most `k_int` integer and `k_float`
/// float colors, inserting spill code into `fn` when needed.
///
/// `spread_colors` selects a round-robin color choice instead of
/// lowest-available: it avoids recycling the same register for back-to-back
/// independent computations, which removes the false WAW/WAR dependences
/// that would otherwise defeat post-allocation instruction scheduling. The
/// O2-full configuration uses it (a scheduling-aware allocator, like the
/// default compiler's); the verified configuration keeps CompCert's
/// register-thrifty lowest-color choice.
Allocation allocate_registers(rtl::Function& fn, int k_int, int k_float,
                              bool spread_colors = false);

}  // namespace vc::regalloc
